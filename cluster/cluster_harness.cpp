// Multi-process load/fault harness: the cluster run "in anger".
//
// The harness fork/execs cluster_node processes (found next to its own
// binary) over FileBackend volumes in a temp run directory:
//
//   replica  <--journal shipping--  bank  <--TCP-->  FrameProxy  <-- us
//                                   directory <----> FrameProxy  <-- us
//
// then drives thousands of client sessions with Zipf-skewed account
// popularity from N worker threads, each with its own Machine and
// at-most-once Transport.  Mid-run it turns the proxy fault knobs
// (drop + delay, then a full partition) and SIGKILLs the bank process,
// restarting it over the same volume on the same port.  Afterwards,
// with the wire clean, it verifies the cluster's invariants:
//
//   * conservation: sum of all balances == sum of all money minted;
//   * every surviving capability (hot accounts + per-session sinks)
//     still validates against the recovered server;
//   * no duplicate execution: each session's sink holds at most one
//     transfer's worth -- exactly one if the transfer confirmed, zero
//     or one if it timed out in-doubt.
//
// Latency per op class (resolve/read/create/transfer) and goodput are
// appended as one JSON line to BENCH_cluster.json (see --out), the
// perf trajectory the repo carries across PRs.  Exit status reflects
// the invariants: nonzero means the cluster lost or duplicated money.
//
//   cluster_harness [--smoke] [--sessions N] [--clients N] [--out PATH]
//                   [--no-crash] [--keep]
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/net/frame_proxy.hpp"
#include "amoeba/net/socket_network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "cluster_proto.hpp"

namespace amoeba::cluster {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

constexpr int kHotAccounts = 64;
constexpr std::int64_t kMintPerAccount = 1'000'000;
constexpr std::int64_t kTransferAmount = 5;

struct Options {
  bool smoke = false;
  bool crash = true;
  bool keep = false;
  int sessions = 1200;
  int clients = 8;
  std::string out = "BENCH_cluster.json";
};

Options parse(int argc, char** argv) {
  Options opt;
  bool sessions_set = false;
  bool clients_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "cluster_harness: %s wants a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--no-crash") {
      opt.crash = false;
    } else if (arg == "--keep") {
      opt.keep = true;
    } else if (arg == "--sessions") {
      opt.sessions = std::stoi(next());
      sessions_set = true;
    } else if (arg == "--clients") {
      opt.clients = std::stoi(next());
      clients_set = true;
    } else if (arg == "--out") {
      opt.out = next();
    } else {
      std::fprintf(stderr, "cluster_harness: unknown flag %s\n", arg.c_str());
      std::exit(2);
    }
  }
  if (opt.smoke) {
    if (!sessions_set) opt.sessions = 50;
    if (!clients_set) opt.clients = 4;
  }
  return opt;
}

/// fork/exec with stdout+stderr redirected to a log file in the run dir.
pid_t spawn(const std::vector<std::string>& args, const fs::path& log) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd = ::open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
      ::dup2(fd, 1);
      ::dup2(fd, 2);
    }
    // Drop every inherited descriptor: a child that keeps dups of the
    // harness's proxy/client sockets holds torn connections half-alive
    // (the peer never sees EOF), which silently blackholes the proxy
    // after a kill/restart.
    for (int f = 3; f < 1024; ++f) ::close(f);
    ::execv(argv[0], argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

/// Polls for <name>.boot reporting (at least) `incarnation`.
std::optional<std::map<std::string, std::string>> wait_boot(
    const fs::path& run_dir, const std::string& name,
    std::uint64_t incarnation, std::chrono::milliseconds timeout) {
  const fs::path path = run_dir / (name + ".boot");
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    auto kv = read_kv(path);
    if (kv.contains("incarnation") &&
        std::stoull(kv.at("incarnation")) >= incarnation) {
      return kv;
    }
    std::this_thread::sleep_for(25ms);
  }
  return std::nullopt;
}

/// Zipf(s) over [0, n): precomputed CDF, sampled by inverse transform.
class Zipf {
 public:
  Zipf(int n, double s) {
    cdf_.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] int sample(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

enum class Outcome : std::uint8_t { confirmed, in_doubt, failed };

struct SessionRecord {
  core::Capability sink;
  bool has_sink = false;
  Outcome outcome = Outcome::failed;
};

struct OpClass {
  std::vector<double> latencies_us;  // completed (ok) ops only
  std::uint64_t failures = 0;
};

struct WorkerResult {
  std::vector<SessionRecord> sessions;
  // resolve / read / create / transfer
  std::array<OpClass, 4> ops;
};

enum { kResolve = 0, kRead = 1, kCreate = 2, kTransfer = 3 };
constexpr std::array<const char*, 4> kOpNames = {"resolve", "read", "create",
                                                "transfer"};

/// Times one client call; records latency on success, a failure count
/// otherwise.  Returns the call's success.
template <typename Fn>
bool timed(OpClass& cls, Fn&& fn) {
  const auto start = Clock::now();
  const bool ok = fn();
  if (ok) {
    cls.latencies_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
  } else {
    ++cls.failures;
  }
  return ok;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
  return sorted[idx];
}

/// Every child gets killed on every exit path: the harness must not
/// leave orphan servers holding ports.
struct ChildReaper {
  std::vector<pid_t> pids;
  ~ChildReaper() {
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    for (pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  }
};

int run(const Options& opt) {
  // --- Topology -----------------------------------------------------
  char self[4096];
  const ssize_t n = ::readlink("/proc/self/exe", self, sizeof(self) - 1);
  if (n <= 0) {
    std::perror("readlink /proc/self/exe");
    return 1;
  }
  self[n] = '\0';
  const fs::path node_bin = fs::path(self).parent_path() / "cluster_node";

  char run_template[] = "/tmp/amoeba_cluster_XXXXXX";
  const char* run_cstr = ::mkdtemp(run_template);
  if (run_cstr == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const fs::path run_dir(run_cstr);
  const bool with_directory = !opt.smoke;
  std::printf("cluster_harness: run dir %s (%d sessions, %d clients, %s)\n",
              run_dir.c_str(), opt.sessions, opt.clients,
              opt.smoke ? "smoke" : "full");

  ChildReaper children;
  auto launch = [&](const std::vector<std::string>& args,
                    const std::string& name) {
    const pid_t pid = spawn(args, run_dir / (name + ".log"));
    children.pids.push_back(pid);
    return pid;
  };

  const std::vector<std::string> replica_args = {
      node_bin.string(), "--role",   "replica",
      "--name",          "replica",  "--run-dir",
      run_dir.string(),  "--volume", (run_dir / "replica_vol").string(),
      "--base",          "200",      "--seed",
      "11"};
  launch(replica_args, "replica");
  const auto replica_boot = wait_boot(run_dir, "replica", 1, 30s);
  if (!replica_boot.has_value()) {
    std::fprintf(stderr, "cluster_harness: replica never booted\n");
    return 1;
  }

  std::vector<std::string> bank_args = {
      node_bin.string(), "--role",   "bank",
      "--name",          "bank",     "--run-dir",
      run_dir.string(),  "--volume", (run_dir / "bank_vol").string(),
      "--base",          "100",      "--seed",
      "7",               "--peer",   "127.0.0.1:" + replica_boot->at("port"),
      "--replica-cap",   replica_boot->at("volume")};
  pid_t bank_pid = launch(bank_args, "bank");
  const auto bank_boot = wait_boot(run_dir, "bank", 1, 30s);
  if (!bank_boot.has_value()) {
    std::fprintf(stderr, "cluster_harness: bank never booted\n");
    return 1;
  }
  const std::string bank_port = bank_boot->at("port");
  // The restart must land on the SAME port (the client's peer list is
  // fixed) with a bumped incarnation for the boot-file rendezvous.
  std::vector<std::string> bank_restart_args = bank_args;
  bank_restart_args.insert(bank_restart_args.end(),
                           {"--listen", bank_port, "--incarnation", "2"});

  std::string dir_root_hex;
  std::string dir_port;
  if (with_directory) {
    const std::vector<std::string> dir_args = {
        node_bin.string(), "--role",   "directory",
        "--name",          "dir",      "--run-dir",
        run_dir.string(),  "--volume", (run_dir / "dir_vol").string(),
        "--base",          "300",      "--seed",
        "13"};
    launch(dir_args, "dir");
    const auto dir_boot = wait_boot(run_dir, "dir", 1, 30s);
    if (!dir_boot.has_value()) {
      std::fprintf(stderr, "cluster_harness: directory never booted\n");
      return 1;
    }
    dir_port = dir_boot->at("port");
    dir_root_hex = dir_boot->at("root");
  }

  // --- Proxies + client node ---------------------------------------
  net::FrameProxy bank_proxy(
      {.target_port = static_cast<std::uint16_t>(std::stoul(bank_port)),
       .seed = 101});
  std::unique_ptr<net::FrameProxy> dir_proxy;
  if (with_directory) {
    dir_proxy = std::make_unique<net::FrameProxy>(net::FrameProxy::Config{
        .target_port = static_cast<std::uint16_t>(std::stoul(dir_port)),
        .seed = 102});
  }

  net::SocketNetwork::SocketConfig client_config;
  client_config.net.seed = 401;
  client_config.net.machine_id_base = 9000;
  client_config.listen = false;
  client_config.peers = {{"127.0.0.1", bank_proxy.listen_port()}};
  if (dir_proxy != nullptr) {
    client_config.peers.push_back({"127.0.0.1", dir_proxy->listen_port()});
  }
  net::SocketNetwork client_net(client_config);
  net::Machine& setup_machine = client_net.add_machine("setup");
  std::vector<net::Machine*> worker_machines;
  for (int i = 0; i < opt.clients; ++i) {
    worker_machines.push_back(
        &client_net.add_machine("worker-" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < client_config.peers.size(); ++i) {
    if (!client_net.wait_connected(i, 10s)) {
      std::fprintf(stderr, "cluster_harness: proxy %zu unreachable\n", i);
      return 1;
    }
  }

  const core::Capability master =
      core::unpack(from_hex(bank_boot->at("master")).value());
  const core::Capability dir_root =
      with_directory ? core::unpack(from_hex(dir_root_hex).value())
                     : core::Capability{};
  // Capabilities carry their managing server's PUT-port, so the boot
  // capabilities are all the addressing the harness needs.
  const Port bank_put = master.server_port;

  // --- Setup: hot accounts, minting, directory names (fault-free) --
  rpc::Transport setup_transport(setup_machine, 701);
  setup_transport.set_default_timeout(15'000ms);
  servers::BankClient setup_bank(setup_transport, bank_put);
  std::vector<core::Capability> hot;
  for (int i = 0; i < kHotAccounts; ++i) {
    auto account = setup_bank.create_account();
    if (!account.ok()) {
      std::fprintf(stderr, "cluster_harness: setup create_account failed\n");
      return 1;
    }
    if (!setup_bank
             .mint(master, account.value(), servers::currency::kDollar,
                   kMintPerAccount)
             .ok()) {
      std::fprintf(stderr, "cluster_harness: setup mint failed\n");
      return 1;
    }
    hot.push_back(account.value());
  }
  if (with_directory) {
    servers::DirectoryClient setup_dir(setup_transport,
                                       dir_root.server_port);
    for (int i = 0; i < kHotAccounts; ++i) {
      if (!setup_dir.enter(dir_root, "acct-" + std::to_string(i), hot[i])
               .ok()) {
        std::fprintf(stderr, "cluster_harness: setup enter failed\n");
        return 1;
      }
    }
  }
  std::printf("cluster_harness: setup done, starting load\n");

  // --- Load ---------------------------------------------------------
  const Zipf zipf(kHotAccounts, 1.1);
  std::atomic<int> next_session{0};
  std::atomic<int> done_sessions{0};
  std::vector<WorkerResult> results(
      static_cast<std::size_t>(opt.clients));
  const auto load_start = Clock::now();

  std::vector<std::jthread> workers;
  for (int w = 0; w < opt.clients; ++w) {
    workers.emplace_back([&, w] {
      WorkerResult& out = results[static_cast<std::size_t>(w)];
      Rng rng(1000 + static_cast<std::uint64_t>(w));
      rpc::Transport transport(*worker_machines[static_cast<std::size_t>(w)],
                               2000 + static_cast<std::uint64_t>(w));
      transport.set_retransmit(10ms, 250ms);
      transport.set_default_timeout(15'000ms);
      servers::BankClient bank(transport, bank_put);
      std::optional<servers::DirectoryClient> dir;
      if (with_directory) dir.emplace(transport, dir_root.server_port);

      while (true) {
        const int session = next_session.fetch_add(1);
        if (session >= opt.sessions) break;
        const int h = zipf.sample(rng);
        core::Capability source = hot[static_cast<std::size_t>(h)];

        if (dir.has_value()) {
          core::Capability resolved;
          if (timed(out.ops[kResolve], [&] {
                auto r = dir->lookup(dir_root, "acct-" + std::to_string(h));
                if (r.ok()) resolved = r.value();
                return r.ok();
              })) {
            source = resolved;
          }
        }

        (void)timed(out.ops[kRead], [&] {
          return bank.balance(source, servers::currency::kDollar).ok();
        });

        SessionRecord record;
        if (!timed(out.ops[kCreate], [&] {
              auto r = bank.create_account();
              if (r.ok()) {
                record.sink = r.value();
                record.has_sink = true;
              }
              return r.ok();
            })) {
          out.sessions.push_back(record);  // Outcome::failed
          done_sessions.fetch_add(1);
          continue;
        }

        const bool transferred = timed(out.ops[kTransfer], [&] {
          return bank
              .transfer(source, record.sink, servers::currency::kDollar,
                        kTransferAmount)
              .ok();
        });
        record.outcome = transferred ? Outcome::confirmed : Outcome::in_doubt;
        out.sessions.push_back(record);
        done_sessions.fetch_add(1);
      }
    });
  }

  // --- Fault schedule (driven by session progress) -----------------
  bool crashed = false;
  {
    auto progress_past = [&](int threshold) {
      while (done_sessions.load() < threshold &&
             done_sessions.load() < opt.sessions) {
        std::this_thread::sleep_for(20ms);
      }
    };
    progress_past(opt.sessions / 5);
    std::printf("cluster_harness: fault window: 15%% drop + 1ms delay\n");
    bank_proxy.set_faults(0.15, 1ms);
    if (dir_proxy != nullptr) dir_proxy->set_faults(0.10);

    progress_past(opt.sessions * 7 / 20);
    bank_proxy.set_faults(0.0);
    if (dir_proxy != nullptr) dir_proxy->set_faults(0.0);
    std::printf("cluster_harness: fault window: 400ms full partition\n");
    bank_proxy.set_partitioned(true);
    std::this_thread::sleep_for(400ms);
    bank_proxy.set_partitioned(false);

    if (opt.crash) {
      progress_past(opt.sessions / 2);
      std::printf("cluster_harness: SIGKILL bank (pid %d), restarting\n",
                  static_cast<int>(bank_pid));
      ::kill(bank_pid, SIGKILL);
      ::waitpid(bank_pid, nullptr, 0);
      std::erase(children.pids, bank_pid);
      std::this_thread::sleep_for(250ms);
      bank_pid = spawn(bank_restart_args, run_dir / "bank.log");
      children.pids.push_back(bank_pid);
      if (!wait_boot(run_dir, "bank", 2, 60s).has_value()) {
        std::fprintf(stderr, "cluster_harness: bank never came back\n");
        return 1;
      }
      std::printf("cluster_harness: bank restarted (pid %d)\n",
                  static_cast<int>(bank_pid));
      crashed = true;
    }

    progress_past(opt.sessions * 7 / 10);
    std::printf("cluster_harness: fault window: 5%% drop tail\n");
    bank_proxy.set_faults(0.05);
    progress_past(opt.sessions * 17 / 20);
    bank_proxy.set_faults(0.0);
  }

  workers.clear();  // join
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - load_start).count();

  // --- Invariants (wire clean) -------------------------------------
  bank_proxy.set_faults(0.0);
  bank_proxy.set_partitioned(false);
  bool validates_ok = true;
  bool no_dup_ok = true;
  std::int64_t total_balance = 0;
  for (const auto& cap : hot) {
    const auto balance = setup_bank.balance(cap, servers::currency::kDollar);
    if (!balance.ok()) {
      validates_ok = false;
      continue;
    }
    total_balance += balance.value();
  }
  std::uint64_t confirmed = 0;
  std::uint64_t in_doubt = 0;
  std::uint64_t failed = 0;
  for (const auto& result : results) {
    for (const auto& session : result.sessions) {
      switch (session.outcome) {
        case Outcome::confirmed: ++confirmed; break;
        case Outcome::in_doubt: ++in_doubt; break;
        case Outcome::failed: ++failed; break;
      }
      if (!session.has_sink) continue;
      const auto balance =
          setup_bank.balance(session.sink, servers::currency::kDollar);
      if (!balance.ok()) {
        validates_ok = false;
        continue;
      }
      total_balance += balance.value();
      const std::int64_t v = balance.value();
      if (session.outcome == Outcome::confirmed && v != kTransferAmount) {
        no_dup_ok = false;  // lost (v == 0) or duplicated (v > amount)
      }
      if (v != 0 && v != kTransferAmount) no_dup_ok = false;
    }
  }
  const std::int64_t total_minted =
      static_cast<std::int64_t>(kHotAccounts) * kMintPerAccount;
  const bool conservation_ok = total_balance == total_minted;

  // --- Report -------------------------------------------------------
  std::array<OpClass, 4> merged;
  for (auto& result : results) {
    for (std::size_t c = 0; c < merged.size(); ++c) {
      auto& into = merged[c].latencies_us;
      auto& from = result.ops[c].latencies_us;
      into.insert(into.end(), from.begin(), from.end());
      merged[c].failures += result.ops[c].failures;
    }
  }
  std::uint64_t completed_ops = 0;
  for (const auto& cls : merged) completed_ops += cls.latencies_us.size();
  const double goodput =
      elapsed_s > 0.0 ? static_cast<double>(completed_ops) / elapsed_s : 0.0;

  std::string json;
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\": \"cluster\", \"mode\": \"%s\", "
                  "\"servers\": %d, \"sessions\": %d, \"clients\": %d, "
                  "\"crash\": %s, \"elapsed_s\": %.3f, "
                  "\"goodput_ops_per_s\": %.1f",
                  opt.smoke ? "smoke" : "full", with_directory ? 3 : 2,
                  opt.sessions, opt.clients, crashed ? "true" : "false",
                  elapsed_s, goodput);
    json = buf;
    for (std::size_t c = 0; c < merged.size(); ++c) {
      std::vector<double> sorted = merged[c].latencies_us;
      std::sort(sorted.begin(), sorted.end());
      std::snprintf(buf, sizeof(buf),
                    ", \"%s\": {\"count\": %zu, \"failures\": %llu, "
                    "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}",
                    kOpNames[c], sorted.size(),
                    static_cast<unsigned long long>(merged[c].failures),
                    percentile(sorted, 0.50), percentile(sorted, 0.99),
                    percentile(sorted, 0.999));
      json += buf;
    }
    std::snprintf(
        buf, sizeof(buf),
        ", \"confirmed\": %llu, \"in_doubt\": %llu, \"failed\": %llu, "
        "\"conservation_ok\": %s, \"validates_ok\": %s, \"no_dup_ok\": %s}",
        static_cast<unsigned long long>(confirmed),
        static_cast<unsigned long long>(in_doubt),
        static_cast<unsigned long long>(failed),
        conservation_ok ? "true" : "false", validates_ok ? "true" : "false",
        no_dup_ok ? "true" : "false");
    json += buf;
  }
  std::printf("%s\n", json.c_str());
  if (std::FILE* out = std::fopen(opt.out.c_str(), "a")) {
    std::fprintf(out, "%s\n", json.c_str());
    std::fclose(out);
  }

  if (!opt.keep) {
    // Children die in the reaper; the volumes are throwaway.
    std::error_code ec;
    fs::remove_all(run_dir, ec);
  }

  const bool healthy = confirmed * 10 >= static_cast<std::uint64_t>(
                                             opt.sessions) * 9;
  if (!conservation_ok || !validates_ok || !no_dup_ok || !healthy) {
    std::fprintf(stderr,
                 "cluster_harness: INVARIANT FAILURE conservation=%d "
                 "validates=%d no_dup=%d confirmed=%llu/%d\n",
                 conservation_ok, validates_ok, no_dup_ok,
                 static_cast<unsigned long long>(confirmed), opt.sessions);
    return 1;
  }
  std::printf("cluster_harness: all invariants hold\n");
  return 0;
}

}  // namespace
}  // namespace amoeba::cluster

int main(int argc, char** argv) {
  return amoeba::cluster::run(amoeba::cluster::parse(argc, argv));
}
