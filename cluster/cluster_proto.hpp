// Conventions shared by cluster_node and cluster_harness.
//
// A cluster is N independent processes, each hosting one SocketNetwork
// node and one service role.  Nothing is shared between them except:
//
//   * the deterministic one-way function (crypto::default_one_way), so
//     every process computes the same PUT = F(GET);
//   * one protection scheme, derived from a fixed RNG seed -- for a
//     deterministic scheme the seed IS the cluster-wide secret;
//   * the fixed GET-ports below, so a restarted process re-registers the
//     same service identity and pre-crash capabilities keep validating.
//
// Processes rendezvous through small key=value "boot files" in a shared
// run directory: a node writes <name>.boot (atomically, temp + rename)
// once its services are listening, and the harness polls for it.  The
// boot file carries the ephemeral listen port, the node's machine id,
// the current incarnation, and any capabilities the harness needs
// (bank master, replica volume, directory root) hex-encoded via
// core::pack.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "amoeba/core/capability.hpp"

namespace amoeba::cluster {

// Service GET-ports.  Fixed across the cluster (and across restarts):
// the GET-port plus the shared scheme is the whole service identity.
inline constexpr std::uint64_t kBankGetPort = 0x10AD;
inline constexpr std::uint64_t kDirectoryGetPort = 0xD1C7;
inline constexpr std::uint64_t kReplicaGetPort = 0x7B01;

// The cluster-wide protection-scheme seed (make_scheme is deterministic
// in its RNG, so every process derives the identical scheme from it).
inline constexpr std::uint64_t kSchemeSeed = 31;

[[nodiscard]] inline std::string to_hex(const core::CapabilityBytes& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

[[nodiscard]] inline std::optional<core::CapabilityBytes> from_hex(
    const std::string& hex) {
  if (hex.size() != 32) return std::nullopt;
  core::CapabilityBytes bytes{};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    const auto nibble = [](char c) -> int {
      if (c >= '0' && c <= '9') return c - '0';
      if (c >= 'a' && c <= 'f') return c - 'a' + 10;
      if (c >= 'A' && c <= 'F') return c - 'A' + 10;
      return -1;
    };
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return bytes;
}

/// Writes `content` to `path` atomically: readers polling the path never
/// observe a half-written file.
inline void write_file_atomic(const std::filesystem::path& path,
                              const std::string& content) {
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << content;
  }
  std::filesystem::rename(tmp, path);
}

/// Parses a key=value-per-line file (empty map when absent/unreadable).
[[nodiscard]] inline std::map<std::string, std::string> read_kv(
    const std::filesystem::path& path) {
  std::map<std::string, std::string> kv;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return kv;
}

}  // namespace amoeba::cluster
