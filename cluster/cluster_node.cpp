// One cluster process: a SocketNetwork node hosting a single service
// role over a FileBackend volume.
//
//   cluster_node --role bank|replica|directory
//                --name NAME --run-dir DIR --volume DIR
//                [--listen PORT] [--base N] [--seed N] [--incarnation N]
//                [--peer host:port]...
//                [--replica-cap HEX32 --replica-name NAME]
//                [--backend uring|file|memory]
//
// The process is designed to be SIGKILLed: all durable state lives in
// the volume (storage layer journal), all identity in fixed GET-ports,
// the shared scheme, and the machine-id base.  A restart with the same
// arguments (plus a bumped --incarnation) recovers the volume, re-lists
// on the same port, and serves every capability minted by its previous
// life.  Startup completion is signalled by atomically writing
// <run-dir>/<name>.boot; the harness polls for the expected incarnation.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/socket_network.hpp"
#include "amoeba/rpc/replication.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"
#include "amoeba/storage/uring_backend.hpp"
#include "cluster_proto.hpp"

namespace amoeba::cluster {
namespace {

using namespace std::chrono_literals;

struct Options {
  std::string role;
  std::string name;
  std::filesystem::path run_dir;
  std::filesystem::path volume;
  std::uint16_t listen_port = 0;
  std::uint32_t machine_base = 0;
  std::uint64_t seed = 1;
  std::uint64_t incarnation = 1;
  std::vector<net::PeerAddress> peers;
  std::optional<core::Capability> replica_cap;
  std::string replica_name = "replica";
  storage::BackendKind backend = storage::BackendKind::file;
};

[[noreturn]] void usage(const char* why) {
  std::fprintf(stderr, "cluster_node: %s\n", why);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  auto next = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage("missing argument value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--role") {
      opt.role = next(i);
    } else if (arg == "--name") {
      opt.name = next(i);
    } else if (arg == "--run-dir") {
      opt.run_dir = next(i);
    } else if (arg == "--volume") {
      opt.volume = next(i);
    } else if (arg == "--listen") {
      opt.listen_port = static_cast<std::uint16_t>(std::stoul(next(i)));
    } else if (arg == "--base") {
      opt.machine_base = static_cast<std::uint32_t>(std::stoul(next(i)));
    } else if (arg == "--seed") {
      opt.seed = std::stoull(next(i));
    } else if (arg == "--incarnation") {
      opt.incarnation = std::stoull(next(i));
    } else if (arg == "--peer") {
      const std::string peer = next(i);
      const auto colon = peer.rfind(':');
      if (colon == std::string::npos) usage("--peer wants host:port");
      opt.peers.push_back(
          {peer.substr(0, colon),
           static_cast<std::uint16_t>(std::stoul(peer.substr(colon + 1)))});
    } else if (arg == "--replica-cap") {
      const auto bytes = from_hex(next(i));
      if (!bytes.has_value()) usage("--replica-cap wants 32 hex digits");
      opt.replica_cap = core::unpack(*bytes);
    } else if (arg == "--replica-name") {
      opt.replica_name = next(i);
    } else if (arg == "--backend") {
      const std::string kind = next(i);
      try {
        opt.backend = storage::parse_backend_kind(kind);
      } catch (const std::exception&) {
        usage("--backend wants uring|file|memory");
      }
    } else {
      usage(("unknown flag " + arg).c_str());
    }
  }
  if (opt.role.empty() || opt.name.empty() || opt.run_dir.empty() ||
      opt.volume.empty()) {
    usage("--role, --name, --run-dir, --volume are required");
  }
  return opt;
}

void write_boot_file(const Options& opt, const net::SocketNetwork& net,
                     MachineId machine,
                     const std::vector<std::pair<std::string, std::string>>&
                         extra) {
  std::ostringstream out;
  out << "port=" << net.listen_port() << "\n";
  out << "machine=" << machine.value() << "\n";
  out << "incarnation=" << opt.incarnation << "\n";
  for (const auto& [key, value] : extra) out << key << "=" << value << "\n";
  write_file_atomic(opt.run_dir / (opt.name + ".boot"), out.str());
}

[[noreturn]] void serve_forever() {
  while (true) std::this_thread::sleep_for(1h);
}

int run(const Options& opt) {
  Rng scheme_rng(kSchemeSeed);
  auto scheme = core::make_scheme(core::SchemeKind::commutative, scheme_rng);

  // Client-side at-most-once identity is derived from (seed, machine id),
  // both of which a restart reproduces exactly -- but the peer's persisted
  // reply-cache floor remembers the PREVIOUS life's sequence numbers, so a
  // reborn client with the same identity and a fresh seq counter would be
  // rejected as stale duplicates forever.  Fold the incarnation into every
  // seed that feeds an outbound transport (the replication link, the
  // directory boot client) so each life speaks as a brand-new client.
  const std::uint64_t epoch_seed =
      opt.seed + (opt.incarnation - 1) * 1'000'003;

  net::SocketNetwork::SocketConfig config;
  config.net.seed = opt.seed;
  config.net.machine_id_base = opt.machine_base;
  config.listen_port = opt.listen_port;
  config.peers = opt.peers;
  net::SocketNetwork net(config);
  net::Machine& machine = net.add_machine(opt.name);
  for (std::size_t i = 0; i < opt.peers.size(); ++i) {
    if (!net.wait_connected(i, 30'000ms)) {
      std::fprintf(stderr, "cluster_node %s: peer %zu unreachable\n",
                   opt.name.c_str(), i);
      return 1;
    }
  }

  // --backend=uring asks for the io_uring journal path but degrades to the
  // synchronous FileBackend when the kernel refuses (same on-disk layout
  // either way); note which one actually came up so operators can tell.
  auto local = storage::make_backend(opt.backend, opt.volume);
  if (opt.backend == storage::BackendKind::uring) {
    std::fprintf(stderr, "cluster_node %s: backend=uring %s\n",
                 opt.name.c_str(),
                 local->async_io_stats().async ? "(active)"
                                               : "(unavailable; file fallback)");
  }

  if (opt.role == "replica") {
    rpc::ReplicaServer replica(machine, Port(kReplicaGetPort), scheme,
                               opt.seed, local);
    replica.start(2);
    write_boot_file(opt, net, machine.id(),
                    {{"volume", to_hex(core::pack(replica.volume_capability()))}});
    serve_forever();
  }

  if (opt.role == "bank") {
    std::shared_ptr<storage::Backend> backend = local;
    if (opt.replica_cap.has_value()) {
      backend = rpc::replicate_to(
          local, storage::AckMode::ack_one, machine, epoch_seed + 1,
          {{opt.replica_name, *opt.replica_cap}});
    }
    servers::BankServer bank(machine, Port(kBankGetPort), scheme, opt.seed,
                             backend);
    bank.start(2);
    write_boot_file(opt, net, machine.id(),
                    {{"master", to_hex(core::pack(bank.master_capability()))}});
    serve_forever();
  }

  if (opt.role == "directory") {
    servers::DirectoryServer directory(machine, Port(kDirectoryGetPort),
                                       scheme, opt.seed, local);
    directory.start(2);

    // The root directory is created once, through a loopback client on
    // this same node; its capability is durable in the volume, so later
    // incarnations reuse the persisted one.
    const std::filesystem::path root_file = opt.run_dir / (opt.name + ".root");
    std::string root_hex;
    if (const auto kv = read_kv(root_file); kv.contains("root")) {
      root_hex = kv.at("root");
    } else {
      net::Machine& boot = net.add_machine(opt.name + "-boot");
      rpc::Transport transport(boot, epoch_seed + 2);
      servers::DirectoryClient client(transport, directory.put_port());
      const auto root = client.create_dir();
      if (!root.ok()) {
        std::fprintf(stderr, "cluster_node %s: create_dir failed\n",
                     opt.name.c_str());
        return 1;
      }
      root_hex = to_hex(core::pack(root.value()));
      write_file_atomic(root_file, "root=" + root_hex + "\n");
    }
    write_boot_file(opt, net, machine.id(), {{"root", root_hex}});
    serve_forever();
  }

  usage(("unknown role " + opt.role).c_str());
}

}  // namespace
}  // namespace amoeba::cluster

int main(int argc, char** argv) {
  return amoeba::cluster::run(amoeba::cluster::parse(argc, argv));
}
