// E12: what one client thread can push through the RPC core.
//
// The paper's transaction model (§2.1) caps every client thread at one
// in-flight request, so the 16-shard store from E11 can only be saturated
// by spawning threads.  This benchmark contrasts the three client shapes
// now available against a multi-worker bank service (every request is an
// open() on the sharded store plus a balance read):
//
//   blocking   rpc::call:           one transaction in flight, two thread
//                                   rendezvous on every round trip
//   pipelined  rpc::call_async:     a window of W outstanding typed
//                                   futures, completions decoupled from
//                                   issue order
//   batched    rpc::TypedBatch:     B sub-requests per frame, one round
//                                   trip amortized over all of them
//
// All three shapes go through the typed bank_ops descriptors, so the
// bench also measures the typed codec layer on the hot path.
//
// items_per_second counts *sub-requests*, the figure the §2.3 validation
// cost argument is about.  Acceptance for this PR: pipelined/batched
// single-thread throughput >= 3x blocking single-thread throughput --
// batched clears it by an order of magnitude everywhere; plain pipelining
// clears it on multi-core hosts, while on a single-core container it can
// only harvest the rendezvous savings (~2x) because client, service
// workers, and completion pump time-slice one CPU.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/batch.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/common.hpp"

#include "smoke.hpp"

namespace {

using namespace amoeba;
using namespace std::chrono_literals;

constexpr int kAccounts = 1024;
constexpr int kServiceWorkers = 4;

struct Rig {
  Rig() : bank_machine(net.add_machine("bank")),
          client_machine(net.add_machine("client")),
          rng(12) {
    bank = std::make_unique<servers::BankServer>(
        bank_machine, Port(0xE12),
        core::make_scheme(core::SchemeKind::encrypted, rng), 12);
    bank->start(kServiceWorkers);
    transport = std::make_unique<rpc::Transport>(client_machine, 12);
    servers::BankClient client(*transport, bank->put_port());
    accounts.reserve(kAccounts);
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(client.create_account().value());
    }
  }

  /// One typed balance lookup, built but not sent.
  [[nodiscard]] net::Message balance_request(std::size_t i) const {
    return rpc::make_request(bank->put_port(), servers::bank_ops::kBalance,
                             accounts[i % kAccounts],
                             {servers::currency::kDollar});
  }

  net::Network net;
  net::Machine& bank_machine;
  net::Machine& client_machine;
  Rng rng;
  std::unique_ptr<servers::BankServer> bank;
  std::unique_ptr<rpc::Transport> transport;
  std::vector<core::Capability> accounts;
};

/// Baseline: the strictly blocking §2.1 client, one transaction at a time.
void BM_BlockingBalance(benchmark::State& state) {
  Rig rig;
  std::size_t i = 0;
  for (auto _ : state) {
    auto reply = rig.transport->trans(rig.balance_request(i++));
    benchmark::DoNotOptimize(reply);
    if (!reply.ok()) {
      state.SkipWithError("trans failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockingBalance)->UseRealTime();

/// Pipelined: one thread keeps a window of futures outstanding; the
/// completion registry matches replies to futures as the service's
/// workers finish them.
void BM_PipelinedBalance(benchmark::State& state) {
  const std::size_t window = static_cast<std::size_t>(state.range(0));
  Rig rig;
  std::deque<rpc::Future> in_flight;
  std::size_t i = 0;
  bool failed = false;
  for (auto _ : state) {
    if (in_flight.size() >= window) {
      failed |= !in_flight.front().get().ok();
      in_flight.pop_front();
    }
    in_flight.push_back(rig.transport->trans_async(rig.balance_request(i++)));
  }
  while (!in_flight.empty()) {
    failed |= !in_flight.front().get().ok();
    in_flight.pop_front();
  }
  if (failed) {
    state.SkipWithError("pipelined trans failed");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelinedBalance)->Arg(8)->Arg(32)->Arg(128)->UseRealTime();

/// Batched: B typed balance lookups per envelope, one round trip each.
void BM_BatchedBalance(benchmark::State& state) {
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  Rig rig;
  rpc::TypedBatch batch(*rig.transport, rig.bank->put_port());
  std::size_t i = 0;
  for (auto _ : state) {
    for (std::size_t k = 0; k < batch_size; ++k) {
      (void)batch.add(servers::bank_ops::kBalance,
                      rig.accounts[i++ % kAccounts],
                      {servers::currency::kDollar});
    }
    auto replies = batch.run();
    benchmark::DoNotOptimize(replies);
    if (!replies.ok() || replies.value().size() != batch_size) {
      state.SkipWithError("batch failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_BatchedBalance)->Arg(8)->Arg(32)->Arg(128)->UseRealTime();

/// Both at once: a window of whole envelopes in flight -- the shape the
/// batched directory walk and multi-transfer use under load.
void BM_PipelinedBatches(benchmark::State& state) {
  constexpr std::size_t kWindow = 4;
  const std::size_t batch_size = static_cast<std::size_t>(state.range(0));
  Rig rig;
  rpc::TypedBatch batch(*rig.transport, rig.bank->put_port());
  std::deque<rpc::Future> in_flight;
  std::size_t i = 0;
  bool failed = false;
  const auto drain_one = [&] {
    auto replies = rpc::TypedBatch::parse_reply(in_flight.front().get());
    in_flight.pop_front();
    failed |= !replies.ok() || replies.value().size() != batch_size;
  };
  for (auto _ : state) {
    if (in_flight.size() >= kWindow) {
      drain_one();
    }
    for (std::size_t k = 0; k < batch_size; ++k) {
      (void)batch.add(servers::bank_ops::kBalance,
                      rig.accounts[i++ % kAccounts],
                      {servers::currency::kDollar});
    }
    in_flight.push_back(batch.run_async());
  }
  while (!in_flight.empty()) {
    drain_one();
  }
  if (failed) {
    state.SkipWithError("pipelined batch failed");
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch_size));
}
BENCHMARK(BM_PipelinedBatches)->Arg(32)->UseRealTime();

/// Prints the blocking/pipelined/batched contrast the PR gates on.
void contrast_report() {
  Rig rig;
  constexpr int kRounds = 2000;
  const auto throughput = [](auto&& fn) {  // transactions per second
    return static_cast<double>(kRounds) / (bench::timed_ms(fn) / 1000.0);
  };
  const double blocking = throughput([&] {
    for (int i = 0; i < kRounds; ++i) {
      if (!rig.transport->trans(rig.balance_request(
              static_cast<std::size_t>(i))).ok()) {
        std::printf("blocking trans failed\n");
        return;
      }
    }
  });
  const double pipelined = throughput([&] {
    std::deque<rpc::Future> in_flight;
    for (int i = 0; i < kRounds; ++i) {
      if (in_flight.size() >= 32) {
        (void)in_flight.front().get();
        in_flight.pop_front();
      }
      in_flight.push_back(rig.transport->trans_async(
          rig.balance_request(static_cast<std::size_t>(i))));
    }
    while (!in_flight.empty()) {
      (void)in_flight.front().get();
      in_flight.pop_front();
    }
  });
  const double batched = throughput([&] {
    rpc::TypedBatch batch(*rig.transport, rig.bank->put_port());
    for (int i = 0; i < kRounds; i += 32) {
      for (int k = 0; k < 32; ++k) {
        (void)batch.add(
            servers::bank_ops::kBalance,
            rig.accounts[static_cast<std::size_t>(i + k) % kAccounts],
            {servers::currency::kDollar});
      }
      (void)batch.run();
    }
  });
  std::printf("---- single client thread, %d balance transactions ----\n",
              kRounds);
  std::printf("  blocking:  %10.0f tx/s\n", blocking);
  std::printf("  pipelined: %10.0f tx/s (%.1fx, window 32)\n", pipelined,
              pipelined / blocking);
  std::printf("  batched:   %10.0f tx/s (%.1fx, 32 per envelope)\n", batched,
              batched / blocking);
  std::printf("--------------------------------------------------------\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E12: async pipelined RPC -- completion registry + batch "
              "envelopes vs. the blocking \xc2\xa7" "2.1 client.\n");
  contrast_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
