// E15: what replication costs the primary's mutate path.
//
// The volume under test is a grouped (PR-6) object store whose backend is
// wrapped as a replication primary (docs/PROTOCOL.md §9) shipping every
// flush cycle to a ReplicaServer on another simulated machine.  The
// contrast:
//
//   * unreplicated grouped   -- the PR-6 baseline, no peers attached,
//   * replicated, async      -- ship-and-forget: the hook encodes the
//                               cycle frame and queues it; mutators never
//                               wait on the backup,
//   * replicated, ack-one    -- every flush cycle waits for one backup's
//                               durable apply (one RPC round trip per
//                               CYCLE, amortized over the whole group).
//
// The acceptance bar (PR 8): async-replicated pure mutate must stay
// within 1.3x of unreplicated grouped -- shipping is an encode + a queue
// push per flush cycle, nothing a mutator waits on.  The report prints
// the three timings, appends one JSON line to BENCH_replication.json,
// and exits nonzero if the async bar fails.
//
// The bar presumes the backup has a core of its own -- in deployment it
// is another MACHINE; only the simulation co-locates it.  On a 1-core
// host the replica's decode+apply (work at least comparable to the
// mutation work being measured) time-shares with the mutator, so the
// ratio is reported but the exit-code gate is waived there.
//
// Knobs: --smoke (token repetitions for CI).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string_view>
#include <thread>
#include <vector>

#include "smoke.hpp"

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/replication.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"

namespace {

using namespace amoeba;

constexpr Port kPort{0xE15E15E15ULL};
constexpr int kObjects = 4096;
/// Pipelined durability window (same shape as E14's mutate loops).
constexpr int kWindow = 4096;
/// Flusher linger, applied to ALL rigs (the unreplicated baseline too, so
/// the contrast stays apples-to-apples).  A replicated volume is deployed
/// with a linger: each shipment costs an encode + an RPC + a remote
/// apply, so cycles must be big enough to amortize it -- with a 0 linger
/// the flusher emits ~10-record cycles and the per-cycle shipping tax
/// dwarfs the mutation work being shipped.
constexpr std::chrono::microseconds kFlushLinger{200};

[[nodiscard]] std::shared_ptr<const core::ProtectionScheme> scheme() {
  static const std::shared_ptr<const core::ProtectionScheme> shared = [] {
    Rng rng(19);
    return std::shared_ptr<const core::ProtectionScheme>(
        core::make_scheme(core::SchemeKind::encrypted, rng));
  }();
  return shared;
}

struct Payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

[[nodiscard]] core::Durability<Payload> codec(
    std::shared_ptr<storage::Backend> backend) {
  core::Durability<Payload> d;
  d.backend = backend;
  d.committer = storage::GroupCommitter::create(
      backend, {.flush_interval = kFlushLinger});
  d.encode = [](Writer& w, const Payload& p) {
    w.u64(p.a);
    w.u64(p.b);
  };
  d.decode = [](Reader& r, Payload& p) {
    p.a = r.u64();
    p.b = r.u64();
    return r.ok();
  };
  return d;
}

/// A grouped store over either a bare MemoryBackend (mode == nullopt) or
/// a ReplicatedBackend shipping to a live ReplicaServer one simulated
/// machine away.
struct Rig {
  explicit Rig(std::optional<storage::AckMode> mode)
      : primary_machine(net.add_machine("primary")),
        backup_machine(net.add_machine("backup")) {
    std::shared_ptr<storage::Backend> backend =
        std::make_shared<storage::MemoryBackend>(16);
    if (mode.has_value()) {
      replica = std::make_unique<rpc::ReplicaServer>(
          backup_machine, Port(0x7B01), scheme(), 3,
          std::make_shared<storage::MemoryBackend>(16));
      replica->start(2);
      replicated = rpc::replicate_to(
          backend, *mode, primary_machine, 7,
          {{"backup", replica->volume_capability()}});
      backend = replicated;
    }
    store = std::make_unique<core::ObjectStore<Payload>>(
        scheme(), kPort, 17, 16, codec(backend));
    caps.reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
      caps.push_back(store->create({static_cast<std::uint64_t>(i), 0}));
    }
  }

  ~Rig() {
    store.reset();       // drains the committer (and its shipping hook)
    replicated.reset();  // joins the shipper threads
    if (replica != nullptr) {
      replica->stop();
    }
  }

  /// Drains the shipping backlog (setup's creates each flushed a cycle of
  /// their own) so a timed region measures steady-state mutate cost, not
  /// the backup catching up on setup.
  void sync() {
    if (replicated == nullptr) {
      return;
    }
    for (int i = 0; i < 20'000; ++i) {
      const auto stats = replicated->stats();
      bool synced = true;
      for (const auto& peer : stats.peers) {
        synced = synced && peer.queued == 0;
      }
      if (synced) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  net::Network net;
  net::Machine& primary_machine;
  net::Machine& backup_machine;
  std::unique_ptr<rpc::ReplicaServer> replica;
  std::shared_ptr<storage::ReplicatedBackend> replicated;
  std::unique_ptr<core::ObjectStore<Payload>> store;
  std::vector<core::Capability> caps;
};

/// E14's pipelined mutate loop: up to kWindow releases overlap each flush
/// cycle (and, here, each shipment).
void mutate_loop(benchmark::State& state, Rig& rig) {
  rig.sync();
  Rng rng(99);
  std::uint64_t ticket = 0;
  int outstanding = 0;
  for (auto _ : state) {
    auto opened = rig.store->open(rig.caps[rng.below(kObjects)],
                                  core::rights::kWrite);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    ++opened.value().value->b;
    opened.value().mark_dirty();
    ticket = opened.value().release_async();
    if (++outstanding >= kWindow) {
      rig.store->wait_durable(ticket);
      outstanding = 0;
    }
  }
  rig.store->wait_durable(ticket);
  state.SetItemsProcessed(state.iterations());
}

void BM_MutateUnreplicatedGrouped(benchmark::State& state) {
  Rig rig(std::nullopt);
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateUnreplicatedGrouped);

void BM_MutateReplicatedAsync(benchmark::State& state) {
  Rig rig(storage::AckMode::async);
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateReplicatedAsync);

void BM_MutateReplicatedAckOne(benchmark::State& state) {
  Rig rig(storage::AckMode::ack_one);
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateReplicatedAckOne);

[[nodiscard]] double timed_mutates(Rig& rig, int ops) {
  rig.sync();
  Rng rng(1);
  return amoeba::bench::timed_ms([&] {
    std::uint64_t ticket = 0;
    int outstanding = 0;
    for (int i = 0; i < ops; ++i) {
      auto opened = rig.store->open(rig.caps[rng.below(kObjects)],
                                    core::rights::kWrite);
      ++opened.value().value->b;
      opened.value().mark_dirty();
      ticket = opened.value().release_async();
      if (++outstanding >= kWindow) {
        rig.store->wait_durable(ticket);
        outstanding = 0;
      }
    }
    rig.store->wait_durable(ticket);
  });
}

/// Contrast report: the PR-8 acceptance numbers, printed, appended as one
/// JSON line to BENCH_replication.json, enforced (async bar only --
/// ack-one's cost is a round trip per cycle and load-dependent, so it is
/// reported, not gated).  Returns the process exit code.
[[nodiscard]] int report(bool smoke) {
  const int ops = smoke ? 40'000 : 400'000;

  const double unreplicated_ms = [&] {
    Rig rig(std::nullopt);
    return timed_mutates(rig, ops);
  }();
  double async_ms = 0;
  std::uint64_t async_shipped = 0;
  {
    Rig rig(storage::AckMode::async);
    async_ms = timed_mutates(rig, ops);
    async_shipped = rig.replicated->stats().shipped_lsn;
  }
  double ack_one_ms = 0;
  std::uint64_t ack_one_shipped = 0;
  {
    Rig rig(storage::AckMode::ack_one);
    ack_one_ms = timed_mutates(rig, ops);
    ack_one_shipped = rig.replicated->stats().shipped_lsn;
  }

  const double async_ratio = async_ms / unreplicated_ms;
  const double ack_one_ratio = ack_one_ms / unreplicated_ms;
  std::printf(
      "\nE15 replication contrast (pure mutate, grouped, %d ops)\n"
      "  unreplicated grouped          : %9.1f ms  (%6.2f us/op)\n"
      "  replicated, async             : %9.1f ms  (%6.2f us/op, %llu "
      "shipments)\n"
      "  replicated, ack-one           : %9.1f ms  (%6.2f us/op, %llu "
      "shipments)\n"
      "  async / unreplicated          : %9.2fx  (acceptance bar: <= "
      "1.3x)%s\n"
      "  ack-one / unreplicated        : %9.2fx  (reported, not gated)\n",
      ops, unreplicated_ms, unreplicated_ms * 1e3 / ops, async_ms,
      async_ms * 1e3 / ops, static_cast<unsigned long long>(async_shipped),
      ack_one_ms, ack_one_ms * 1e3 / ops,
      static_cast<unsigned long long>(ack_one_shipped), async_ratio,
      async_ratio <= 1.3 ? "  PASS" : "  FAIL", ack_one_ratio);

  if (std::FILE* json = std::fopen("BENCH_replication.json", "a")) {
    std::fprintf(
        json,
        "{\"bench\": \"e15\", \"mode\": \"%s\", \"ops\": %d, "
        "\"window\": %d, \"unreplicated_ms\": %.3f, \"async_ms\": %.3f, "
        "\"ack_one_ms\": %.3f, \"async_vs_unreplicated\": %.3f, "
        "\"ack_one_vs_unreplicated\": %.3f, \"async_shipments\": %llu, "
        "\"ack_one_shipments\": %llu}\n",
        smoke ? "smoke" : "full", ops, kWindow, unreplicated_ms, async_ms,
        ack_one_ms, async_ratio, ack_one_ratio,
        static_cast<unsigned long long>(async_shipped),
        static_cast<unsigned long long>(ack_one_shipped));
    std::fclose(json);
  }

  if (async_ratio > 1.3) {
    if (std::thread::hardware_concurrency() < 2) {
      std::printf(
          "  (gate waived: 1-core host -- the co-located backup's apply "
          "work time-shares with the measured mutator)\n");
      return 0;
    }
    std::fprintf(stderr,
                 "E15 FAIL: async replication (%.1f ms) exceeded 1.3x of "
                 "unreplicated grouped (%.1f ms)\n",
                 async_ms, unreplicated_ms);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::string_view(argv[i]) == "--smoke";
  }
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return report(smoke);
}
