// FIG2: the capability layout (Fig. 2) and the cost of the four
// rights-protection algorithms over the exact 128-bit format.
//
// Reports pack/unpack cost for the 48/24/8/48 layout and mint/validate
// cost per scheme.  The paper gives no absolute numbers (1986 hardware);
// what must hold is the *ordering*: scheme 0 (compare) < scheme 2 (one
// one-way application) < scheme 1 (one block decryption) or similar
// single-primitive cost, and scheme 3 costs one modular exponentiation per
// deleted right.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include "amoeba/common/rng.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/core/schemes.hpp"

namespace {

using namespace amoeba;
using core::Capability;
using core::SchemeKind;

void BM_PackUnpack(benchmark::State& state) {
  Rng rng(1);
  const Capability cap{Port(rng.bits(48)),
                       ObjectNumber(static_cast<std::uint32_t>(rng.bits(24))),
                       Rights(static_cast<std::uint8_t>(rng.bits(8))),
                       CheckField(rng.bits(48))};
  for (auto _ : state) {
    auto bytes = core::pack(cap);
    benchmark::DoNotOptimize(bytes);
    auto back = core::unpack(bytes);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_PackUnpack);

void BM_Mint(benchmark::State& state) {
  const auto kind = static_cast<SchemeKind>(state.range(0));
  Rng rng(2);
  const auto scheme = core::make_scheme(kind, rng);
  const std::uint64_t secret = scheme->new_secret(rng);
  const Rights rights(0x2F);
  for (auto _ : state) {
    auto cap = scheme->mint(Port(0xAB), ObjectNumber(7), secret, rights);
    benchmark::DoNotOptimize(cap);
  }
  state.SetLabel(core::scheme_name(kind));
}
BENCHMARK(BM_Mint)->DenseRange(0, 3);

void BM_Validate(benchmark::State& state) {
  const auto kind = static_cast<SchemeKind>(state.range(0));
  Rng rng(3);
  const auto scheme = core::make_scheme(kind, rng);
  const std::uint64_t secret = scheme->new_secret(rng);
  const auto cap = scheme->mint(Port(0xAB), ObjectNumber(7), secret,
                                Rights(0x2F));
  for (auto _ : state) {
    auto granted = scheme->validate(cap, secret);
    benchmark::DoNotOptimize(granted);
  }
  state.SetLabel(core::scheme_name(kind));
}
BENCHMARK(BM_Validate)->DenseRange(0, 3);

void BM_ValidateWorstCaseCommutative(benchmark::State& state) {
  // Scheme 3 validation applies one power map per deleted right: sweep the
  // number of deleted rights 0..8.
  Rng rng(4);
  const auto scheme = core::make_scheme(SchemeKind::commutative, rng);
  const std::uint64_t secret = scheme->new_secret(rng);
  const int deleted = static_cast<int>(state.range(0));
  Rights rights = Rights::all();
  for (int i = 0; i < deleted; ++i) {
    rights = rights.without(i);
  }
  const auto cap = scheme->mint(Port(0xAB), ObjectNumber(7), secret, rights);
  for (auto _ : state) {
    auto granted = scheme->validate(cap, secret);
    benchmark::DoNotOptimize(granted);
  }
  state.SetLabel(std::to_string(deleted) + " rights deleted");
}
BENCHMARK(BM_ValidateWorstCaseCommutative)->DenseRange(0, 8);

void BM_ValidateRejectForged(benchmark::State& state) {
  // Rejecting a forgery must cost the same as accepting (no fast-path
  // oracle for the intruder).
  const auto kind = static_cast<SchemeKind>(state.range(0));
  Rng rng(5);
  const auto scheme = core::make_scheme(kind, rng);
  const std::uint64_t secret = scheme->new_secret(rng);
  auto cap = scheme->mint(Port(0xAB), ObjectNumber(7), secret, Rights(0x2F));
  cap.check = CheckField(cap.check.value() ^ 1);
  for (auto _ : state) {
    auto granted = scheme->validate(cap, secret);
    benchmark::DoNotOptimize(granted);
  }
  state.SetLabel(core::scheme_name(kind));
}
BENCHMARK(BM_ValidateRejectForged)->DenseRange(0, 3);

}  // namespace

int main(int argc, char** argv) {
  std::printf("FIG2: capability layout 48+24+8+48 = 128 bits (16 bytes); "
              "all four schemes operate on this exact format.\n");
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
