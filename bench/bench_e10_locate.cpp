// E10: LOCATE and the port cache (§2.2).
//
// "The associative addressing can be simulated in software ... by having
// each [kernel] maintain a cache of (port, machine-number) pairs.  If a
// port is not in the cache, it can be found by broadcasting a LOCATE
// message."
//
// Measured: transaction latency with a cold cache (LOCATE broadcast on
// the critical path), a warm cache, and immediately after the service
// migrates to another machine (stale entry -> rejected transmit ->
// invalidate -> re-LOCATE).  Also: raw LOCATE cost as the machine count
// grows.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"

namespace {

using namespace amoeba;

struct Rig {
  Rig()
      : a(net.add_machine("host-a")),
        b(net.add_machine("host-b")),
        client_machine(net.add_machine("client")),
        rng(1) {
    servers::BlockServer::Geometry geometry;
    geometry.block_count = 16;
    geometry.block_size = 64;
    service = std::make_unique<servers::BlockServer>(
        a, Port(0x6E7), core::make_scheme(core::SchemeKind::simple, rng), 1,
        geometry);
    service->start();
  }

  net::Network net;
  net::Machine& a;
  net::Machine& b;
  net::Machine& client_machine;
  Rng rng;
  std::unique_ptr<servers::BlockServer> service;
};

void BM_TransColdCache(benchmark::State& state) {
  Rig rig;
  rpc::Transport transport(rig.client_machine, 2);
  servers::BlockClient client(transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  for (auto _ : state) {
    state.PauseTiming();
    transport.flush_cache();  // force the LOCATE onto the critical path
    state.ResumeTiming();
    auto data = client.read(cap);
    benchmark::DoNotOptimize(data);
  }
  state.SetLabel("LOCATE broadcast per call");
}
BENCHMARK(BM_TransColdCache)->Unit(benchmark::kMicrosecond);

void BM_TransWarmCache(benchmark::State& state) {
  Rig rig;
  rpc::Transport transport(rig.client_machine, 2);
  servers::BlockClient client(transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  (void)client.read(cap);  // warm
  for (auto _ : state) {
    auto data = client.read(cap);
    benchmark::DoNotOptimize(data);
  }
  state.SetLabel("cached (port, machine)");
}
BENCHMARK(BM_TransWarmCache)->Unit(benchmark::kMicrosecond);

void BM_TransAfterMigration(benchmark::State& state) {
  // Every iteration: service hops to the other machine; the client's
  // cached entry is stale and must be invalidated and re-located.
  Rig rig;
  rpc::Transport transport(rig.client_machine, 2);
  servers::BlockClient client(transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  (void)client.read(cap);
  bool on_a = true;
  for (auto _ : state) {
    state.PauseTiming();
    rig.service->stop();
    rig.service->rebind(on_a ? rig.b : rig.a);
    rig.service->start();
    on_a = !on_a;
    state.ResumeTiming();
    auto data = client.read(cap);  // stale cache -> invalidate -> locate
    benchmark::DoNotOptimize(data);
  }
  state.SetLabel("stale entry + re-LOCATE per call");
}
BENCHMARK(BM_TransAfterMigration)->Unit(benchmark::kMicrosecond);

void BM_RawLocate(benchmark::State& state) {
  // LOCATE latency as the network grows (the responder scan).
  const int extra_machines = static_cast<int>(state.range(0));
  Rig rig;
  for (int i = 0; i < extra_machines; ++i) {
    rig.net.add_machine("bystander-" + std::to_string(i));
  }
  for (auto _ : state) {
    auto found = rig.client_machine.locate(rig.service->put_port());
    benchmark::DoNotOptimize(found);
  }
  state.SetLabel(std::to_string(3 + extra_machines) + " machines");
}
BENCHMARK(BM_RawLocate)->Arg(0)->Arg(13)->Arg(61)->Arg(253);

void cache_report() {
  Rig rig;
  rpc::Transport transport(rig.client_machine, 2);
  servers::BlockClient client(transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  for (int i = 0; i < 99; ++i) {
    (void)client.read(cap);
  }
  const auto stats = transport.stats();
  std::printf("---- port cache effectiveness (100 transactions) ----\n");
  std::printf("  LOCATE broadcasts: %llu   cache hits: %llu (%.0f%%)\n",
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.cache_hits),
              100.0 * static_cast<double>(stats.cache_hits) /
                  static_cast<double>(stats.cache_hits + stats.cache_misses));
  std::printf("------------------------------------------------------\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E10: location transparency -- LOCATE broadcast on miss, "
              "cached (port, machine) pairs otherwise, recovery after "
              "migration.\n");
  cache_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
