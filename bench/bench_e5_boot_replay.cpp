// E5: the §2.4 public-key boot protocol and its replay defense.
//
// Measured: full handshake latency (RSA wrap/unwrap + two conventional
// seals + one RPC), the RSA primitives it is built from, the boot-replay
// storm (a rebooted workstation re-establishing keys with ALL its
// servers: blocking one-by-one vs pipelined KeyExchange futures), and --
// as a report -- the replay outcomes: pre-reboot ciphertext is useless
// after re-keying, and frames replayed from a different (unforgeable)
// source address select the wrong matrix key.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/crypto/rsa.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/softprot/filter.hpp"
#include "amoeba/softprot/handshake.hpp"

namespace {

using namespace amoeba;

void BM_RsaKeygen(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    auto kp = crypto::rsa_generate(rng);
    benchmark::DoNotOptimize(kp);
  }
}
BENCHMARK(BM_RsaKeygen)->Unit(benchmark::kMicrosecond);

void BM_RsaWrapUnwrap8Bytes(benchmark::State& state) {
  Rng rng(2);
  const auto kp = crypto::rsa_generate(rng);
  Buffer key(8);
  rng.fill(key);
  for (auto _ : state) {
    const auto sealed = crypto::rsa_wrap(kp.pub.n, kp.pub.e, key);
    auto opened = crypto::rsa_unwrap(kp.priv.n, kp.priv.d, sealed);
    benchmark::DoNotOptimize(opened);
  }
}
BENCHMARK(BM_RsaWrapUnwrap8Bytes);

void BM_FullHandshake(benchmark::State& state) {
  net::Network net(net::Network::Config{.fbox_enabled = false});
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  auto server_keys = std::make_shared<softprot::KeyStore>();
  softprot::BootService boot(sm, Port(0xB007), server_keys, 3);
  boot.start();
  softprot::KeyStore client_keys;
  Rng rng(4);
  for (auto _ : state) {
    auto result = softprot::establish_keys(cm, boot.put_port(),
                                           boot.public_key(), client_keys,
                                           rng);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel("RSA exchange + key install, one RPC");
}
BENCHMARK(BM_FullHandshake)->Unit(benchmark::kMicrosecond);

/// The rebooted-workstation shape: one client must re-handshake with S
/// servers.  Blocking pays S full round trips in sequence; the pipelined
/// KeyExchange issues all S proposals through one transport before
/// collecting any reply, so the RSA work of the S boot services overlaps.
void BM_BootReplayStorm(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  const bool pipelined = state.range(1) != 0;
  net::Network net(net::Network::Config{.fbox_enabled = false});
  std::vector<std::unique_ptr<softprot::BootService>> boots;
  for (int s = 0; s < servers; ++s) {
    auto& machine = net.add_machine("server-" + std::to_string(s));
    boots.push_back(std::make_unique<softprot::BootService>(
        machine, Port(0xB000 + static_cast<std::uint64_t>(s)),
        std::make_shared<softprot::KeyStore>(),
        static_cast<std::uint64_t>(s) + 3));
    boots.back()->start();
  }
  net::Machine& cm = net.add_machine("client");
  rpc::Transport transport(cm, 99);
  softprot::KeyStore client_keys;
  Rng rng(4);
  for (auto _ : state) {
    if (pipelined) {
      std::vector<softprot::KeyExchange> storm;
      storm.reserve(boots.size());
      for (const auto& boot : boots) {
        storm.emplace_back(transport, boot->put_port(), boot->public_key(),
                           rng);
      }
      for (auto& exchange : storm) {
        if (!exchange.complete(client_keys).ok()) {
          state.SkipWithError("pipelined handshake failed");
          return;
        }
      }
    } else {
      for (const auto& boot : boots) {
        if (!softprot::establish_keys(transport, boot->put_port(),
                                     boot->public_key(), client_keys, rng)
                 .ok()) {
          state.SkipWithError("blocking handshake failed");
          return;
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * servers);
  state.SetLabel(std::string(pipelined ? "pipelined" : "blocking") + ", " +
                 std::to_string(servers) + " servers");
}
BENCHMARK(BM_BootReplayStorm)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Prints the storm contrast (the ROADMAP's PR-2 follow-up figure): same
/// number of round trips, but the pipelined client overlaps them all.
void boot_storm_report() {
  constexpr int kServers = 16;
  std::printf("---- boot-replay storm: re-keying with %d servers ----\n",
              kServers);
  net::Network net(net::Network::Config{.fbox_enabled = false});
  std::vector<std::unique_ptr<softprot::BootService>> boots;
  for (int s = 0; s < kServers; ++s) {
    auto& machine = net.add_machine("server-" + std::to_string(s));
    boots.push_back(std::make_unique<softprot::BootService>(
        machine, Port(0xB000 + static_cast<std::uint64_t>(s)),
        std::make_shared<softprot::KeyStore>(),
        static_cast<std::uint64_t>(s) + 7));
    boots.back()->start();
  }
  net::Machine& cm = net.add_machine("client");
  rpc::Transport transport(cm, 123);
  softprot::KeyStore keys;
  Rng rng(8);
  const auto before_blocking = transport.stats().transactions;
  const double blocking = bench::timed_ms([&] {
    for (const auto& boot : boots) {
      (void)softprot::establish_keys(transport, boot->put_port(),
                                     boot->public_key(), keys, rng);
    }
  });
  const auto blocking_rts = transport.stats().transactions - before_blocking;
  const auto before_pipelined = transport.stats().transactions;
  const double pipelined = bench::timed_ms([&] {
    std::vector<softprot::KeyExchange> storm;
    storm.reserve(boots.size());
    for (const auto& boot : boots) {
      storm.emplace_back(transport, boot->put_port(), boot->public_key(),
                         rng);
    }
    for (auto& exchange : storm) {
      (void)exchange.complete(keys);
    }
  });
  const auto pipelined_rts = transport.stats().transactions - before_pipelined;
  std::printf("  blocking:  %7.2f ms (%llu round trips, sequential)\n",
              blocking, static_cast<unsigned long long>(blocking_rts));
  std::printf("  pipelined: %7.2f ms (%llu round trips, all in flight; "
              "%.1fx faster)\n",
              pipelined, static_cast<unsigned long long>(pipelined_rts),
              blocking / pipelined);
  std::printf("------------------------------------------------------\n");
}

void replay_report() {
  std::printf("---- replay outcomes ----\n");
  net::Network net(net::Network::Config{.fbox_enabled = false});
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  net::Machine& im = net.add_machine("intruder");
  auto server_keys = std::make_shared<softprot::KeyStore>();
  auto client_keys = std::make_shared<softprot::KeyStore>();
  softprot::BootService boot(sm, Port(0xB007), server_keys, 5);
  boot.start();
  Rng rng(6);
  (void)softprot::establish_keys(cm, boot.put_port(), boot.public_key(),
                                 *client_keys, rng);

  softprot::SealingFilter client(client_keys, 1);
  softprot::SealingFilter server(server_keys, 2);
  net::Message msg;
  msg.header.capability = {1, 2, 3, 4, 5, 6, 7, 8,
                           9, 10, 11, 12, 13, 14, 15, 16};
  const auto plain = msg.header.capability;
  client.outgoing(msg, sm.id());
  const net::Message captured = msg;  // the wiretap copy

  net::Message from_intruder = captured;
  const bool intruder_readable =
      server.incoming(from_intruder, im.id()) &&
      from_intruder.header.capability == plain;
  std::printf("  replay from intruder's source address : %s\n",
              intruder_readable ? "ACCEPTED?!" : "rejected (wrong matrix key)");

  boot.reboot();
  (void)softprot::establish_keys(cm, boot.put_port(), boot.public_key(),
                                 *client_keys, rng);
  net::Message stale = captured;
  const bool stale_readable = server.incoming(stale, cm.id()) &&
                              stale.header.capability == plain;
  std::printf("  pre-reboot ciphertext after re-key    : %s\n",
              stale_readable ? "ACCEPTED?!" : "garbage (fresh keys)");
  std::printf("-------------------------\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E5: boot handshake cost and replay defense (§2.4).\n");
  replay_report();
  boot_storm_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
