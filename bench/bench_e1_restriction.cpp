// E1: sub-capability fabrication -- server round-trip vs local.
//
// §2.3: under schemes 1/2, passing read-only access "requires going back
// to the server every time a sub-capability with fewer rights is needed";
// scheme 3 (commutative one-way functions) "does not have this drawback."
//
// Measured: the cost of producing a restricted capability (a) via the
// shared restrict RPC against a live server (schemes 0-2 path), and
// (b) locally with the commutative family (scheme 3), plus the pure
// cryptographic cost of a local restriction.  The expected shape: local
// restriction is orders of magnitude cheaper because it avoids the
// network round-trip entirely, even though a power map is slower than a
// table lookup.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"

namespace {

using namespace amoeba;

/// One live service + client, shared across benchmark iterations.
struct Rig {
  explicit Rig(core::SchemeKind kind)
      : server_machine(net.add_machine("server")),
        client_machine(net.add_machine("client")),
        rng(static_cast<std::uint64_t>(kind) + 1),
        scheme(core::make_scheme(kind, rng)) {
    servers::BlockServer::Geometry geometry;
    geometry.block_count = 16;
    geometry.block_size = 64;
    service = std::make_unique<servers::BlockServer>(
        server_machine, Port(0x6E7), scheme, 1, geometry);
    service->start();
    transport = std::make_unique<rpc::Transport>(client_machine, 2);
  }

  net::Network net;
  net::Machine& server_machine;
  net::Machine& client_machine;
  Rng rng;
  std::shared_ptr<const core::ProtectionScheme> scheme;
  std::unique_ptr<servers::BlockServer> service;
  std::unique_ptr<rpc::Transport> transport;
};

void BM_RestrictViaServerRpc(benchmark::State& state) {
  // The schemes 0-2 path: every sub-capability costs one transaction.
  const auto kind = static_cast<core::SchemeKind>(state.range(0));
  Rig rig(kind);
  servers::BlockClient client(*rig.transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  for (auto _ : state) {
    auto restricted = servers::restrict_capability(*rig.transport, cap,
                                                   core::rights::kRead);
    benchmark::DoNotOptimize(restricted);
  }
  state.SetLabel(std::string(core::scheme_name(kind)) + " via RPC");
}
BENCHMARK(BM_RestrictViaServerRpc)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMicrosecond);

void BM_RestrictLocalCommutative(benchmark::State& state) {
  // Scheme 3: any holder deletes a right with one power map, no network.
  Rig rig(core::SchemeKind::commutative);
  servers::BlockClient client(*rig.transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  const auto& commutative =
      static_cast<const core::CommutativeScheme&>(*rig.scheme);
  for (auto _ : state) {
    auto restricted =
        commutative.restrict_local(cap, core::rights::kWriteBit);
    benchmark::DoNotOptimize(restricted);
  }
  state.SetLabel("commutative local (no RPC)");
}
BENCHMARK(BM_RestrictLocalCommutative)->Unit(benchmark::kMicrosecond);

void BM_DelegationChain(benchmark::State& state) {
  // A capability is passed down a delegation chain of `depth` principals,
  // each stripping one right.  Server path: depth transactions; local
  // path: depth power maps.
  const bool local = state.range(1) != 0;
  const int depth = static_cast<int>(state.range(0));
  Rig rig(core::SchemeKind::commutative);
  servers::BlockClient client(*rig.transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  const auto& commutative =
      static_cast<const core::CommutativeScheme&>(*rig.scheme);
  for (auto _ : state) {
    core::Capability current = cap;
    for (int level = 0; level < depth; ++level) {
      if (local) {
        current = commutative.restrict_local(current, level).value();
      } else {
        current = servers::restrict_capability(
                      *rig.transport, current,
                      current.rights.without(level))
                      .value();
      }
    }
    benchmark::DoNotOptimize(current);
  }
  state.SetLabel(std::string(local ? "local" : "via RPC") + ", depth " +
                 std::to_string(depth));
}
BENCHMARK(BM_DelegationChain)
    ->Args({1, 0})->Args({2, 0})->Args({4, 0})->Args({7, 0})
    ->Args({1, 1})->Args({2, 1})->Args({4, 1})->Args({7, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_PowerMapOnly(benchmark::State& state) {
  // The raw crypto cost of F_k: one modular exponentiation mod n < 2^48.
  Rng rng(5);
  const crypto::CommutativeFamily family(rng);
  std::uint64_t x = family.random_element(rng);
  for (auto _ : state) {
    x = family.apply(3, x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PowerMapOnly);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E1: sub-capability fabrication -- the paper's claim is that "
              "scheme 3 avoids the server round-trip that schemes 1-2 "
              "need for every restriction.\n");
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
