// E14: durability cost and recovery time of the journaled object store.
//
// The acceptance bar: journaled open/mutate throughput must stay within
// 2x of the in-memory store on the sharded hot path -- journaling rides
// the per-shard locks, so the only added cost is serializing the payload
// and appending to the shard's journal.  Benchmarked:
//
//   * open() validation (read path: identical for both stores -- reads
//     never journal),
//   * mutate through the accessor hook (mark_dirty -> one journal append
//     per release), in-memory vs. MemoryBackend vs. FileBackend,
//   * pair mutation (the bank-transfer shape, one atomic append group),
//   * recovery time vs. journal length (and with compaction folding the
//     log into snapshots -- the log-length knee is the point of E14).
//
// A contrast report at the end prints the journaled/in-memory ratio and
// recovery times; `--smoke` (CI) runs one token repetition of everything.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string_view>
#include <vector>

#include "smoke.hpp"

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/storage/backend.hpp"

namespace {

using namespace amoeba;

constexpr Port kPort{0xD07A51E5EEDULL};
constexpr int kObjects = 4096;

[[nodiscard]] std::shared_ptr<const core::ProtectionScheme> scheme() {
  static const std::shared_ptr<const core::ProtectionScheme> shared = [] {
    Rng rng(17);
    return std::shared_ptr<const core::ProtectionScheme>(
        core::make_scheme(core::SchemeKind::encrypted, rng));
  }();
  return shared;
}

/// Payload: a small fixed struct, the typical object-table entry shape.
struct Payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

[[nodiscard]] core::Durability<Payload> codec(
    std::shared_ptr<storage::Backend> backend,
    std::size_t compact_after = 4096) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Payload> d;
  d.backend = std::move(backend);
  d.encode = [](Writer& w, const Payload& p) {
    w.u64(p.a);
    w.u64(p.b);
  };
  d.decode = [](Reader& r, Payload& p) {
    p.a = r.u64();
    p.b = r.u64();
    return r.ok();
  };
  d.compact_after = compact_after;
  return d;
}

struct Rig {
  explicit Rig(std::shared_ptr<storage::Backend> backend) {
    store = std::make_unique<core::ObjectStore<Payload>>(
        scheme(), kPort, 17, core::ObjectStore<Payload>::kDefaultShards,
        codec(std::move(backend)));
    caps.reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
      caps.push_back(store->create({static_cast<std::uint64_t>(i), 0}));
    }
  }
  std::unique_ptr<core::ObjectStore<Payload>> store;
  std::vector<core::Capability> caps;
};

void mutate_loop(benchmark::State& state, Rig& rig) {
  Rng rng(99);
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    auto opened = rig.store->open(cap, core::rights::kWrite);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    ++opened.value().value->b;
    opened.value().mark_dirty();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_OpenInMemory(benchmark::State& state) {
  Rig rig(nullptr);
  Rng rng(7);
  for (auto _ : state) {
    auto opened =
        rig.store->open(rig.caps[rng.below(kObjects)], core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenInMemory);

void BM_OpenJournaled(benchmark::State& state) {
  // Reads never journal: this must match BM_OpenInMemory.
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  Rng rng(7);
  for (auto _ : state) {
    auto opened =
        rig.store->open(rig.caps[rng.below(kObjects)], core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenJournaled);

void BM_MutateInMemory(benchmark::State& state) {
  Rig rig(nullptr);
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateInMemory);

void BM_MutateJournaledMemoryBackend(benchmark::State& state) {
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateJournaledMemoryBackend);

void BM_MutateJournaledFileBackend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "amoeba-e14-bm";
  std::filesystem::remove_all(dir);
  {
    Rig rig(std::make_shared<storage::FileBackend>(dir, 16));
    mutate_loop(state, rig);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_MutateJournaledFileBackend);

void BM_PairMutateJournaled(benchmark::State& state) {
  // The transfer shape: two objects, one atomic journal append group.
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  Rng rng(5);
  for (auto _ : state) {
    const auto& a = rig.caps[rng.below(kObjects)];
    const auto& b = rig.caps[rng.below(kObjects)];
    auto pair = rig.store->open2(a, core::rights::kWrite, b,
                                 core::rights::kWrite);
    if (!pair.ok()) {
      state.SkipWithError("open2 failed");
      break;
    }
    ++pair.value().a.value->b;
    --pair.value().b.value->b;
    pair.value().a.mark_dirty();
    pair.value().b.mark_dirty();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairMutateJournaled);

/// Recovery time as a function of journal length: Arg = mutations
/// journaled before the "crash".  The paired /Compacted variant folds the
/// log every 512 records, so recovery replays snapshots + a short tail.
void recovery_bench(benchmark::State& state, std::size_t compact_after) {
  const int mutations = static_cast<int>(state.range(0));
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  {
    core::ObjectStore<Payload> store(
        scheme(), kPort, 17, 16, codec(backend, compact_after));
    std::vector<core::Capability> caps;
    for (int i = 0; i < 256; ++i) {
      caps.push_back(store.create({static_cast<std::uint64_t>(i), 0}));
    }
    Rng rng(3);
    for (int i = 0; i < mutations; ++i) {
      auto opened = store.open(caps[rng.below(256)], core::rights::kWrite);
      ++opened.value().value->b;
      opened.value().mark_dirty();
    }
  }
  std::uint64_t recovered = 0;
  for (auto _ : state) {
    core::ObjectStore<Payload> store(
        scheme(), kPort, 18, 16, codec(backend, compact_after));
    recovered = store.live_count();
    benchmark::DoNotOptimize(recovered);
  }
  state.counters["objects"] = static_cast<double>(recovered);
  state.SetItemsProcessed(state.iterations() * mutations);
}

void BM_RecoveryVsLogLength(benchmark::State& state) {
  recovery_bench(state, /*compact_after=*/1 << 30);  // never auto-compact
}
BENCHMARK(BM_RecoveryVsLogLength)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RecoveryVsLogLengthCompacted(benchmark::State& state) {
  recovery_bench(state, /*compact_after=*/512);
}
BENCHMARK(BM_RecoveryVsLogLengthCompacted)->Arg(1024)->Arg(8192)->Arg(65536);

/// Contrast report: the acceptance ratio, printed for humans and CI logs.
/// The hot-path workload is the server request mix the paper's
/// performance argument is about -- every request validates its
/// capability (open), a fraction of them mutate state; 3:1 is a
/// write-heavy server (most real mixes are far more read-dominated).
/// The pure-mutate ratio is printed alongside for full transparency.
void report(bool smoke) {
  const int ops = smoke ? 40'000 : 400'000;
  const auto run = [&](std::shared_ptr<storage::Backend> backend,
                       int mutate_every) {
    Rig rig(std::move(backend));
    Rng rng(1);
    return amoeba::bench::timed_ms([&] {
      for (int i = 0; i < ops; ++i) {
        auto opened = rig.store->open(rig.caps[rng.below(kObjects)],
                                      core::rights::kWrite);
        if (i % mutate_every == 0) {
          ++opened.value().value->b;
          opened.value().mark_dirty();
        }
      }
    });
  };
  const auto journaled = [] {
    return std::make_shared<storage::MemoryBackend>(16);
  };
  const double mix_memory_ms = run(nullptr, 4);
  const double mix_journal_ms = run(journaled(), 4);
  const double mut_memory_ms = run(nullptr, 1);
  const double mut_journal_ms = run(journaled(), 1);
  std::printf(
      "\nE14 durability contrast (%d ops on the sharded hot path)\n"
      "  open+mutate mix (3:1 validate:mutate)\n"
      "    in-memory store     : %8.1f ms  (%.0f ops/s)\n"
      "    journaled store     : %8.1f ms  (%.0f ops/s)\n"
      "    journaled/in-memory : %8.2fx  (acceptance bar: <= 2x)\n"
      "  pure mutate (every op journals its payload)\n"
      "    in-memory store     : %8.1f ms\n"
      "    journaled store     : %8.1f ms\n"
      "    journaled/in-memory : %8.2fx\n",
      ops, mix_memory_ms, ops / mix_memory_ms * 1e3, mix_journal_ms,
      ops / mix_journal_ms * 1e3, mix_journal_ms / mix_memory_ms,
      mut_memory_ms, mut_journal_ms, mut_journal_ms / mut_memory_ms);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::string_view(argv[i]) == "--smoke";
  }
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  report(smoke);
  return 0;
}
