// E14: durability cost and recovery time of the journaled object store.
//
// The acceptance bar (PR 6): PURE-MUTATE throughput on the durable store
// -- real FileBackend, real fsync -- must stay within 1.5x of the
// in-memory store.  Group commit is what buys this: mutators encode under
// the shard lock, enqueue to the volume's flusher, and pipeline a bounded
// window of commit tickets (release_async + wait_durable) instead of
// paying one fsync per record.  One flusher cycle = one gather write + one
// fsync covering every record that piled up while the previous fsync was
// in flight.
//
// Benchmarked:
//   * open() validation (read path: identical for both stores -- reads
//     never journal),
//   * mutate through the accessor hook, in-memory vs. synchronous
//     journaling vs. group commit, on MemoryBackend and FileBackend,
//   * pair mutation (the bank-transfer shape, one atomic append group),
//   * recovery time vs. journal length (and with compaction folding the
//     log into snapshots -- the log-length knee is the point of E14).
//
// The contrast report at the end prints the durable/in-memory ratios,
// appends one JSON line to BENCH_durability.json (in the working
// directory), and ENFORCES the ordering invariant -- grouped FileBackend
// must beat per-record FileBackend per op -- exiting nonzero on failure
// so CI's bench-smoke catches a group-commit regression.
//
// Knobs:
//   --smoke               token repetitions + reduced contrast ops (CI)
//   --flush-interval=N    flusher linger CEILING in microseconds (0, the
//                         default, leaves the adaptive waiter-gated linger
//                         its built-in ceiling)
//   --backend=KIND        uring  force the io_uring contrast leg (prints a
//                                waiver note + skips its gate on fallback)
//                         file   skip the io_uring leg entirely
//                         (default: run it when the runtime probe passes)
#include <benchmark/benchmark.h>

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string_view>
#include <vector>

#include "smoke.hpp"

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/uring_backend.hpp"

namespace {

using namespace amoeba;

constexpr Port kPort{0xD07A51E5EEDULL};
constexpr int kObjects = 4096;
/// Pipelined durability window: outstanding release_async tickets before
/// the mutator blocks on the newest one (tickets are monotone, so one
/// wait covers the whole window).
constexpr int kWindow = 4096;

std::chrono::microseconds g_flush_interval{0};  // --flush-interval=N
enum class UringLeg : std::uint8_t { automatic, forced, off };
UringLeg g_uring_leg = UringLeg::automatic;  // --backend=uring|file

[[nodiscard]] std::shared_ptr<const core::ProtectionScheme> scheme() {
  static const std::shared_ptr<const core::ProtectionScheme> shared = [] {
    Rng rng(17);
    return std::shared_ptr<const core::ProtectionScheme>(
        core::make_scheme(core::SchemeKind::encrypted, rng));
  }();
  return shared;
}

/// Payload: a small fixed struct, the typical object-table entry shape.
struct Payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

[[nodiscard]] core::Durability<Payload> codec(
    std::shared_ptr<storage::Backend> backend, bool grouped,
    std::size_t compact_after = 16384) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Payload> d;
  d.backend = backend;
  if (grouped) {
    d.committer = storage::GroupCommitter::create(
        backend, {.flush_interval = g_flush_interval});
  }
  d.encode = [](Writer& w, const Payload& p) {
    w.u64(p.a);
    w.u64(p.b);
  };
  d.decode = [](Reader& r, Payload& p) {
    p.a = r.u64();
    p.b = r.u64();
    return r.ok();
  };
  d.compact_after = compact_after;
  return d;
}

struct Rig {
  explicit Rig(std::shared_ptr<storage::Backend> backend,
               bool grouped = false) {
    store = std::make_unique<core::ObjectStore<Payload>>(
        scheme(), kPort, 17, core::ObjectStore<Payload>::kDefaultShards,
        codec(std::move(backend), grouped));
    caps.reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
      caps.push_back(store->create({static_cast<std::uint64_t>(i), 0}));
    }
  }
  std::unique_ptr<core::ObjectStore<Payload>> store;
  std::vector<core::Capability> caps;
};

/// Synchronous mutate: every release blocks until its record is durable
/// (in-memory and sync-journaled stores return from release immediately;
/// grouped stores pay a whole flush cycle per record -- the anti-pattern
/// the pipelined loop below exists to avoid).
void mutate_loop(benchmark::State& state, Rig& rig) {
  Rng rng(99);
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    auto opened = rig.store->open(cap, core::rights::kWrite);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    ++opened.value().value->b;
    opened.value().mark_dirty();
  }
  state.SetItemsProcessed(state.iterations());
}

/// Pipelined mutate: release_async carries the commit ticket; the loop
/// blocks once per kWindow releases and once at the end, so up to kWindow
/// records overlap each flusher fsync.
void mutate_loop_pipelined(benchmark::State& state, Rig& rig) {
  Rng rng(99);
  std::uint64_t ticket = 0;
  int outstanding = 0;
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    auto opened = rig.store->open(cap, core::rights::kWrite);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    ++opened.value().value->b;
    opened.value().mark_dirty();
    ticket = opened.value().release_async();
    if (++outstanding >= kWindow) {
      rig.store->wait_durable(ticket);
      outstanding = 0;
    }
  }
  rig.store->wait_durable(ticket);
  state.SetItemsProcessed(state.iterations());
}

void BM_OpenInMemory(benchmark::State& state) {
  Rig rig(nullptr);
  Rng rng(7);
  for (auto _ : state) {
    auto opened =
        rig.store->open(rig.caps[rng.below(kObjects)], core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenInMemory);

void BM_OpenJournaled(benchmark::State& state) {
  // Reads never journal: this must match BM_OpenInMemory.
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  Rng rng(7);
  for (auto _ : state) {
    auto opened =
        rig.store->open(rig.caps[rng.below(kObjects)], core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenJournaled);

void BM_MutateInMemory(benchmark::State& state) {
  Rig rig(nullptr);
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateInMemory);

void BM_MutateJournaledMemoryBackend(benchmark::State& state) {
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateJournaledMemoryBackend);

void BM_MutateGroupedMemoryBackend(benchmark::State& state) {
  Rig rig(std::make_shared<storage::MemoryBackend>(16), /*grouped=*/true);
  mutate_loop_pipelined(state, rig);
}
BENCHMARK(BM_MutateGroupedMemoryBackend);

void BM_MutateJournaledFileBackend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "amoeba-e14-bm";
  std::filesystem::remove_all(dir);
  {
    Rig rig(std::make_shared<storage::FileBackend>(dir, 16));
    mutate_loop(state, rig);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_MutateJournaledFileBackend);

void BM_MutateGroupedFileBackend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "amoeba-e14-bmg";
  std::filesystem::remove_all(dir);
  {
    Rig rig(std::make_shared<storage::FileBackend>(dir, 16),
            /*grouped=*/true);
    mutate_loop_pipelined(state, rig);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_MutateGroupedFileBackend);

void BM_MutateGroupedUringBackend(benchmark::State& state) {
  if (!storage::UringFileBackend::available()) {
    state.SkipWithError("io_uring unavailable (probe or AMOEBA_NO_URING)");
    return;
  }
  const auto dir = std::filesystem::temp_directory_path() / "amoeba-e14-bmu";
  std::filesystem::remove_all(dir);
  {
    Rig rig(std::make_shared<storage::UringFileBackend>(dir, 16),
            /*grouped=*/true);
    mutate_loop_pipelined(state, rig);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_MutateGroupedUringBackend);

void BM_PairMutateJournaled(benchmark::State& state) {
  // The transfer shape: two objects, one atomic journal append group.
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  Rng rng(5);
  for (auto _ : state) {
    const auto& a = rig.caps[rng.below(kObjects)];
    const auto& b = rig.caps[rng.below(kObjects)];
    auto pair = rig.store->open2(a, core::rights::kWrite, b,
                                 core::rights::kWrite);
    if (!pair.ok()) {
      state.SkipWithError("open2 failed");
      break;
    }
    ++pair.value().a.value->b;
    --pair.value().b.value->b;
    pair.value().a.mark_dirty();
    pair.value().b.mark_dirty();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairMutateJournaled);

/// Recovery time as a function of journal length: Arg = mutations
/// journaled before the "crash".  The paired /Compacted variant folds the
/// log every 512 records, so recovery replays snapshots + a short tail.
void recovery_bench(benchmark::State& state, std::size_t compact_after) {
  const int mutations = static_cast<int>(state.range(0));
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  {
    core::ObjectStore<Payload> store(
        scheme(), kPort, 17, 16,
        codec(backend, /*grouped=*/false, compact_after));
    std::vector<core::Capability> caps;
    for (int i = 0; i < 256; ++i) {
      caps.push_back(store.create({static_cast<std::uint64_t>(i), 0}));
    }
    Rng rng(3);
    for (int i = 0; i < mutations; ++i) {
      auto opened = store.open(caps[rng.below(256)], core::rights::kWrite);
      ++opened.value().value->b;
      opened.value().mark_dirty();
    }
  }
  std::uint64_t recovered = 0;
  for (auto _ : state) {
    core::ObjectStore<Payload> store(
        scheme(), kPort, 18, 16,
        codec(backend, /*grouped=*/false, compact_after));
    recovered = store.live_count();
    benchmark::DoNotOptimize(recovered);
  }
  state.counters["objects"] = static_cast<double>(recovered);
  state.SetItemsProcessed(state.iterations() * mutations);
}

void BM_RecoveryVsLogLength(benchmark::State& state) {
  recovery_bench(state, /*compact_after=*/1 << 30);  // never auto-compact
}
BENCHMARK(BM_RecoveryVsLogLength)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RecoveryVsLogLengthCompacted(benchmark::State& state) {
  recovery_bench(state, /*compact_after=*/512);
}
BENCHMARK(BM_RecoveryVsLogLengthCompacted)->Arg(1024)->Arg(8192)->Arg(65536);

/// One pure-mutate timing: `ops` mutations through the pipelined release
/// path (in-memory and sync-journaled stores return ticket 0, so the same
/// loop shape serves every mode -- the comparison stays apples-to-apples).
[[nodiscard]] double timed_mutates(Rig& rig, int ops) {
  Rng rng(1);
  return amoeba::bench::timed_ms([&] {
    std::uint64_t ticket = 0;
    int outstanding = 0;
    for (int i = 0; i < ops; ++i) {
      auto opened = rig.store->open(rig.caps[rng.below(kObjects)],
                                    core::rights::kWrite);
      ++opened.value().value->b;
      opened.value().mark_dirty();
      ticket = opened.value().release_async();
      if (++outstanding >= kWindow) {
        rig.store->wait_durable(ticket);
        outstanding = 0;
      }
    }
    rig.store->wait_durable(ticket);
  });
}

/// Contrast report: the PR-6 acceptance numbers, printed for humans,
/// appended as one JSON line to BENCH_durability.json, and (ordering
/// invariant only) enforced.  Returns the process exit code.
///
/// The headline is PURE MUTATE -- every op journals, the worst case for
/// durability -- on the real FileBackend with real fsyncs.  Group commit
/// pays ~one fsync per flush cycle instead of one per record; the
/// pipelined window keeps kWindow records in flight against it.
[[nodiscard]] int report(bool smoke) {
  const int ops = smoke ? 40'000 : 400'000;
  // Per-record fsync is ~100 us/op: cap its op count and compare per-op.
  const int sync_file_ops = smoke ? 500 : 4'000;
  const auto tmp = std::filesystem::temp_directory_path();

  const double memory_ms = [&] {
    Rig rig(nullptr);
    return timed_mutates(rig, ops);
  }();
  const double sync_mem_ms = [&] {
    Rig rig(std::make_shared<storage::MemoryBackend>(16));
    return timed_mutates(rig, ops);
  }();
  const double grouped_mem_ms = [&] {
    Rig rig(std::make_shared<storage::MemoryBackend>(16), /*grouped=*/true);
    return timed_mutates(rig, ops);
  }();
  const double sync_file_ms = [&] {
    const auto dir = tmp / "amoeba-e14-sync";
    std::filesystem::remove_all(dir);
    double ms = 0;
    {
      Rig rig(std::make_shared<storage::FileBackend>(dir, 16));
      ms = timed_mutates(rig, sync_file_ops);
    }
    std::filesystem::remove_all(dir);
    return ms;
  }();
  double grouped_file_ms = 0;
  storage::GroupCommitter::Stats flusher_stats;
  {
    const auto dir = tmp / "amoeba-e14-grouped";
    std::filesystem::remove_all(dir);
    {
      Rig rig(std::make_shared<storage::FileBackend>(dir, 16),
              /*grouped=*/true);
      grouped_file_ms = timed_mutates(rig, ops);
      flusher_stats = rig.store->committer()->stats();
    }
    std::filesystem::remove_all(dir);
  }

  // The io_uring leg: same grouped pipeline, but the flusher SUBMITS the
  // commit-log frame instead of blocking in write+fsync.  The mutator
  // thread's own blocking-I/O counter delta is reported alongside
  // (nonzero only for compaction snapshots, which stay synchronous).
  const bool uring_requested = g_uring_leg != UringLeg::off;
  const bool uring_ok =
      uring_requested && storage::UringFileBackend::available();
  double uring_file_ms = 0;
  storage::GroupCommitter::Stats uring_stats;
  std::uint64_t mutator_blocked_syscalls = 0;
  if (uring_ok) {
    const auto dir = tmp / "amoeba-e14-uring";
    std::filesystem::remove_all(dir);
    {
      Rig rig(std::make_shared<storage::UringFileBackend>(dir, 16),
              /*grouped=*/true);
      const storage::IoCounters before = storage::this_thread_io_counters();
      uring_file_ms = timed_mutates(rig, ops);
      const storage::IoCounters after = storage::this_thread_io_counters();
      mutator_blocked_syscalls = (after.writes - before.writes) +
                                 (after.fsyncs - before.fsyncs);
      uring_stats = rig.store->committer()->stats();
    }
    std::filesystem::remove_all(dir);
  }

  const double per_op_sync_file_us = sync_file_ms * 1e3 / sync_file_ops;
  const double per_op_grouped_file_us = grouped_file_ms * 1e3 / ops;
  const double per_op_uring_us = uring_ok ? uring_file_ms * 1e3 / ops : 0;
  const double headline = grouped_file_ms / memory_ms;
  std::printf(
      "\nE14 durability contrast (pure mutate: every op journals)\n"
      "  in-memory store               : %9.1f ms  (%6.2f us/op)\n"
      "  sync journal, MemoryBackend   : %9.1f ms  (%6.2f us/op)\n"
      "  grouped,      MemoryBackend   : %9.1f ms  (%6.2f us/op)\n"
      "  sync journal, FileBackend     : %9.1f ms  (%6.2f us/op, fsync "
      "per record, %d ops)\n"
      "  grouped,      FileBackend     : %9.1f ms  (%6.2f us/op, window "
      "%d)\n"
      "  flusher: %llu groups, %llu records, max group %llu\n"
      "  grouped-file / in-memory      : %9.2fx  (acceptance bar: <= "
      "1.5x)%s\n"
      "  grouped-file / sync-file      : %9.3fx per op (must be < 1)\n",
      memory_ms, memory_ms * 1e3 / ops, sync_mem_ms, sync_mem_ms * 1e3 / ops,
      grouped_mem_ms, grouped_mem_ms * 1e3 / ops, sync_file_ms,
      per_op_sync_file_us, sync_file_ops, grouped_file_ms,
      per_op_grouped_file_us, kWindow,
      static_cast<unsigned long long>(flusher_stats.groups),
      static_cast<unsigned long long>(flusher_stats.records),
      static_cast<unsigned long long>(flusher_stats.max_group),
      headline, headline <= 1.5 ? "  PASS" : "  FAIL",
      per_op_grouped_file_us / per_op_sync_file_us);
  if (uring_ok) {
    std::printf(
        "  grouped,      UringBackend    : %9.1f ms  (%6.2f us/op)\n"
        "  uring flusher: %llu groups, %llu SQEs, %llu CQEs, "
        "%llu blocking flusher syscalls, %llu blocking mutator syscalls\n"
        "  uring-file / grouped-file     : %9.3fx per op\n",
        uring_file_ms, per_op_uring_us,
        static_cast<unsigned long long>(uring_stats.groups),
        static_cast<unsigned long long>(uring_stats.sqe_submitted),
        static_cast<unsigned long long>(uring_stats.cqe_completed),
        static_cast<unsigned long long>(uring_stats.flusher_io_syscalls),
        static_cast<unsigned long long>(mutator_blocked_syscalls),
        per_op_uring_us / per_op_grouped_file_us);
  } else {
    std::printf(
        "  grouped,      UringBackend    : %s -- gate waived\n",
        uring_requested ? "io_uring unavailable (probe or AMOEBA_NO_URING)"
                        : "skipped (--backend=file)");
  }

  if (std::FILE* json = std::fopen("BENCH_durability.json", "a")) {
    std::fprintf(
        json,
        "{\"bench\": \"e14\", \"mode\": \"%s\", \"ops\": %d, "
        "\"window\": %d, \"flush_interval_us\": %lld, "
        "\"in_memory_ms\": %.3f, \"sync_memory_ms\": %.3f, "
        "\"grouped_memory_ms\": %.3f, \"sync_file_us_per_op\": %.3f, "
        "\"grouped_file_ms\": %.3f, \"grouped_file_us_per_op\": %.3f, "
        "\"grouped_file_vs_in_memory\": %.3f, \"flush_groups\": %llu, "
        "\"max_group\": %llu",
        smoke ? "smoke" : "full", ops, kWindow,
        static_cast<long long>(g_flush_interval.count()), memory_ms,
        sync_mem_ms, grouped_mem_ms, per_op_sync_file_us, grouped_file_ms,
        per_op_grouped_file_us, headline,
        static_cast<unsigned long long>(flusher_stats.groups),
        static_cast<unsigned long long>(flusher_stats.max_group));
    if (uring_ok) {
      std::fprintf(
          json,
          ", \"uring_file_ms\": %.3f, \"uring_file_us_per_op\": %.3f, "
          "\"uring_vs_grouped_file\": %.3f, "
          "\"mutator_blocked_syscalls\": %llu, "
          "\"uring_flusher_io_syscalls\": %llu, \"uring_sqe\": %llu, "
          "\"uring_cqe\": %llu",
          uring_file_ms, per_op_uring_us,
          per_op_uring_us / per_op_grouped_file_us,
          static_cast<unsigned long long>(mutator_blocked_syscalls),
          static_cast<unsigned long long>(uring_stats.flusher_io_syscalls),
          static_cast<unsigned long long>(uring_stats.sqe_submitted),
          static_cast<unsigned long long>(uring_stats.cqe_completed));
    } else {
      std::fprintf(json, ", \"uring\": \"unavailable\"");
    }
    std::fprintf(json, "}\n");
    std::fclose(json);
  }

  // The enforced invariant: group commit must beat per-record fsync per
  // op.  (The 1.5x headline is reported above; it is load- and
  // disk-dependent, so CI enforces only the ordering, which a broken
  // flusher cannot fake.)
  if (per_op_grouped_file_us >= per_op_sync_file_us) {
    std::fprintf(stderr,
                 "E14 FAIL: grouped FileBackend (%.2f us/op) did not beat "
                 "per-record fsync (%.2f us/op)\n",
                 per_op_grouped_file_us, per_op_sync_file_us);
    return 1;
  }
  // The async gate: submitting the commit log must not be SLOWER than
  // blocking in it.  The grace absorbs single-core scheduler noise -- the
  // failure this guards against (a serialized ring, a reaper that blocks
  // the flusher) costs 40%+ -- and is wider in smoke mode, whose 40k-op
  // legs land within ~±20% run to run on a loaded 1-core CI box (the
  // 400k-op full run amortizes to ~±10%).  Waived (with the note printed
  // above) when the probe or AMOEBA_NO_URING forced the fallback.
  const double uring_grace = smoke ? 1.35 : 1.15;
  if (uring_ok && per_op_uring_us > per_op_grouped_file_us * uring_grace) {
    std::fprintf(stderr,
                 "E14 FAIL: uring backend (%.2f us/op) regressed past "
                 "grouped sync (%.2f us/op)\n",
                 per_op_uring_us, per_op_grouped_file_us);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;  // --flush-interval is ours, not benchmark's
  args.reserve(static_cast<std::size_t>(argc));
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    smoke |= arg == "--smoke";
    if (constexpr std::string_view prefix = "--flush-interval=";
        arg.starts_with(prefix)) {
      long long us = 0;
      const auto* begin = arg.data() + prefix.size();
      std::from_chars(begin, arg.data() + arg.size(), us);
      g_flush_interval = std::chrono::microseconds(us);
      continue;
    }
    if (constexpr std::string_view prefix = "--backend=";
        arg.starts_with(prefix)) {
      const std::string_view kind = arg.substr(prefix.size());
      g_uring_leg = kind == "uring" ? UringLeg::forced : UringLeg::off;
      continue;
    }
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  amoeba::bench::initialize(n, args.data());
  ::benchmark::RunSpecifiedBenchmarks();
  return report(smoke);
}
