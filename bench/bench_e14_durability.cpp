// E14: durability cost and recovery time of the journaled object store.
//
// The acceptance bar (PR 6): PURE-MUTATE throughput on the durable store
// -- real FileBackend, real fsync -- must stay within 1.5x of the
// in-memory store.  Group commit is what buys this: mutators encode under
// the shard lock, enqueue to the volume's flusher, and pipeline a bounded
// window of commit tickets (release_async + wait_durable) instead of
// paying one fsync per record.  One flusher cycle = one gather write + one
// fsync covering every record that piled up while the previous fsync was
// in flight.
//
// Benchmarked:
//   * open() validation (read path: identical for both stores -- reads
//     never journal),
//   * mutate through the accessor hook, in-memory vs. synchronous
//     journaling vs. group commit, on MemoryBackend and FileBackend,
//   * pair mutation (the bank-transfer shape, one atomic append group),
//   * recovery time vs. journal length (and with compaction folding the
//     log into snapshots -- the log-length knee is the point of E14).
//
// The contrast report at the end prints the durable/in-memory ratios,
// appends one JSON line to BENCH_durability.json (in the working
// directory), and ENFORCES the ordering invariant -- grouped FileBackend
// must beat per-record FileBackend per op -- exiting nonzero on failure
// so CI's bench-smoke catches a group-commit regression.
//
// Knobs:
//   --smoke               token repetitions + reduced contrast ops (CI)
//   --flush-interval=N    flusher linger in microseconds (default 0: the
//                         fsync-in-flight pile-up is the only batching)
#include <benchmark/benchmark.h>

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string_view>
#include <vector>

#include "smoke.hpp"

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"

namespace {

using namespace amoeba;

constexpr Port kPort{0xD07A51E5EEDULL};
constexpr int kObjects = 4096;
/// Pipelined durability window: outstanding release_async tickets before
/// the mutator blocks on the newest one (tickets are monotone, so one
/// wait covers the whole window).
constexpr int kWindow = 4096;

std::chrono::microseconds g_flush_interval{0};  // --flush-interval=N

[[nodiscard]] std::shared_ptr<const core::ProtectionScheme> scheme() {
  static const std::shared_ptr<const core::ProtectionScheme> shared = [] {
    Rng rng(17);
    return std::shared_ptr<const core::ProtectionScheme>(
        core::make_scheme(core::SchemeKind::encrypted, rng));
  }();
  return shared;
}

/// Payload: a small fixed struct, the typical object-table entry shape.
struct Payload {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

[[nodiscard]] core::Durability<Payload> codec(
    std::shared_ptr<storage::Backend> backend, bool grouped,
    std::size_t compact_after = 16384) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Payload> d;
  d.backend = backend;
  if (grouped) {
    d.committer = storage::GroupCommitter::create(
        backend, {.flush_interval = g_flush_interval});
  }
  d.encode = [](Writer& w, const Payload& p) {
    w.u64(p.a);
    w.u64(p.b);
  };
  d.decode = [](Reader& r, Payload& p) {
    p.a = r.u64();
    p.b = r.u64();
    return r.ok();
  };
  d.compact_after = compact_after;
  return d;
}

struct Rig {
  explicit Rig(std::shared_ptr<storage::Backend> backend,
               bool grouped = false) {
    store = std::make_unique<core::ObjectStore<Payload>>(
        scheme(), kPort, 17, core::ObjectStore<Payload>::kDefaultShards,
        codec(std::move(backend), grouped));
    caps.reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
      caps.push_back(store->create({static_cast<std::uint64_t>(i), 0}));
    }
  }
  std::unique_ptr<core::ObjectStore<Payload>> store;
  std::vector<core::Capability> caps;
};

/// Synchronous mutate: every release blocks until its record is durable
/// (in-memory and sync-journaled stores return from release immediately;
/// grouped stores pay a whole flush cycle per record -- the anti-pattern
/// the pipelined loop below exists to avoid).
void mutate_loop(benchmark::State& state, Rig& rig) {
  Rng rng(99);
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    auto opened = rig.store->open(cap, core::rights::kWrite);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    ++opened.value().value->b;
    opened.value().mark_dirty();
  }
  state.SetItemsProcessed(state.iterations());
}

/// Pipelined mutate: release_async carries the commit ticket; the loop
/// blocks once per kWindow releases and once at the end, so up to kWindow
/// records overlap each flusher fsync.
void mutate_loop_pipelined(benchmark::State& state, Rig& rig) {
  Rng rng(99);
  std::uint64_t ticket = 0;
  int outstanding = 0;
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    auto opened = rig.store->open(cap, core::rights::kWrite);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
    ++opened.value().value->b;
    opened.value().mark_dirty();
    ticket = opened.value().release_async();
    if (++outstanding >= kWindow) {
      rig.store->wait_durable(ticket);
      outstanding = 0;
    }
  }
  rig.store->wait_durable(ticket);
  state.SetItemsProcessed(state.iterations());
}

void BM_OpenInMemory(benchmark::State& state) {
  Rig rig(nullptr);
  Rng rng(7);
  for (auto _ : state) {
    auto opened =
        rig.store->open(rig.caps[rng.below(kObjects)], core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenInMemory);

void BM_OpenJournaled(benchmark::State& state) {
  // Reads never journal: this must match BM_OpenInMemory.
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  Rng rng(7);
  for (auto _ : state) {
    auto opened =
        rig.store->open(rig.caps[rng.below(kObjects)], core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OpenJournaled);

void BM_MutateInMemory(benchmark::State& state) {
  Rig rig(nullptr);
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateInMemory);

void BM_MutateJournaledMemoryBackend(benchmark::State& state) {
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  mutate_loop(state, rig);
}
BENCHMARK(BM_MutateJournaledMemoryBackend);

void BM_MutateGroupedMemoryBackend(benchmark::State& state) {
  Rig rig(std::make_shared<storage::MemoryBackend>(16), /*grouped=*/true);
  mutate_loop_pipelined(state, rig);
}
BENCHMARK(BM_MutateGroupedMemoryBackend);

void BM_MutateJournaledFileBackend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "amoeba-e14-bm";
  std::filesystem::remove_all(dir);
  {
    Rig rig(std::make_shared<storage::FileBackend>(dir, 16));
    mutate_loop(state, rig);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_MutateJournaledFileBackend);

void BM_MutateGroupedFileBackend(benchmark::State& state) {
  const auto dir = std::filesystem::temp_directory_path() / "amoeba-e14-bmg";
  std::filesystem::remove_all(dir);
  {
    Rig rig(std::make_shared<storage::FileBackend>(dir, 16),
            /*grouped=*/true);
    mutate_loop_pipelined(state, rig);
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_MutateGroupedFileBackend);

void BM_PairMutateJournaled(benchmark::State& state) {
  // The transfer shape: two objects, one atomic journal append group.
  Rig rig(std::make_shared<storage::MemoryBackend>(16));
  Rng rng(5);
  for (auto _ : state) {
    const auto& a = rig.caps[rng.below(kObjects)];
    const auto& b = rig.caps[rng.below(kObjects)];
    auto pair = rig.store->open2(a, core::rights::kWrite, b,
                                 core::rights::kWrite);
    if (!pair.ok()) {
      state.SkipWithError("open2 failed");
      break;
    }
    ++pair.value().a.value->b;
    --pair.value().b.value->b;
    pair.value().a.mark_dirty();
    pair.value().b.mark_dirty();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PairMutateJournaled);

/// Recovery time as a function of journal length: Arg = mutations
/// journaled before the "crash".  The paired /Compacted variant folds the
/// log every 512 records, so recovery replays snapshots + a short tail.
void recovery_bench(benchmark::State& state, std::size_t compact_after) {
  const int mutations = static_cast<int>(state.range(0));
  auto backend = std::make_shared<storage::MemoryBackend>(16);
  {
    core::ObjectStore<Payload> store(
        scheme(), kPort, 17, 16,
        codec(backend, /*grouped=*/false, compact_after));
    std::vector<core::Capability> caps;
    for (int i = 0; i < 256; ++i) {
      caps.push_back(store.create({static_cast<std::uint64_t>(i), 0}));
    }
    Rng rng(3);
    for (int i = 0; i < mutations; ++i) {
      auto opened = store.open(caps[rng.below(256)], core::rights::kWrite);
      ++opened.value().value->b;
      opened.value().mark_dirty();
    }
  }
  std::uint64_t recovered = 0;
  for (auto _ : state) {
    core::ObjectStore<Payload> store(
        scheme(), kPort, 18, 16,
        codec(backend, /*grouped=*/false, compact_after));
    recovered = store.live_count();
    benchmark::DoNotOptimize(recovered);
  }
  state.counters["objects"] = static_cast<double>(recovered);
  state.SetItemsProcessed(state.iterations() * mutations);
}

void BM_RecoveryVsLogLength(benchmark::State& state) {
  recovery_bench(state, /*compact_after=*/1 << 30);  // never auto-compact
}
BENCHMARK(BM_RecoveryVsLogLength)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_RecoveryVsLogLengthCompacted(benchmark::State& state) {
  recovery_bench(state, /*compact_after=*/512);
}
BENCHMARK(BM_RecoveryVsLogLengthCompacted)->Arg(1024)->Arg(8192)->Arg(65536);

/// One pure-mutate timing: `ops` mutations through the pipelined release
/// path (in-memory and sync-journaled stores return ticket 0, so the same
/// loop shape serves every mode -- the comparison stays apples-to-apples).
[[nodiscard]] double timed_mutates(Rig& rig, int ops) {
  Rng rng(1);
  return amoeba::bench::timed_ms([&] {
    std::uint64_t ticket = 0;
    int outstanding = 0;
    for (int i = 0; i < ops; ++i) {
      auto opened = rig.store->open(rig.caps[rng.below(kObjects)],
                                    core::rights::kWrite);
      ++opened.value().value->b;
      opened.value().mark_dirty();
      ticket = opened.value().release_async();
      if (++outstanding >= kWindow) {
        rig.store->wait_durable(ticket);
        outstanding = 0;
      }
    }
    rig.store->wait_durable(ticket);
  });
}

/// Contrast report: the PR-6 acceptance numbers, printed for humans,
/// appended as one JSON line to BENCH_durability.json, and (ordering
/// invariant only) enforced.  Returns the process exit code.
///
/// The headline is PURE MUTATE -- every op journals, the worst case for
/// durability -- on the real FileBackend with real fsyncs.  Group commit
/// pays ~one fsync per flush cycle instead of one per record; the
/// pipelined window keeps kWindow records in flight against it.
[[nodiscard]] int report(bool smoke) {
  const int ops = smoke ? 40'000 : 400'000;
  // Per-record fsync is ~100 us/op: cap its op count and compare per-op.
  const int sync_file_ops = smoke ? 500 : 4'000;
  const auto tmp = std::filesystem::temp_directory_path();

  const double memory_ms = [&] {
    Rig rig(nullptr);
    return timed_mutates(rig, ops);
  }();
  const double sync_mem_ms = [&] {
    Rig rig(std::make_shared<storage::MemoryBackend>(16));
    return timed_mutates(rig, ops);
  }();
  const double grouped_mem_ms = [&] {
    Rig rig(std::make_shared<storage::MemoryBackend>(16), /*grouped=*/true);
    return timed_mutates(rig, ops);
  }();
  const double sync_file_ms = [&] {
    const auto dir = tmp / "amoeba-e14-sync";
    std::filesystem::remove_all(dir);
    double ms = 0;
    {
      Rig rig(std::make_shared<storage::FileBackend>(dir, 16));
      ms = timed_mutates(rig, sync_file_ops);
    }
    std::filesystem::remove_all(dir);
    return ms;
  }();
  double grouped_file_ms = 0;
  storage::GroupCommitter::Stats flusher_stats;
  {
    const auto dir = tmp / "amoeba-e14-grouped";
    std::filesystem::remove_all(dir);
    {
      Rig rig(std::make_shared<storage::FileBackend>(dir, 16),
              /*grouped=*/true);
      grouped_file_ms = timed_mutates(rig, ops);
      flusher_stats = rig.store->committer()->stats();
    }
    std::filesystem::remove_all(dir);
  }

  const double per_op_sync_file_us = sync_file_ms * 1e3 / sync_file_ops;
  const double per_op_grouped_file_us = grouped_file_ms * 1e3 / ops;
  const double headline = grouped_file_ms / memory_ms;
  std::printf(
      "\nE14 durability contrast (pure mutate: every op journals)\n"
      "  in-memory store               : %9.1f ms  (%6.2f us/op)\n"
      "  sync journal, MemoryBackend   : %9.1f ms  (%6.2f us/op)\n"
      "  grouped,      MemoryBackend   : %9.1f ms  (%6.2f us/op)\n"
      "  sync journal, FileBackend     : %9.1f ms  (%6.2f us/op, fsync "
      "per record, %d ops)\n"
      "  grouped,      FileBackend     : %9.1f ms  (%6.2f us/op, window "
      "%d)\n"
      "  flusher: %llu groups, %llu records, max group %llu\n"
      "  grouped-file / in-memory      : %9.2fx  (acceptance bar: <= "
      "1.5x)%s\n"
      "  grouped-file / sync-file      : %9.3fx per op (must be < 1)\n",
      memory_ms, memory_ms * 1e3 / ops, sync_mem_ms, sync_mem_ms * 1e3 / ops,
      grouped_mem_ms, grouped_mem_ms * 1e3 / ops, sync_file_ms,
      per_op_sync_file_us, sync_file_ops, grouped_file_ms,
      per_op_grouped_file_us, kWindow,
      static_cast<unsigned long long>(flusher_stats.groups),
      static_cast<unsigned long long>(flusher_stats.records),
      static_cast<unsigned long long>(flusher_stats.max_group),
      headline, headline <= 1.5 ? "  PASS" : "  FAIL",
      per_op_grouped_file_us / per_op_sync_file_us);

  if (std::FILE* json = std::fopen("BENCH_durability.json", "a")) {
    std::fprintf(
        json,
        "{\"bench\": \"e14\", \"mode\": \"%s\", \"ops\": %d, "
        "\"window\": %d, \"flush_interval_us\": %lld, "
        "\"in_memory_ms\": %.3f, \"sync_memory_ms\": %.3f, "
        "\"grouped_memory_ms\": %.3f, \"sync_file_us_per_op\": %.3f, "
        "\"grouped_file_ms\": %.3f, \"grouped_file_us_per_op\": %.3f, "
        "\"grouped_file_vs_in_memory\": %.3f, \"flush_groups\": %llu, "
        "\"max_group\": %llu}\n",
        smoke ? "smoke" : "full", ops, kWindow,
        static_cast<long long>(g_flush_interval.count()), memory_ms,
        sync_mem_ms, grouped_mem_ms, per_op_sync_file_us, grouped_file_ms,
        per_op_grouped_file_us, headline,
        static_cast<unsigned long long>(flusher_stats.groups),
        static_cast<unsigned long long>(flusher_stats.max_group));
    std::fclose(json);
  }

  // The enforced invariant: group commit must beat per-record fsync per
  // op.  (The 1.5x headline is reported above; it is load- and
  // disk-dependent, so CI enforces only the ordering, which a broken
  // flusher cannot fake.)
  if (per_op_grouped_file_us >= per_op_sync_file_us) {
    std::fprintf(stderr,
                 "E14 FAIL: grouped FileBackend (%.2f us/op) did not beat "
                 "per-record fsync (%.2f us/op)\n",
                 per_op_grouped_file_us, per_op_sync_file_us);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;  // --flush-interval is ours, not benchmark's
  args.reserve(static_cast<std::size_t>(argc));
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    smoke |= arg == "--smoke";
    if (constexpr std::string_view prefix = "--flush-interval=";
        arg.starts_with(prefix)) {
      long long us = 0;
      const auto* begin = arg.data() + prefix.size();
      std::from_chars(begin, arg.data() + arg.size(), us);
      g_flush_interval = std::chrono::microseconds(us);
      continue;
    }
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  amoeba::bench::initialize(n, args.data());
  ::benchmark::RunSpecifiedBenchmarks();
  return report(smoke);
}
