// E4: the §2.4 hashed capability caches.
//
// "To avoid having to run the encryption/decryption algorithm frequently,
// all machines can maintain a hashed cache of capabilities."
//
// Measured: seal/unseal cost per message with the cache disabled vs
// enabled, under workloads of varying locality (working-set size of
// distinct capabilities, cycled).  The expected shape: with high reuse,
// cached sealing approaches hash-lookup cost; with a working set larger
// than the cache the benefit disappears.  A report prints the measured
// hit ratios.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <memory>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/softprot/filter.hpp"
#include "amoeba/softprot/seal.hpp"

namespace {

using namespace amoeba;

std::vector<net::CapabilityBytes> make_working_set(std::size_t n) {
  Rng rng(42);
  std::vector<net::CapabilityBytes> caps(n);
  for (auto& cap : caps) {
    rng.fill(cap);
    cap[0] |= 1;  // never all-zero
  }
  return caps;
}

void BM_SealRaw(benchmark::State& state) {
  // The encryption the cache avoids: one 128-bit two-pass seal.
  net::CapabilityBytes block{};
  block[0] = 1;
  for (auto _ : state) {
    softprot::seal128(0xFEED, block);
    benchmark::DoNotOptimize(block);
  }
}
BENCHMARK(BM_SealRaw);

void BM_FilterOutgoing(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const std::size_t working_set = static_cast<std::size_t>(state.range(1));
  auto keys = std::make_shared<softprot::KeyStore>();
  keys->set_tx(MachineId(2), 0xFEED);
  softprot::SealingFilter::Options options;
  options.cache_enabled = cached;
  softprot::SealingFilter filter(keys, 1, options);
  const auto caps = make_working_set(working_set);
  std::size_t i = 0;
  for (auto _ : state) {
    net::Message msg;
    msg.header.capability = caps[i++ % caps.size()];
    filter.outgoing(msg, MachineId(2));
    benchmark::DoNotOptimize(msg);
  }
  const auto stats = filter.stats();
  const double hits = static_cast<double>(stats.seal_cache_hits);
  const double total = hits + static_cast<double>(stats.seal_cache_misses);
  state.SetLabel(std::string(cached ? "cache on" : "cache off") +
                 ", working set " + std::to_string(working_set) +
                 (cached && total > 0
                      ? ", hit ratio " + std::to_string(hits / total)
                      : ""));
}
BENCHMARK(BM_FilterOutgoing)
    ->Args({0, 16})->Args({1, 16})      // hot set, fits easily
    ->Args({0, 1024})->Args({1, 1024})  // medium
    ->Args({1, 8192});                  // overflows the 4096-entry cache

void BM_FilterRoundTrip(benchmark::State& state) {
  // Client seal + server unseal of the same message, both cached.
  const bool cached = state.range(0) != 0;
  auto client_keys = std::make_shared<softprot::KeyStore>();
  auto server_keys = std::make_shared<softprot::KeyStore>();
  client_keys->set_tx(MachineId(2), 0xFEED);
  server_keys->set_rx(MachineId(1), 0xFEED);
  softprot::SealingFilter::Options options;
  options.cache_enabled = cached;
  softprot::SealingFilter client(client_keys, 1, options);
  softprot::SealingFilter server(server_keys, 2, options);
  const auto caps = make_working_set(8);
  std::size_t i = 0;
  for (auto _ : state) {
    net::Message msg;
    msg.header.capability = caps[i++ % caps.size()];
    client.outgoing(msg, MachineId(2));
    const bool ok = server.incoming(msg, MachineId(1));
    benchmark::DoNotOptimize(ok);
  }
  state.SetLabel(cached ? "cache on" : "cache off");
}
BENCHMARK(BM_FilterRoundTrip)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E4: hashed capability caches avoid re-running the cipher on "
              "hot capabilities (client and server triples, §2.4).\n");
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
