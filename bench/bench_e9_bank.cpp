// E9: the bank server as the accounting substrate (§3.6).
//
// Measured: transfer and balance throughput, conversion cost, and the
// overhead pricing adds to the file-creation path (charged vs free file
// server) -- the cost of "charging x dollars per kiloblock", plus the
// pre-payment pattern that amortizes it.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/flat_file_server.hpp"

namespace {

using namespace amoeba;
using servers::currency::kDollar;
using servers::currency::kYen;

struct Rig {
  explicit Rig(bool priced)
      : host(net.add_machine("host")),
        client_machine(net.add_machine("client")),
        rng(1),
        scheme(core::make_scheme(core::SchemeKind::one_way_xor, rng)) {
    bank = std::make_unique<servers::BankServer>(host, Port(0xBA7C), scheme,
                                                 1);
    bank->set_conversion_rate(kDollar, kYen, 150, 1);
    bank->start();
    servers::BlockServer::Geometry geometry;
    geometry.block_count = 4096;
    geometry.block_size = 1024;
    blocks = std::make_unique<servers::BlockServer>(host, Port(0xB10C),
                                                    scheme, 2, geometry);
    blocks->start();

    server_transport = std::make_unique<rpc::Transport>(host, 3);
    servers::BankClient server_bank(*server_transport, bank->put_port());
    fs_account = server_bank.create_account().value();

    files = std::make_unique<servers::FlatFileServer>(host, Port(0xF17E),
                                                      scheme, 4,
                                                      blocks->put_port());
    if (priced) {
      servers::FlatFileServer::Pricing pricing;
      pricing.bank_port = bank->put_port();
      pricing.server_account = fs_account;
      pricing.currency = kDollar;
      pricing.price_per_block = 1;
      files->set_pricing(pricing);
    }
    files->start();
    transport = std::make_unique<rpc::Transport>(client_machine, 5);
  }

  net::Network net;
  net::Machine& host;
  net::Machine& client_machine;
  Rng rng;
  std::shared_ptr<const core::ProtectionScheme> scheme;
  std::unique_ptr<servers::BankServer> bank;
  std::unique_ptr<servers::BlockServer> blocks;
  std::unique_ptr<rpc::Transport> server_transport;
  std::unique_ptr<servers::FlatFileServer> files;
  std::unique_ptr<rpc::Transport> transport;
  core::Capability fs_account;
};

void BM_Transfer(benchmark::State& state) {
  Rig rig(false);
  servers::BankClient bank(*rig.transport, rig.bank->put_port());
  const auto a = bank.create_account().value();
  const auto b = bank.create_account().value();
  (void)bank.mint(rig.bank->master_capability(), a, kDollar, 1'000'000'000);
  for (auto _ : state) {
    auto result = bank.transfer(a, b, kDollar, 1);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Transfer)->Unit(benchmark::kMicrosecond);

void BM_Balance(benchmark::State& state) {
  Rig rig(false);
  servers::BankClient bank(*rig.transport, rig.bank->put_port());
  const auto a = bank.create_account().value();
  for (auto _ : state) {
    auto balance = bank.balance(a, kDollar);
    benchmark::DoNotOptimize(balance);
  }
}
BENCHMARK(BM_Balance)->Unit(benchmark::kMicrosecond);

void BM_Convert(benchmark::State& state) {
  Rig rig(false);
  servers::BankClient bank(*rig.transport, rig.bank->put_port());
  const auto a = bank.create_account().value();
  (void)bank.mint(rig.bank->master_capability(), a, kDollar, 1'000'000'000);
  for (auto _ : state) {
    auto result = bank.convert(a, kDollar, kYen, 1);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_Convert)->Unit(benchmark::kMicrosecond);

void BM_ChargedVsFreeWrite(benchmark::State& state) {
  // One-kiloblock file growth: priced mode adds one bank transfer (file
  // server -> bank RPC) to the write path.
  const bool priced = state.range(0) != 0;
  Rig rig(priced);
  servers::BankClient bank(*rig.transport, rig.bank->put_port());
  servers::FlatFileClient files(*rig.transport, rig.files->put_port());
  const auto wallet = bank.create_account().value();
  (void)bank.mint(rig.bank->master_capability(), wallet, kDollar,
                  1'000'000'000);
  const Buffer kiloblock(1024, 'q');
  for (auto _ : state) {
    // Fresh file each iteration so every write allocates (and is charged).
    const auto file =
        priced ? files.create(&wallet).value() : files.create().value();
    auto result = files.write(file, 0, kiloblock);
    benchmark::DoNotOptimize(result);
    state.PauseTiming();
    (void)files.destroy(file);
    state.ResumeTiming();
  }
  state.SetLabel(priced ? "priced (charge per block)" : "free");
}
BENCHMARK(BM_ChargedVsFreeWrite)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

void prepay_report() {
  // "The client can pre-pay for a substantial amount of work, in order to
  // eliminate the overhead of going back to the bank on each request":
  // compare bank RPCs for per-block charging vs one up-front transfer.
  std::printf("---- pre-payment amortization ----\n");
  Rig rig(true);
  servers::BankClient bank(*rig.transport, rig.bank->put_port());
  servers::FlatFileClient files(*rig.transport, rig.files->put_port());
  const auto wallet = bank.create_account().value();
  (void)bank.mint(rig.bank->master_capability(), wallet, kDollar, 10'000);

  const auto before = rig.bank->requests_served();
  const auto file = files.create(&wallet).value();
  for (int i = 0; i < 32; ++i) {
    (void)files.write(file, static_cast<std::uint64_t>(i) * 1024,
                      Buffer(1024, 'p'));
  }
  const auto per_op_rpcs = rig.bank->requests_served() - before;
  std::printf("  32 x 1-KiB growth, per-block charging: %llu bank RPCs\n",
              static_cast<unsigned long long>(per_op_rpcs));
  std::printf("  same work, pre-paid once             : 1 bank RPC\n");
  std::printf("----------------------------------\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E9: bank server -- transfers, conversion, and what charging "
              "per kiloblock costs the file path.\n");
  prepay_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
