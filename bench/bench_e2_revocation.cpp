// E2: revocation cost vs. outstanding capabilities.
//
// §2.3: "although no central record is kept of who has which
// capabilities, it is easy to revoke existing capabilities.  All that the
// owner of an object need do is ask the server to change the random
// number stored in its internal table" -- O(1), independent of how many
// copies exist.
//
// The Eden-style baseline keeps kernel copies of every capability, so its
// revocation must find and invalidate all of them: O(outstanding).
// Measured: revocation latency for both designs as the number of
// outstanding capabilities grows 1 -> 10,000.  The expected shape: a flat
// line vs. a linearly growing one.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <memory>
#include <vector>

#include "amoeba/baseline/kernel_caps.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"

namespace {

using namespace amoeba;

void BM_AmoebaRevocation(benchmark::State& state) {
  // Sparse capabilities: outstanding copies live in *user* memory; the
  // server's revoke touches one table slot regardless of their number.
  const auto outstanding = state.range(0);
  Rng rng(1);
  core::ObjectStore<int> store(
      core::make_scheme(core::SchemeKind::one_way_xor, rng), Port(0xAB), 2);
  core::Capability owner = store.create(0);
  // Fabricate `outstanding` delegated copies (they cost the server
  // nothing to track -- that is the point).
  std::vector<core::Capability> copies;
  copies.reserve(static_cast<std::size_t>(outstanding));
  for (std::int64_t i = 0; i < outstanding; ++i) {
    copies.push_back(store.restrict(owner, Rights(0x0F)).value());
  }
  for (auto _ : state) {
    auto fresh = store.revoke(owner);
    owner = fresh.value();
    benchmark::DoNotOptimize(owner);
  }
  state.SetLabel(std::to_string(outstanding) + " outstanding copies");
}
BENCHMARK(BM_AmoebaRevocation)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Arg(10000);

void BM_KernelBaselineRevocation(benchmark::State& state) {
  // Eden-style: the manager scans its copy table.
  const auto outstanding = state.range(0);
  net::Network net;
  net::Machine& km = net.add_machine("kernel");
  net::Machine& cm = net.add_machine("client");
  baseline::CapabilityManager manager(km, Port(0xC4B));
  manager.start();
  rpc::Transport transport(cm, 1);
  baseline::KernelMediatedClient client(transport, manager.put_port());

  const core::Capability cap{Port(0x5E11), ObjectNumber(1), Rights::all(),
                             CheckField(0x1234)};
  for (auto _ : state) {
    state.PauseTiming();
    for (std::int64_t i = 0; i < outstanding; ++i) {
      (void)client.register_capability(cap);
    }
    state.ResumeTiming();
    auto removed = client.revoke_object(cap.server_port, cap.object);
    benchmark::DoNotOptimize(removed);
  }
  state.SetLabel(std::to_string(outstanding) + " registered copies");
}
// Re-registering the copies between iterations goes through real RPC, so
// the iteration count is pinned to keep the sweep fast; the linear shape
// is unmistakable by 1000 copies.
BENCHMARK(BM_KernelBaselineRevocation)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)
    ->Iterations(20)->Unit(benchmark::kMicrosecond);

void BM_RevokedCapabilityRejection(benchmark::State& state) {
  // After revocation, stale capabilities must be rejected at full
  // validation speed (no tombstone lists to search).
  Rng rng(2);
  core::ObjectStore<int> store(
      core::make_scheme(core::SchemeKind::one_way_xor, rng), Port(0xAB), 3);
  const core::Capability owner = store.create(0);
  const core::Capability stale = store.restrict(owner, Rights(0x0F)).value();
  (void)store.revoke(owner);
  for (auto _ : state) {
    auto result = store.open(stale, Rights::none());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RevokedCapabilityRejection);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E2: revocation -- Amoeba rotates one random number (flat "
              "line); the Eden-style kernel manager must scan its copy "
              "table (linear).\n");
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
