// E8: copy-on-write versions and atomic commit (§3.5).
//
// Measured: (a) the cost of writing one page into a draft as the file
// grows -- copy-on-write must stay O(tree depth), not O(file size);
// (b) fork (NEW VERSION) cost vs file size -- O(1), "pages are only
// copied when they are changed"; (c) commit/abort cost; (d) the conflict
// rate under concurrent committers (optimistic concurrency).
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/multiversion_server.hpp"
#include "amoeba/servers/page_tree.hpp"

namespace {

using namespace amoeba;

struct Rig {
  Rig()
      : host(net.add_machine("archive")),
        client_machine(net.add_machine("client")),
        rng(1) {
    server = std::make_unique<servers::MultiVersionServer>(
        host, Port(0x3171),
        core::make_scheme(core::SchemeKind::one_way_xor, rng), 1,
        /*page_size=*/1024);
    server->start();
    transport = std::make_unique<rpc::Transport>(client_machine, 2);
  }

  net::Network net;
  net::Machine& host;
  net::Machine& client_machine;
  Rng rng;
  std::unique_ptr<servers::MultiVersionServer> server;
  std::unique_ptr<rpc::Transport> transport;
};

/// Commits an initial version holding `pages` pages.
core::Capability make_file(servers::MultiVersionClient& client,
                           std::uint32_t pages) {
  const auto file = client.create_file().value();
  const auto draft = client.new_version(file).value();
  const Buffer payload(64, 'x');
  for (std::uint32_t p = 0; p < pages; ++p) {
    (void)client.write_page(draft, p, payload);
  }
  (void)client.commit(draft);
  return file;
}

void BM_DraftPageWrite(benchmark::State& state) {
  // COW write into a draft of an N-page file: flat in N.
  Rig rig;
  servers::MultiVersionClient client(*rig.transport, rig.server->put_port());
  const auto pages = static_cast<std::uint32_t>(state.range(0));
  const auto file = make_file(client, pages);
  const auto draft = client.new_version(file).value();
  const Buffer payload(64, 'y');
  std::uint32_t i = 0;
  for (auto _ : state) {
    auto result = client.write_page(draft, i++ % pages, payload);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(pages) + "-page file");
}
BENCHMARK(BM_DraftPageWrite)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_ForkVersion(benchmark::State& state) {
  // NEW VERSION must not copy pages: O(1) in file size.
  Rig rig;
  servers::MultiVersionClient client(*rig.transport, rig.server->put_port());
  const auto pages = static_cast<std::uint32_t>(state.range(0));
  const auto file = make_file(client, pages);
  for (auto _ : state) {
    const auto draft = client.new_version(file).value();
    state.PauseTiming();
    (void)client.abort(draft);
    state.ResumeTiming();
  }
  state.SetLabel(std::to_string(pages) + "-page file");
}
BENCHMARK(BM_ForkVersion)->Arg(4)->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

void BM_CommitOnePageChange(benchmark::State& state) {
  Rig rig;
  servers::MultiVersionClient client(*rig.transport, rig.server->put_port());
  const auto file = make_file(client, 256);
  const Buffer payload(64, 'z');
  for (auto _ : state) {
    const auto draft = client.new_version(file).value();
    (void)client.write_page(draft, 0, payload);
    auto version = client.commit(draft);
    benchmark::DoNotOptimize(version);
  }
  state.SetLabel("fork + 1 write + commit, 256-page file");
}
BENCHMARK(BM_CommitOnePageChange)->Unit(benchmark::kMicrosecond);

void conflict_report() {
  // Optimistic concurrency: N drafts fork the same base and all commit;
  // exactly one wins per round.
  std::printf("---- optimistic-concurrency conflict rates ----\n");
  std::printf("%12s %10s %10s\n", "committers", "wins", "conflicts");
  for (const int committers : {2, 4, 8}) {
    Rig rig;
    servers::MultiVersionClient client(*rig.transport,
                                       rig.server->put_port());
    const auto file = make_file(client, 4);
    int wins = 0;
    int conflicts = 0;
    constexpr int kRounds = 50;
    for (int round = 0; round < kRounds; ++round) {
      std::vector<core::Capability> drafts;
      for (int c = 0; c < committers; ++c) {
        drafts.push_back(client.new_version(file).value());
      }
      for (const auto& draft : drafts) {
        (void)client.write_page(draft, 0, Buffer{1});
        const auto result = client.commit(draft);
        if (result.ok()) {
          ++wins;
        } else {
          ++conflicts;
          (void)client.abort(draft);
        }
      }
    }
    std::printf("%12d %10d %10d   (expected wins: %d)\n", committers, wins,
                conflicts, kRounds);
  }
  std::printf("-----------------------------------------------\n");
}

void BM_PageStoreDirectWrite(benchmark::State& state) {
  // The substrate alone, no RPC: a COW write is kDepth node copies.
  servers::PageStore store(1024);
  std::uint32_t root = servers::PageStore::kEmptyRoot;
  const auto pages = static_cast<std::uint32_t>(state.range(0));
  const Buffer payload(64, 'p');
  for (std::uint32_t p = 0; p < pages; ++p) {
    const auto next = store.write(root, p, payload);
    store.release(root);
    root = next.value();
  }
  std::uint32_t i = 0;
  for (auto _ : state) {
    const auto next = store.write(root, i++ % pages, payload);
    store.release(root);
    root = next.value();
  }
  state.SetLabel(std::to_string(pages) + " pages, no RPC");
}
BENCHMARK(BM_PageStoreDirectWrite)->Arg(64)->Arg(4096)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  std::printf("E8: multiversion file server -- COW cost must track tree "
              "depth, not file size; commits are atomic and optimistic.\n");
  conflict_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
