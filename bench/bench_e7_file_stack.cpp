// E7: the modular file stack (§3.2-3.4) under load.
//
// Measured: flat-file read/write throughput as a function of request size
// (each file byte flows through TWO services: file server -> block
// server), and directory path-resolution latency as a function of depth,
// including a cross-server variant.  The modularity cost the paper accepts
// is visible as the block-server RPCs behind every file operation.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"
#include "amoeba/servers/unixfs.hpp"

namespace {

using namespace amoeba;

struct Rig {
  Rig()
      : storage(net.add_machine("storage")),
        fs_host(net.add_machine("fileserver")),
        names(net.add_machine("naming")),
        names2(net.add_machine("naming-2")),
        client_machine(net.add_machine("client")),
        rng(1),
        scheme(core::make_scheme(core::SchemeKind::one_way_xor, rng)) {
    servers::BlockServer::Geometry geometry;
    geometry.block_count = 8192;
    geometry.block_size = 4096;
    blocks = std::make_unique<servers::BlockServer>(storage, Port(0xB10C),
                                                    scheme, 1, geometry);
    blocks->start();
    files = std::make_unique<servers::FlatFileServer>(
        fs_host, Port(0xF17E), scheme, 2, blocks->put_port());
    files->start();
    dirs = std::make_unique<servers::DirectoryServer>(names, Port(0xD1),
                                                      scheme, 3);
    dirs->start();
    dirs2 = std::make_unique<servers::DirectoryServer>(names2, Port(0xD2),
                                                       scheme, 4);
    dirs2->start();
    transport = std::make_unique<rpc::Transport>(client_machine, 5);
  }

  net::Network net;
  net::Machine& storage;
  net::Machine& fs_host;
  net::Machine& names;
  net::Machine& names2;
  net::Machine& client_machine;
  Rng rng;
  std::shared_ptr<const core::ProtectionScheme> scheme;
  std::unique_ptr<servers::BlockServer> blocks;
  std::unique_ptr<servers::FlatFileServer> files;
  std::unique_ptr<servers::DirectoryServer> dirs;
  std::unique_ptr<servers::DirectoryServer> dirs2;
  std::unique_ptr<rpc::Transport> transport;
};

void BM_FileWrite(benchmark::State& state) {
  Rig rig;
  servers::FlatFileClient client(*rig.transport, rig.files->put_port());
  const auto file = client.create().value();
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Buffer data(size, 'w');
  // Pre-touch so growth/allocation happens once, then steady-state writes.
  (void)client.write(file, 0, data);
  for (auto _ : state) {
    auto result = client.write(file, 0, data);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_FileWrite)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Arg(65536)->Unit(benchmark::kMicrosecond);

void BM_FileRead(benchmark::State& state) {
  Rig rig;
  servers::FlatFileClient client(*rig.transport, rig.files->put_port());
  const auto file = client.create().value();
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  (void)client.write(file, 0, Buffer(size, 'r'));
  for (auto _ : state) {
    auto data = client.read(file, 0, size);
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_FileRead)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Arg(65536)->Unit(benchmark::kMicrosecond);

void BM_PathResolution(benchmark::State& state) {
  // Lookup latency vs path depth, all on one directory server.
  Rig rig;
  servers::DirectoryClient dirs(*rig.transport, rig.dirs->put_port());
  const int depth = static_cast<int>(state.range(0));
  const auto root = dirs.create_dir().value();
  core::Capability current = root;
  std::string path;
  for (int level = 0; level < depth; ++level) {
    const auto child = dirs.create_dir().value();
    const std::string name = "d" + std::to_string(level);
    (void)dirs.enter(current, name, child);
    path += (level ? "/" : "") + name;
    current = child;
  }
  for (auto _ : state) {
    auto found = servers::resolve_path(*rig.transport, root, path);
    benchmark::DoNotOptimize(found);
  }
  state.SetLabel("depth " + std::to_string(depth));
}
BENCHMARK(BM_PathResolution)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_PathResolutionCrossServer(benchmark::State& state) {
  // Alternating components across two directory servers: transparency has
  // no extra client-side cost beyond addressing the other port.
  Rig rig;
  servers::DirectoryClient d1(*rig.transport, rig.dirs->put_port());
  servers::DirectoryClient d2(*rig.transport, rig.dirs2->put_port());
  const int depth = static_cast<int>(state.range(0));
  const auto root = d1.create_dir().value();
  core::Capability current = root;
  std::string path;
  for (int level = 0; level < depth; ++level) {
    auto& owner = (level % 2 == 0) ? d2 : d1;  // alternate servers
    const auto child = owner.create_dir().value();
    const std::string name = "x" + std::to_string(level);
    servers::DirectoryClient at(*rig.transport, current.server_port);
    (void)at.enter(current, name, child);
    path += (level ? "/" : "") + name;
    current = child;
  }
  for (auto _ : state) {
    auto found = servers::resolve_path(*rig.transport, root, path);
    benchmark::DoNotOptimize(found);
  }
  state.SetLabel("depth " + std::to_string(depth) + ", 2 servers");
}
BENCHMARK(BM_PathResolutionCrossServer)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

/// Builds a directory of `files` one-block files and returns the mounted
/// fs; the ls(1) shape both readdir+stat variants run against.
servers::UnixFs populate_listing(Rig& rig, int files) {
  auto fs = servers::UnixFs::format(*rig.transport, rig.dirs->put_port(),
                                    rig.files->put_port())
                .value();
  const Buffer payload(64, 'x');
  for (int i = 0; i < files; ++i) {
    const int fd =
        fs.open("f" + std::to_string(i),
                servers::UnixFs::kWrite | servers::UnixFs::kCreate)
            .value();
    (void)fs.write(fd, payload);
    (void)fs.close(fd);
  }
  return fs;
}

/// The ls -l storm, naive: readdir then one stat() per entry, each stat
/// re-resolving its path and asking for the size -- 1 + 2N round trips.
void BM_ReaddirStatLoop(benchmark::State& state) {
  Rig rig;
  auto fs = populate_listing(rig, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto entries = fs.readdir("").value();
    for (const auto& entry : entries) {
      auto st = fs.stat(entry.name);
      benchmark::DoNotOptimize(st);
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReaddirStatLoop)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// The same storm on readdir_stat(): one LIST plus one typed batch frame
/// per server, every frame in flight at once.
void BM_ReaddirStatBatched(benchmark::State& state) {
  Rig rig;
  auto fs = populate_listing(rig, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto entries = fs.readdir_stat("");
    benchmark::DoNotOptimize(entries);
    if (!entries.ok() ||
        entries.value().size() != static_cast<std::size_t>(state.range(0))) {
      state.SkipWithError("readdir_stat failed");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReaddirStatBatched)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

/// Prints the round-trip arithmetic the batched listing saves.
void readdir_stat_report() {
  constexpr int kFiles = 256;
  Rig rig;
  auto fs = populate_listing(rig, kFiles);
  const auto before_loop = rig.transport->stats().transactions;
  const double loop_ms = bench::timed_ms([&] {
    const auto entries = fs.readdir("").value();
    for (const auto& entry : entries) {
      (void)fs.stat(entry.name);
    }
  });
  const auto loop_rts = rig.transport->stats().transactions - before_loop;
  const auto before_batched = rig.transport->stats().transactions;
  const double batched_ms =
      bench::timed_ms([&] { (void)fs.readdir_stat(""); });
  const auto batched_rts =
      rig.transport->stats().transactions - before_batched;
  std::printf("---- ls -l over %d files: stat loop vs readdir_stat ----\n",
              kFiles);
  std::printf("  stat loop:    %8.2f ms, %4llu round trips\n", loop_ms,
              static_cast<unsigned long long>(loop_rts));
  std::printf("  readdir_stat: %8.2f ms, %4llu round trips (%.1fx faster, "
              "%.0fx fewer trips)\n",
              batched_ms, static_cast<unsigned long long>(batched_rts),
              loop_ms / batched_ms,
              static_cast<double>(loop_rts) /
                  static_cast<double>(batched_rts));
  std::printf("--------------------------------------------------------\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E7: the block/file/directory stack -- every file byte crosses "
              "two services; every path component is one lookup RPC.\n");
  readdir_stat_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
