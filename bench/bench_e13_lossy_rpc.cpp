// E13: goodput of at-most-once RPC on a lossy network.
//
// The at-most-once machinery (docs/PROTOCOL.md §5) buys correctness --
// no lost or doubled transactions -- at the price of retransmissions and
// reply-cache work.  This benchmark measures what is left of the wire
// throughput as frame loss rises: blocking bank transfers (the worst
// case for loss: every round trip must land twice in a row) at 0%, 5%,
// and 20% injected drop, with a side of duplication to exercise the
// suppression path.
//
// items_per_second counts COMPLETED transfers (goodput), not frames; the
// contrast report also prints the retransmit and duplicate-suppression
// volume behind each rate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/common.hpp"

#include "smoke.hpp"

namespace {

using namespace amoeba;
using namespace std::chrono_literals;

struct Rig {
  explicit Rig(double drop, double duplicate = 0.0) : rng(13) {
    bank_machine = &net.add_machine("bank");
    client_machine = &net.add_machine("client");
    bank = std::make_unique<servers::BankServer>(
        *bank_machine, Port(0xE13),
        core::make_scheme(core::SchemeKind::commutative, rng), 1);
    bank->start(2);
    transport = std::make_unique<rpc::Transport>(*client_machine, 2);
    transport->set_retransmit(2ms, 64ms);
    transport->set_default_timeout(5'000ms);
    client =
        std::make_unique<servers::BankClient>(*transport, bank->put_port());
    alice = client->create_account().value();
    bob = client->create_account().value();
    (void)client->mint(bank->master_capability(), alice,
                       servers::currency::kDollar, 1'000'000'000);
    net.set_fault_injection(drop, duplicate);
  }

  net::Network net;
  net::Machine* bank_machine = nullptr;
  net::Machine* client_machine = nullptr;
  Rng rng;
  std::unique_ptr<servers::BankServer> bank;
  std::unique_ptr<rpc::Transport> transport;
  std::unique_ptr<servers::BankClient> client;
  core::Capability alice;
  core::Capability bob;
};

/// arg: drop probability in per-mille (0, 50, 200).
void BM_LossyTransferGoodput(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 1000.0;
  Rig rig(drop, drop / 2.0);
  std::int64_t completed = 0;
  for (auto _ : state) {
    if (rig.client->transfer(rig.alice, rig.bob,
                             servers::currency::kDollar, 1)
            .ok()) {
      ++completed;
    }
  }
  state.SetItemsProcessed(completed);
  state.counters["retransmits"] = static_cast<double>(
      rig.transport->stats().retransmits);
  state.counters["dup_suppressed"] = static_cast<double>(
      rig.bank->reply_cache_stats().duplicates_suppressed);
}
BENCHMARK(BM_LossyTransferGoodput)->Arg(0)->Arg(50)->Arg(200);

void contrast_report() {
  constexpr int kTransfers = 300;
  std::printf("---- goodput vs. injected frame loss, %d blocking transfers "
              "----\n",
              kTransfers);
  double baseline = 0.0;
  for (const int permille : {0, 50, 200}) {
    Rig rig(permille / 1000.0, permille / 2000.0);
    int ok = 0;
    const double ms = amoeba::bench::timed_ms([&] {
      for (int i = 0; i < kTransfers; ++i) {
        if (rig.client
                ->transfer(rig.alice, rig.bob, servers::currency::kDollar, 1)
                .ok()) {
          ++ok;
        }
      }
    });
    const double goodput = ok / (ms / 1000.0);
    if (permille == 0) {
      baseline = goodput;
    }
    std::printf("  drop %2d%%: %8.0f tx/s (%4.1f%% of clean), %d/%d ok, "
                "%llu retransmits, %llu duplicates suppressed\n",
                permille / 10, goodput, 100.0 * goodput / baseline, ok,
                kTransfers,
                static_cast<unsigned long long>(
                    rig.transport->stats().retransmits),
                static_cast<unsigned long long>(
                    rig.bank->reply_cache_stats().duplicates_suppressed));
  }
  std::printf("-------------------------------------------------------------"
              "-\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E13: at-most-once RPC goodput under injected frame loss "
              "(docs/PROTOCOL.md \xc2\xa7" "5).\n");
  contrast_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
