// E6: user-space sparse capabilities vs kernel-mediated management (§4).
//
// "We maintain that moving all of the capability management out of the
// kernel is a step in the right direction."
//
// Measured: the end-to-end cost of one protected object operation under
// (a) Amoeba sparse capabilities -- one RPC, validation inside the server;
// (b) the Eden-style baseline -- one kernel-manager verification RPC
//     *plus* the object RPC (per use);
// (c) in-memory validation alone for all four schemes (the server-side
//     cost kernel mediation would replace with a table lookup).
// A report also shows the functional gap of password capabilities: no
// read-only delegation without cloning whole objects.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <memory>

#include "amoeba/baseline/kernel_caps.hpp"
#include "amoeba/baseline/password_caps.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"

namespace {

using namespace amoeba;

struct Rig {
  Rig()
      : server_machine(net.add_machine("server")),
        kernel_machine(net.add_machine("kernel")),
        client_machine(net.add_machine("client")),
        rng(1) {
    servers::BlockServer::Geometry geometry;
    geometry.block_count = 16;
    geometry.block_size = 64;
    service = std::make_unique<servers::BlockServer>(
        server_machine, Port(0x6E7),
        core::make_scheme(core::SchemeKind::one_way_xor, rng), 1, geometry);
    service->start();
    manager = std::make_unique<baseline::CapabilityManager>(kernel_machine,
                                                            Port(0xC4B));
    manager->start();
    transport = std::make_unique<rpc::Transport>(client_machine, 2);
  }

  net::Network net;
  net::Machine& server_machine;
  net::Machine& kernel_machine;
  net::Machine& client_machine;
  Rng rng;
  std::unique_ptr<servers::BlockServer> service;
  std::unique_ptr<baseline::CapabilityManager> manager;
  std::unique_ptr<rpc::Transport> transport;
};

void BM_SparseCapabilityUse(benchmark::State& state) {
  // Amoeba: the capability travels with the request; one transaction.
  Rig rig;
  servers::BlockClient client(*rig.transport, rig.service->put_port());
  const auto cap = client.allocate().value();
  for (auto _ : state) {
    auto data = client.read(cap);
    benchmark::DoNotOptimize(data);
  }
  state.SetLabel("1 RPC, in-server validation");
}
BENCHMARK(BM_SparseCapabilityUse)->Unit(benchmark::kMicrosecond);

void BM_KernelMediatedUse(benchmark::State& state) {
  // Eden-style: verify the handle with the kernel manager, then use the
  // returned capability -- two transactions per operation.
  Rig rig;
  servers::BlockClient client(*rig.transport, rig.service->put_port());
  baseline::KernelMediatedClient kernel(*rig.transport,
                                        rig.manager->put_port());
  const auto cap = client.allocate().value();
  const auto handle = kernel.register_capability(cap).value();
  for (auto _ : state) {
    const auto verified = kernel.verify(handle);
    auto data = client.read(verified.value());
    benchmark::DoNotOptimize(data);
  }
  state.SetLabel("verify RPC + object RPC per use");
}
BENCHMARK(BM_KernelMediatedUse)->Unit(benchmark::kMicrosecond);

void BM_InMemoryValidation(benchmark::State& state) {
  // What the kernel round-trip buys you out of: a single in-memory check.
  const auto kind = static_cast<core::SchemeKind>(state.range(0));
  Rng rng(3);
  core::ObjectStore<int> store(core::make_scheme(kind, rng), Port(0xAB), 4);
  const auto cap = store.create(0);
  for (auto _ : state) {
    auto opened = store.open(cap, core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetLabel(core::scheme_name(kind));
}
BENCHMARK(BM_InMemoryValidation)->DenseRange(0, 3);

void password_report() {
  std::printf("---- password-capability baseline (Donnelley/LLL) ----\n");
  baseline::PasswordCapabilityTable table(7);
  const auto cap = table.create("document");
  std::printf("  all-or-nothing access works      : %s\n",
              table.open(cap).ok() ? "yes" : "no");
  const auto shared = table.clone_for_sharing(cap);
  std::printf("  read-only delegation possible    : no (must clone: now %zu "
              "objects for 1 document)\n",
              table.object_count());
  *table.open(cap).value() = "edited";
  std::printf("  clone tracks original updates    : %s\n",
              *table.open(shared.value()).value() == "edited" ? "yes"
                                                              : "no (stale)");
  std::printf("  -> matches §4: \"they do not provide a way to protect\n"
              "     individual rights bits\"\n");
  std::printf("------------------------------------------------------\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E6: sparse user-space capabilities vs kernel mediation -- "
              "the kernel-mediated design pays an extra RPC on every use.\n");
  password_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
