// E11: multi-client validation throughput on the sharded object store.
//
// The paper's performance argument (§2.3) is that presenting a capability
// costs the server one table lookup plus one cheap cryptographic check.
// That only holds at scale if the lookup does not serialize the whole
// service: this benchmark drives open() from 1..8 threads against
//   (a) the sharded store (per-shard locks + validated-capability cache),
//   (b) the same store behind one global mutex -- the seed's old
//       service-wide locking discipline, kept as the contrast baseline,
// plus a hot-capability variant (pure cache hit) and a create/destroy
// churn mix.  On a multi-core host (a) scales with threads while (b)
// flatlines; items_per_second is the figure of merit.
//
// The lock-free follow-up adds the next rung on the same ladder: check()
// on a repeat capability runs entirely on atomic loads (seqlock probe of
// the slot + validated-capability cache), vs check_locked(), the same
// semantics behind the shard mutex.  The contrast report at the end runs
// both at 1..8 threads, appends one JSON line to BENCH_validate.json, and
// ENFORCES the acceptance bar -- lock-free throughput must be at least
// the mutex path's at every thread count (5% tolerance at 1 thread, where
// there is no contention to win back) -- exiting nonzero on regression so
// CI's bench-smoke catches it.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "smoke.hpp"

#include "amoeba/common/epoch.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"

namespace {

using namespace amoeba;

constexpr Port kPort{0xBE11CAFE5EEDULL};
constexpr int kObjects = 4096;

/// Shared store + capability working set, built once per benchmark run and
/// torn down when the last thread leaves.
struct Rig {
  explicit Rig(core::SchemeKind kind) {
    Rng rng(17);
    store = std::make_unique<core::ObjectStore<int>>(
        core::make_scheme(kind, rng), kPort, 17);
    caps.reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
      caps.push_back(store->create(i));
    }
  }
  std::unique_ptr<core::ObjectStore<int>> store;
  std::vector<core::Capability> caps;
};

std::mutex g_rig_mutex;
std::unique_ptr<Rig> g_rig;
int g_rig_users = 0;

Rig& acquire_rig(core::SchemeKind kind) {
  const std::lock_guard lock(g_rig_mutex);
  if (g_rig_users++ == 0) {
    g_rig = std::make_unique<Rig>(kind);
  }
  return *g_rig;
}

void release_rig() {
  const std::lock_guard lock(g_rig_mutex);
  if (--g_rig_users == 0) {
    g_rig.reset();
  }
}

/// (a) Sharded: threads validate random capabilities concurrently.
void BM_ShardedOpen(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    auto opened = rig.store->open(cap, core::rights::kRead);
    benchmark::DoNotOptimize(opened);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const auto stats = rig.store->cache_stats();
    state.counters["cache_hit_ratio"] =
        stats.hits + stats.misses == 0
            ? 0.0
            : static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses);
  }
  release_rig();
}
BENCHMARK(BM_ShardedOpen)->ThreadRange(1, 8)->UseRealTime();

/// (b) Contrast: every open behind one global mutex (the seed's
/// service-wide lock).  The store underneath is identical.
void BM_GloballyLockedOpen(benchmark::State& state) {
  static std::mutex global_lock;
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    const std::lock_guard lock(global_lock);
    auto opened = rig.store->open(cap, core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_GloballyLockedOpen)->ThreadRange(1, 8)->UseRealTime();

/// Pure cache-hit path: one hot capability per thread, revalidated
/// endlessly -- the §2.4 soft-protection cache generalized.
void BM_ShardedOpenHot(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  const auto& cap =
      rig.caps[static_cast<std::size_t>(state.thread_index()) % kObjects];
  for (auto _ : state) {
    auto opened = rig.store->open(cap, core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_ShardedOpenHot)->ThreadRange(1, 8)->UseRealTime();

/// Lifecycle churn: create/open/destroy mix exercising the per-shard free
/// lists and the epoch-based cache invalidation under contention.
void BM_ShardedChurn(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::one_way_xor);
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 99);
  std::vector<core::Capability> mine;
  for (auto _ : state) {
    const std::uint64_t op = rng.below(4);
    if (op == 0 || mine.empty()) {
      mine.push_back(rig.store->create(1));
    } else if (op == 1) {
      const std::size_t idx = rng.below(mine.size());
      benchmark::DoNotOptimize(rig.store->destroy(mine[idx]));
      mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      auto opened =
          rig.store->open(mine[rng.below(mine.size())], core::rights::kRead);
      benchmark::DoNotOptimize(opened);
    }
  }
  for (const auto& cap : mine) {
    benchmark::DoNotOptimize(rig.store->destroy(cap));
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_ShardedChurn)->ThreadRange(1, 8)->UseRealTime();

/// Lock-free repeat validation: each thread hammers check() on one hot,
/// already-cached capability -- zero mutex acquisitions per iteration.
void BM_LockFreeCheck(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  const auto& cap =
      rig.caps[static_cast<std::size_t>(state.thread_index()) % kObjects];
  benchmark::DoNotOptimize(rig.store->check(cap, core::rights::kRead));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rig.store->check(cap, core::rights::kRead));
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_LockFreeCheck)->ThreadRange(1, 8)->UseRealTime();

/// Contrast: identical validation through the shard mutex (check()'s slow
/// path, called directly).
void BM_LockedCheck(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  const auto& cap =
      rig.caps[static_cast<std::size_t>(state.thread_index()) % kObjects];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rig.store->check_locked(cap, core::rights::kRead));
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_LockedCheck)->ThreadRange(1, 8)->UseRealTime();

/// One timed repeat-check run: `threads` workers, each spinning on its own
/// hot capability.  Returns wall-clock ms; `lock_acquisitions` accumulates
/// every CountedMutex acquisition the workers made (must stay 0 on the
/// lock-free path once the caps are warm).
[[nodiscard]] double timed_checks(Rig& rig, int threads, int ops_per_thread,
                                  bool lock_free,
                                  std::uint64_t& lock_acquisitions) {
  std::atomic<std::uint64_t> acquired{0};
  const double ms = amoeba::bench::timed_ms([&] {
    std::vector<std::jthread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const auto& cap = rig.caps[static_cast<std::size_t>(t) % kObjects];
        benchmark::DoNotOptimize(
            rig.store->check(cap, core::rights::kRead));  // warm the cache
        const std::uint64_t before =
            amoeba::common::this_thread_lock_counters().mutex_acquisitions;
        for (int i = 0; i < ops_per_thread; ++i) {
          benchmark::DoNotOptimize(
              lock_free ? rig.store->check(cap, core::rights::kRead)
                        : rig.store->check_locked(cap, core::rights::kRead));
        }
        acquired.fetch_add(
            amoeba::common::this_thread_lock_counters().mutex_acquisitions -
                before,
            std::memory_order_relaxed);
      });
    }
  });
  lock_acquisitions += acquired.load(std::memory_order_relaxed);
  return ms;
}

/// Contrast report + acceptance gate.  Returns the process exit code.
[[nodiscard]] int report(bool smoke) {
  const int ops = smoke ? 400'000 : 2'000'000;
  constexpr int kThreadCounts[] = {1, 2, 4, 8};
  Rig rig(core::SchemeKind::encrypted);

  std::printf(
      "\nE11 validate contrast (hot repeat check, %d ops/thread)\n"
      "  threads   lock-free ms   mutex ms   speedup   lock-free locks\n",
      ops);
  bool pass = true;
  double results[4][3];  // [idx] = {lockfree_ms, mutex_ms, speedup}
  std::uint64_t total_lockfree_acquisitions = 0;
  for (std::size_t idx = 0; idx < 4; ++idx) {
    const int threads = kThreadCounts[idx];
    // Best of three per mode: the gate must not flake on scheduler noise.
    double lf_ms = 0;
    double mx_ms = 0;
    std::uint64_t lf_locks = 0;
    std::uint64_t mx_locks = 0;
    for (int run = 0; run < 3; ++run) {
      const double lf = timed_checks(rig, threads, ops, true, lf_locks);
      const double mx = timed_checks(rig, threads, ops, false, mx_locks);
      lf_ms = run == 0 ? lf : std::min(lf_ms, lf);
      mx_ms = run == 0 ? mx : std::min(mx_ms, mx);
    }
    const double speedup = mx_ms / lf_ms;
    // The bar: lock-free throughput >= the mutex path's at every thread
    // count.  At 1 thread there is no contention to win back, so a 5%
    // tolerance absorbs the seqlock's extra fence; with threads the
    // lock-free path must win outright.
    const double bar = threads == 1 ? 0.95 : 1.0;
    const bool ok = speedup >= bar && lf_locks == 0;
    pass = pass && ok;
    total_lockfree_acquisitions += lf_locks;
    results[idx][0] = lf_ms;
    results[idx][1] = mx_ms;
    results[idx][2] = speedup;
    std::printf("  %7d   %12.1f   %8.1f   %6.2fx   %15llu%s\n", threads,
                lf_ms, mx_ms, speedup,
                static_cast<unsigned long long>(lf_locks),
                ok ? "" : "  FAIL");
  }

  if (std::FILE* json = std::fopen("BENCH_validate.json", "a")) {
    std::fprintf(json,
                 "{\"bench\": \"e11\", \"mode\": \"%s\", "
                 "\"ops_per_thread\": %d, \"lockfree_locks\": %llu, "
                 "\"contrast\": [",
                 smoke ? "smoke" : "full", ops,
                 static_cast<unsigned long long>(
                     total_lockfree_acquisitions));
    for (std::size_t idx = 0; idx < 4; ++idx) {
      std::fprintf(json,
                   "%s{\"threads\": %d, \"lockfree_ms\": %.3f, "
                   "\"mutex_ms\": %.3f, \"speedup\": %.3f}",
                   idx == 0 ? "" : ", ", kThreadCounts[idx], results[idx][0],
                   results[idx][1], results[idx][2]);
    }
    std::fprintf(json, "], \"pass\": %s}\n", pass ? "true" : "false");
    std::fclose(json);
  }

  if (!pass) {
    std::fprintf(stderr,
                 "E11 FAIL: lock-free check() regressed against the mutex "
                 "path (or acquired a lock) -- see contrast table above\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    smoke |= std::string_view(argv[i]) == "--smoke";
  }
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return report(smoke);
}
