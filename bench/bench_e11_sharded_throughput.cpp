// E11: multi-client validation throughput on the sharded object store.
//
// The paper's performance argument (§2.3) is that presenting a capability
// costs the server one table lookup plus one cheap cryptographic check.
// That only holds at scale if the lookup does not serialize the whole
// service: this benchmark drives open() from 1..8 threads against
//   (a) the sharded store (per-shard locks + validated-capability cache),
//   (b) the same store behind one global mutex -- the seed's old
//       service-wide locking discipline, kept as the contrast baseline,
// plus a hot-capability variant (pure cache hit) and a create/destroy
// churn mix.  On a multi-core host (a) scales with threads while (b)
// flatlines; items_per_second is the figure of merit.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "smoke.hpp"

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"

namespace {

using namespace amoeba;

constexpr Port kPort{0xBE11CAFE5EEDULL};
constexpr int kObjects = 4096;

/// Shared store + capability working set, built once per benchmark run and
/// torn down when the last thread leaves.
struct Rig {
  explicit Rig(core::SchemeKind kind) {
    Rng rng(17);
    store = std::make_unique<core::ObjectStore<int>>(
        core::make_scheme(kind, rng), kPort, 17);
    caps.reserve(kObjects);
    for (int i = 0; i < kObjects; ++i) {
      caps.push_back(store->create(i));
    }
  }
  std::unique_ptr<core::ObjectStore<int>> store;
  std::vector<core::Capability> caps;
};

std::mutex g_rig_mutex;
std::unique_ptr<Rig> g_rig;
int g_rig_users = 0;

Rig& acquire_rig(core::SchemeKind kind) {
  const std::lock_guard lock(g_rig_mutex);
  if (g_rig_users++ == 0) {
    g_rig = std::make_unique<Rig>(kind);
  }
  return *g_rig;
}

void release_rig() {
  const std::lock_guard lock(g_rig_mutex);
  if (--g_rig_users == 0) {
    g_rig.reset();
  }
}

/// (a) Sharded: threads validate random capabilities concurrently.
void BM_ShardedOpen(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    auto opened = rig.store->open(cap, core::rights::kRead);
    benchmark::DoNotOptimize(opened);
    if (!opened.ok()) {
      state.SkipWithError("open failed");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const auto stats = rig.store->cache_stats();
    state.counters["cache_hit_ratio"] =
        stats.hits + stats.misses == 0
            ? 0.0
            : static_cast<double>(stats.hits) /
                  static_cast<double>(stats.hits + stats.misses);
  }
  release_rig();
}
BENCHMARK(BM_ShardedOpen)->ThreadRange(1, 8)->UseRealTime();

/// (b) Contrast: every open behind one global mutex (the seed's
/// service-wide lock).  The store underneath is identical.
void BM_GloballyLockedOpen(benchmark::State& state) {
  static std::mutex global_lock;
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 1);
  for (auto _ : state) {
    const auto& cap = rig.caps[rng.below(kObjects)];
    const std::lock_guard lock(global_lock);
    auto opened = rig.store->open(cap, core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_GloballyLockedOpen)->ThreadRange(1, 8)->UseRealTime();

/// Pure cache-hit path: one hot capability per thread, revalidated
/// endlessly -- the §2.4 soft-protection cache generalized.
void BM_ShardedOpenHot(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::encrypted);
  const auto& cap =
      rig.caps[static_cast<std::size_t>(state.thread_index()) % kObjects];
  for (auto _ : state) {
    auto opened = rig.store->open(cap, core::rights::kRead);
    benchmark::DoNotOptimize(opened);
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_ShardedOpenHot)->ThreadRange(1, 8)->UseRealTime();

/// Lifecycle churn: create/open/destroy mix exercising the per-shard free
/// lists and the epoch-based cache invalidation under contention.
void BM_ShardedChurn(benchmark::State& state) {
  Rig& rig = acquire_rig(core::SchemeKind::one_way_xor);
  Rng rng(static_cast<std::uint64_t>(state.thread_index()) + 99);
  std::vector<core::Capability> mine;
  for (auto _ : state) {
    const std::uint64_t op = rng.below(4);
    if (op == 0 || mine.empty()) {
      mine.push_back(rig.store->create(1));
    } else if (op == 1) {
      const std::size_t idx = rng.below(mine.size());
      benchmark::DoNotOptimize(rig.store->destroy(mine[idx]));
      mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      auto opened =
          rig.store->open(mine[rng.below(mine.size())], core::rights::kRead);
      benchmark::DoNotOptimize(opened);
    }
  }
  for (const auto& cap : mine) {
    benchmark::DoNotOptimize(rig.store->destroy(cap));
  }
  state.SetItemsProcessed(state.iterations());
  release_rig();
}
BENCHMARK(BM_ShardedChurn)->ThreadRange(1, 8)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
