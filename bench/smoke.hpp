// Shared `--smoke` handling for every bench binary: CI runs the Release
// benchmarks with this flag so the perf code paths compile AND execute on
// every change, without waiting for statistically stable numbers.
#pragma once

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <vector>

namespace amoeba::bench {

/// Stopwatch for the hand-rolled contrast reports: runs `fn` once and
/// returns the wall-clock milliseconds it took.
template <typename Fn>
[[nodiscard]] double timed_ms(Fn&& fn) {
  const auto begin = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - begin)
      .count();
}

/// Drop-in replacement for benchmark::Initialize that also understands
/// `--smoke`: strips the flag and caps each benchmark at a token min time
/// (one repetition, ~1 ms) so the whole binary finishes in seconds.
inline void initialize(int argc, char** argv) {
  static char min_time[] = "--benchmark_min_time=0.001";
  static std::vector<char*> args;  // benchmark::Initialize keeps pointers
  args.assign(argv, argv + argc);
  bool smoke = false;
  std::erase_if(args, [&](char* arg) {
    const bool match = std::strcmp(arg, "--smoke") == 0;
    smoke |= match;
    return match;
  });
  if (smoke) {
    args.insert(args.begin() + 1, min_time);
  }
  int n = static_cast<int>(args.size());
  ::benchmark::Initialize(&n, args.data());
}

}  // namespace amoeba::bench
