// FIG1: clients, servers, intruders, and F-boxes (Fig. 1).
//
// Part 1 (report): the executable attack matrix -- every Fig. 1 attack is
// run against a live service and its outcome printed.  The reproduction
// claim is that all attacks fail under F-boxes while the legitimate path
// works, and that disabling the F-box (ablation) lets impersonation
// succeed.
// Part 2 (timings): the cost the F-box adds to the message path -- the
// one-way function application(s) per transmitted message -- and raw
// one-way function evaluation for both constructions.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <chrono>
#include <cstdio>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/crypto/one_way.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/block_server.hpp"
#include "amoeba/servers/common.hpp"

namespace {

using namespace amoeba;
using namespace std::chrono_literals;

void attack_report() {
  std::printf("---- Fig. 1 attack matrix (live service, F-boxes ON) ----\n");
  net::Network net;
  net::Machine& server = net.add_machine("server");
  net::Machine& client = net.add_machine("client");
  net::Machine& intruder = net.add_machine("intruder");
  Rng rng(1);
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  servers::BlockServer service(
      server, Port(0x6E7), core::make_scheme(core::SchemeKind::one_way_xor, rng),
      1, geometry);
  service.start();
  rpc::Transport me(client, 2);
  servers::BlockClient my_blocks(me, service.put_port());

  const auto cap = my_blocks.allocate().value();
  std::printf("  legitimate request/reply        : %s\n",
              my_blocks.read(cap).ok() ? "works" : "BROKEN");

  net::Receiver fake = intruder.listen(service.put_port());
  (void)my_blocks.read(cap);
  std::printf("  intruder GET(P) impersonation   : %s\n",
              fake.receive({}, 30ms).has_value() ? "SUCCEEDED" : "defended");

  Rng guess(7);
  int forgeries = 0;
  rpc::Transport it(intruder, 3);
  servers::BlockClient intruder_blocks(it, service.put_port());
  for (int i = 0; i < 1000; ++i) {
    core::Capability probe = cap;
    probe.check = CheckField(guess.bits(48));
    forgeries += probe.check != cap.check && intruder_blocks.read(probe).ok();
  }
  std::printf("  1000 forged check fields        : %d accepted\n", forgeries);

  // Ablation: F-boxes off, no softprot -> impersonation works.
  net::Network open_net(net::Network::Config{.fbox_enabled = false});
  net::Machine& s2 = open_net.add_machine("server");
  net::Machine& i2 = open_net.add_machine("intruder");
  net::Machine& c2 = open_net.add_machine("client");
  const Port port(0xCAFE);
  net::Receiver real2 = s2.listen(port);
  net::Receiver fake2 = i2.listen(port);
  net::Message msg;
  msg.header.dest = port;
  (void)c2.transmit(msg, i2.id());
  std::printf("  ABLATION (no F-box) GET(P) squat: %s\n",
              fake2.receive({}, 100ms).has_value() ? "succeeds (as the paper "
                                                     "warns)"
                                                   : "defended?!");
  std::printf("----------------------------------------------------------\n");
}

void BM_OneWayPurdy(benchmark::State& state) {
  const crypto::PurdyOneWay f;
  std::uint64_t x = 0x123456789ABCULL & ((1ULL << 48) - 1);
  for (auto _ : state) {
    x = f.apply_raw(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_OneWayPurdy);

void BM_OneWayDaviesMeyer(benchmark::State& state) {
  const crypto::DaviesMeyerOneWay f;
  std::uint64_t x = 0x123456789ABCULL & ((1ULL << 48) - 1);
  for (auto _ : state) {
    x = f.apply_raw(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_OneWayDaviesMeyer);

void BM_FBoxOutgoingTransform(benchmark::State& state) {
  // What the F-box adds per message: F on reply + signature fields.
  net::FBox fbox(crypto::default_one_way(), true);
  net::Header header;
  header.dest = Port(1);
  header.signature = Port(3);
  std::uint64_t i = 0;
  for (auto _ : state) {
    header.reply = Port(++i);
    fbox.transform_outgoing(header);
    benchmark::DoNotOptimize(header);
  }
}
BENCHMARK(BM_FBoxOutgoingTransform);

void BM_EndToEndRpc(benchmark::State& state) {
  // Whole request/reply through the network, F-boxes on or off.
  const bool fbox_enabled = state.range(0) != 0;
  net::Network net(net::Network::Config{.fbox_enabled = fbox_enabled});
  net::Machine& sm = net.add_machine("server");
  net::Machine& cm = net.add_machine("client");
  Rng rng(1);
  servers::BlockServer::Geometry geometry;
  geometry.block_count = 16;
  geometry.block_size = 64;
  servers::BlockServer service(
      sm, Port(0x6E7), core::make_scheme(core::SchemeKind::simple, rng), 1,
      geometry);
  service.start();
  rpc::Transport transport(cm, 2);
  servers::BlockClient client(transport, service.put_port());
  const auto cap = client.allocate().value();
  for (auto _ : state) {
    auto data = client.read(cap);
    benchmark::DoNotOptimize(data);
  }
  state.SetLabel(fbox_enabled ? "fbox on" : "fbox off (ablation)");
}
BENCHMARK(BM_EndToEndRpc)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  attack_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
