// E3: sparseness -- the title's security argument, quantified.
//
// A capability is protected by nothing but the sparseness of the check
// space: a forger must guess a 48-bit value.  This bench (a) measures the
// intruder's guess throughput against an in-memory validator (his best
// case: no network), (b) Monte-Carlo-verifies that forgery probability
// tracks 2^-b by shrinking the check width to 8..28 bits where successes
// are observable, and (c) extrapolates the expected time to forge one
// 48-bit capability at the measured guess rate.
#include <benchmark/benchmark.h>

#include "smoke.hpp"

#include <cstdio>
#include <chrono>
#include <cmath>

#include "amoeba/common/rng.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/core/schemes.hpp"

namespace {

using namespace amoeba;

void BM_GuessThroughput(benchmark::State& state) {
  const auto kind = static_cast<core::SchemeKind>(state.range(0));
  Rng rng(1);
  const auto scheme = core::make_scheme(kind, rng);
  const std::uint64_t secret = scheme->new_secret(rng);
  core::Capability probe =
      scheme->mint(Port(0xAB), ObjectNumber(1), secret, Rights::all());
  Rng guesses(2);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    probe.check = CheckField(guesses.bits(48));
    hits += scheme->validate(probe, secret).ok();
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(core::scheme_name(kind));
}
BENCHMARK(BM_GuessThroughput)->DenseRange(0, 3);

void sparseness_report() {
  std::printf("---- Monte-Carlo forgery probability vs check width ----\n");
  std::printf("%8s %14s %14s %14s\n", "bits", "expected", "measured",
              "trials");
  Rng rng(3);
  // Reduced-width analogue of scheme 0: secret in [0, 2^bits), forgery
  // succeeds when a random guess matches.  This isolates exactly the
  // sparseness argument; the schemes only add rights protection on top.
  for (const int bits : {8, 12, 16, 20, 24, 28}) {
    const std::uint64_t trials = 1ULL << 24;  // 16M guesses
    const std::uint64_t secret = rng.bits(bits);
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < trials; ++i) {
      hits += rng.bits(bits) == secret;
    }
    const double expected = std::ldexp(1.0, -bits);
    const double measured = static_cast<double>(hits) / trials;
    std::printf("%8d %14.3e %14.3e %14llu\n", bits, expected, measured,
                static_cast<unsigned long long>(trials));
  }
  std::printf(
      "At 48 bits the success probability per guess is 2^-48 = 3.6e-15;\n"
      "the time-to-forge extrapolation after the throughput benchmarks\n"
      "below quantifies the paper's claim that guessing 'is not\n"
      "feasible'.\n");
  std::printf("--------------------------------------------------------\n");
}

void extrapolation_report() {
  // Measure raw guess rate for the cheapest scheme (intruder's best case)
  // and extrapolate.
  Rng rng(4);
  const auto scheme = core::make_scheme(core::SchemeKind::simple, rng);
  const std::uint64_t secret = scheme->new_secret(rng);
  core::Capability probe =
      scheme->mint(Port(0xAB), ObjectNumber(1), secret, Rights::all());
  Rng guesses(5);
  const std::uint64_t samples = 4'000'000;
  const auto begin = std::chrono::steady_clock::now();
  std::uint64_t hits = 0;
  for (std::uint64_t i = 0; i < samples; ++i) {
    probe.check = CheckField(guesses.bits(48));
    hits += scheme->validate(probe, secret).ok();
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  const double rate = samples / elapsed;
  // Mean guesses for one forgery: 2^47.  Two attacker models:
  //   * hypothetical local oracle at the server's own validation speed
  //     (an intruder never has this -- the secret lives in the server);
  //   * the real attack: one RPC per guess (~tens of microseconds in this
  //     simulator; ~milliseconds on the paper's 1986 LAN).
  const double mean_guesses = std::ldexp(1.0, 47);
  const double local_days = mean_guesses / rate / 86400.0;
  const double rpc_rate = 20'000.0;  // measured order of magnitude, E6
  const double rpc_years = mean_guesses / rpc_rate / (365.25 * 86400.0);
  std::printf(
      "---- time-to-forge extrapolation ----\n"
      "in-memory validation rate (server's own): %.2e/s (hits: %llu)\n"
      "mean guesses for one 48-bit forgery: 2^47 = 1.4e14\n"
      "  hypothetical local oracle : %.0f days of continuous guessing\n"
      "  over RPC at ~2e4 calls/s  : %.0f years\n"
      "The intruder only has the RPC path; the paper's 'not feasible'\n"
      "claim holds, and each guess is also visible to the server.\n"
      "-------------------------------------\n",
      rate, static_cast<unsigned long long>(hits), local_days, rpc_years);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("E3: sparse capabilities -- forgery resistance comes from the "
              "48-bit check space alone.\n");
  sparseness_report();
  amoeba::bench::initialize(argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  extrapolation_report();
  return 0;
}
