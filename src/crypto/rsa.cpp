#include "amoeba/crypto/rsa.hpp"

#include "amoeba/common/error.hpp"
#include "amoeba/crypto/modmath.hpp"

namespace amoeba::crypto {
namespace {

constexpr std::uint64_t kPublicExponent = 65537;

std::uint64_t gen_prime31(Rng& rng) {
  for (;;) {
    const std::uint64_t candidate = rng.bits(31) | (1ULL << 30) | 1ULL;
    if (is_prime(candidate)) {
      return candidate;
    }
  }
}

}  // namespace

RsaKeyPair rsa_generate(Rng& rng) {
  for (;;) {
    const std::uint64_t p = gen_prime31(rng);
    const std::uint64_t q = gen_prime31(rng);
    if (p == q) continue;
    const std::uint64_t phi = (p - 1) * (q - 1);
    if (gcd(kPublicExponent, phi) != 1) continue;
    const std::uint64_t d = modinv(kPublicExponent, phi);
    RsaKeyPair kp;
    kp.pub = {p * q, kPublicExponent};
    kp.priv = {p * q, d};
    return kp;
  }
}

std::uint64_t rsa_apply_block(std::uint64_t n, std::uint64_t exp,
                              std::uint64_t m) {
  if (m >= n) {
    throw UsageError("rsa_apply_block: message block must be < modulus");
  }
  return powmod(m, exp, n);
}

Buffer rsa_wrap(std::uint64_t n, std::uint64_t exp,
                std::span<const std::uint8_t> plain) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(plain.size()));
  for (std::size_t i = 0; i < plain.size(); i += 4) {
    std::uint32_t chunk = 0;
    for (std::size_t b = 0; b < 4 && i + b < plain.size(); ++b) {
      chunk |= static_cast<std::uint32_t>(plain[i + b]) << (8 * b);
    }
    w.u64(rsa_apply_block(n, exp, chunk));
  }
  return w.take();
}

std::optional<Buffer> rsa_unwrap(std::uint64_t n, std::uint64_t exp,
                                 std::span<const std::uint8_t> sealed) {
  Reader r(sealed);
  const std::uint32_t length = r.u32();
  const std::size_t blocks = (length + 3) / 4;
  Buffer out;
  out.reserve(length);
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::uint64_t block = r.u64();
    if (!r.ok() || block >= n) {
      return std::nullopt;
    }
    const std::uint64_t chunk = powmod(block, exp, n);
    if ((chunk >> 32) != 0) {
      // A correctly keyed unwrap always yields a 32-bit chunk; anything
      // else means the wrong key (or tampering).
      return std::nullopt;
    }
    for (std::size_t b = 0; b < 4 && out.size() < length; ++b) {
      out.push_back(static_cast<std::uint8_t>(chunk >> (8 * b)));
    }
  }
  if (!r.exhausted() || out.size() != length) {
    return std::nullopt;
  }
  return out;
}

}  // namespace amoeba::crypto
