#include "amoeba/crypto/commutative.hpp"

#include "amoeba/common/error.hpp"
#include "amoeba/crypto/modmath.hpp"

namespace amoeba::crypto {
namespace {

/// Draws a random prime in [2^(bits-1), 2^bits).
std::uint64_t gen_prime(Rng& rng, int bits) {
  for (;;) {
    std::uint64_t candidate = rng.bits(bits) | (1ULL << (bits - 1)) | 1ULL;
    if (is_prime(candidate)) {
      return candidate;
    }
  }
}

}  // namespace

CommutativeFamily::CommutativeFamily(Rng& rng) {
  // n = p * q in (2^47, 2^48): p gets 24 bits, q gets 24 bits, both with
  // the top bit set, so n has exactly 47 or 48 bits.
  const std::uint64_t p = gen_prime(rng, 24);
  std::uint64_t q = gen_prime(rng, 24);
  while (q == p) {
    q = gen_prime(rng, 24);
  }
  modulus_ = p * q;
  // Distinct small odd prime exponents; commutativity needs nothing more,
  // and distinctness makes F_j != F_k so deleting different rights yields
  // different check values.
  constexpr std::array<std::uint64_t, kFunctions> kExponents = {
      3, 5, 7, 11, 13, 17, 19, 23};
  exponents_ = kExponents;
}

CommutativeFamily::CommutativeFamily(
    std::uint64_t modulus,
    const std::array<std::uint64_t, kFunctions>& exponents)
    : modulus_(modulus), exponents_(exponents) {
  if (modulus_ < 4 || (modulus_ >> 48) != 0) {
    throw UsageError("CommutativeFamily: modulus must fit 48 bits");
  }
}

std::uint64_t CommutativeFamily::apply(int k, std::uint64_t x) const {
  if (k < 0 || k >= kFunctions) {
    throw UsageError("CommutativeFamily::apply: bad function index");
  }
  return powmod(x % modulus_, exponents_[static_cast<std::size_t>(k)],
                modulus_);
}

std::uint64_t CommutativeFamily::apply_for_cleared(Rights remaining,
                                                   std::uint64_t x) const {
  std::uint64_t acc = x % modulus_;
  for (int k = 0; k < kFunctions; ++k) {
    if (!remaining.has(k)) {
      acc = powmod(acc, exponents_[static_cast<std::size_t>(k)], modulus_);
    }
  }
  return acc;
}

std::uint64_t CommutativeFamily::random_element(Rng& rng) const {
  // Skip 0 and 1: both are fixed points of every power map, which would
  // make deleting rights a no-op and all restricted capabilities equal.
  return 2 + rng.below(modulus_ - 2);
}

}  // namespace amoeba::crypto
