#include "amoeba/crypto/one_way.hpp"

#include "amoeba/common/error.hpp"
#include "amoeba/crypto/feistel.hpp"
#include "amoeba/crypto/modmath.hpp"

namespace amoeba::crypto {
namespace {

constexpr std::uint64_t kPrime = 18446744073709551557ULL;  // 2^64 - 59
constexpr std::uint64_t kExponent = (1ULL << 24) + 17;
constexpr std::uint64_t kMask48 = (1ULL << 48) - 1;

void require_48(std::uint64_t x, const char* who) {
  if ((x >> 48) != 0) {
    throw UsageError(std::string(who) + ": input exceeds 48 bits");
  }
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

PurdyOneWay::PurdyOneWay() : PurdyOneWay(0) {}

PurdyOneWay::PurdyOneWay(std::uint64_t tweak) {
  // Publicly known coefficients; the security of the scheme rests on the
  // difficulty of root-finding for sparse high-degree polynomials mod p,
  // not on coefficient secrecy.
  std::uint64_t s = 0x9275D71974C0FFEEULL ^ tweak;
  for (auto& c : coeff_) {
    c = splitmix64(s) % kPrime;
  }
}

std::uint64_t PurdyOneWay::apply_raw(std::uint64_t x) const {
  require_48(x, "PurdyOneWay");
  // Offset the input so x = 0 is not a fixed point of the power term.
  const std::uint64_t v = (x + 0x5EED5EED5EEDULL) % kPrime;
  std::uint64_t acc = powmod(v, kExponent, kPrime);
  // Horner evaluation of a4 v^4 + a3 v^3 + a2 v^2 + a1 v + a0.
  std::uint64_t low = coeff_[4];
  for (int i = 3; i >= 0; --i) {
    low = mulmod(low, v, kPrime);
    low = (low + coeff_[i]) % kPrime;
  }
  acc = (acc + low) % kPrime;
  // Fold the high bits into the truncation so all 64 result bits matter.
  return (acc ^ (acc >> 48) * 0x9E37ULL) & kMask48;
}

DaviesMeyerOneWay::DaviesMeyerOneWay(std::uint64_t constant)
    : constant_(constant & kMask48) {}

std::uint64_t DaviesMeyerOneWay::apply_raw(std::uint64_t x) const {
  require_48(x, "DaviesMeyerOneWay");
  // The input is the cipher *key*; recovering the key from a known
  // plaintext/ciphertext pair is the block cipher's key-recovery problem.
  const Feistel cipher(x, 48);
  return cipher.encrypt(constant_) ^ constant_;
}

std::shared_ptr<const OneWayFn> default_one_way() {
  static const auto instance = std::make_shared<const PurdyOneWay>();
  return instance;
}

}  // namespace amoeba::crypto
