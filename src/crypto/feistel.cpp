#include "amoeba/crypto/feistel.hpp"

#include "amoeba/common/error.hpp"

namespace amoeba::crypto {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Feistel::Feistel(std::uint64_t key, int block_bits)
    : block_bits_(block_bits), half_bits_(block_bits / 2) {
  if (block_bits < 16 || block_bits > 64 || block_bits % 2 != 0) {
    throw UsageError("Feistel block width must be even and in [16, 64]");
  }
  half_mask_ = half_bits_ == 32
                   ? 0xFFFFFFFFu
                   : ((std::uint32_t{1} << half_bits_) - 1);
  // Key schedule: stretch the 64-bit key through splitmix64, folding the
  // block width in so the same key yields unrelated schedules at different
  // widths.
  std::uint64_t s = key ^ (0xA0EBA000ULL + static_cast<std::uint64_t>(block_bits));
  for (auto& rk : round_keys_) {
    rk = splitmix64(s);
  }
}

std::uint32_t Feistel::round_fn(std::uint32_t half,
                                std::uint64_t round_key) const {
  // ARX mixer in 64-bit arithmetic, folded back to half width.  Two
  // multiplications by odd constants plus xor-shifts give full diffusion
  // across the half-block in one round.
  std::uint64_t x = half;
  x += round_key;
  x *= 0x9E3779B97F4A7C15ULL;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 32;
  x ^= round_key >> 17;
  // Fold the upper bits down so narrow halves still see the high entropy.
  x ^= x >> half_bits_;
  return static_cast<std::uint32_t>(x) & half_mask_;
}

std::uint64_t Feistel::encrypt(std::uint64_t plaintext) const {
  if (block_bits_ < 64 && (plaintext >> block_bits_) != 0) {
    throw UsageError("Feistel::encrypt: plaintext exceeds block width");
  }
  std::uint32_t left =
      static_cast<std::uint32_t>(plaintext >> half_bits_) & half_mask_;
  std::uint32_t right = static_cast<std::uint32_t>(plaintext) & half_mask_;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint32_t next_left = right;
    right = left ^ round_fn(right, round_keys_[r]);
    left = next_left;
  }
  return (static_cast<std::uint64_t>(left) << half_bits_) | right;
}

std::uint64_t Feistel::decrypt(std::uint64_t ciphertext) const {
  if (block_bits_ < 64 && (ciphertext >> block_bits_) != 0) {
    throw UsageError("Feistel::decrypt: ciphertext exceeds block width");
  }
  std::uint32_t left =
      static_cast<std::uint32_t>(ciphertext >> half_bits_) & half_mask_;
  std::uint32_t right = static_cast<std::uint32_t>(ciphertext) & half_mask_;
  for (int r = kRounds - 1; r >= 0; --r) {
    const std::uint32_t next_right = left;
    left = right ^ round_fn(left, round_keys_[r]);
    right = next_right;
  }
  return (static_cast<std::uint64_t>(left) << half_bits_) | right;
}

}  // namespace amoeba::crypto
