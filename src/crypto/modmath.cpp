#include "amoeba/crypto/modmath.hpp"

#include <array>

namespace amoeba::crypto {

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  if (m == 1) {
    return 0;
  }
  std::uint64_t result = 1;
  std::uint64_t acc = base % m;
  while (exp != 0) {
    if (exp & 1) {
      result = mulmod(result, acc, m);
    }
    acc = mulmod(acc, acc, m);
    exp >>= 1;
  }
  return result;
}

namespace {

bool miller_rabin_witness(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                          int r) {
  std::uint64_t x = powmod(a % n, d, n);
  if (x == 1 || x == n - 1) {
    return false;  // not a witness for compositeness
  }
  for (int i = 1; i < r; ++i) {
    x = mulmod(x, x, n);
    if (x == n - 1) {
      return false;
    }
  }
  return true;  // witnesses that n is composite
}

}  // namespace

bool is_prime(std::uint64_t n) {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // Write n-1 = d * 2^r with d odd.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This base set is a proven deterministic witness set for all n < 2^64
  // (Sinclair, 2011).
  for (std::uint64_t a : {2ULL, 325ULL, 9375ULL, 28178ULL, 450775ULL,
                          9780504ULL, 1795265022ULL}) {
    if (a % n == 0) continue;
    if (miller_rabin_witness(n, a, d, r)) {
      return false;
    }
  }
  return true;
}

std::uint64_t gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::uint64_t modinv(std::uint64_t a, std::uint64_t m) {
  // Extended Euclid over signed 128-bit accumulators so intermediate
  // Bezout coefficients may go negative.
  __int128 t = 0, new_t = 1;
  __int128 r = m, new_r = a % m;
  while (new_r != 0) {
    const __int128 q = r / new_r;
    const __int128 tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    const __int128 tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r != 1) {
    return 0;  // not invertible
  }
  if (t < 0) {
    t += m;
  }
  return static_cast<std::uint64_t>(t);
}

}  // namespace amoeba::crypto
