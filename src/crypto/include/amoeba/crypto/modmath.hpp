// Modular arithmetic over 64-bit moduli (via 128-bit intermediates) plus
// the number-theoretic utilities the crypto substrate needs: Miller-Rabin
// primality (deterministic for 64-bit inputs), prime generation, gcd and
// modular inverse.
#pragma once

#include <cstdint>

namespace amoeba::crypto {

/// (a * b) mod m without overflow.
[[nodiscard]] std::uint64_t mulmod(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t m);

/// (base ^ exp) mod m.  powmod(x, e, 1) == 0 for all x, e.
[[nodiscard]] std::uint64_t powmod(std::uint64_t base, std::uint64_t exp,
                                   std::uint64_t m);

/// Deterministic Miller-Rabin: exact for every 64-bit input.
[[nodiscard]] bool is_prime(std::uint64_t n);

/// Greatest common divisor.
[[nodiscard]] std::uint64_t gcd(std::uint64_t a, std::uint64_t b);

/// Multiplicative inverse of a mod m, or 0 when gcd(a, m) != 1.
[[nodiscard]] std::uint64_t modinv(std::uint64_t a, std::uint64_t m);

}  // namespace amoeba::crypto
