// Toy RSA for the F-box-less boot protocol (§2.4).
//
// The paper's software protection scheme bootstraps the conventional key
// matrix with public-key cryptography: a server publishes its public key;
// a client sends a fresh conventional key encrypted with it; the server
// replies encrypted both with that key and "with the inverse of F's public
// key" (an RSA private-key transform) to prove its identity.
//
// This implementation is textbook RSA over ~62-bit moduli -- large enough
// that the simulated intruder cannot invert it by the black-box guessing
// he is limited to, small enough to need no bignum library.  It is
// explicitly simulation-grade (DESIGN.md substitution table); the protocol
// structure, which is what the paper is about, is unchanged.
#pragma once

#include <cstdint>
#include <optional>

#include "amoeba/common/rng.hpp"
#include "amoeba/common/serial.hpp"

namespace amoeba::crypto {

struct RsaPublicKey {
  std::uint64_t n = 0;
  std::uint64_t e = 0;
};

struct RsaPrivateKey {
  std::uint64_t n = 0;
  std::uint64_t d = 0;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generates a fresh key pair: 31-bit primes, n in [2^60, 2^62), e = 65537.
[[nodiscard]] RsaKeyPair rsa_generate(Rng& rng);

/// Core transform on a single block m < n.
[[nodiscard]] std::uint64_t rsa_apply_block(std::uint64_t n, std::uint64_t exp,
                                            std::uint64_t m);

/// Seals a byte string under (n, exp): a u32 length header followed by one
/// u64 cipher block per 4-byte chunk.  Works for both "encrypt with public
/// key" and "transform with private key" (same math, different exponent).
[[nodiscard]] Buffer rsa_wrap(std::uint64_t n, std::uint64_t exp,
                              std::span<const std::uint8_t> plain);

/// Inverse of rsa_wrap under the matching exponent.  Returns nullopt when
/// the buffer is malformed or any block decrypts outside the 32-bit chunk
/// range -- which is what happens, with overwhelming probability, when the
/// wrong key is used (this is the integrity check the replay experiment
/// relies on).
[[nodiscard]] std::optional<Buffer> rsa_unwrap(
    std::uint64_t n, std::uint64_t exp, std::span<const std::uint8_t> sealed);

}  // namespace amoeba::crypto
