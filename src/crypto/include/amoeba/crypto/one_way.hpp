// One-way functions over the 48-bit port/check domain.
//
// The F-box applies a publicly known one-way function F to map a secret
// get-port G to the public put-port P = F(G) (§2.2), and Scheme 2 uses the
// same primitive over check fields:  CHECK = F(random XOR rights).
//
// Two interchangeable constructions are provided behind one interface:
//   * PurdyOneWay -- a sparse high-degree polynomial modulo a large prime,
//     the exact construction of Purdy (CACM 1974), which the paper cites.
//   * DaviesMeyerOneWay -- E_x(C) XOR C over the 48-bit Feistel cipher,
//     the classic way to build a one-way function from a block cipher.
// Both are deterministic, publicly computable, and preimage-resistant
// against the simulated intruder (who only mounts black-box guessing).
#pragma once

#include <cstdint>
#include <memory>

#include "amoeba/common/types.hpp"

namespace amoeba::crypto {

class OneWayFn {
 public:
  virtual ~OneWayFn() = default;

  /// Raw 48-bit domain map.  The input must fit in 48 bits (UsageError).
  [[nodiscard]] virtual std::uint64_t apply_raw(std::uint64_t x) const = 0;

  /// Port-typed convenience: P = F(G).
  [[nodiscard]] Port apply(Port g) const { return Port(apply_raw(g.value())); }
};

/// Purdy-style polynomial over GF(p), p = 2^64 - 59 (the largest 64-bit
/// prime):  f(x) = x^e + a4 x^4 + a3 x^3 + a2 x^2 + a1 x + a0  (mod p),
/// truncated to 48 bits.  e = 2^24 + 17 keeps evaluation to ~25 modular
/// squarings, matching Purdy's "sparse polynomial" design.
class PurdyOneWay final : public OneWayFn {
 public:
  PurdyOneWay();
  /// Domain-separated variant: different `tweak` values give independent
  /// one-way functions (used for the signature experiments).
  explicit PurdyOneWay(std::uint64_t tweak);

  [[nodiscard]] std::uint64_t apply_raw(std::uint64_t x) const override;

 private:
  std::uint64_t coeff_[5];  // a0..a4
};

/// Davies-Meyer over the width-48 Feistel cipher: F(x) = E_x(C) XOR C.
class DaviesMeyerOneWay final : public OneWayFn {
 public:
  explicit DaviesMeyerOneWay(std::uint64_t constant = 0x00C0FFEE48ULL);

  [[nodiscard]] std::uint64_t apply_raw(std::uint64_t x) const override;

 private:
  std::uint64_t constant_;
};

/// The system-wide default F used by every F-box unless a test installs
/// another.  Shared because F is, per the paper, "publicly-known".
[[nodiscard]] std::shared_ptr<const OneWayFn> default_one_way();

}  // namespace amoeba::crypto
