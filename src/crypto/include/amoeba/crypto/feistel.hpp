// A balanced Feistel cipher over configurable block widths.
//
// The paper's Scheme 1 encrypts the concatenated RIGHTS (8 bit) and CHECK
// (48 bit) fields -- a 56-bit block -- and explicitly requires "an
// encryption function that mixes the bits thoroughly ... EXCLUSIVE-OR'ing a
// constant will not do."  DES is neither available offline nor essential;
// what is essential is a keyed permutation with strong avalanche over odd
// block sizes.  A balanced Feistel network delivers exactly that for any
// even block width, so one implementation serves:
//   * width 56 -- Scheme 1 capability sealing,
//   * width 64 -- the software key-matrix scheme of §2.4 (DES stand-in),
//   * width 48 -- the Davies-Meyer one-way function over ports.
// The round function is an ARX-style mixer (add-rotate-xor with two
// multiplications), giving measured avalanche ~0.5 at 16+ rounds (see
// tests/crypto_test.cpp).  Simulation-grade by design; documented as such
// in DESIGN.md.
#pragma once

#include <cstdint>

namespace amoeba::crypto {

class Feistel {
 public:
  static constexpr int kRounds = 18;

  /// Creates a cipher over `block_bits`-wide values (even, 16..64) keyed by
  /// `key`.  Throws UsageError on an unsupported width.
  Feistel(std::uint64_t key, int block_bits);

  /// Encrypts a value; bits above block_bits must be zero (UsageError).
  [[nodiscard]] std::uint64_t encrypt(std::uint64_t plaintext) const;

  /// Inverse of encrypt.
  [[nodiscard]] std::uint64_t decrypt(std::uint64_t ciphertext) const;

  [[nodiscard]] int block_bits() const { return block_bits_; }

 private:
  [[nodiscard]] std::uint32_t round_fn(std::uint32_t half,
                                       std::uint64_t round_key) const;

  int block_bits_;
  int half_bits_;
  std::uint32_t half_mask_;
  std::uint64_t round_keys_[kRounds];
};

}  // namespace amoeba::crypto
