// The commutative one-way function family for Scheme 3 (§2.3).
//
// The paper requires N commutative one-way functions F_0..F_{N-1}, one per
// rights bit, such that any capability holder can delete right k locally
// by replacing the check field R with F_k(R) -- in any order -- while the
// server, knowing the original random number, can recompute the expected
// value by applying the functions for all cleared bits.
//
// Realization: power maps over an RSA-style modulus n = p*q,
//     F_k(x) = x^{e_k} mod n,
// which commute exactly ((x^{e_j})^{e_k} = (x^{e_k})^{e_j} = x^{e_j e_k})
// and are one-way for parties who do not know the factorization (taking
// e-th roots mod n is the RSA problem).  n is chosen in (2^47, 2^48) so
// every value fits the 48-bit check field.  The factorization is generated
// and immediately discarded -- not even the server needs it, because
// validation only ever applies the functions forward.  Key sizes are
// simulation-grade; see DESIGN.md substitution table.
#pragma once

#include <array>
#include <cstdint>

#include "amoeba/common/rng.hpp"
#include "amoeba/common/types.hpp"

namespace amoeba::crypto {

class CommutativeFamily {
 public:
  static constexpr int kFunctions = Rights::kBits;  // one per rights bit

  /// Generates the public modulus from the rng (factors are discarded).
  explicit CommutativeFamily(Rng& rng);

  /// Reconstructs a family from its public parameters (modulus and
  /// exponents), e.g. on the client side of a published family.
  CommutativeFamily(std::uint64_t modulus,
                    const std::array<std::uint64_t, kFunctions>& exponents);

  /// F_k(x) = x^{e_k} mod n.  Precondition: k in [0, kFunctions).
  [[nodiscard]] std::uint64_t apply(int k, std::uint64_t x) const;

  /// Applies F_k for every rights bit k that is CLEAR in `remaining` --
  /// i.e. for every deleted right.  This is the server's validation step:
  /// fold the deleted-right functions over the stored original number and
  /// compare with the presented check field.
  [[nodiscard]] std::uint64_t apply_for_cleared(Rights remaining,
                                                std::uint64_t x) const;

  /// A uniform value in [0, modulus), suitable as an object's original
  /// random number (guarantees all derived values stay in-domain).
  [[nodiscard]] std::uint64_t random_element(Rng& rng) const;

  [[nodiscard]] std::uint64_t modulus() const { return modulus_; }
  [[nodiscard]] const std::array<std::uint64_t, kFunctions>& exponents()
      const {
    return exponents_;
  }

 private:
  std::uint64_t modulus_;
  std::array<std::uint64_t, kFunctions> exponents_;
};

}  // namespace amoeba::crypto
