#include "amoeba/servers/directory_server.hpp"

namespace amoeba::servers {

DirectoryServer::DirectoryServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed)
    : rpc::Service(machine, get_port, "directory"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed) {
  register_owner_ops(*this, store_);
  on(dir_op::kCreateDir, [this](const net::Delivery& request) {
    return capability_reply(request, store_.create(Directory{}));
  });
  on(dir_op::kLookup,
     [this](const net::Delivery& request) { return do_lookup(request); });
  on(dir_op::kEnter,
     [this](const net::Delivery& request) { return do_enter(request); });
  on(dir_op::kRemove,
     [this](const net::Delivery& request) { return do_remove(request); });
  on(dir_op::kList,
     [this](const net::Delivery& request) { return do_list(request); });
  on(dir_op::kDeleteDir,
     [this](const net::Delivery& request) { return do_delete(request); });
}

net::Message DirectoryServer::do_lookup(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Reader r(request.message.data);
  const std::string name = r.str();
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const Directory& dir = *opened.value().value;
  auto it = dir.find(name);
  if (it == dir.end()) {
    return error_reply(request, ErrorCode::not_found);
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.capability = it->second;
  return reply;
}

net::Message DirectoryServer::do_enter(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Reader r(request.message.data);
  const std::string name = r.str();
  const core::Capability target = read_capability(r);
  if (!r.exhausted() || name.empty()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  Directory& dir = *opened.value().value;
  if (dir.contains(name)) {
    return error_reply(request, ErrorCode::exists);
  }
  dir.emplace(name, core::pack(target));
  return error_reply(request, ErrorCode::ok);
}

net::Message DirectoryServer::do_remove(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Reader r(request.message.data);
  const std::string name = r.str();
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  return error_reply(request, opened.value().value->erase(name) > 0
                                  ? ErrorCode::ok
                                  : ErrorCode::not_found);
}

net::Message DirectoryServer::do_list(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Writer w;
  const Directory& dir = *opened.value().value;
  w.u32(static_cast<std::uint32_t>(dir.size()));
  for (const auto& [name, capability] : dir) {
    w.str(name);
    write_capability(w, core::unpack(capability));
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.data = w.take();
  return reply;
}

net::Message DirectoryServer::do_delete(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kDestroy);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  if (!opened.value().value->empty()) {
    return error_reply(request, ErrorCode::not_empty);
  }
  return error_reply(request,
                     store_.destroy(std::move(opened.value())).error());
}

// --------------------------------------------------------- DirectoryClient

Result<core::Capability> DirectoryClient::create_dir() {
  auto reply = call(*transport_, server_port_, dir_op::kCreateDir);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<core::Capability> DirectoryClient::lookup(const core::Capability& dir,
                                                 const std::string& name) {
  Writer w;
  w.str(name);
  auto reply =
      call(*transport_, server_port_, dir_op::kLookup, &dir, w.take());
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<void> DirectoryClient::enter(const core::Capability& dir,
                                    const std::string& name,
                                    const core::Capability& target) {
  Writer w;
  w.str(name);
  write_capability(w, target);
  return as_void(
      call(*transport_, server_port_, dir_op::kEnter, &dir, w.take()));
}

Result<void> DirectoryClient::remove(const core::Capability& dir,
                                     const std::string& name) {
  Writer w;
  w.str(name);
  return as_void(
      call(*transport_, server_port_, dir_op::kRemove, &dir, w.take()));
}

Result<std::vector<DirEntry>> DirectoryClient::list(
    const core::Capability& dir) {
  auto reply = call(*transport_, server_port_, dir_op::kList, &dir);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value().data);
  const std::uint32_t count = r.u32();
  std::vector<DirEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DirEntry entry;
    entry.name = r.str();
    entry.capability = read_capability(r);
    entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) {
    return ErrorCode::internal;
  }
  return entries;
}

Result<void> DirectoryClient::delete_dir(const core::Capability& dir) {
  return as_void(call(*transport_, server_port_, dir_op::kDeleteDir, &dir));
}

Result<core::Capability> resolve_path(rpc::Transport& transport,
                                      const core::Capability& root,
                                      std::string_view path) {
  // Validate syntax up front: no leading/trailing/doubled separators.
  if (!path.empty() &&
      (path.front() == '/' || path.back() == '/' ||
       path.find("//") != std::string_view::npos)) {
    return ErrorCode::invalid_argument;
  }
  core::Capability current = root;
  std::size_t begin = 0;
  while (begin < path.size()) {
    const std::size_t slash = path.find('/', begin);
    const std::string_view component =
        path.substr(begin, slash == std::string_view::npos ? path.size() - begin
                                                           : slash - begin);
    if (component.empty()) {
      return ErrorCode::invalid_argument;
    }
    // Address the lookup to whatever server manages the current node --
    // this is what makes cross-server traversal transparent.
    DirectoryClient dir(transport, current.server_port);
    auto next = dir.lookup(current, std::string(component));
    if (!next.ok()) {
      // A non-directory server answers a LOOKUP with no_such_operation
      // (opcode spaces are disjoint per service class): the path used a
      // file as a directory -- ENOTDIR in UNIX terms.
      if (next.error() == ErrorCode::no_such_operation) {
        return ErrorCode::invalid_argument;
      }
      return next.error();
    }
    current = next.value();
    if (slash == std::string_view::npos) {
      break;
    }
    begin = slash + 1;
  }
  return current;
}

}  // namespace amoeba::servers
