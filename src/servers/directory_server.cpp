#include "amoeba/servers/directory_server.hpp"

#include <optional>

namespace amoeba::servers {
namespace {

/// True for paths resolve_path/resolve_paths reject up front: no leading,
/// trailing, or doubled separators.
[[nodiscard]] bool malformed_path(std::string_view path) {
  return !path.empty() && (path.front() == '/' || path.back() == '/' ||
                           path.find("//") != std::string_view::npos);
}

/// Splits the leading component off `path` ("a/b/c" -> "a", rest "b/c").
[[nodiscard]] std::string_view pop_component(std::string_view& path) {
  const std::size_t slash = path.find('/');
  std::string_view component;
  if (slash == std::string_view::npos) {
    component = path;
    path = {};
  } else {
    component = path.substr(0, slash);
    path.remove_prefix(slash + 1);
  }
  return component;
}

/// A non-directory server answers a LOOKUP with no_such_operation (opcode
/// spaces are disjoint per service class): the path used a file as a
/// directory -- ENOTDIR in UNIX terms.
[[nodiscard]] ErrorCode as_walk_error(ErrorCode code) {
  return code == ErrorCode::no_such_operation ? ErrorCode::invalid_argument
                                              : code;
}

}  // namespace

DirectoryServer::DirectoryServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed)
    : rpc::Service(machine, get_port, "directory"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed) {
  register_owner_ops(*this, store_);
  on(dir_op::kCreateDir, [this](const net::Delivery& request) {
    return capability_reply(request, store_.create(Directory{}));
  });
  on(dir_op::kLookup,
     [this](const net::Delivery& request) { return do_lookup(request); });
  on(dir_op::kEnter,
     [this](const net::Delivery& request) { return do_enter(request); });
  on(dir_op::kRemove,
     [this](const net::Delivery& request) { return do_remove(request); });
  on(dir_op::kList,
     [this](const net::Delivery& request) { return do_list(request); });
  on(dir_op::kDeleteDir,
     [this](const net::Delivery& request) { return do_delete(request); });
}

net::Message DirectoryServer::do_lookup(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Reader r(request.message.data);
  const std::string name = r.str();
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const Directory& dir = *opened.value().value;
  auto it = dir.find(name);
  if (it == dir.end()) {
    return error_reply(request, ErrorCode::not_found);
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.capability = it->second;
  return reply;
}

net::Message DirectoryServer::do_enter(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Reader r(request.message.data);
  const std::string name = r.str();
  const core::Capability target = read_capability(r);
  if (!r.exhausted() || name.empty()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  Directory& dir = *opened.value().value;
  if (dir.contains(name)) {
    return error_reply(request, ErrorCode::exists);
  }
  dir.emplace(name, core::pack(target));
  return error_reply(request, ErrorCode::ok);
}

net::Message DirectoryServer::do_remove(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Reader r(request.message.data);
  const std::string name = r.str();
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  return error_reply(request, opened.value().value->erase(name) > 0
                                  ? ErrorCode::ok
                                  : ErrorCode::not_found);
}

net::Message DirectoryServer::do_list(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Writer w;
  const Directory& dir = *opened.value().value;
  w.u32(static_cast<std::uint32_t>(dir.size()));
  for (const auto& [name, capability] : dir) {
    w.str(name);
    write_capability(w, core::unpack(capability));
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.data = w.take();
  return reply;
}

net::Message DirectoryServer::do_delete(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kDestroy);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  if (!opened.value().value->empty()) {
    return error_reply(request, ErrorCode::not_empty);
  }
  return error_reply(request,
                     store_.destroy(std::move(opened.value())).error());
}

// --------------------------------------------------------- DirectoryClient

Result<core::Capability> DirectoryClient::create_dir() {
  auto reply = call(*transport_, server_port_, dir_op::kCreateDir);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<core::Capability> DirectoryClient::lookup(const core::Capability& dir,
                                                 const std::string& name) {
  Writer w;
  w.str(name);
  auto reply =
      call(*transport_, server_port_, dir_op::kLookup, &dir, w.take());
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<void> DirectoryClient::enter(const core::Capability& dir,
                                    const std::string& name,
                                    const core::Capability& target) {
  Writer w;
  w.str(name);
  write_capability(w, target);
  return as_void(
      call(*transport_, server_port_, dir_op::kEnter, &dir, w.take()));
}

Result<void> DirectoryClient::remove(const core::Capability& dir,
                                     const std::string& name) {
  Writer w;
  w.str(name);
  return as_void(
      call(*transport_, server_port_, dir_op::kRemove, &dir, w.take()));
}

Result<std::vector<DirEntry>> DirectoryClient::list(
    const core::Capability& dir) {
  auto reply = call(*transport_, server_port_, dir_op::kList, &dir);
  if (!reply.ok()) {
    return reply.error();
  }
  Reader r(reply.value().data);
  const std::uint32_t count = r.u32();
  std::vector<DirEntry> entries;
  entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DirEntry entry;
    entry.name = r.str();
    entry.capability = read_capability(r);
    entries.push_back(std::move(entry));
  }
  if (!r.exhausted()) {
    return ErrorCode::internal;
  }
  return entries;
}

Result<void> DirectoryClient::delete_dir(const core::Capability& dir) {
  return as_void(call(*transport_, server_port_, dir_op::kDeleteDir, &dir));
}

Result<core::Capability> resolve_path(rpc::Transport& transport,
                                      const core::Capability& root,
                                      std::string_view path) {
  if (malformed_path(path)) {
    return ErrorCode::invalid_argument;
  }
  core::Capability current = root;
  while (!path.empty()) {
    const std::string_view component = pop_component(path);
    // Address the lookup to whatever server manages the current node --
    // this is what makes cross-server traversal transparent.
    DirectoryClient dir(transport, current.server_port);
    auto next = dir.lookup(current, std::string(component));
    if (!next.ok()) {
      return as_walk_error(next.error());
    }
    current = next.value();
  }
  return current;
}

std::vector<Result<core::Capability>> resolve_paths(
    rpc::Transport& transport, const core::Capability& root,
    std::span<const std::string> paths) {
  struct Walk {
    core::Capability at;
    std::string_view rest;
    std::optional<ErrorCode> failed;
    bool done = false;
  };
  std::vector<Walk> walks(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    walks[i].at = root;
    walks[i].rest = paths[i];
    if (malformed_path(walks[i].rest)) {
      walks[i].failed = ErrorCode::invalid_argument;
    } else if (walks[i].rest.empty()) {
      walks[i].done = true;  // empty path resolves to the root itself
    }
  }
  // Level-synchronous rounds: every unfinished walk advances one
  // component per round, and walks standing at the same server share one
  // batch frame.  Port order in the map keeps round trips deterministic.
  for (;;) {
    std::map<Port, std::vector<std::size_t>> frontier;
    for (std::size_t i = 0; i < walks.size(); ++i) {
      if (!walks[i].done && !walks[i].failed.has_value()) {
        frontier[walks[i].at.server_port].push_back(i);
      }
    }
    if (frontier.empty()) {
      break;
    }
    for (auto& [server, members] : frontier) {
      rpc::Batch batch(transport, server);
      for (const auto i : members) {
        Writer w;
        w.str(pop_component(walks[i].rest));
        const auto packed = core::pack(walks[i].at);
        batch.add(dir_op::kLookup, &packed, w.take());
      }
      auto replies = batch.run();
      if (!replies.ok()) {
        for (const auto i : members) {
          walks[i].failed = as_walk_error(replies.error());
        }
        continue;
      }
      // run() guarantees one reply per queued entry on success.
      for (std::size_t k = 0; k < members.size(); ++k) {
        Walk& walk = walks[members[k]];
        const rpc::BatchReply& reply = replies.value()[k];
        if (reply.status != ErrorCode::ok) {
          walk.failed = as_walk_error(reply.status);
          continue;
        }
        walk.at = core::unpack(reply.capability);
        walk.done = walk.rest.empty();
      }
    }
  }
  std::vector<Result<core::Capability>> results;
  results.reserve(walks.size());
  for (const auto& walk : walks) {
    results.push_back(walk.failed.has_value()
                          ? Result<core::Capability>(*walk.failed)
                          : Result<core::Capability>(walk.at));
  }
  return results;
}

}  // namespace amoeba::servers
