#include "amoeba/servers/directory_server.hpp"

#include <optional>

namespace amoeba::servers {
namespace {

/// True for paths resolve_path/resolve_paths reject up front: no leading,
/// trailing, or doubled separators.
[[nodiscard]] bool malformed_path(std::string_view path) {
  return !path.empty() && (path.front() == '/' || path.back() == '/' ||
                           path.find("//") != std::string_view::npos);
}

/// Splits the leading component off `path` ("a/b/c" -> "a", rest "b/c").
[[nodiscard]] std::string_view pop_component(std::string_view& path) {
  const std::size_t slash = path.find('/');
  std::string_view component;
  if (slash == std::string_view::npos) {
    component = path;
    path = {};
  } else {
    component = path.substr(0, slash);
    path.remove_prefix(slash + 1);
  }
  return component;
}

/// A non-directory server answers a LOOKUP with no_such_operation (opcode
/// spaces are disjoint per service class): the path used a file as a
/// directory -- ENOTDIR in UNIX terms.
[[nodiscard]] ErrorCode as_walk_error(ErrorCode code) {
  return code == ErrorCode::no_such_operation ? ErrorCode::invalid_argument
                                              : code;
}

}  // namespace

core::Durability<DirectoryServer::Directory> DirectoryServer::durability(
    std::shared_ptr<storage::Backend> backend,
    std::shared_ptr<storage::GroupCommitter> committer) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Directory> d;
  d.backend = std::move(backend);
  d.committer = std::move(committer);
  d.encode = [](Writer& w, const Directory& dir) {
    w.u32(static_cast<std::uint32_t>(dir.size()));
    for (const auto& [name, capability] : dir) {
      w.str(name);
      w.raw(capability);
    }
  };
  d.decode = [](Reader& r, Directory& dir) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      std::string name = r.str();
      core::CapabilityBytes capability{};
      r.raw(capability);
      dir.emplace(std::move(name), capability);
    }
    return r.ok();
  };
  return d;
}

DirectoryServer::DirectoryServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed,
    std::shared_ptr<storage::Backend> backend)
    : rpc::Service(machine, get_port, "directory"),
      committer_(storage::GroupCommitter::create(backend)),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed,
             Store::kDefaultShards, durability(backend, committer_)) {
  attach_durability(std::move(backend), committer_);
  // std.destroy keeps the delete semantics: only empty directories die.
  rpc::register_std_ops(
      *this, store_,
      {.destroy = [this](Store::Opened&& dir) {
         return do_delete(std::move(dir));
       }});
  on(dir_ops::kCreateDir, [this](const auto&) -> Result<rpc::CapabilityReply> {
    return rpc::CapabilityReply{store_.create(Directory{})};
  });
  // kLookup/kList are the directory read paths; their open() validates a
  // repeat directory capability lock-free before taking the shard mutex.
  on(dir_ops::kLookup, store_, [this](const auto& call, auto& dir) {
    return do_lookup(call.body, dir);
  });
  on(dir_ops::kEnter, store_, [this](const auto& call, auto& dir) {
    return do_enter(call.body, dir);
  });
  on(dir_ops::kRemove, store_, [this](const auto& call, auto& dir) {
    return do_remove(call.body, dir);
  });
  on(dir_ops::kList, store_,
     [this](const auto&, auto& dir) { return do_list(dir); });
  on(dir_ops::kDeleteDir, store_, [this](const auto&, auto& dir) {
    return do_delete(std::move(dir));
  });
}

Result<rpc::CapabilityReply> DirectoryServer::do_lookup(
    const dir_ops::NameRequest& req, Store::Opened& dir) {
  auto it = dir.value->find(req.name);
  if (it == dir.value->end()) {
    return ErrorCode::not_found;
  }
  return rpc::CapabilityReply{core::unpack(it->second)};
}

Result<void> DirectoryServer::do_enter(const dir_ops::EnterRequest& req,
                                       Store::Opened& dir) {
  if (req.name.empty()) {
    return ErrorCode::invalid_argument;
  }
  if (dir.value->contains(req.name)) {
    return ErrorCode::exists;
  }
  dir.value->emplace(req.name, core::pack(req.target));
  dir.mark_dirty();
  return {};
}

Result<void> DirectoryServer::do_remove(const dir_ops::NameRequest& req,
                                        Store::Opened& dir) {
  if (dir.value->erase(req.name) == 0) {
    return ErrorCode::not_found;
  }
  dir.mark_dirty();
  return {};
}

Result<dir_ops::ListReply> DirectoryServer::do_list(Store::Opened& dir) {
  dir_ops::ListReply reply;
  reply.entries.reserve(dir.value->size());
  for (const auto& [name, capability] : *dir.value) {
    reply.entries.push_back(DirEntry{name, core::unpack(capability)});
  }
  return reply;
}

Result<void> DirectoryServer::do_delete(Store::Opened&& dir) {
  if (!dir.value->empty()) {
    return ErrorCode::not_empty;
  }
  return store_.destroy(std::move(dir));
}

// --------------------------------------------------------- DirectoryClient

Result<core::Capability> DirectoryClient::create_dir() {
  auto reply = rpc::call(*transport_, server_port_, dir_ops::kCreateDir);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<core::Capability> DirectoryClient::lookup(const core::Capability& dir,
                                                 const std::string& name) {
  auto reply =
      rpc::call(*transport_, server_port_, dir_ops::kLookup, dir, {name});
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<void> DirectoryClient::enter(const core::Capability& dir,
                                    const std::string& name,
                                    const core::Capability& target) {
  return rpc::call(*transport_, server_port_, dir_ops::kEnter, dir,
                   {name, target});
}

Result<void> DirectoryClient::remove(const core::Capability& dir,
                                     const std::string& name) {
  return rpc::call(*transport_, server_port_, dir_ops::kRemove, dir, {name});
}

Result<std::vector<DirEntry>> DirectoryClient::list(
    const core::Capability& dir) {
  auto reply = rpc::call(*transport_, server_port_, dir_ops::kList, dir);
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().entries);
}

Result<void> DirectoryClient::delete_dir(const core::Capability& dir) {
  return rpc::call(*transport_, server_port_, dir_ops::kDeleteDir, dir);
}

Result<core::Capability> resolve_path(rpc::Transport& transport,
                                      const core::Capability& root,
                                      std::string_view path) {
  if (malformed_path(path)) {
    return ErrorCode::invalid_argument;
  }
  core::Capability current = root;
  while (!path.empty()) {
    const std::string_view component = pop_component(path);
    // Address the lookup to whatever server manages the current node --
    // this is what makes cross-server traversal transparent.
    DirectoryClient dir(transport, current.server_port);
    auto next = dir.lookup(current, std::string(component));
    if (!next.ok()) {
      return as_walk_error(next.error());
    }
    current = next.value();
  }
  return current;
}

std::vector<Result<core::Capability>> resolve_paths(
    rpc::Transport& transport, const core::Capability& root,
    std::span<const std::string> paths) {
  struct Walk {
    core::Capability at;
    std::string_view rest;
    std::optional<ErrorCode> failed;
    bool done = false;
  };
  std::vector<Walk> walks(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    walks[i].at = root;
    walks[i].rest = paths[i];
    if (malformed_path(walks[i].rest)) {
      walks[i].failed = ErrorCode::invalid_argument;
    } else if (walks[i].rest.empty()) {
      walks[i].done = true;  // empty path resolves to the root itself
    }
  }
  // Level-synchronous rounds: every unfinished walk advances one
  // component per round, and walks standing at the same server share one
  // batch frame.  Port order in the map keeps round trips deterministic.
  for (;;) {
    std::map<Port, std::vector<std::size_t>> frontier;
    for (std::size_t i = 0; i < walks.size(); ++i) {
      if (!walks[i].done && !walks[i].failed.has_value()) {
        frontier[walks[i].at.server_port].push_back(i);
      }
    }
    if (frontier.empty()) {
      break;
    }
    for (auto& [server, members] : frontier) {
      rpc::TypedBatch batch(transport, server);
      std::vector<rpc::TypedBatch::Entry<dir_ops::LookupOp>> entries;
      entries.reserve(members.size());
      for (const auto i : members) {
        entries.push_back(
            batch.add(dir_ops::kLookup, walks[i].at,
                      {std::string(pop_component(walks[i].rest))}));
      }
      auto replies = batch.run();
      if (!replies.ok()) {
        for (const auto i : members) {
          walks[i].failed = as_walk_error(replies.error());
        }
        continue;
      }
      // run() guarantees one reply per queued entry on success.
      for (std::size_t k = 0; k < members.size(); ++k) {
        Walk& walk = walks[members[k]];
        auto found = replies.value().get(entries[k]);
        if (!found.ok()) {
          walk.failed = as_walk_error(found.error());
          continue;
        }
        walk.at = found.value().capability;
        walk.done = walk.rest.empty();
      }
    }
  }
  std::vector<Result<core::Capability>> results;
  results.reserve(walks.size());
  for (const auto& walk : walks) {
    results.push_back(walk.failed.has_value()
                          ? Result<core::Capability>(*walk.failed)
                          : Result<core::Capability>(walk.at));
  }
  return results;
}

}  // namespace amoeba::servers
