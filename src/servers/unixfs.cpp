#include "amoeba/servers/unixfs.hpp"

#include <algorithm>
#include <map>
#include <variant>

namespace amoeba::servers {

UnixFs::UnixFs(rpc::Transport& transport, Port file_server_port,
               core::Capability root)
    : transport_(&transport),
      file_server_port_(file_server_port),
      root_(root) {}

Result<UnixFs> UnixFs::format(rpc::Transport& transport,
                              Port directory_server_port,
                              Port file_server_port) {
  DirectoryClient dirs(transport, directory_server_port);
  auto root = dirs.create_dir();
  if (!root.ok()) {
    return root.error();
  }
  return UnixFs(transport, file_server_port, root.value());
}

bool UnixFs::is_directory_capability(const core::Capability& cap) const {
  // Directories and files are told apart by their managing service: the
  // SERVER field of the capability is the ground truth.
  return cap.server_port != file_server_port_;
}

Result<UnixFs::Located> UnixFs::locate_parent(std::string_view path) {
  // Strip leading '/'; treat the remainder as root-relative.
  while (!path.empty() && path.front() == '/') {
    path.remove_prefix(1);
  }
  if (path.empty()) {
    return ErrorCode::invalid_argument;  // no final component
  }
  const std::size_t slash = path.rfind('/');
  std::string_view dir_part =
      slash == std::string_view::npos ? std::string_view{}
                                      : path.substr(0, slash);
  const std::string_view name =
      slash == std::string_view::npos ? path : path.substr(slash + 1);
  if (name.empty()) {
    return ErrorCode::invalid_argument;
  }
  core::Capability parent = root_;
  if (!dir_part.empty()) {
    auto resolved = resolve_path(*transport_, root_, dir_part);
    if (!resolved.ok()) {
      return resolved.error();
    }
    parent = resolved.value();
  }
  if (!is_directory_capability(parent)) {
    return ErrorCode::invalid_argument;  // a path component was a file
  }
  return Located{parent, std::string(name)};
}

Result<UnixFs::OpenFile*> UnixFs::descriptor(int fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size() ||
      !fds_[static_cast<std::size_t>(fd)].has_value()) {
    return ErrorCode::invalid_argument;  // EBADF
  }
  return &*fds_[static_cast<std::size_t>(fd)];
}

Result<int> UnixFs::open(std::string_view path, int flags) {
  if ((flags & (kRead | kWrite)) == 0) {
    return ErrorCode::invalid_argument;
  }
  if ((flags & (kCreate | kTrunc | kAppend)) != 0 && (flags & kWrite) == 0) {
    return ErrorCode::invalid_argument;
  }
  auto located = locate_parent(path);
  if (!located.ok()) {
    return located.error();
  }
  DirectoryClient dirs(*transport_, located.value().parent.server_port);
  FlatFileClient files(*transport_, file_server_port_);

  auto existing = dirs.lookup(located.value().parent, located.value().name);
  core::Capability cap;
  if (existing.ok()) {
    cap = existing.value();
    if (is_directory_capability(cap)) {
      return ErrorCode::invalid_argument;  // EISDIR
    }
    if ((flags & kTrunc) != 0) {
      // Recreate empty under the same name (flat files have no truncate;
      // O_TRUNC is destroy + create + re-enter).
      auto fresh = files.create();
      if (!fresh.ok()) {
        return fresh.error();
      }
      if (auto removed = dirs.remove(located.value().parent,
                                     located.value().name);
          !removed.ok()) {
        return removed.error();
      }
      if (auto entered = dirs.enter(located.value().parent,
                                    located.value().name, fresh.value());
          !entered.ok()) {
        return entered.error();
      }
      (void)files.destroy(cap);
      cap = fresh.value();
    }
  } else if (existing.error() == ErrorCode::not_found &&
             (flags & kCreate) != 0) {
    auto fresh = files.create();
    if (!fresh.ok()) {
      return fresh.error();
    }
    if (auto entered = dirs.enter(located.value().parent,
                                  located.value().name, fresh.value());
        !entered.ok()) {
      return entered.error();
    }
    cap = fresh.value();
  } else {
    return existing.error();
  }

  OpenFile file;
  file.capability = cap;
  file.flags = flags;
  if ((flags & kAppend) != 0) {
    auto size = files.size(cap);
    if (!size.ok()) {
      return size.error();
    }
    file.offset = size.value();
  }
  // Lowest free descriptor, POSIX style.
  for (std::size_t fd = 0; fd < fds_.size(); ++fd) {
    if (!fds_[fd].has_value()) {
      fds_[fd] = file;
      return static_cast<int>(fd);
    }
  }
  fds_.push_back(file);
  return static_cast<int>(fds_.size() - 1);
}

Result<Buffer> UnixFs::read(int fd, std::uint64_t count) {
  auto file = descriptor(fd);
  if (!file.ok()) {
    return file.error();
  }
  if ((file.value()->flags & kRead) == 0) {
    return ErrorCode::permission_denied;
  }
  FlatFileClient files(*transport_, file_server_port_);
  auto data = files.read(file.value()->capability, file.value()->offset,
                         count);
  if (!data.ok()) {
    return data.error();
  }
  file.value()->offset += data.value().size();
  return data;
}

Result<std::uint64_t> UnixFs::write(int fd,
                                    std::span<const std::uint8_t> data) {
  auto file = descriptor(fd);
  if (!file.ok()) {
    return file.error();
  }
  if ((file.value()->flags & kWrite) == 0) {
    return ErrorCode::permission_denied;
  }
  FlatFileClient files(*transport_, file_server_port_);
  if ((file.value()->flags & kAppend) != 0) {
    auto size = files.size(file.value()->capability);
    if (!size.ok()) {
      return size.error();
    }
    file.value()->offset = size.value();
  }
  if (auto written = files.write(file.value()->capability,
                                 file.value()->offset, data);
      !written.ok()) {
    return written.error();
  }
  file.value()->offset += data.size();
  return static_cast<std::uint64_t>(data.size());
}

Result<std::uint64_t> UnixFs::lseek(int fd, std::int64_t offset,
                                    Whence whence) {
  auto file = descriptor(fd);
  if (!file.ok()) {
    return file.error();
  }
  std::int64_t base = 0;
  switch (whence) {
    case Whence::kSet:
      base = 0;
      break;
    case Whence::kCur:
      base = static_cast<std::int64_t>(file.value()->offset);
      break;
    case Whence::kEnd: {
      FlatFileClient files(*transport_, file_server_port_);
      auto size = files.size(file.value()->capability);
      if (!size.ok()) {
        return size.error();
      }
      base = static_cast<std::int64_t>(size.value());
      break;
    }
  }
  const std::int64_t target = base + offset;
  if (target < 0) {
    return ErrorCode::invalid_argument;
  }
  file.value()->offset = static_cast<std::uint64_t>(target);
  return file.value()->offset;
}

Result<void> UnixFs::close(int fd) {
  auto file = descriptor(fd);
  if (!file.ok()) {
    return file.error();
  }
  fds_[static_cast<std::size_t>(fd)].reset();
  return {};
}

Result<void> UnixFs::mkdir(std::string_view path) {
  auto located = locate_parent(path);
  if (!located.ok()) {
    return located.error();
  }
  DirectoryClient dirs(*transport_, located.value().parent.server_port);
  auto fresh = dirs.create_dir();
  if (!fresh.ok()) {
    return fresh.error();
  }
  return dirs.enter(located.value().parent, located.value().name,
                    fresh.value());
}

Result<void> UnixFs::rmdir(std::string_view path) {
  auto located = locate_parent(path);
  if (!located.ok()) {
    return located.error();
  }
  DirectoryClient dirs(*transport_, located.value().parent.server_port);
  auto target = dirs.lookup(located.value().parent, located.value().name);
  if (!target.ok()) {
    return target.error();
  }
  if (!is_directory_capability(target.value())) {
    return ErrorCode::invalid_argument;  // ENOTDIR
  }
  DirectoryClient target_dirs(*transport_, target.value().server_port);
  if (auto deleted = target_dirs.delete_dir(target.value()); !deleted.ok()) {
    return deleted.error();  // not_empty, permission, ...
  }
  return dirs.remove(located.value().parent, located.value().name);
}

Result<void> UnixFs::unlink(std::string_view path) {
  auto located = locate_parent(path);
  if (!located.ok()) {
    return located.error();
  }
  DirectoryClient dirs(*transport_, located.value().parent.server_port);
  auto target = dirs.lookup(located.value().parent, located.value().name);
  if (!target.ok()) {
    return target.error();
  }
  if (is_directory_capability(target.value())) {
    return ErrorCode::invalid_argument;  // EISDIR: use rmdir
  }
  if (auto removed = dirs.remove(located.value().parent,
                                 located.value().name);
      !removed.ok()) {
    return removed.error();
  }
  FlatFileClient files(*transport_, file_server_port_);
  return files.destroy(target.value());
}

Result<std::vector<DirEntry>> UnixFs::readdir(std::string_view path) {
  core::Capability dir = root_;
  // Normalize: "" and "/" list the root.
  std::string_view trimmed = path;
  while (!trimmed.empty() && trimmed.front() == '/') {
    trimmed.remove_prefix(1);
  }
  if (!trimmed.empty()) {
    auto resolved = resolve_path(*transport_, root_, trimmed);
    if (!resolved.ok()) {
      return resolved.error();
    }
    dir = resolved.value();
  }
  if (!is_directory_capability(dir)) {
    return ErrorCode::invalid_argument;
  }
  DirectoryClient dirs(*transport_, dir.server_port);
  return dirs.list(dir);
}

Result<std::vector<UnixFs::StatEntry>> UnixFs::readdir_stat(
    std::string_view path) {
  auto listed = readdir(path);
  if (!listed.ok()) {
    return listed.error();
  }
  std::vector<StatEntry> results;
  results.reserve(listed.value().size());
  std::map<Port, std::vector<std::size_t>> by_server;
  for (const DirEntry& entry : listed.value()) {
    StatEntry stat_entry;
    stat_entry.name = entry.name;
    stat_entry.stat.capability = entry.capability;
    stat_entry.stat.is_directory = is_directory_capability(entry.capability);
    by_server[entry.capability.server_port].push_back(results.size());
    results.push_back(std::move(stat_entry));
  }
  // One batch frame per server -- a file entry costs a SIZE sub-request,
  // a directory entry a LIST (its stat size is the entry count) -- and
  // every frame is in flight at once.
  using SizeEntry = rpc::TypedBatch::Entry<file_ops::SizeOp>;
  using ListEntry = rpc::TypedBatch::Entry<dir_ops::ListOp>;
  struct Queued {
    std::size_t result_index;
    std::variant<SizeEntry, ListEntry> entry;
  };
  struct Flight {
    rpc::Future future;
    std::vector<Queued> queued;
  };
  std::vector<Flight> flights;
  flights.reserve(by_server.size());
  for (auto& [server, members] : by_server) {
    rpc::TypedBatch batch(*transport_, server);
    std::vector<Queued> queued;
    queued.reserve(members.size());
    for (const std::size_t i : members) {
      if (results[i].stat.is_directory) {
        queued.push_back(
            {i, batch.add(dir_ops::kList, results[i].stat.capability)});
      } else {
        queued.push_back(
            {i, batch.add(file_ops::kSize, results[i].stat.capability)});
      }
    }
    flights.push_back({batch.run_async(), std::move(queued)});
  }
  for (Flight& flight : flights) {
    auto replies = rpc::TypedBatch::parse_reply(flight.future.get());
    if (!replies.ok()) {
      return replies.error();
    }
    for (const Queued& queued : flight.queued) {
      StatEntry& entry = results[queued.result_index];
      if (const auto* list_entry = std::get_if<ListEntry>(&queued.entry)) {
        auto list = replies.value().get(*list_entry);
        if (!list.ok()) {
          return list.error();
        }
        entry.stat.size = list.value().entries.size();
      } else {
        auto size = replies.value().get(std::get<SizeEntry>(queued.entry));
        if (!size.ok()) {
          return size.error();
        }
        entry.stat.size = size.value().size;
      }
    }
  }
  return results;
}

Result<UnixFs::Stat> UnixFs::stat(std::string_view path) {
  std::string_view trimmed = path;
  while (!trimmed.empty() && trimmed.front() == '/') {
    trimmed.remove_prefix(1);
  }
  core::Capability cap = root_;
  if (!trimmed.empty()) {
    auto resolved = resolve_path(*transport_, root_, trimmed);
    if (!resolved.ok()) {
      return resolved.error();
    }
    cap = resolved.value();
  }
  Stat st;
  st.capability = cap;
  if (is_directory_capability(cap)) {
    st.is_directory = true;
    DirectoryClient dirs(*transport_, cap.server_port);
    auto entries = dirs.list(cap);
    if (!entries.ok()) {
      return entries.error();
    }
    st.size = entries.value().size();
  } else {
    FlatFileClient files(*transport_, file_server_port_);
    auto size = files.size(cap);
    if (!size.ok()) {
      return size.error();
    }
    st.size = size.value();
  }
  return st;
}

Result<void> UnixFs::rename(std::string_view from, std::string_view to) {
  auto src = locate_parent(from);
  if (!src.ok()) {
    return src.error();
  }
  auto dst = locate_parent(to);
  if (!dst.ok()) {
    return dst.error();
  }
  DirectoryClient src_dirs(*transport_, src.value().parent.server_port);
  auto target = src_dirs.lookup(src.value().parent, src.value().name);
  if (!target.ok()) {
    return target.error();
  }
  DirectoryClient dst_dirs(*transport_, dst.value().parent.server_port);
  if (auto entered = dst_dirs.enter(dst.value().parent, dst.value().name,
                                    target.value());
      !entered.ok()) {
    return entered.error();  // e.g. `exists`
  }
  return src_dirs.remove(src.value().parent, src.value().name);
}

}  // namespace amoeba::servers
