#include "amoeba/servers/multiversion_server.hpp"

namespace amoeba::servers {

MultiVersionServer::MultiVersionServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed,
    std::uint32_t page_size)
    : rpc::Service(machine, get_port, "multiversion"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed),
      pages_(page_size) {
  register_owner_ops(*this, store_);
  on(mv_op::kCreateFile, [this](const net::Delivery& request) {
    FileObj file;
    file.version_roots.push_back(PageStore::kEmptyRoot);  // empty v0
    return capability_reply(request,
                            store_.create(Payload{std::move(file)}));
  });
  on(mv_op::kNewVersion,
     [this](const net::Delivery& request) { return do_new_version(request); });
  on(mv_op::kReadPage,
     [this](const net::Delivery& request) { return do_read_page(request); });
  on(mv_op::kWritePage,
     [this](const net::Delivery& request) { return do_write_page(request); });
  on(mv_op::kCommit,
     [this](const net::Delivery& request) { return do_commit(request); });
  on(mv_op::kAbort,
     [this](const net::Delivery& request) { return do_abort(request); });
  on(mv_op::kHistory,
     [this](const net::Delivery& request) { return do_history(request); });
  on(mv_op::kDestroyFile, [this](const net::Delivery& request) {
    return do_destroy_file(request);
  });
}

PageStore::Stats MultiVersionServer::page_stats() const {
  const std::lock_guard lock(pages_mutex_);
  return pages_.stats();
}

net::Message MultiVersionServer::do_new_version(const net::Delivery& request) {
  DraftObj draft;
  {
    const core::Capability file_cap = header_capability(request.message);
    auto opened = store_.open(file_cap, core::rights::kWrite);
    if (!opened.ok()) {
      return fail(request, opened);
    }
    auto* file = std::get_if<FileObj>(opened.value().value);
    if (file == nullptr) {
      return error_reply(request, ErrorCode::invalid_argument);
    }
    draft.file_cap = file_cap;
    draft.base_versions = file->version_roots.size();
    draft.root = file->version_roots.back();
    const std::lock_guard pages_lock(pages_mutex_);
    pages_.retain(draft.root);  // the draft holds its own snapshot ref
  }
  // The file's shard lock is released before the draft slot is allocated
  // (create picks its own shard; holding the first lock would deadlock
  // when both land on the same shard).  The draft's retained root keeps
  // the snapshot alive whatever happens to the file meanwhile; a stale
  // base_versions simply loses the optimistic race at commit.
  const core::Capability draft_cap = store_.create(Payload{std::move(draft)});
  return capability_reply(request, draft_cap);
}

net::Message MultiVersionServer::do_read_page(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const std::uint32_t page_no =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  std::uint32_t root;
  if (const auto* draft = std::get_if<DraftObj>(opened.value().value)) {
    root = draft->root;
  } else {
    const auto& file = std::get<FileObj>(*opened.value().value);
    const std::uint64_t version = request.message.header.params[1];
    if (version == MultiVersionClient::kHead) {
      root = file.version_roots.back();
    } else if (version < file.version_roots.size()) {
      root = file.version_roots[version];
    } else {
      return error_reply(request, ErrorCode::not_found);
    }
  }
  auto data = [&] {
    const std::lock_guard pages_lock(pages_mutex_);
    return pages_.read(root, page_no);
  }();
  if (!data.ok()) {
    return error_reply(request, data.error());
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.data = std::move(data.value());
  return reply;
}

net::Message MultiVersionServer::do_write_page(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto* draft = std::get_if<DraftObj>(opened.value().value);
  if (draft == nullptr) {
    // Writing a file capability directly: committed versions are
    // immutable; only drafts accept writes.
    return error_reply(request, ErrorCode::immutable);
  }
  const std::uint32_t page_no =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  const std::lock_guard pages_lock(pages_mutex_);
  auto new_root = pages_.write(draft->root, page_no, request.message.data);
  if (!new_root.ok()) {
    return error_reply(request, new_root.error());
  }
  pages_.release(draft->root);
  draft->root = new_root.value();
  return error_reply(request, ErrorCode::ok);
}

net::Message MultiVersionServer::do_commit(const net::Delivery& request) {
  const core::Capability cap = header_capability(request.message);
  // First pass: learn which file capability the draft forked from (the
  // draft payload is the only place that records it).
  core::Capability file_cap;
  {
    auto opened = store_.open(cap, core::rights::kWrite);
    if (!opened.ok()) {
      return fail(request, opened);
    }
    const auto* draft = std::get_if<DraftObj>(opened.value().value);
    if (draft == nullptr) {
      return error_reply(request, ErrorCode::invalid_argument);
    }
    file_cap = draft->file_cap;
  }
  // Second pass: revalidate the draft and the stored file capability
  // under both shard locks; the commit decision and the history push are
  // atomic from here.  Validating the file (not merely peeking its slot)
  // is what stops a stale draft from committing into an unrelated file
  // that reused the number, and makes file revocation cut off drafts.
  // (A concurrent commit of the same draft capability loses the race at
  // this revalidation: the winner destroys the draft slot first.)
  auto pinned =
      store_.open2(cap, core::rights::kWrite, file_cap, Rights::none());
  if (!pinned.ok()) {
    // Distinguish "draft bad" from "file gone": reopen the draft alone.
    auto draft_alone = store_.open(cap, core::rights::kWrite);
    if (!draft_alone.ok()) {
      return fail(request, draft_alone);
    }
    const auto* draft = std::get_if<DraftObj>(draft_alone.value().value);
    if (draft == nullptr) {
      return error_reply(request, ErrorCode::invalid_argument);
    }
    // The draft is fine, so the file side failed: destroyed, reused, or
    // revoked while the draft was open.  The draft is consumed and its
    // snapshot reference dropped, as for a destroyed file.
    const std::uint32_t orphan_root = draft->root;
    const auto destroyed = store_.destroy(std::move(draft_alone.value()));
    if (destroyed.ok()) {
      const std::lock_guard pages_lock(pages_mutex_);
      pages_.release(orphan_root);
    }
    return error_reply(request, ErrorCode::no_such_object);
  }
  auto* draft = std::get_if<DraftObj>(pinned.value().a.value);
  if (draft == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::uint32_t draft_root = draft->root;
  auto* file = std::get_if<FileObj>(pinned.value().b.value);
  if (file == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  if (file->version_roots.size() != draft->base_versions) {
    // Optimistic concurrency: someone committed since this draft forked.
    return error_reply(request, ErrorCode::conflict);
  }
  // Committing consumes the draft, so the capability must allow its
  // destruction -- checked before the root is published, otherwise a
  // surviving draft and the file history would both own one reference.
  if (!pinned.value().a.rights.has_all(core::rights::kDestroy)) {
    return error_reply(request, ErrorCode::permission_denied);
  }
  // Atomic: the draft's snapshot reference transfers to the file history.
  file->version_roots.push_back(draft_root);
  const std::uint64_t new_index = file->version_roots.size() - 1;
  (void)store_.destroy(std::move(pinned.value().a));
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = new_index;
  return reply;
}

net::Message MultiVersionServer::do_abort(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto* draft = std::get_if<DraftObj>(opened.value().value);
  if (draft == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::uint32_t draft_root = draft->root;
  // Drafts are destroyed through their own object slot; the caller's
  // capability must allow destruction, which a fresh draft cap does.
  const auto destroyed = store_.destroy(std::move(opened.value()));
  if (!destroyed.ok()) {
    return error_reply(request, destroyed.error());
  }
  const std::lock_guard pages_lock(pages_mutex_);
  pages_.release(draft_root);
  return error_reply(request, ErrorCode::ok);
}

net::Message MultiVersionServer::do_history(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto* file = std::get_if<FileObj>(opened.value().value);
  if (file == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = file->version_roots.size();
  return reply;
}

net::Message MultiVersionServer::do_destroy_file(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kDestroy);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto* file = std::get_if<FileObj>(opened.value().value);
  if (file == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::vector<std::uint32_t> roots = std::move(file->version_roots);
  const auto destroyed = store_.destroy(std::move(opened.value()));
  if (!destroyed.ok()) {
    return error_reply(request, destroyed.error());
  }
  const std::lock_guard pages_lock(pages_mutex_);
  for (const std::uint32_t root : roots) {
    pages_.release(root);
  }
  return error_reply(request, ErrorCode::ok);
}

// ------------------------------------------------------ MultiVersionClient

Result<core::Capability> MultiVersionClient::create_file() {
  auto reply = call(*transport_, server_port_, mv_op::kCreateFile);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<core::Capability> MultiVersionClient::new_version(
    const core::Capability& file) {
  auto reply = call(*transport_, server_port_, mv_op::kNewVersion, &file);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<Buffer> MultiVersionClient::read_page(const core::Capability& cap,
                                             std::uint32_t page_no,
                                             std::uint64_t version_index) {
  auto reply = call(*transport_, server_port_, mv_op::kReadPage, &cap, {},
                    {page_no, version_index, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().data);
}

Result<void> MultiVersionClient::write_page(
    const core::Capability& draft, std::uint32_t page_no,
    std::span<const std::uint8_t> data) {
  return as_void(call(*transport_, server_port_, mv_op::kWritePage, &draft,
                      Buffer(data.begin(), data.end()), {page_no, 0, 0, 0}));
}

Result<std::uint64_t> MultiVersionClient::commit(
    const core::Capability& draft) {
  auto reply = call(*transport_, server_port_, mv_op::kCommit, &draft);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<void> MultiVersionClient::abort(const core::Capability& draft) {
  return as_void(call(*transport_, server_port_, mv_op::kAbort, &draft));
}

Result<std::uint64_t> MultiVersionClient::history(
    const core::Capability& file) {
  auto reply = call(*transport_, server_port_, mv_op::kHistory, &file);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<void> MultiVersionClient::destroy(const core::Capability& file) {
  return as_void(call(*transport_, server_port_, mv_op::kDestroyFile, &file));
}

}  // namespace amoeba::servers
