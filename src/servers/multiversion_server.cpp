#include "amoeba/servers/multiversion_server.hpp"

namespace amoeba::servers {

core::Durability<MultiVersionServer::Payload> MultiVersionServer::durability(
    std::shared_ptr<storage::Backend> backend,
    std::shared_ptr<storage::GroupCommitter> committer) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Payload> d;
  d.backend = std::move(backend);
  d.committer = std::move(committer);
  const auto encode_tree = [this](Writer& w, std::uint32_t root) {
    // Caller (an accessor flush or snapshot) holds the shard lock;
    // pages_mutex_ nests inside it exactly as in the handlers.
    const auto pages = [&] {
      const std::lock_guard pages_lock(pages_mutex_);
      return pages_.pages_of(root);
    }();
    w.u32(static_cast<std::uint32_t>(pages.size()));
    for (const auto& [page_no, data] : pages) {
      w.u32(page_no);
      w.bytes(data);
    }
  };
  const auto decode_tree = [this](Reader& r, std::uint32_t& root) {
    const std::uint32_t count = r.u32();
    std::vector<std::pair<std::uint32_t, Buffer>> pages;
    pages.reserve(count);
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      const std::uint32_t page_no = r.u32();
      pages.emplace_back(page_no, r.bytes());
    }
    if (!r.ok()) {
      return false;
    }
    const std::lock_guard pages_lock(pages_mutex_);
    root = pages_.rebuild(pages);
    return true;
  };
  d.encode = [encode_tree](Writer& w, const Payload& payload) {
    if (const auto* file = std::get_if<FileObj>(&payload)) {
      w.u8(1);
      w.u32(static_cast<std::uint32_t>(file->version_roots.size()));
      for (const std::uint32_t root : file->version_roots) {
        encode_tree(w, root);
      }
    } else {
      const auto& draft = std::get<DraftObj>(payload);
      w.u8(2);
      w.raw(core::pack(draft.file_cap));
      w.u64(draft.base_versions);
      encode_tree(w, draft.root);
    }
  };
  d.decode = [decode_tree](Reader& r, Payload& payload) {
    const std::uint8_t tag = r.u8();
    if (tag == 1) {
      FileObj file;
      const std::uint32_t versions = r.u32();
      file.version_roots.reserve(versions);
      for (std::uint32_t v = 0; v < versions && r.ok(); ++v) {
        std::uint32_t root = PageStore::kEmptyRoot;
        if (!decode_tree(r, root)) {
          return false;
        }
        file.version_roots.push_back(root);
      }
      payload = std::move(file);
      return r.ok();
    }
    if (tag == 2) {
      DraftObj draft;
      core::CapabilityBytes cap{};
      r.raw(cap);
      draft.file_cap = core::unpack(cap);
      draft.base_versions = r.u64();
      if (!decode_tree(r, draft.root)) {
        return false;
      }
      payload = std::move(draft);
      return r.ok();
    }
    return false;
  };
  d.apply_delta = [this](Reader& r, Payload& payload) {
    // One do_write_page patch: (page, content).  Only drafts journal
    // deltas (committed versions are immutable), so a delta aimed at a
    // file payload is corrupt.  Replay is idempotent: rewriting a page
    // with the same content converges to the same tree.
    auto* draft = std::get_if<DraftObj>(&payload);
    const std::uint32_t page = r.u32();
    const Buffer bytes = r.bytes();
    if (!r.ok() || draft == nullptr) {
      return false;
    }
    const std::lock_guard pages_lock(pages_mutex_);
    auto new_root = pages_.write(draft->root, page, bytes);
    if (!new_root.ok()) {
      return false;
    }
    pages_.release(draft->root);
    draft->root = new_root.value();
    return true;
  };
  d.dispose = [this](Payload& payload) {
    // Recovery replay overwrote a decoded payload: release the trees it
    // built so replayed prefixes don't leak page references.
    const std::lock_guard pages_lock(pages_mutex_);
    if (const auto* file = std::get_if<FileObj>(&payload)) {
      for (const std::uint32_t root : file->version_roots) {
        pages_.release(root);
      }
    } else if (const auto* draft = std::get_if<DraftObj>(&payload)) {
      pages_.release(draft->root);
    }
  };
  return d;
}

MultiVersionServer::MultiVersionServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed,
    std::uint32_t page_size,
    std::shared_ptr<storage::Backend> backend)
    : rpc::Service(machine, get_port, "multiversion"),
      pages_(page_size),
      committer_(storage::GroupCommitter::create(backend)),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed,
             Store::kDefaultShards, durability(backend, committer_)) {
  attach_durability(std::move(backend), committer_);
  // std.destroy must release the page-tree references a plain slot
  // destroy would leak.
  rpc::register_std_ops(
      *this, store_,
      {.destroy = [this](Store::Opened&& opened) {
         return do_destroy_any(std::move(opened));
       }});
  on(mv_ops::kCreateFile, [this](const auto&) -> Result<rpc::CapabilityReply> {
    FileObj file;
    file.version_roots.push_back(PageStore::kEmptyRoot);  // empty v0
    return rpc::CapabilityReply{store_.create(Payload{std::move(file)})};
  });
  on(mv_ops::kNewVersion, store_, [this](const auto& call, auto& opened) {
    return do_new_version(call.capability, opened);
  });
  // kReadPage is the multiversion hot path (a reader walks every page of
  // a version with one capability): its repeat validates are lock-free.
  on(mv_ops::kReadPage, store_, [this](const auto& call, auto& opened) {
    return do_read_page(call.body, opened);
  });
  on(mv_ops::kWritePage, store_, [this](const auto& call, auto& opened) {
    return do_write_page(call.body, opened);
  });
  on(mv_ops::kCommit, store_,
     [this](const auto& call) { return do_commit(call.capability); });
  on(mv_ops::kAbort, store_, [this](const auto&, auto& opened) {
    return do_abort(std::move(opened));
  });
  on(mv_ops::kHistory, store_,
     [](const auto&, auto& opened) -> Result<mv_ops::HistoryReply> {
       const auto* file = std::get_if<FileObj>(opened.value);
       if (file == nullptr) {
         return ErrorCode::invalid_argument;
       }
       return mv_ops::HistoryReply{file->version_roots.size()};
     });
  on(mv_ops::kDestroyFile, store_, [this](const auto&, auto& opened) {
    return do_destroy_file(std::move(opened));
  });
}

PageStore::Stats MultiVersionServer::page_stats() const {
  const std::lock_guard lock(pages_mutex_);
  return pages_.stats();
}

Result<rpc::CapabilityReply> MultiVersionServer::do_new_version(
    const core::Capability& file_cap, Store::Opened& opened) {
  DraftObj draft;
  {
    // Take the accessor over: the file's shard lock must be released
    // before the draft slot is allocated (create picks its own shard;
    // holding the first lock would deadlock when both land on the same
    // shard).  The draft's retained root keeps the snapshot alive
    // whatever happens to the file meanwhile; a stale base_versions
    // simply loses the optimistic race at commit.
    Store::Opened file_access = std::move(opened);
    auto* file = std::get_if<FileObj>(file_access.value);
    if (file == nullptr) {
      return ErrorCode::invalid_argument;
    }
    draft.file_cap = file_cap;
    draft.base_versions = file->version_roots.size();
    draft.root = file->version_roots.back();
    const std::lock_guard pages_lock(pages_mutex_);
    pages_.retain(draft.root);  // the draft holds its own snapshot ref
  }
  return rpc::CapabilityReply{store_.create(Payload{std::move(draft)})};
}

Result<rpc::BytesReply> MultiVersionServer::do_read_page(
    const mv_ops::ReadPageRequest& req, Store::Opened& opened) {
  std::uint32_t root;
  if (const auto* draft = std::get_if<DraftObj>(opened.value)) {
    root = draft->root;
  } else {
    const auto& file = std::get<FileObj>(*opened.value);
    if (req.version == MultiVersionClient::kHead) {
      root = file.version_roots.back();
    } else if (req.version < file.version_roots.size()) {
      root = file.version_roots[req.version];
    } else {
      return ErrorCode::not_found;
    }
  }
  auto data = [&] {
    const std::lock_guard pages_lock(pages_mutex_);
    return pages_.read(root, req.page);
  }();
  if (!data.ok()) {
    return data.error();
  }
  return rpc::BytesReply{std::move(data.value())};
}

Result<void> MultiVersionServer::do_write_page(
    const mv_ops::WritePageRequest& req, Store::Opened& opened) {
  auto* draft = std::get_if<DraftObj>(opened.value);
  if (draft == nullptr) {
    // Writing a file capability directly: committed versions are
    // immutable; only drafts accept writes.
    return ErrorCode::immutable;
  }
  {
    const std::lock_guard pages_lock(pages_mutex_);
    auto new_root = pages_.write(draft->root, req.page, req.bytes);
    if (!new_root.ok()) {
      return new_root.error();
    }
    pages_.release(draft->root);
    draft->root = new_root.value();
  }
  // The draft's working tree moved: journal just the one-page patch (the
  // apply_delta codec replays it) instead of the whole draft image --
  // before delta records, every page write re-journaled the entire file
  // content.
  Writer patch;
  patch.u32(req.page);
  patch.bytes(req.bytes);
  opened.mark_dirty_delta(patch.take());
  return {};
}

Result<mv_ops::CommitReply> MultiVersionServer::do_commit(
    const core::Capability& draft_cap) {
  // First pass: learn which file capability the draft forked from (the
  // draft payload is the only place that records it).  The dispatcher
  // already checked the write right; this open re-validates through the
  // shard's capability cache.
  core::Capability file_cap;
  {
    auto opened = store_.open(draft_cap, mv_ops::kCommit.required);
    if (!opened.ok()) {
      return opened.error();
    }
    const auto* draft = std::get_if<DraftObj>(opened.value().value);
    if (draft == nullptr) {
      return ErrorCode::invalid_argument;
    }
    file_cap = draft->file_cap;
  }
  // Second pass: revalidate the draft and the stored file capability
  // under both shard locks; the commit decision and the history push are
  // atomic from here.  Validating the file (not merely peeking its slot)
  // is what stops a stale draft from committing into an unrelated file
  // that reused the number, and makes file revocation cut off drafts.
  // (A concurrent commit of the same draft capability loses the race at
  // this revalidation: the winner destroys the draft slot first.)
  auto pinned = store_.open2(draft_cap, mv_ops::kCommit.required, file_cap,
                             Rights::none());
  if (!pinned.ok()) {
    // Distinguish "draft bad" from "file gone": reopen the draft alone.
    auto draft_alone = store_.open(draft_cap, mv_ops::kCommit.required);
    if (!draft_alone.ok()) {
      return draft_alone.error();
    }
    const auto* draft = std::get_if<DraftObj>(draft_alone.value().value);
    if (draft == nullptr) {
      return ErrorCode::invalid_argument;
    }
    // The draft is fine, so the file side failed: destroyed, reused, or
    // revoked while the draft was open.  The draft is consumed and its
    // snapshot reference dropped, as for a destroyed file.
    const std::uint32_t orphan_root = draft->root;
    const auto destroyed = store_.destroy(std::move(draft_alone.value()));
    if (destroyed.ok()) {
      const std::lock_guard pages_lock(pages_mutex_);
      pages_.release(orphan_root);
    }
    return ErrorCode::no_such_object;
  }
  auto* draft = std::get_if<DraftObj>(pinned.value().a.value);
  if (draft == nullptr) {
    return ErrorCode::invalid_argument;
  }
  const std::uint32_t draft_root = draft->root;
  auto* file = std::get_if<FileObj>(pinned.value().b.value);
  if (file == nullptr) {
    return ErrorCode::invalid_argument;
  }
  if (file->version_roots.size() != draft->base_versions) {
    // Optimistic concurrency: someone committed since this draft forked.
    return ErrorCode::conflict;
  }
  // Committing consumes the draft, so the capability must allow its
  // destruction -- checked before the root is published, otherwise a
  // surviving draft and the file history would both own one reference.
  if (!pinned.value().a.rights.has_all(core::rights::kDestroy)) {
    return ErrorCode::permission_denied;
  }
  // Atomic: the draft's snapshot reference transfers to the file history.
  file->version_roots.push_back(draft_root);
  const std::uint64_t new_index = file->version_roots.size() - 1;
  // Journal the file's new version BEFORE destroying the draft: the
  // destroy drops the (possibly shared) shard lock, so the flush must not
  // wait for the pair's release.
  pinned.value().b.mark_dirty();
  pinned.value().b.flush();
  (void)store_.destroy(std::move(pinned.value().a));
  return mv_ops::CommitReply{new_index};
}

Result<void> MultiVersionServer::do_abort(Store::Opened&& opened) {
  auto* draft = std::get_if<DraftObj>(opened.value);
  if (draft == nullptr) {
    return ErrorCode::invalid_argument;
  }
  const std::uint32_t draft_root = draft->root;
  // Drafts are destroyed through their own object slot; the caller's
  // capability must allow destruction, which a fresh draft cap does.
  const auto destroyed = store_.destroy(std::move(opened));
  if (!destroyed.ok()) {
    return destroyed.error();
  }
  const std::lock_guard pages_lock(pages_mutex_);
  pages_.release(draft_root);
  return {};
}

Result<void> MultiVersionServer::do_destroy_file(Store::Opened&& opened) {
  auto* file = std::get_if<FileObj>(opened.value);
  if (file == nullptr) {
    return ErrorCode::invalid_argument;
  }
  const std::vector<std::uint32_t> roots = std::move(file->version_roots);
  const auto destroyed = store_.destroy(std::move(opened));
  if (!destroyed.ok()) {
    return destroyed.error();
  }
  const std::lock_guard pages_lock(pages_mutex_);
  for (const std::uint32_t root : roots) {
    pages_.release(root);
  }
  return {};
}

Result<void> MultiVersionServer::do_destroy_any(Store::Opened&& opened) {
  if (std::holds_alternative<DraftObj>(*opened.value)) {
    return do_abort(std::move(opened));
  }
  return do_destroy_file(std::move(opened));
}

// ------------------------------------------------------ MultiVersionClient

Result<core::Capability> MultiVersionClient::create_file() {
  auto reply = rpc::call(*transport_, server_port_, mv_ops::kCreateFile);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<core::Capability> MultiVersionClient::new_version(
    const core::Capability& file) {
  auto reply = rpc::call(*transport_, server_port_, mv_ops::kNewVersion, file);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<Buffer> MultiVersionClient::read_page(const core::Capability& cap,
                                             std::uint32_t page_no,
                                             std::uint64_t version_index) {
  auto reply = rpc::call(*transport_, server_port_, mv_ops::kReadPage, cap,
                         {page_no, version_index});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().bytes);
}

Result<void> MultiVersionClient::write_page(
    const core::Capability& draft, std::uint32_t page_no,
    std::span<const std::uint8_t> data) {
  return rpc::call(*transport_, server_port_, mv_ops::kWritePage, draft,
                   {page_no, Buffer(data.begin(), data.end())});
}

Result<std::uint64_t> MultiVersionClient::commit(
    const core::Capability& draft) {
  auto reply = rpc::call(*transport_, server_port_, mv_ops::kCommit, draft);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().version;
}

Result<void> MultiVersionClient::abort(const core::Capability& draft) {
  return rpc::call(*transport_, server_port_, mv_ops::kAbort, draft);
}

Result<std::uint64_t> MultiVersionClient::history(
    const core::Capability& file) {
  auto reply = rpc::call(*transport_, server_port_, mv_ops::kHistory, file);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().versions;
}

Result<void> MultiVersionClient::destroy(const core::Capability& file) {
  return rpc::call(*transport_, server_port_, mv_ops::kDestroyFile, file);
}

}  // namespace amoeba::servers
