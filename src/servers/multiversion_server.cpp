#include "amoeba/servers/multiversion_server.hpp"

namespace amoeba::servers {

MultiVersionServer::MultiVersionServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed,
    std::uint32_t page_size)
    : rpc::Service(machine, get_port, "multiversion"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed),
      pages_(page_size) {}

PageStore::Stats MultiVersionServer::page_stats() const {
  const std::lock_guard lock(mutex_);
  return pages_.stats();
}

net::Message MultiVersionServer::handle(const net::Delivery& request) {
  const std::lock_guard lock(mutex_);
  if (auto owner = handle_owner_ops(store_, request); owner.has_value()) {
    return std::move(*owner);
  }
  const core::Capability cap = header_capability(request.message);
  switch (request.message.header.opcode) {
    case mv_op::kCreateFile: {
      FileObj file;
      file.version_roots.push_back(PageStore::kEmptyRoot);  // empty v0
      const core::Capability fresh = store_.create(Payload{std::move(file)});
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      set_header_capability(reply, fresh);
      return reply;
    }
    case mv_op::kNewVersion: {
      auto opened = store_.open(cap, core::rights::kWrite);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      auto* file = std::get_if<FileObj>(opened.value().value);
      if (file == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      DraftObj draft;
      draft.file = opened.value().object;
      draft.base_versions = file->version_roots.size();
      draft.root = file->version_roots.back();
      pages_.retain(draft.root);  // the draft holds its own snapshot ref
      const core::Capability draft_cap =
          store_.create(Payload{std::move(draft)});
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      set_header_capability(reply, draft_cap);
      return reply;
    }
    case mv_op::kReadPage:
      return do_read_page(request, cap);
    case mv_op::kWritePage: {
      auto opened = store_.open(cap, core::rights::kWrite);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      auto* draft = std::get_if<DraftObj>(opened.value().value);
      if (draft == nullptr) {
        // Writing a file capability directly: committed versions are
        // immutable; only drafts accept writes.
        return error_reply(request, ErrorCode::immutable);
      }
      const std::uint32_t page_no =
          static_cast<std::uint32_t>(request.message.header.params[0]);
      auto new_root = pages_.write(draft->root, page_no,
                                   request.message.data);
      if (!new_root.ok()) {
        return error_reply(request, new_root.error());
      }
      pages_.release(draft->root);
      draft->root = new_root.value();
      return error_reply(request, ErrorCode::ok);
    }
    case mv_op::kCommit:
      return do_commit(request, cap);
    case mv_op::kAbort: {
      auto opened = store_.open(cap, core::rights::kWrite);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      auto* draft = std::get_if<DraftObj>(opened.value().value);
      if (draft == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      pages_.release(draft->root);
      // Drafts are destroyed through their own object slot; the caller's
      // capability must allow destruction, which a fresh draft cap does.
      return error_reply(request, store_.destroy(cap).error());
    }
    case mv_op::kHistory: {
      auto opened = store_.open(cap, core::rights::kRead);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      auto* file = std::get_if<FileObj>(opened.value().value);
      if (file == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      reply.header.params[0] = file->version_roots.size();
      return reply;
    }
    case mv_op::kDestroyFile: {
      auto opened = store_.open(cap, core::rights::kDestroy);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      auto* file = std::get_if<FileObj>(opened.value().value);
      if (file == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      for (const std::uint32_t root : file->version_roots) {
        pages_.release(root);
      }
      return error_reply(request, store_.destroy(cap).error());
    }
    default:
      return error_reply(request, ErrorCode::no_such_operation);
  }
}

net::Message MultiVersionServer::do_read_page(const net::Delivery& request,
                                              const core::Capability& cap) {
  auto opened = store_.open(cap, core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const std::uint32_t page_no =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  std::uint32_t root;
  if (const auto* draft = std::get_if<DraftObj>(opened.value().value)) {
    root = draft->root;
  } else {
    const auto& file = std::get<FileObj>(*opened.value().value);
    const std::uint64_t version = request.message.header.params[1];
    if (version == MultiVersionClient::kHead) {
      root = file.version_roots.back();
    } else if (version < file.version_roots.size()) {
      root = file.version_roots[version];
    } else {
      return error_reply(request, ErrorCode::not_found);
    }
  }
  auto data = pages_.read(root, page_no);
  if (!data.ok()) {
    return error_reply(request, data.error());
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.data = std::move(data.value());
  return reply;
}

net::Message MultiVersionServer::do_commit(const net::Delivery& request,
                                           const core::Capability& cap) {
  auto opened = store_.open(cap, core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto* draft = std::get_if<DraftObj>(opened.value().value);
  if (draft == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  auto* file_payload = store_.peek(draft->file);
  auto* file =
      file_payload == nullptr ? nullptr : std::get_if<FileObj>(file_payload);
  if (file == nullptr) {
    // File destroyed while the draft was open.
    pages_.release(draft->root);
    (void)store_.destroy(cap);
    return error_reply(request, ErrorCode::no_such_object);
  }
  if (file->version_roots.size() != draft->base_versions) {
    // Optimistic concurrency: someone committed since this draft forked.
    return error_reply(request, ErrorCode::conflict);
  }
  // Atomic: the draft's snapshot reference transfers to the file history.
  file->version_roots.push_back(draft->root);
  const std::uint64_t new_index = file->version_roots.size() - 1;
  (void)store_.destroy(cap);
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = new_index;
  return reply;
}

// ------------------------------------------------------ MultiVersionClient

Result<core::Capability> MultiVersionClient::create_file() {
  auto reply = call(*transport_, server_port_, mv_op::kCreateFile);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<core::Capability> MultiVersionClient::new_version(
    const core::Capability& file) {
  auto reply = call(*transport_, server_port_, mv_op::kNewVersion, &file);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<Buffer> MultiVersionClient::read_page(const core::Capability& cap,
                                             std::uint32_t page_no,
                                             std::uint64_t version_index) {
  auto reply = call(*transport_, server_port_, mv_op::kReadPage, &cap, {},
                    {page_no, version_index, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().data);
}

Result<void> MultiVersionClient::write_page(
    const core::Capability& draft, std::uint32_t page_no,
    std::span<const std::uint8_t> data) {
  return as_void(call(*transport_, server_port_, mv_op::kWritePage, &draft,
                      Buffer(data.begin(), data.end()), {page_no, 0, 0, 0}));
}

Result<std::uint64_t> MultiVersionClient::commit(
    const core::Capability& draft) {
  auto reply = call(*transport_, server_port_, mv_op::kCommit, &draft);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<void> MultiVersionClient::abort(const core::Capability& draft) {
  return as_void(call(*transport_, server_port_, mv_op::kAbort, &draft));
}

Result<std::uint64_t> MultiVersionClient::history(
    const core::Capability& file) {
  auto reply = call(*transport_, server_port_, mv_op::kHistory, &file);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<void> MultiVersionClient::destroy(const core::Capability& file) {
  return as_void(call(*transport_, server_port_, mv_op::kDestroyFile, &file));
}

}  // namespace amoeba::servers
