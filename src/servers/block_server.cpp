#include "amoeba/servers/block_server.hpp"

#include "amoeba/servers/common.hpp"

namespace amoeba::servers {

BlockServer::BlockServer(net::Machine& machine, Port get_port,
                         std::shared_ptr<const core::ProtectionScheme> scheme,
                         std::uint64_t seed, Geometry geometry)
    : rpc::Service(machine, get_port, "block"),
      geometry_(geometry),
      disk_(geometry.block_count, geometry.block_size, geometry.write_once),
      store_(std::move(scheme),
             machine.fbox().listen_port(get_port), seed) {
  register_owner_ops(*this, store_);
  on(block_op::kAllocate,
     [this](const net::Delivery& request) { return do_allocate(request); });
  on(block_op::kRead,
     [this](const net::Delivery& request) { return do_read(request); });
  on(block_op::kWrite,
     [this](const net::Delivery& request) { return do_write(request); });
  on(block_op::kFree,
     [this](const net::Delivery& request) { return do_free(request); });
  on(block_op::kInfo,
     [this](const net::Delivery& request) { return do_info(request); });
}

SimDisk::Stats BlockServer::disk_stats() const {
  const std::lock_guard lock(mutex_);
  return disk_.stats();
}

net::Message BlockServer::do_allocate(const net::Delivery& request) {
  Result<std::uint32_t> block = [&] {
    const std::lock_guard lock(mutex_);
    return disk_.allocate();
  }();
  if (!block.ok()) {
    return error_reply(request, block.error());
  }
  return capability_reply(request, store_.create(block.value()));
}

net::Message BlockServer::do_read(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto data = [&] {
    const std::lock_guard lock(mutex_);
    return disk_.read(*opened.value().value);
  }();
  if (!data.ok()) {
    return error_reply(request, data.error());
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.data = std::move(data.value());
  return reply;
}

net::Message BlockServer::do_write(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const std::lock_guard lock(mutex_);
  const auto written = disk_.write(*opened.value().value,
                                   request.message.data);
  return error_reply(request, written.ok() ? ErrorCode::ok : written.error());
}

net::Message BlockServer::do_free(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kDestroy);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const std::uint32_t block = *opened.value().value;
  const auto destroyed = store_.destroy(std::move(opened.value()));
  if (!destroyed.ok()) {
    return error_reply(request, destroyed.error());
  }
  const std::lock_guard lock(mutex_);
  return error_reply(request, disk_.free_block(block).error());
}

net::Message BlockServer::do_info(const net::Delivery& request) {
  const std::lock_guard lock(mutex_);
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = disk_.block_count();
  reply.header.params[1] = disk_.block_size();
  reply.header.params[2] = disk_.free_count();
  return reply;
}

// ------------------------------------------------------------- BlockClient

Result<core::Capability> BlockClient::allocate() {
  auto reply = call(*transport_, server_port_, block_op::kAllocate);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<Buffer> BlockClient::read(const core::Capability& block) {
  auto reply = call(*transport_, server_port_, block_op::kRead, &block);
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().data);
}

Result<void> BlockClient::write(const core::Capability& block,
                                std::span<const std::uint8_t> data) {
  return as_void(call(*transport_, server_port_, block_op::kWrite, &block,
                      Buffer(data.begin(), data.end())));
}

Result<void> BlockClient::free_block(const core::Capability& block) {
  return as_void(call(*transport_, server_port_, block_op::kFree, &block));
}

Result<BlockClient::Info> BlockClient::info() {
  auto reply = call(*transport_, server_port_, block_op::kInfo);
  if (!reply.ok()) {
    return reply.error();
  }
  const auto& params = reply.value().header.params;
  return Info{static_cast<std::uint32_t>(params[0]),
              static_cast<std::uint32_t>(params[1]),
              static_cast<std::uint32_t>(params[2])};
}

}  // namespace amoeba::servers
