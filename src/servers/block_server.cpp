#include "amoeba/servers/block_server.hpp"

#include <utility>

#include "amoeba/servers/common.hpp"

namespace amoeba::servers {

core::Durability<std::uint32_t> BlockServer::durability(
    std::shared_ptr<storage::Backend> backend,
    std::shared_ptr<storage::GroupCommitter> committer) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<std::uint32_t> d;
  d.backend = std::move(backend);
  d.committer = std::move(committer);
  d.encode = [this](Writer& w, const std::uint32_t& index) {
    w.u32(index);
    const std::lock_guard lock(mutex_);
    w.u8(disk_.written(index) ? 1 : 0);
    auto content = disk_.read(index);
    w.bytes(content.ok() ? content.value() : Buffer{});
  };
  d.decode = [this](Reader& r, std::uint32_t& index) {
    index = r.u32();
    const bool was_written = r.u8() != 0;
    const Buffer content = r.bytes();
    if (!r.ok()) {
      return false;
    }
    const std::lock_guard lock(mutex_);
    return disk_.restore(index, content, was_written).ok();
  };
  d.apply_delta = [this](Reader& r, std::uint32_t& index) {
    // One do_write patch: the block content.  The target disk block is
    // the live payload itself; restore is idempotent, so replayed
    // prefixes converge.
    const Buffer content = r.bytes();
    if (!r.ok()) {
      return false;
    }
    const std::lock_guard lock(mutex_);
    return disk_.restore(index, content, /*written=*/true).ok();
  };
  d.dispose = [this](std::uint32_t& index) {
    // Replay overwrote or destroyed a recovered block object: return its
    // disk block, or destroy-replay would leak it forever (the matching
    // decode re-claims the block when the object survives).
    const std::lock_guard lock(mutex_);
    (void)disk_.free_block(index);
  };
  return d;
}

BlockServer::BlockServer(net::Machine& machine, Port get_port,
                         std::shared_ptr<const core::ProtectionScheme> scheme,
                         std::uint64_t seed, Geometry geometry,
                         std::shared_ptr<storage::Backend> backend)
    : rpc::Service(machine, get_port, "block"),
      geometry_(geometry),
      disk_(geometry.block_count, geometry.block_size, geometry.write_once),
      committer_(storage::GroupCommitter::create(backend)),
      store_(std::move(scheme),
             machine.fbox().listen_port(get_port), seed,
             Store::kDefaultShards, durability(backend, committer_)) {
  attach_durability(std::move(backend), committer_);
  // std.destroy must free the disk block too, not just the slot.
  rpc::register_std_ops(
      *this, store_,
      {.destroy = [this](Store::Opened&& block) {
         return do_free(std::move(block));
       }});
  on(block_ops::kAllocate,
     [this](const auto&) { return do_allocate(); });
  // kRead dominates block traffic; its validate runs through open()'s
  // lock-free prefix, so repeat capabilities reach the shard mutex
  // pre-proven (no crypto, no cache write).
  on(block_ops::kRead, store_,
     [this](const auto&, auto& block) { return do_read(block); });
  on(block_ops::kWrite, store_, [this](const auto& call, auto& block) {
    return do_write(call.body, block);
  });
  on(block_ops::kFree, store_, [this](const auto&, auto& block) {
    return do_free(std::move(block));
  });
  on(block_ops::kInfo, [this](const auto&) { return do_info(); });
}

SimDisk::Stats BlockServer::disk_stats() const {
  const std::lock_guard lock(mutex_);
  return disk_.stats();
}

Result<rpc::CapabilityReply> BlockServer::do_allocate() {
  Result<std::uint32_t> block = [&] {
    const std::lock_guard lock(mutex_);
    return disk_.allocate();
  }();
  if (!block.ok()) {
    return block.error();
  }
  return rpc::CapabilityReply{store_.create(block.value())};
}

Result<rpc::BytesReply> BlockServer::do_read(Store::Opened& block) {
  auto data = [&] {
    const std::lock_guard lock(mutex_);
    return disk_.read(*block.value);
  }();
  if (!data.ok()) {
    return data.error();
  }
  return rpc::BytesReply{std::move(data.value())};
}

Result<void> BlockServer::do_write(const rpc::BytesRequest& req,
                                   Store::Opened& block) {
  const auto written = [&] {
    const std::lock_guard lock(mutex_);
    return disk_.write(*block.value, req.bytes);
  }();
  if (written.ok()) {
    // Journal just the new content as a delta patch (apply_delta restores
    // it into the block named by the payload) -- the full image would
    // re-read and re-journal the whole block for every write.
    Writer patch;
    patch.bytes(req.bytes);
    block.mark_dirty_delta(patch.take());
  }
  return written;
}

Result<void> BlockServer::do_free(Store::Opened&& block) {
  const std::uint32_t index = *block.value;
  const auto destroyed = store_.destroy(std::move(block));
  if (!destroyed.ok()) {
    return destroyed.error();
  }
  const std::lock_guard lock(mutex_);
  return disk_.free_block(index);
}

Result<block_ops::InfoReply> BlockServer::do_info() const {
  const std::lock_guard lock(mutex_);
  return block_ops::InfoReply{disk_.block_count(), disk_.block_size(),
                              disk_.free_count()};
}

// ------------------------------------------------------------- BlockClient

Result<core::Capability> BlockClient::allocate() {
  auto reply = rpc::call(*transport_, server_port_, block_ops::kAllocate);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<Buffer> BlockClient::read(const core::Capability& block) {
  auto reply = rpc::call(*transport_, server_port_, block_ops::kRead, block);
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().bytes);
}

Result<void> BlockClient::write(const core::Capability& block,
                                std::span<const std::uint8_t> data) {
  return rpc::call(*transport_, server_port_, block_ops::kWrite, block,
                   {Buffer(data.begin(), data.end())});
}

Result<void> BlockClient::free_block(const core::Capability& block) {
  return rpc::call(*transport_, server_port_, block_ops::kFree, block);
}

Result<BlockClient::Info> BlockClient::info() {
  auto reply = rpc::call(*transport_, server_port_, block_ops::kInfo);
  if (!reply.ok()) {
    return reply.error();
  }
  return Info{reply.value().block_count, reply.value().block_size,
              reply.value().free_blocks};
}

}  // namespace amoeba::servers
