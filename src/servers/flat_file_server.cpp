#include "amoeba/servers/flat_file_server.hpp"

#include <algorithm>
#include <limits>

#include "amoeba/servers/common.hpp"

namespace amoeba::servers {

core::Durability<FlatFileServer::Inode> FlatFileServer::durability(
    std::shared_ptr<storage::Backend> backend,
    std::shared_ptr<storage::GroupCommitter> committer) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Inode> d;
  d.backend = std::move(backend);
  d.committer = std::move(committer);
  d.encode = [](Writer& w, const Inode& inode) {
    w.u64(inode.size);
    w.u32(static_cast<std::uint32_t>(inode.blocks.size()));
    for (const auto& block : inode.blocks) {
      w.raw(core::pack(block));
    }
    w.raw(core::pack(inode.payer));
    w.u8(inode.paid ? 1 : 0);
  };
  d.decode = [](Reader& r, Inode& inode) {
    inode.size = r.u64();
    const std::uint32_t count = r.u32();
    inode.blocks.reserve(count);
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      core::CapabilityBytes bytes{};
      r.raw(bytes);
      inode.blocks.push_back(core::unpack(bytes));
    }
    core::CapabilityBytes payer{};
    r.raw(payer);
    inode.payer = core::unpack(payer);
    inode.paid = r.u8() != 0;
    return r.ok();
  };
  return d;
}

FlatFileServer::FlatFileServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed,
    Port block_server_port,
    std::shared_ptr<storage::Backend> backend)
    : rpc::Service(machine, get_port, "flatfile"),
      committer_(storage::GroupCommitter::create(backend)),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed,
             Store::kDefaultShards, durability(backend, committer_)),
      transport_(machine, seed ^ 0xF17EULL),
      blocks_(transport_, block_server_port) {
  attach_durability(std::move(backend), committer_);
  // std.destroy must free the file's blocks and refund the payer too.
  rpc::register_std_ops(
      *this, store_,
      {.destroy = [this](Store::Opened&& file) {
         return do_destroy(std::move(file));
       }});
  on(file_ops::kCreate,
     [this](const auto& call) { return do_create(call.body); });
  on(file_ops::kDestroy, store_, [this](const auto&, auto& file) {
    return do_destroy(std::move(file));
  });
  // kRead/kSize ride open()'s lock-free validate prefix on repeat
  // capabilities (the common case for a file being streamed).
  on(file_ops::kRead, store_, [this](const auto& call, auto& file) {
    return do_read(call.body, file);
  });
  on(file_ops::kWrite, store_, [this](const auto& call, auto& file) {
    return do_write(call.body, file);
  });
  on(file_ops::kSize, store_,
     [](const auto&, auto& file) -> Result<file_ops::SizeReply> {
       return file_ops::SizeReply{file.value->size};
     });
}

void FlatFileServer::set_pricing(Pricing pricing) {
  const std::lock_guard lock(pricing_mutex_);
  pricing_ = std::move(pricing);
}

Result<void> FlatFileServer::charge(const Inode& inode,
                                    std::int64_t block_count) {
  std::optional<Pricing> pricing;
  {
    const std::lock_guard lock(pricing_mutex_);
    pricing = pricing_;
  }
  if (!pricing.has_value() || !inode.paid || block_count == 0) {
    return {};
  }
  BankClient bank(transport_, pricing->bank_port);
  if (block_count > 0) {
    return bank.transfer(inode.payer, pricing->server_account,
                         pricing->currency,
                         block_count * pricing->price_per_block);
  }
  // Negative: refund on destroy ("returning the resource might result in
  // the client getting his money back").
  return bank.transfer(pricing->server_account, inode.payer,
                       pricing->currency,
                       -block_count * pricing->price_per_block);
}

Result<std::uint32_t> FlatFileServer::ensure_block_size() {
  std::uint32_t size = block_size_.load(std::memory_order_relaxed);
  if (size != 0) {
    return size;
  }
  auto info = blocks_.info();
  if (!info.ok()) {
    return ErrorCode::internal;
  }
  size = info.value().block_size;
  block_size_.store(size, std::memory_order_relaxed);
  return size;
}

Result<rpc::CapabilityReply> FlatFileServer::do_create(
    const file_ops::CreateRequest& req) {
  bool priced = false;
  {
    const std::lock_guard lock(pricing_mutex_);
    priced = pricing_.has_value();
  }
  Inode inode;
  if (priced) {
    // Payment account capability required in the data field.
    if (!req.payment.has_value() || req.payment->is_null()) {
      return ErrorCode::invalid_argument;
    }
    inode.payer = *req.payment;
    inode.paid = true;
  }
  return rpc::CapabilityReply{store_.create(std::move(inode))};
}

Result<void> FlatFileServer::do_destroy(Store::Opened&& file) {
  Inode inode = std::move(*file.value);
  const auto destroyed = store_.destroy(std::move(file));
  if (!destroyed.ok()) {
    return destroyed.error();
  }
  // Shard lock released: the block frees and the refund are plain client
  // RPCs against the other services.
  for (const auto& block_cap : inode.blocks) {
    (void)blocks_.free_block(block_cap);  // best effort
  }
  (void)charge(inode, -static_cast<std::int64_t>(inode.blocks.size()));
  return {};
}

Result<rpc::BytesReply> FlatFileServer::do_read(
    const file_ops::ReadRequest& req, Store::Opened& file) {
  const auto block_size_result = ensure_block_size();
  if (!block_size_result.ok()) {
    return block_size_result.error();
  }
  const std::uint32_t block_size = block_size_result.value();
  const Inode& inode = *file.value;
  if (req.position >= inode.size) {
    return rpc::BytesReply{};  // empty read
  }
  const std::uint64_t length =
      std::min(req.length, inode.size - req.position);
  Buffer out;
  out.reserve(length);
  std::uint64_t pos = req.position;
  while (out.size() < length) {
    const std::uint64_t block_index = pos / block_size;
    const std::uint64_t offset = pos % block_size;
    auto data = blocks_.read(inode.blocks[block_index]);
    if (!data.ok()) {
      return ErrorCode::internal;
    }
    const std::uint64_t take =
        std::min<std::uint64_t>(block_size - offset, length - out.size());
    out.insert(out.end(),
               data.value().begin() + static_cast<std::ptrdiff_t>(offset),
               data.value().begin() + static_cast<std::ptrdiff_t>(offset + take));
    pos += take;
  }
  return rpc::BytesReply{std::move(out)};
}

Result<void> FlatFileServer::do_write(const file_ops::WriteRequest& req,
                                      Store::Opened& file) {
  const auto block_size_result = ensure_block_size();
  if (!block_size_result.ok()) {
    return block_size_result.error();
  }
  const std::uint32_t block_size = block_size_result.value();
  Inode& inode = *file.value;
  const auto& data = req.bytes;
  if (data.empty()) {
    return {};
  }
  // Position is client-controlled: reject offsets whose end position
  // cannot be represented (the block arithmetic below must not wrap).
  if (req.position > std::numeric_limits<std::uint64_t>::max() - block_size -
                         data.size()) {
    return ErrorCode::invalid_argument;
  }
  const std::uint64_t end = req.position + data.size();

  // Grow: allocate (and charge for) the blocks the write needs.
  const std::uint64_t needed_blocks = (end + block_size - 1) / block_size;
  if (needed_blocks > inode.blocks.size()) {
    const std::int64_t growth =
        static_cast<std::int64_t>(needed_blocks - inode.blocks.size());
    if (const auto paid = charge(inode, growth); !paid.ok()) {
      return paid.error();
    }
    while (inode.blocks.size() < needed_blocks) {
      auto block = blocks_.allocate();
      if (!block.ok()) {
        return ErrorCode::no_space;
      }
      inode.blocks.push_back(block.value());
    }
  }

  // Write block by block, read-modify-write at the ragged edges.
  std::uint64_t pos = req.position;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t block_index = pos / block_size;
    const std::uint64_t offset = pos % block_size;
    const std::uint64_t take = std::min<std::uint64_t>(
        block_size - offset, data.size() - consumed);
    Buffer content;
    if (offset != 0 || take != block_size) {
      auto existing = blocks_.read(inode.blocks[block_index]);
      if (!existing.ok()) {
        return ErrorCode::internal;
      }
      content = std::move(existing.value());
    } else {
      content.resize(block_size, 0);
    }
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(consumed), take,
                content.begin() + static_cast<std::ptrdiff_t>(offset));
    if (const auto written = blocks_.write(inode.blocks[block_index], content);
        !written.ok()) {
      return written.error();
    }
    pos += take;
    consumed += take;
  }
  inode.size = std::max(inode.size, end);
  // Size and block-capability list changed (and the data now lives behind
  // those block capabilities): journal the inode image.
  file.mark_dirty();
  return {};
}

// ---------------------------------------------------------- FlatFileClient

Result<core::Capability> FlatFileClient::create(
    const core::Capability* payment) {
  file_ops::CreateRequest req;
  if (payment != nullptr) {
    req.payment = *payment;
  }
  auto reply = rpc::call(*transport_, server_port_, file_ops::kCreate, req);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<void> FlatFileClient::destroy(const core::Capability& file) {
  return rpc::call(*transport_, server_port_, file_ops::kDestroy, file);
}

Result<Buffer> FlatFileClient::read(const core::Capability& file,
                                    std::uint64_t position,
                                    std::uint64_t length) {
  auto reply = rpc::call(*transport_, server_port_, file_ops::kRead, file,
                         {position, length});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().bytes);
}

Result<void> FlatFileClient::write(const core::Capability& file,
                                   std::uint64_t position,
                                   std::span<const std::uint8_t> data) {
  return rpc::call(*transport_, server_port_, file_ops::kWrite, file,
                   {position, Buffer(data.begin(), data.end())});
}

Result<std::uint64_t> FlatFileClient::size(const core::Capability& file) {
  auto reply = rpc::call(*transport_, server_port_, file_ops::kSize, file);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().size;
}

Result<core::Capability> FlatFileClient::restrict(const core::Capability& file,
                                                  Rights mask) {
  return restrict_capability(*transport_, file, mask);
}

Result<core::Capability> FlatFileClient::revoke(const core::Capability& file) {
  return revoke_capability(*transport_, file);
}

}  // namespace amoeba::servers
