#include "amoeba/servers/flat_file_server.hpp"

#include <algorithm>
#include <limits>

#include "amoeba/servers/common.hpp"

namespace amoeba::servers {

FlatFileServer::FlatFileServer(
    net::Machine& machine, Port get_port,
    std::shared_ptr<const core::ProtectionScheme> scheme, std::uint64_t seed,
    Port block_server_port)
    : rpc::Service(machine, get_port, "flatfile"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed),
      transport_(machine, seed ^ 0xF17EULL),
      blocks_(transport_, block_server_port) {
  register_owner_ops(*this, store_);
  on(file_op::kCreate,
     [this](const net::Delivery& request) { return do_create(request); });
  on(file_op::kDestroy,
     [this](const net::Delivery& request) { return do_destroy(request); });
  on(file_op::kRead,
     [this](const net::Delivery& request) { return do_read(request); });
  on(file_op::kWrite,
     [this](const net::Delivery& request) { return do_write(request); });
  on(file_op::kSize,
     [this](const net::Delivery& request) { return do_size(request); });
}

void FlatFileServer::set_pricing(Pricing pricing) {
  const std::lock_guard lock(pricing_mutex_);
  pricing_ = std::move(pricing);
}

Result<void> FlatFileServer::charge(const Inode& inode,
                                    std::int64_t block_count) {
  std::optional<Pricing> pricing;
  {
    const std::lock_guard lock(pricing_mutex_);
    pricing = pricing_;
  }
  if (!pricing.has_value() || !inode.paid || block_count == 0) {
    return {};
  }
  BankClient bank(transport_, pricing->bank_port);
  if (block_count > 0) {
    return bank.transfer(inode.payer, pricing->server_account,
                         pricing->currency,
                         block_count * pricing->price_per_block);
  }
  // Negative: refund on destroy ("returning the resource might result in
  // the client getting his money back").
  return bank.transfer(pricing->server_account, inode.payer,
                       pricing->currency,
                       -block_count * pricing->price_per_block);
}

Result<std::uint32_t> FlatFileServer::ensure_block_size() {
  std::uint32_t size = block_size_.load(std::memory_order_relaxed);
  if (size != 0) {
    return size;
  }
  auto info = blocks_.info();
  if (!info.ok()) {
    return ErrorCode::internal;
  }
  size = info.value().block_size;
  block_size_.store(size, std::memory_order_relaxed);
  return size;
}

net::Message FlatFileServer::do_create(const net::Delivery& request) {
  bool priced = false;
  {
    const std::lock_guard lock(pricing_mutex_);
    priced = pricing_.has_value();
  }
  Inode inode;
  if (priced) {
    // Payment account capability required in the data field.
    Reader r(request.message.data);
    inode.payer = read_capability(r);
    if (!r.exhausted() || inode.payer.is_null()) {
      return error_reply(request, ErrorCode::invalid_argument);
    }
    inode.paid = true;
  }
  return capability_reply(request, store_.create(std::move(inode)));
}

net::Message FlatFileServer::do_destroy(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kDestroy);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Inode inode = std::move(*opened.value().value);
  const auto destroyed = store_.destroy(std::move(opened.value()));
  if (!destroyed.ok()) {
    return error_reply(request, destroyed.error());
  }
  // Shard lock released: the block frees and the refund are plain client
  // RPCs against the other services.
  for (const auto& block_cap : inode.blocks) {
    (void)blocks_.free_block(block_cap);  // best effort
  }
  (void)charge(inode, -static_cast<std::int64_t>(inode.blocks.size()));
  return error_reply(request, ErrorCode::ok);
}

net::Message FlatFileServer::do_size(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = opened.value().value->size;
  return reply;
}

net::Message FlatFileServer::do_read(const net::Delivery& request) {
  const auto block_size_result = ensure_block_size();
  if (!block_size_result.ok()) {
    return fail(request, block_size_result);
  }
  const std::uint32_t block_size = block_size_result.value();
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const Inode& inode = *opened.value().value;
  const std::uint64_t position = request.message.header.params[0];
  std::uint64_t length = request.message.header.params[1];
  if (position >= inode.size) {
    return net::make_reply(request.message, ErrorCode::ok);  // empty read
  }
  length = std::min(length, inode.size - position);
  Buffer out;
  out.reserve(length);
  std::uint64_t pos = position;
  while (out.size() < length) {
    const std::uint64_t block_index = pos / block_size;
    const std::uint64_t offset = pos % block_size;
    auto data = blocks_.read(inode.blocks[block_index]);
    if (!data.ok()) {
      return error_reply(request, ErrorCode::internal);
    }
    const std::uint64_t take =
        std::min<std::uint64_t>(block_size - offset, length - out.size());
    out.insert(out.end(),
               data.value().begin() + static_cast<std::ptrdiff_t>(offset),
               data.value().begin() + static_cast<std::ptrdiff_t>(offset + take));
    pos += take;
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.data = std::move(out);
  return reply;
}

net::Message FlatFileServer::do_write(const net::Delivery& request) {
  const auto block_size_result = ensure_block_size();
  if (!block_size_result.ok()) {
    return fail(request, block_size_result);
  }
  const std::uint32_t block_size = block_size_result.value();
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  Inode& inode = *opened.value().value;
  const std::uint64_t position = request.message.header.params[0];
  const auto& data = request.message.data;
  if (data.empty()) {
    return error_reply(request, ErrorCode::ok);
  }
  // Position is client-controlled: reject offsets whose end position
  // cannot be represented (the block arithmetic below must not wrap).
  if (position > std::numeric_limits<std::uint64_t>::max() - block_size -
                     data.size()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::uint64_t end = position + data.size();

  // Grow: allocate (and charge for) the blocks the write needs.
  const std::uint64_t needed_blocks = (end + block_size - 1) / block_size;
  if (needed_blocks > inode.blocks.size()) {
    const std::int64_t growth =
        static_cast<std::int64_t>(needed_blocks - inode.blocks.size());
    if (const auto paid = charge(inode, growth); !paid.ok()) {
      return error_reply(request, paid.error());
    }
    while (inode.blocks.size() < needed_blocks) {
      auto block = blocks_.allocate();
      if (!block.ok()) {
        return error_reply(request, ErrorCode::no_space);
      }
      inode.blocks.push_back(block.value());
    }
  }

  // Write block by block, read-modify-write at the ragged edges.
  std::uint64_t pos = position;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::uint64_t block_index = pos / block_size;
    const std::uint64_t offset = pos % block_size;
    const std::uint64_t take = std::min<std::uint64_t>(
        block_size - offset, data.size() - consumed);
    Buffer content;
    if (offset != 0 || take != block_size) {
      auto existing = blocks_.read(inode.blocks[block_index]);
      if (!existing.ok()) {
        return error_reply(request, ErrorCode::internal);
      }
      content = std::move(existing.value());
    } else {
      content.resize(block_size, 0);
    }
    std::copy_n(data.begin() + static_cast<std::ptrdiff_t>(consumed), take,
                content.begin() + static_cast<std::ptrdiff_t>(offset));
    if (const auto written = blocks_.write(inode.blocks[block_index], content);
        !written.ok()) {
      return error_reply(request, written.error());
    }
    pos += take;
    consumed += take;
  }
  inode.size = std::max(inode.size, end);
  return error_reply(request, ErrorCode::ok);
}

// ---------------------------------------------------------- FlatFileClient

Result<core::Capability> FlatFileClient::create(
    const core::Capability* payment) {
  Buffer data;
  if (payment != nullptr) {
    Writer w;
    write_capability(w, *payment);
    data = w.take();
  }
  auto reply = call(*transport_, server_port_, file_op::kCreate, nullptr,
                    std::move(data));
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<void> FlatFileClient::destroy(const core::Capability& file) {
  return as_void(call(*transport_, server_port_, file_op::kDestroy, &file));
}

Result<Buffer> FlatFileClient::read(const core::Capability& file,
                                    std::uint64_t position,
                                    std::uint64_t length) {
  auto reply = call(*transport_, server_port_, file_op::kRead, &file, {},
                    {position, length, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().data);
}

Result<void> FlatFileClient::write(const core::Capability& file,
                                   std::uint64_t position,
                                   std::span<const std::uint8_t> data) {
  return as_void(call(*transport_, server_port_, file_op::kWrite, &file,
                      Buffer(data.begin(), data.end()),
                      {position, 0, 0, 0}));
}

Result<std::uint64_t> FlatFileClient::size(const core::Capability& file) {
  auto reply = call(*transport_, server_port_, file_op::kSize, &file);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<core::Capability> FlatFileClient::restrict(const core::Capability& file,
                                                  Rights mask) {
  return restrict_capability(*transport_, file, mask);
}

Result<core::Capability> FlatFileClient::revoke(const core::Capability& file) {
  return revoke_capability(*transport_, file);
}

}  // namespace amoeba::servers
