// The flat file server (§3.3).
//
// "The flat file server provides its clients with files consisting of a
// linear sequence of bytes, numbered from 0 to the file size - 1. ...
// The server does not have any concept of an 'open' file.  One can operate
// on any file for which a valid capability can be presented."
//
// It stores no data itself: it is a *client of the block server*, holding
// block capabilities in its per-file tables -- the paper's modular
// file-system stack made concrete.  Optionally it charges for storage
// through the bank server (§3.6): when pricing is configured, CREATE FILE
// must carry a payment account capability in the data field, and block
// allocations are paid for at the configured price per block.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"

namespace amoeba::servers {

/// The flat file server's operation table.
namespace file_ops {

struct CreateRequest {
  /// Payment account capability; required when the server charges for
  /// storage, ignored-if-well-formed otherwise (trailing-optional field).
  std::optional<core::Capability> payment;
  using Wire = rpc::Layout<CreateRequest, rpc::Data<&CreateRequest::payment>>;
};

struct ReadRequest {
  std::uint64_t position = 0;
  std::uint64_t length = 0;
  using Wire = rpc::Layout<ReadRequest,
                           rpc::Param<0, &ReadRequest::position>,
                           rpc::Param<1, &ReadRequest::length>>;
};

struct WriteRequest {
  std::uint64_t position = 0;
  Buffer bytes;
  using Wire = rpc::Layout<WriteRequest,
                           rpc::Param<0, &WriteRequest::position>,
                           rpc::RawData<&WriteRequest::bytes>>;
};

struct SizeReply {
  std::uint64_t size = 0;
  using Wire = rpc::Layout<SizeReply, rpc::Param<0, &SizeReply::size>>;
};

using ReadOp = rpc::Op<ReadRequest, rpc::BytesReply>;
using SizeOp = rpc::Op<rpc::Empty, SizeReply>;

inline constexpr rpc::Op<CreateRequest, rpc::CapabilityReply> kCreate{
    0x0201, "file.create", rpc::kFactoryOp};
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kDestroy{
    0x0202, "file.destroy", core::rights::kDestroy};
inline constexpr ReadOp kRead{0x0203, "file.read", core::rights::kRead};
inline constexpr rpc::Op<WriteRequest, rpc::Empty> kWrite{
    0x0204, "file.write", core::rights::kWrite};
inline constexpr SizeOp kSize{0x0205, "file.size", core::rights::kRead};
// Restriction/revocation/info/touch use the std_* suite (rpc/typed.hpp).

}  // namespace file_ops

class FlatFileServer final : public rpc::Service {
 public:
  /// Quota-by-pricing (§3.6): x units per block of disk space.
  struct Pricing {
    Port bank_port;
    core::Capability server_account;  // deposit right required
    std::uint32_t currency = 0;
    std::int64_t price_per_block = 1;
  };

  /// `backend`, when set, journals every inode mutation (size, block
  /// capabilities, payer).  A recovered file server resumes serving its
  /// old capabilities; the block capabilities inside recovered inodes stay
  /// valid as long as the block server itself restarted from its own
  /// volume (the cross-server recovery story the crash tests exercise).
  FlatFileServer(net::Machine& machine, Port get_port,
                 std::shared_ptr<const core::ProtectionScheme> scheme,
                 std::uint64_t seed, Port block_server_port,
                 std::shared_ptr<storage::Backend> backend = nullptr);
  ~FlatFileServer() override { stop(); }  // quiesce workers before members die

  /// Enables storage charging.  Must be called before start().
  void set_pricing(Pricing pricing);

 private:
  struct Inode {
    std::uint64_t size = 0;
    std::vector<core::Capability> blocks;  // block-server capabilities
    core::Capability payer;                // account charged for growth
    bool paid = false;                     // pricing active for this file
  };
  using Store = core::ObjectStore<Inode>;

  [[nodiscard]] static core::Durability<Inode> durability(
      std::shared_ptr<storage::Backend> backend,
      std::shared_ptr<storage::GroupCommitter> committer);

  /// Charges `blocks` worth of space to the inode's payer; no-op when
  /// pricing is off or the file was created before pricing.
  [[nodiscard]] Result<void> charge(const Inode& inode, std::int64_t blocks);

  /// Lazily learns the block size from the block server (it may not have
  /// been started before us).
  [[nodiscard]] Result<std::uint32_t> ensure_block_size();

  [[nodiscard]] Result<rpc::CapabilityReply> do_create(
      const file_ops::CreateRequest& req);
  /// Destroys the inode, frees its blocks, refunds storage charges;
  /// shared by file.destroy and std.destroy (the accessor is consumed).
  [[nodiscard]] Result<void> do_destroy(Store::Opened&& file);
  [[nodiscard]] Result<rpc::BytesReply> do_read(
      const file_ops::ReadRequest& req, Store::Opened& file);
  [[nodiscard]] Result<void> do_write(const file_ops::WriteRequest& req,
                                      Store::Opened& file);

  // Inodes are exclusive under their shard lock while opened; a worker
  // holds that lock across its block-server RPCs, so writes to one file
  // serialize while different files proceed in parallel.
  // Declared before store_: the store enqueues on it for its whole
  // lifetime (destruction order tears the store down first).
  std::shared_ptr<storage::GroupCommitter> committer_;
  Store store_;
  rpc::Transport transport_;  // for talking to the block (and bank) server
  BlockClient blocks_;
  std::atomic<std::uint32_t> block_size_{0};  // lazily fetched; 0 = unknown
  mutable std::mutex pricing_mutex_;
  std::optional<Pricing> pricing_;
};

/// Client stub for the flat file service.
class FlatFileClient {
 public:
  FlatFileClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  /// Creates an empty file.  `payment`: account capability when the server
  /// charges for storage.
  [[nodiscard]] Result<core::Capability> create(
      const core::Capability* payment = nullptr);
  [[nodiscard]] Result<void> destroy(const core::Capability& file);
  [[nodiscard]] Result<Buffer> read(const core::Capability& file,
                                    std::uint64_t position,
                                    std::uint64_t length);
  [[nodiscard]] Result<void> write(const core::Capability& file,
                                   std::uint64_t position,
                                   std::span<const std::uint8_t> data);
  [[nodiscard]] Result<std::uint64_t> size(const core::Capability& file);
  /// Server-side sub-capability fabrication (schemes 0-2 path).
  [[nodiscard]] Result<core::Capability> restrict(const core::Capability& file,
                                                  Rights mask);
  /// Rotates the object's random number: instant revocation.
  [[nodiscard]] Result<core::Capability> revoke(const core::Capability& file);

  [[nodiscard]] Port server_port() const { return server_port_; }

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::servers
