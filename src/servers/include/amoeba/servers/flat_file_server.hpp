// The flat file server (§3.3).
//
// "The flat file server provides its clients with files consisting of a
// linear sequence of bytes, numbered from 0 to the file size - 1. ...
// The server does not have any concept of an 'open' file.  One can operate
// on any file for which a valid capability can be presented."
//
// It stores no data itself: it is a *client of the block server*, holding
// block capabilities in its per-file tables -- the paper's modular
// file-system stack made concrete.  Optionally it charges for storage
// through the bank server (§3.6): when pricing is configured, CREATE FILE
// must carry a payment account capability in the data field, and block
// allocations are paid for at the configured price per block.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/bank_server.hpp"
#include "amoeba/servers/block_server.hpp"

namespace amoeba::servers {

namespace file_op {
inline constexpr std::uint16_t kCreate = 0x0201;
inline constexpr std::uint16_t kDestroy = 0x0202;
inline constexpr std::uint16_t kRead = 0x0203;   // params[0]=position, [1]=length
inline constexpr std::uint16_t kWrite = 0x0204;  // params[0]=position
inline constexpr std::uint16_t kSize = 0x0205;
// Restriction/revocation use the shared owner opcodes in common.hpp.
}  // namespace file_op

class FlatFileServer final : public rpc::Service {
 public:
  /// Quota-by-pricing (§3.6): x units per block of disk space.
  struct Pricing {
    Port bank_port;
    core::Capability server_account;  // deposit right required
    std::uint32_t currency = 0;
    std::int64_t price_per_block = 1;
  };

  FlatFileServer(net::Machine& machine, Port get_port,
                 std::shared_ptr<const core::ProtectionScheme> scheme,
                 std::uint64_t seed, Port block_server_port);
  ~FlatFileServer() override { stop(); }  // quiesce workers before members die

  /// Enables storage charging.  Must be called before start().
  void set_pricing(Pricing pricing);

 private:
  struct Inode {
    std::uint64_t size = 0;
    std::vector<core::Capability> blocks;  // block-server capabilities
    core::Capability payer;                // account charged for growth
    bool paid = false;                     // pricing active for this file
  };

  /// Charges `blocks` worth of space to the inode's payer; no-op when
  /// pricing is off or the file was created before pricing.
  [[nodiscard]] Result<void> charge(const Inode& inode, std::int64_t blocks);

  /// Lazily learns the block size from the block server (it may not have
  /// been started before us).
  [[nodiscard]] Result<std::uint32_t> ensure_block_size();

  net::Message do_create(const net::Delivery& request);
  net::Message do_destroy(const net::Delivery& request);
  net::Message do_read(const net::Delivery& request);
  net::Message do_write(const net::Delivery& request);
  net::Message do_size(const net::Delivery& request);

  // Inodes are exclusive under their shard lock while opened; a worker
  // holds that lock across its block-server RPCs, so writes to one file
  // serialize while different files proceed in parallel.
  core::ObjectStore<Inode> store_;
  rpc::Transport transport_;  // for talking to the block (and bank) server
  BlockClient blocks_;
  std::atomic<std::uint32_t> block_size_{0};  // lazily fetched; 0 = unknown
  mutable std::mutex pricing_mutex_;
  std::optional<Pricing> pricing_;
};

/// Client stub for the flat file service.
class FlatFileClient {
 public:
  FlatFileClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  /// Creates an empty file.  `payment`: account capability when the server
  /// charges for storage.
  [[nodiscard]] Result<core::Capability> create(
      const core::Capability* payment = nullptr);
  [[nodiscard]] Result<void> destroy(const core::Capability& file);
  [[nodiscard]] Result<Buffer> read(const core::Capability& file,
                                    std::uint64_t position,
                                    std::uint64_t length);
  [[nodiscard]] Result<void> write(const core::Capability& file,
                                   std::uint64_t position,
                                   std::span<const std::uint8_t> data);
  [[nodiscard]] Result<std::uint64_t> size(const core::Capability& file);
  /// Server-side sub-capability fabrication (schemes 0-2 path).
  [[nodiscard]] Result<core::Capability> restrict(const core::Capability& file,
                                                  Rights mask);
  /// Rotates the object's random number: instant revocation.
  [[nodiscard]] Result<core::Capability> revoke(const core::Capability& file);

  [[nodiscard]] Port server_port() const { return server_port_; }

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::servers
