// The capability-based UNIX file system (§3.5).
//
// "The third file system is a capability-based UNIX file system, to ease
// the problem of moving existing applications from UNIX to Amoeba."
//
// Implemented the Amoeba way: not a new server, but a client-side
// compatibility layer that maps the UNIX vocabulary -- paths, file
// descriptors, open/read/write/lseek/close, mkdir/unlink/rename -- onto
// directory-server entries and flat-file capabilities.  Every descriptor
// is just a (capability, offset) pair in user memory; permissions are
// whatever rights the underlying capability grants, so a descriptor
// opened through a read-only capability behaves like an O_RDONLY fd
// enforced by the *server*, not by local bookkeeping.
//
// Non-goals (documented, not hidden): no hard links (a directory entry IS
// the capability; entering one capability twice aliases the file, which
// is UNIX-link-like but without link counts), and rename is
// lookup+enter+remove, not atomic across directories.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "amoeba/servers/directory_server.hpp"
#include "amoeba/servers/flat_file_server.hpp"

namespace amoeba::servers {

class UnixFs {
 public:
  /// open() flags; combine with |.
  static constexpr int kRead = 1;
  static constexpr int kWrite = 2;
  static constexpr int kCreate = 4;   // create if absent (needs kWrite)
  static constexpr int kTrunc = 8;    // recreate as empty (needs kWrite)
  static constexpr int kAppend = 16;  // every write goes to EOF

  enum class Whence { kSet, kCur, kEnd };

  struct Stat {
    bool is_directory = false;
    std::uint64_t size = 0;  // bytes for files, entries for directories
    core::Capability capability;
  };

  /// Mounts an existing root directory capability.
  UnixFs(rpc::Transport& transport, Port file_server_port,
         core::Capability root);

  /// Creates a fresh root directory ("mkfs").
  [[nodiscard]] static Result<UnixFs> format(rpc::Transport& transport,
                                             Port directory_server_port,
                                             Port file_server_port);

  [[nodiscard]] const core::Capability& root() const { return root_; }

  // ---- file descriptor API -------------------------------------------
  [[nodiscard]] Result<int> open(std::string_view path, int flags);
  [[nodiscard]] Result<Buffer> read(int fd, std::uint64_t count);
  [[nodiscard]] Result<std::uint64_t> write(int fd,
                                            std::span<const std::uint8_t> data);
  [[nodiscard]] Result<std::uint64_t> lseek(int fd, std::int64_t offset,
                                            Whence whence);
  [[nodiscard]] Result<void> close(int fd);

  // ---- path API -------------------------------------------------------
  [[nodiscard]] Result<void> mkdir(std::string_view path);
  [[nodiscard]] Result<void> rmdir(std::string_view path);
  /// Removes the name; the file object itself is destroyed too (no link
  /// counts -- see header comment).
  [[nodiscard]] Result<void> unlink(std::string_view path);
  [[nodiscard]] Result<std::vector<DirEntry>> readdir(std::string_view path);
  [[nodiscard]] Result<Stat> stat(std::string_view path);

  /// One directory entry with its stat, as returned by readdir_stat().
  struct StatEntry {
    std::string name;
    Stat stat;
  };

  /// readdir + stat of every entry, batched: one LIST for the directory
  /// itself, then the per-entry size/list sub-requests packed into ONE
  /// batch frame per server (rpc::TypedBatch), with all frames in flight
  /// together.  N entries spread over S servers cost 1 + S round trips
  /// instead of the 1 + N a stat() loop pays -- the ls(1) storm collapsed.
  [[nodiscard]] Result<std::vector<StatEntry>> readdir_stat(
      std::string_view path);
  /// lookup + enter + remove; not atomic.
  [[nodiscard]] Result<void> rename(std::string_view from,
                                    std::string_view to);

 private:
  struct OpenFile {
    core::Capability capability;
    std::uint64_t offset = 0;
    int flags = 0;
  };

  struct Located {
    core::Capability parent;  // directory holding the entry
    std::string name;         // final component
  };

  /// Splits a path into (parent directory capability, final name),
  /// resolving all intermediate components.
  [[nodiscard]] Result<Located> locate_parent(std::string_view path);
  [[nodiscard]] Result<OpenFile*> descriptor(int fd);
  [[nodiscard]] bool is_directory_capability(const core::Capability& cap) const;

  rpc::Transport* transport_;
  Port file_server_port_;
  core::Capability root_;
  std::vector<std::optional<OpenFile>> fds_;
};

}  // namespace amoeba::servers
