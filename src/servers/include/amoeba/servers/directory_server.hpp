// The directory server (§3.4).
//
// "The directory server manages directories, each of which is a set of
// (ASCII name, capability) pairs. ... Note that the capabilities within a
// directory need not all be file capabilities and certainly need not all
// be located in the same place or managed by the same server."
//
// Directories map names to arbitrary 16-byte capabilities -- files on any
// file server, other directories on *other directory servers*, bank
// accounts, anything.  Path resolution (resolve_path) follows each
// returned capability's SERVER field, so a walk hops between servers
// without the client noticing: "the distribution is completely
// transparent."
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/batch.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/common.hpp"

namespace amoeba::servers {

/// One directory entry as returned by list().
struct DirEntry {
  std::string name;
  core::Capability capability;
};

/// Data-stream codec for directory entries (name + 16-byte capability).
inline void wire_write(Writer& w, const DirEntry& entry) {
  wire_write(w, entry.name);
  wire_write(w, entry.capability);
}
[[nodiscard]] inline bool wire_read(Reader& r, DirEntry& entry) {
  return wire_read(r, entry.name) && wire_read(r, entry.capability);
}

/// The directory server's operation table.
namespace dir_ops {

struct NameRequest {
  std::string name;
  using Wire = rpc::Layout<NameRequest, rpc::Data<&NameRequest::name>>;
};

struct EnterRequest {
  std::string name;
  core::Capability target;
  using Wire = rpc::Layout<EnterRequest,
                           rpc::Data<&EnterRequest::name>,
                           rpc::Data<&EnterRequest::target>>;
};

struct ListReply {
  std::vector<DirEntry> entries;
  using Wire = rpc::Layout<ListReply, rpc::Data<&ListReply::entries>>;
};

using LookupOp = rpc::Op<NameRequest, rpc::CapabilityReply>;
using ListOp = rpc::Op<rpc::Empty, ListReply>;

inline constexpr rpc::Op<rpc::Empty, rpc::CapabilityReply> kCreateDir{
    0x0301, "dir.create", rpc::kFactoryOp};
inline constexpr LookupOp kLookup{0x0302, "dir.lookup", core::rights::kRead};
inline constexpr rpc::Op<EnterRequest, rpc::Empty> kEnter{
    0x0303, "dir.enter", core::rights::kWrite};
inline constexpr rpc::Op<NameRequest, rpc::Empty> kRemove{
    0x0304, "dir.remove", core::rights::kWrite};
inline constexpr ListOp kList{0x0305, "dir.list", core::rights::kRead};
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kDeleteDir{
    0x0306, "dir.delete", core::rights::kDestroy};

}  // namespace dir_ops

class DirectoryServer final : public rpc::Service {
 public:
  /// `backend`, when set, write-ahead-journals every directory mutation;
  /// a non-empty volume recovers the whole name space (entries AND the
  /// check-field secrets, so directory capabilities issued before a crash
  /// keep resolving) plus the at-most-once reply-cache floors.
  DirectoryServer(net::Machine& machine, Port get_port,
                  std::shared_ptr<const core::ProtectionScheme> scheme,
                  std::uint64_t seed,
                  std::shared_ptr<storage::Backend> backend = nullptr);
  ~DirectoryServer() override { stop(); }  // quiesce workers before members die

 private:
  using Directory = std::map<std::string, core::CapabilityBytes>;
  using Store = core::ObjectStore<Directory>;

  [[nodiscard]] static core::Durability<Directory> durability(
      std::shared_ptr<storage::Backend> backend,
      std::shared_ptr<storage::GroupCommitter> committer);

  [[nodiscard]] Result<rpc::CapabilityReply> do_lookup(
      const dir_ops::NameRequest& req, Store::Opened& dir);
  [[nodiscard]] Result<void> do_enter(const dir_ops::EnterRequest& req,
                                      Store::Opened& dir);
  [[nodiscard]] Result<void> do_remove(const dir_ops::NameRequest& req,
                                       Store::Opened& dir);
  [[nodiscard]] Result<dir_ops::ListReply> do_list(Store::Opened& dir);
  /// Deletes an empty directory; shared by dir.delete and std.destroy
  /// (the accessor is consumed on success).
  [[nodiscard]] Result<void> do_delete(Store::Opened&& dir);

  // No service-wide lock: each directory is exclusive under its shard
  // lock for the duration of the open() accessor.
  // Declared before store_: the store enqueues on it for its whole
  // lifetime (destruction order tears the store down first).
  std::shared_ptr<storage::GroupCommitter> committer_;
  Store store_;
};

/// Client stub for a directory service.
class DirectoryClient {
 public:
  DirectoryClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  [[nodiscard]] Result<core::Capability> create_dir();
  [[nodiscard]] Result<core::Capability> lookup(const core::Capability& dir,
                                                const std::string& name);
  [[nodiscard]] Result<void> enter(const core::Capability& dir,
                                   const std::string& name,
                                   const core::Capability& target);
  [[nodiscard]] Result<void> remove(const core::Capability& dir,
                                    const std::string& name);
  [[nodiscard]] Result<std::vector<DirEntry>> list(
      const core::Capability& dir);
  /// Deletes an empty directory (not_empty otherwise).
  [[nodiscard]] Result<void> delete_dir(const core::Capability& dir);

  [[nodiscard]] Port server_port() const { return server_port_; }

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

/// Walks `path` ("a/b/c") component by component starting from `root`.
/// Each step is addressed to the *current* capability's server port, so
/// the walk transparently crosses directory servers.  Empty components are
/// rejected; an empty path returns `root` itself.
[[nodiscard]] Result<core::Capability> resolve_path(
    rpc::Transport& transport, const core::Capability& root,
    std::string_view path);

/// The path walk on batched round trips: resolves many paths relative to
/// `root` level-synchronously -- each round advances every unfinished walk
/// by one component, and all walks currently standing at the same server
/// share one batch frame of LOOKUPs.  W paths of depth D over S servers
/// cost at most D*S round trips instead of W*D, while hops between
/// directory servers stay as transparent as in resolve_path.  Outcomes
/// come back in input order.
[[nodiscard]] std::vector<Result<core::Capability>> resolve_paths(
    rpc::Transport& transport, const core::Capability& root,
    std::span<const std::string> paths);

}  // namespace amoeba::servers
