// The simulated disk behind the block server.
//
// Fixed geometry (block count x block size), a free bitmap, operation
// statistics, and an optional write-once mode that models the "video disks
// and other write-once media" the multiversion file server was designed
// for (§3.5): in write-once mode a block may be written exactly once
// between allocation and free.
#pragma once

#include <cstdint>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/serial.hpp"

namespace amoeba::servers {

class SimDisk {
 public:
  struct Stats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t allocations = 0;
    std::uint64_t frees = 0;
  };

  SimDisk(std::uint32_t block_count, std::uint32_t block_size,
          bool write_once = false);

  /// Allocates a zeroed block; no_space when full.
  [[nodiscard]] Result<std::uint32_t> allocate();

  /// Releases a block back to the free list.
  [[nodiscard]] Result<void> free_block(std::uint32_t block);

  /// Whole-block read.
  [[nodiscard]] Result<Buffer> read(std::uint32_t block) const;

  /// Writes up to block_size bytes at offset 0 (rest stays zero).  In
  /// write-once mode a second write to the same allocation is `immutable`.
  [[nodiscard]] Result<void> write(std::uint32_t block,
                                   std::span<const std::uint8_t> data);

  /// True when the block has been written since its allocation (the
  /// write-once state the durability journal must carry across a crash).
  [[nodiscard]] bool written(std::uint32_t block) const {
    return block < block_count_ && written_[block];
  }

  /// Crash-recovery path: claims a SPECIFIC block (pulling it off the
  /// free list), restores its content, and re-arms the write-once state.
  /// Idempotent -- re-restoring an already-claimed block just overwrites
  /// its bytes, which is what replaying a journal prefix twice needs.
  [[nodiscard]] Result<void> restore(std::uint32_t block,
                                     std::span<const std::uint8_t> data,
                                     bool was_written);

  [[nodiscard]] std::uint32_t block_size() const { return block_size_; }
  [[nodiscard]] std::uint32_t block_count() const { return block_count_; }
  [[nodiscard]] std::uint32_t free_count() const { return free_count_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] bool valid_and_allocated(std::uint32_t block) const;

  std::uint32_t block_count_;
  std::uint32_t block_size_;
  bool write_once_;
  std::vector<std::uint8_t> storage_;
  std::vector<bool> allocated_;
  std::vector<bool> written_;  // write-once tracking
  std::vector<std::uint32_t> free_list_;
  std::uint32_t free_count_;
  mutable Stats stats_;
};

}  // namespace amoeba::servers
