// The multiversion file server (§3.5).
//
// "An important property of this file system is its ability to provide
// atomic updates on files.  In short, a user can ask to make a new version
// of a file, which results in a capability for the new version.  The new
// version acts like it is a page-by-page copy of the original ... The new
// version can be modified at will, and then atomically 'committed', thus
// becoming the new file.  A file is thus a sequence of versions.  Once a
// version of a file has been committed, it cannot be modified."
//
// Commit uses optimistic concurrency control (the Mullender & Tanenbaum
// 1982 design this section summarizes): a draft records which version it
// was forked from; commit succeeds only if that version is still the head,
// otherwise the competing committer won and the caller gets `conflict`.
//
// Two object kinds live in one capability space: files (the committed
// version sequence) and drafts (uncommitted new versions).  Draft writes
// are copy-on-write through the PageStore, so a draft of a gigabyte file
// costs O(pages actually changed).
#pragma once

#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/common.hpp"
#include "amoeba/servers/page_tree.hpp"

namespace amoeba::servers {

/// The multiversion file server's operation table.
namespace mv_ops {

struct ReadPageRequest {
  std::uint32_t page = 0;
  std::uint64_t version = 0;  // MultiVersionClient::kHead = current head
  using Wire = rpc::Layout<ReadPageRequest,
                           rpc::Param<0, &ReadPageRequest::page>,
                           rpc::Param<1, &ReadPageRequest::version>>;
};

struct WritePageRequest {
  std::uint32_t page = 0;
  Buffer bytes;
  using Wire = rpc::Layout<WritePageRequest,
                           rpc::Param<0, &WritePageRequest::page>,
                           rpc::RawData<&WritePageRequest::bytes>>;
};

struct CommitReply {
  std::uint64_t version = 0;  // index of the newly committed version
  using Wire = rpc::Layout<CommitReply, rpc::Param<0, &CommitReply::version>>;
};

struct HistoryReply {
  std::uint64_t versions = 0;
  using Wire =
      rpc::Layout<HistoryReply, rpc::Param<0, &HistoryReply::versions>>;
};

inline constexpr rpc::Op<rpc::Empty, rpc::CapabilityReply> kCreateFile{
    0x0401, "mv.create_file", rpc::kFactoryOp};
inline constexpr rpc::Op<rpc::Empty, rpc::CapabilityReply> kNewVersion{
    0x0402, "mv.new_version", core::rights::kWrite};  // file cap -> draft cap
inline constexpr rpc::Op<ReadPageRequest, rpc::BytesReply> kReadPage{
    0x0403, "mv.read_page", core::rights::kRead};
inline constexpr rpc::Op<WritePageRequest, rpc::Empty> kWritePage{
    0x0404, "mv.write_page", core::rights::kWrite};  // draft cap
inline constexpr rpc::Op<rpc::Empty, CommitReply> kCommit{
    0x0405, "mv.commit", core::rights::kWrite};  // draft cap
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kAbort{
    0x0406, "mv.abort", core::rights::kWrite};  // draft cap
inline constexpr rpc::Op<rpc::Empty, HistoryReply> kHistory{
    0x0407, "mv.history", core::rights::kRead};  // file cap
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kDestroyFile{
    0x0408, "mv.destroy_file", core::rights::kDestroy};

}  // namespace mv_ops

class MultiVersionServer final : public rpc::Service {
 public:
  /// `backend`, when set, journals files and drafts with their page
  /// CONTENT (the codec materializes each version's pages), so a
  /// recovered server serves every committed version and in-flight draft
  /// under the pre-crash capabilities.  Copy-on-write sharing between
  /// versions is not reconstructed on recovery -- correct, just unshared.
  MultiVersionServer(net::Machine& machine, Port get_port,
                     std::shared_ptr<const core::ProtectionScheme> scheme,
                     std::uint64_t seed, std::uint32_t page_size = 1024,
                     std::shared_ptr<storage::Backend> backend = nullptr);
  ~MultiVersionServer() override { stop(); }  // quiesce workers first

  [[nodiscard]] std::uint32_t page_size() const { return pages_.page_size(); }
  [[nodiscard]] PageStore::Stats page_stats() const;

 private:
  struct FileObj {
    std::vector<std::uint32_t> version_roots;  // [0] = v0; back() = head
  };
  struct DraftObj {
    // The full capability (not just the number) the draft was forked
    // from: commit revalidates it, so a draft cannot attach its pages to
    // an unrelated file that happens to reuse the number after a
    // destroy, and revoking the file cuts off outstanding drafts too.
    core::Capability file_cap;
    std::size_t base_versions = 0;  // history length at fork time
    std::uint32_t root = PageStore::kEmptyRoot;
  };
  using Payload = std::variant<FileObj, DraftObj>;
  using Store = core::ObjectStore<Payload>;

  /// Captures `this`: encode/decode walk and rebuild page trees under
  /// pages_mutex_ (taken AFTER a shard lock, matching every handler);
  /// pages_ is declared before store_ so recovery may fill it.
  [[nodiscard]] core::Durability<Payload> durability(
      std::shared_ptr<storage::Backend> backend,
      std::shared_ptr<storage::GroupCommitter> committer);

  [[nodiscard]] Result<rpc::CapabilityReply> do_new_version(
      const core::Capability& file_cap, Store::Opened& opened);
  [[nodiscard]] Result<rpc::BytesReply> do_read_page(
      const mv_ops::ReadPageRequest& req, Store::Opened& opened);
  [[nodiscard]] Result<void> do_write_page(
      const mv_ops::WritePageRequest& req, Store::Opened& opened);
  [[nodiscard]] Result<mv_ops::CommitReply> do_commit(
      const core::Capability& draft_cap);
  [[nodiscard]] Result<void> do_abort(Store::Opened&& opened);
  [[nodiscard]] Result<void> do_destroy_file(Store::Opened&& opened);
  /// std.destroy: files release their whole history, drafts behave like
  /// abort -- the uniform opcode accepts either object kind.
  [[nodiscard]] Result<void> do_destroy_any(Store::Opened&& opened);

  // Files and drafts are exclusive under their shard locks while opened;
  // commit holds the draft and its file together via open_with_peek.  The
  // page store (shared refcounted trees) keeps its own lock, always
  // acquired after a shard lock and never around store_ calls, so the
  // shard -> pages ordering is acyclic.  pages_ precedes store_: the
  // durable store's recovery constructor rebuilds trees into it.
  mutable std::mutex pages_mutex_;
  PageStore pages_;
  // Declared before store_: the store enqueues on it for its whole
  // lifetime (destruction order tears the store down first).
  std::shared_ptr<storage::GroupCommitter> committer_;
  Store store_;
};

/// Client stub for the multiversion file service.
class MultiVersionClient {
 public:
  MultiVersionClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  [[nodiscard]] Result<core::Capability> create_file();
  /// Forks a draft ("make a new version") from the current head.
  [[nodiscard]] Result<core::Capability> new_version(
      const core::Capability& file);
  /// Reads from a committed version (version_index; npos = head) of a file
  /// capability, or from a draft capability's working tree.
  static constexpr std::uint64_t kHead = ~std::uint64_t{0};
  [[nodiscard]] Result<Buffer> read_page(const core::Capability& cap,
                                         std::uint32_t page_no,
                                         std::uint64_t version_index = kHead);
  [[nodiscard]] Result<void> write_page(const core::Capability& draft,
                                        std::uint32_t page_no,
                                        std::span<const std::uint8_t> data);
  /// Atomic commit; `conflict` if another draft committed first.
  [[nodiscard]] Result<std::uint64_t> commit(const core::Capability& draft);
  [[nodiscard]] Result<void> abort(const core::Capability& draft);
  [[nodiscard]] Result<std::uint64_t> history(const core::Capability& file);
  [[nodiscard]] Result<void> destroy(const core::Capability& file);

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::servers
