// Conventions shared by every Amoeba service in this repository.
//
// Requests carry the object capability in the message header (the paper's
// standard message format reserves that slot); additional capabilities --
// a transfer target, a segment list, a payment account -- travel in the
// data field, exactly as §2.1 describes ("users are free to put other
// capabilities in the data field as required").
#pragma once

#include <array>

#include "amoeba/common/serial.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/net/message.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"

namespace amoeba::servers {

/// Places a capability into the header slot of a message.
inline void set_header_capability(net::Message& msg,
                                  const core::Capability& cap) {
  msg.header.capability = core::pack(cap);
}

/// Reads the header capability.
[[nodiscard]] inline core::Capability header_capability(
    const net::Message& msg) {
  return core::unpack(msg.header.capability);
}

/// Serializes a capability into a data stream (16 raw bytes).
inline void write_capability(Writer& w, const core::Capability& cap) {
  const auto bytes = core::pack(cap);
  for (const auto b : bytes) {
    w.u8(b);
  }
}

/// Deserializes a capability from a data stream.
[[nodiscard]] inline core::Capability read_capability(Reader& r) {
  core::CapabilityBytes bytes{};
  for (auto& b : bytes) {
    b = r.u8();
  }
  return core::unpack(bytes);
}

/// Builds an error reply (no payload).
[[nodiscard]] inline net::Message error_reply(const net::Delivery& request,
                                              ErrorCode code) {
  return net::make_reply(request.message, code);
}

/// Extracts a Result<T>'s error as a reply, for the common pattern
///   auto opened = store_.open(...); if (!opened.ok()) return fail(...);
template <typename T>
[[nodiscard]] net::Message fail(const net::Delivery& request,
                                const Result<T>& result) {
  return net::make_reply(request.message, result.error());
}

/// One client-side RPC: build the request, run the transaction, surface
/// transport errors and non-ok reply statuses as errors, hand back the
/// reply message otherwise.  The vocabulary call every client stub uses.
[[nodiscard]] inline Result<net::Message> call(
    rpc::Transport& transport, Port dest, std::uint16_t opcode,
    const core::Capability* cap = nullptr, Buffer data = {},
    std::array<std::uint64_t, 4> params = {}) {
  net::Message req;
  req.header.dest = dest;
  req.header.opcode = opcode;
  req.header.params = params;
  if (cap != nullptr) {
    set_header_capability(req, *cap);
  }
  req.data = std::move(data);
  auto reply = transport.trans(std::move(req));
  if (!reply.ok()) {
    return reply.error();
  }
  if (reply.value().message.header.status != ErrorCode::ok) {
    return reply.value().message.header.status;
  }
  return std::move(reply.value().message);
}

/// Collapses a status-only reply into Result<void>.
[[nodiscard]] inline Result<void> as_void(const Result<net::Message>& reply) {
  return reply.ok() ? Result<void>{} : Result<void>{reply.error()};
}

// ------------------------------------------------------------------------
// Owner operations every Amoeba server offers (§2.3): fabricating a
// sub-capability with fewer rights, and revoking all outstanding
// capabilities by rotating the object's random number.  Reserved opcodes,
// identical wire format on every server, one shared implementation.

inline constexpr std::uint16_t kOpRestrict = 0xF0;  // params[0] = mask
inline constexpr std::uint16_t kOpRevoke = 0xF1;

/// Builds a reply carrying `cap` in the header slot (the shape of every
/// "here is your new capability" answer).
[[nodiscard]] inline net::Message capability_reply(const net::Delivery& request,
                                                   const core::Capability& cap) {
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  set_header_capability(reply, cap);
  return reply;
}

/// Server side: registers the shared owner opcodes against the given
/// object store on a service's dispatch table.  The store must outlive
/// the service (it is invariably a member of the same server object).
template <typename T>
void register_owner_ops(rpc::Service& service, core::ObjectStore<T>& store) {
  service.on(kOpRestrict, [&store](const net::Delivery& request) {
    const Rights mask(
        static_cast<std::uint8_t>(request.message.header.params[0]));
    auto restricted =
        store.restrict(header_capability(request.message), mask);
    if (!restricted.ok()) {
      return net::make_reply(request.message, restricted.error());
    }
    return capability_reply(request, restricted.value());
  });
  service.on(kOpRevoke, [&store](const net::Delivery& request) {
    auto fresh = store.revoke(header_capability(request.message));
    if (!fresh.ok()) {
      return net::make_reply(request.message, fresh.error());
    }
    return capability_reply(request, fresh.value());
  });
}

/// Client side: asks the managing server (addressed through the
/// capability's own SERVER field) for a narrowed duplicate.
[[nodiscard]] inline Result<core::Capability> restrict_capability(
    rpc::Transport& transport, const core::Capability& cap, Rights mask) {
  auto reply = call(transport, cap.server_port, kOpRestrict, &cap, {},
                    {mask.bits(), 0, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

/// Client side: revokes every outstanding capability for the object and
/// returns the fresh replacement (requires the admin right).
[[nodiscard]] inline Result<core::Capability> revoke_capability(
    rpc::Transport& transport, const core::Capability& cap) {
  auto reply = call(transport, cap.server_port, kOpRevoke, &cap);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

}  // namespace amoeba::servers
