// Conventions shared by every Amoeba service in this repository.
//
// Requests carry the object capability in the message header (the paper's
// standard message format reserves that slot); additional capabilities --
// a transfer target, a segment list, a payment account -- travel in the
// data field, exactly as §2.1 describes ("users are free to put other
// capabilities in the data field as required").
//
// The six concrete servers declare their operations as rpc::Op
// descriptors (rpc/op.hpp) and dispatch through the typed layer
// (rpc/typed.hpp); the raw helpers kept here serve the baseline
// comparison servers and hand-rolled wire paths in tests.
#pragma once

#include <array>

#include "amoeba/common/serial.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/core/object_store.hpp"
#include "amoeba/net/message.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"

namespace amoeba::servers {

/// Places a capability into the header slot of a message.
inline void set_header_capability(net::Message& msg,
                                  const core::Capability& cap) {
  msg.header.capability = core::pack(cap);
}

/// Reads the header capability.
[[nodiscard]] inline core::Capability header_capability(
    const net::Message& msg) {
  return core::unpack(msg.header.capability);
}

/// Serializes a capability into a data stream (16 raw bytes, one
/// Writer::raw append).
inline void write_capability(Writer& w, const core::Capability& cap) {
  wire_write(w, cap);
}

/// Deserializes a capability from a data stream (one Reader::raw read).
[[nodiscard]] inline core::Capability read_capability(Reader& r) {
  core::Capability cap;
  (void)wire_read(r, cap);
  return cap;
}

/// Builds an error reply (no payload).
[[nodiscard]] inline net::Message error_reply(const net::Delivery& request,
                                              ErrorCode code) {
  return net::make_reply(request.message, code);
}

/// Extracts a Result<T>'s error as a reply, for raw handlers.
template <typename T>
[[nodiscard]] net::Message fail(const net::Delivery& request,
                                const Result<T>& result) {
  return net::make_reply(request.message, result.error());
}

/// One raw client-side RPC: build the request, run the transaction,
/// surface transport errors and non-ok reply statuses as errors, hand back
/// the reply message otherwise.  Typed stubs use rpc::call instead; this
/// remains the vocabulary call for the baseline servers and for tests that
/// build frames by hand.
[[nodiscard]] inline Result<net::Message> call(
    rpc::Transport& transport, Port dest, std::uint16_t opcode,
    const core::Capability* cap = nullptr, Buffer data = {},
    std::array<std::uint64_t, 4> params = {}) {
  net::Message req;
  req.header.dest = dest;
  req.header.opcode = opcode;
  req.header.params = params;
  if (cap != nullptr) {
    set_header_capability(req, *cap);
  }
  req.data = std::move(data);
  auto reply = transport.trans(std::move(req));
  if (!reply.ok()) {
    return reply.error();
  }
  if (reply.value().message.header.status != ErrorCode::ok) {
    return reply.value().message.header.status;
  }
  return std::move(reply.value().message);
}

/// Collapses a status-only reply into Result<void>.
[[nodiscard]] inline Result<void> as_void(const Result<net::Message>& reply) {
  return reply.ok() ? Result<void>{} : Result<void>{reply.error()};
}

// ------------------------------------------------------------------------
// Owner-operation client helpers (§2.3).  The server side is the std_*
// suite (rpc/typed.hpp), registered on every service; these wrappers keep
// the historical names used throughout the tests and benches.

/// Asks the managing server (addressed through the capability's own
/// SERVER field) for a narrowed duplicate.
[[nodiscard]] inline Result<core::Capability> restrict_capability(
    rpc::Transport& transport, const core::Capability& cap, Rights mask) {
  return rpc::std_restrict(transport, cap, mask);
}

/// Revokes every outstanding capability for the object and returns the
/// fresh replacement (requires the admin right).
[[nodiscard]] inline Result<core::Capability> revoke_capability(
    rpc::Transport& transport, const core::Capability& cap) {
  return rpc::std_revoke(transport, cap);
}

}  // namespace amoeba::servers
