// The block server (§3.2).
//
// "The block server can be requested to allocate a disk block and return a
// capability for it.  Using this capability, the block can be written,
// read, or deallocated.  The block server has no concept of a file."
//
// Splitting block storage from file semantics is the modularity claim of
// the paper's first file system: anyone holding block capabilities can
// build their own special-purpose file system on top (the flat file server
// in this repo is exactly such a client).
#pragma once

#include <memory>
#include <mutex>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/disk.hpp"

namespace amoeba::servers {

/// The block server's operation table.
namespace block_ops {

struct InfoReply {
  std::uint32_t block_count = 0;
  std::uint32_t block_size = 0;
  std::uint32_t free_blocks = 0;
  using Wire = rpc::Layout<InfoReply,
                           rpc::Param<0, &InfoReply::block_count>,
                           rpc::Param<1, &InfoReply::block_size>,
                           rpc::Param<2, &InfoReply::free_blocks>>;
};

inline constexpr rpc::Op<rpc::Empty, rpc::CapabilityReply> kAllocate{
    0x0101, "block.allocate", rpc::kFactoryOp};
inline constexpr rpc::Op<rpc::Empty, rpc::BytesReply> kRead{
    0x0102, "block.read", core::rights::kRead};
inline constexpr rpc::Op<rpc::BytesRequest, rpc::Empty> kWrite{
    0x0103, "block.write", core::rights::kWrite};
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kFree{
    0x0104, "block.free", core::rights::kDestroy};
inline constexpr rpc::Op<rpc::Empty, InfoReply> kInfo{
    0x0105, "block.info", rpc::kFactoryOp};  // geometry + free space

}  // namespace block_ops

class BlockServer final : public rpc::Service {
 public:
  struct Geometry {
    std::uint32_t block_count = 4096;
    std::uint32_t block_size = 1024;
    bool write_once = false;
  };

  /// `backend`, when set, journals block allocations and writes (the
  /// journal carries the block index AND its content, so the simulated
  /// disk is rebuilt on recovery); capabilities and the write-once state
  /// survive a crash, as do the at-most-once reply-cache floors.
  BlockServer(net::Machine& machine, Port get_port,
              std::shared_ptr<const core::ProtectionScheme> scheme,
              std::uint64_t seed, Geometry geometry,
              std::shared_ptr<storage::Backend> backend = nullptr);
  ~BlockServer() override { stop(); }  // quiesce workers before members die

  [[nodiscard]] std::uint32_t block_size() const {
    return geometry_.block_size;
  }

  /// Disk statistics snapshot (for benches / tests).
  [[nodiscard]] SimDisk::Stats disk_stats() const;

 private:
  using Store = core::ObjectStore<std::uint32_t>;  // payload: disk block index

  /// The block payload codec captures `this`: encoding reads the block's
  /// current content out of the disk (under mutex_, taken AFTER the shard
  /// lock like every handler), decoding restores it.  disk_ is declared
  /// before store_ so recovery may touch it.
  [[nodiscard]] core::Durability<std::uint32_t> durability(
      std::shared_ptr<storage::Backend> backend,
      std::shared_ptr<storage::GroupCommitter> committer);

  [[nodiscard]] Result<rpc::CapabilityReply> do_allocate();
  [[nodiscard]] Result<rpc::BytesReply> do_read(Store::Opened& block);
  [[nodiscard]] Result<void> do_write(const rpc::BytesRequest& req,
                                      Store::Opened& block);
  /// Frees the disk block and destroys the slot; shared by block.free and
  /// std.destroy (the accessor is consumed).
  [[nodiscard]] Result<void> do_free(Store::Opened&& block);
  [[nodiscard]] Result<block_ops::InfoReply> do_info() const;

  Geometry geometry_;
  mutable std::mutex mutex_;  // guards disk_ (the store shards itself)
  SimDisk disk_;
  // Declared before store_: the store enqueues on it for its whole
  // lifetime (destruction order tears the store down first).
  std::shared_ptr<storage::GroupCommitter> committer_;
  Store store_;
};

/// Client stub for the block service.
class BlockClient {
 public:
  BlockClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  [[nodiscard]] Result<core::Capability> allocate();
  [[nodiscard]] Result<Buffer> read(const core::Capability& block);
  [[nodiscard]] Result<void> write(const core::Capability& block,
                                   std::span<const std::uint8_t> data);
  [[nodiscard]] Result<void> free_block(const core::Capability& block);

  struct Info {
    std::uint32_t block_count;
    std::uint32_t block_size;
    std::uint32_t free_blocks;
  };
  [[nodiscard]] Result<Info> info();

  [[nodiscard]] Port server_port() const { return server_port_; }

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::servers
