// The block server (§3.2).
//
// "The block server can be requested to allocate a disk block and return a
// capability for it.  Using this capability, the block can be written,
// read, or deallocated.  The block server has no concept of a file."
//
// Splitting block storage from file semantics is the modularity claim of
// the paper's first file system: anyone holding block capabilities can
// build their own special-purpose file system on top (the flat file server
// in this repo is exactly such a client).
#pragma once

#include <memory>
#include <mutex>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/disk.hpp"

namespace amoeba::servers {

namespace block_op {
inline constexpr std::uint16_t kAllocate = 0x0101;
inline constexpr std::uint16_t kRead = 0x0102;
inline constexpr std::uint16_t kWrite = 0x0103;
inline constexpr std::uint16_t kFree = 0x0104;
inline constexpr std::uint16_t kInfo = 0x0105;  // geometry + free space
}  // namespace block_op

class BlockServer final : public rpc::Service {
 public:
  struct Geometry {
    std::uint32_t block_count = 4096;
    std::uint32_t block_size = 1024;
    bool write_once = false;
  };

  BlockServer(net::Machine& machine, Port get_port,
              std::shared_ptr<const core::ProtectionScheme> scheme,
              std::uint64_t seed, Geometry geometry);
  ~BlockServer() override { stop(); }  // quiesce workers before members die

  [[nodiscard]] std::uint32_t block_size() const {
    return geometry_.block_size;
  }

  /// Disk statistics snapshot (for benches / tests).
  [[nodiscard]] SimDisk::Stats disk_stats() const;

 private:
  net::Message do_allocate(const net::Delivery& request);
  net::Message do_read(const net::Delivery& request);
  net::Message do_write(const net::Delivery& request);
  net::Message do_free(const net::Delivery& request);
  net::Message do_info(const net::Delivery& request);

  Geometry geometry_;
  mutable std::mutex mutex_;  // guards disk_ (the store shards itself)
  SimDisk disk_;
  core::ObjectStore<std::uint32_t> store_;  // payload: disk block index
};

/// Client stub for the block service.
class BlockClient {
 public:
  BlockClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  [[nodiscard]] Result<core::Capability> allocate();
  [[nodiscard]] Result<Buffer> read(const core::Capability& block);
  [[nodiscard]] Result<void> write(const core::Capability& block,
                                   std::span<const std::uint8_t> data);
  [[nodiscard]] Result<void> free_block(const core::Capability& block);

  struct Info {
    std::uint32_t block_count;
    std::uint32_t block_size;
    std::uint32_t free_blocks;
  };
  [[nodiscard]] Result<Info> info();

  [[nodiscard]] Port server_port() const { return server_port_; }

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::servers
