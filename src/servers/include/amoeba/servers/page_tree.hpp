// Persistent copy-on-write page trees: the storage substrate of the
// multiversion file server (§3.5).
//
// "Each file consists of a tree of pages ... The new version acts like it
// is a page-by-page copy of the original, although in fact, pages are only
// copied when they are changed."
//
// A PageStore holds refcounted internal nodes (fixed fanout) and
// refcounted data pages.  A *root id* denotes an immutable snapshot;
// writing a page path-copies the O(depth) nodes from root to leaf and
// returns a new root, sharing every untouched subtree with the old one.
// Snapshots are retained/released explicitly; subtrees free themselves
// when their last referencing snapshot disappears.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/serial.hpp"

namespace amoeba::servers {

class PageStore {
 public:
  static constexpr std::uint32_t kFanout = 16;
  static constexpr int kDepth = 4;  // kFanout^kDepth = 65536 pages max
  static constexpr std::uint32_t kMaxPages = 65536;
  /// Root id of the canonical empty tree.
  static constexpr std::uint32_t kEmptyRoot = 0;

  struct Stats {
    std::uint64_t nodes_copied = 0;
    std::uint64_t pages_written = 0;
    std::uint64_t live_nodes = 0;
    std::uint64_t live_pages = 0;
  };

  explicit PageStore(std::uint32_t page_size);

  [[nodiscard]] std::uint32_t page_size() const { return page_size_; }

  /// Reads a page under `root`.  Unwritten pages read as all-zero (holes).
  [[nodiscard]] Result<Buffer> read(std::uint32_t root,
                                    std::uint32_t page_no) const;

  /// Copy-on-write update: returns the root of a new snapshot in which
  /// `page_no` holds `data` (zero-padded to page_size) and every other
  /// page is shared with `root`.  The caller owns one reference to the new
  /// root; `root`'s reference count is untouched.
  [[nodiscard]] Result<std::uint32_t> write(std::uint32_t root,
                                            std::uint32_t page_no,
                                            std::span<const std::uint8_t> data);

  /// Adds a reference to a snapshot (e.g. a draft starting from a
  /// committed version's root).
  void retain(std::uint32_t root);

  /// Drops a reference; frees unshared subtrees when it was the last.
  void release(std::uint32_t root);

  /// Every materialized (non-hole) page under `root`, ascending by page
  /// number -- the durability codec serializes snapshots through this.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, Buffer>> pages_of(
      std::uint32_t root) const;

  /// Builds a fresh snapshot holding exactly `pages` (the recovery
  /// inverse of pages_of); the caller owns one reference to the returned
  /// root.  Content sharing between snapshots is not reconstructed --
  /// recovered versions are correct but unshared.
  [[nodiscard]] std::uint32_t rebuild(
      std::span<const std::pair<std::uint32_t, Buffer>> pages);

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Node {
    std::array<std::uint32_t, kFanout> children{};  // 0 = absent
    std::uint32_t refcount = 0;
  };
  struct Page {
    Buffer data;
    std::uint32_t refcount = 0;
  };

  // Ids: 0 = null; odd ids are nodes, even ids are pages (id -> index via
  // /2).  Keeps one 32-bit id space over both pools.
  [[nodiscard]] static bool is_page_id(std::uint32_t id) {
    return id != 0 && id % 2 == 0;
  }
  [[nodiscard]] std::uint32_t alloc_node(const Node& content);
  [[nodiscard]] std::uint32_t alloc_page(std::span<const std::uint8_t> data);
  void release_id(std::uint32_t id);

  [[nodiscard]] std::uint32_t cow(std::uint32_t node_id, int level,
                                  std::uint32_t page_no,
                                  std::span<const std::uint8_t> data);

  std::uint32_t page_size_;
  std::vector<Node> nodes_;
  std::vector<Page> pages_;
  std::vector<std::uint32_t> free_nodes_;
  std::vector<std::uint32_t> free_pages_;
  Stats stats_;
};

}  // namespace amoeba::servers
