// The bank server (§3.6).
//
// "The basis for the resource control and accounting is the bank server,
// which manages 'bank account' objects.  The principal operation on bank
// accounts is transferring virtual money from one account to another. ...
// The bank server is prepared to maintain accounts in different, possibly
// convertible, possibly inconvertible, currencies."
//
// Rights: kRead inspects balances, kWithdraw (bit 4) moves money out,
// kDeposit (bit 5) lets money in.  New money enters the economy only
// through the master capability minted at server construction -- the model
// for "the bank" itself.  Currency conversion applies server-configured
// rational rates; pairs without a rate are inconvertible (bad_currency).
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/batch.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/rpc/typed.hpp"
#include "amoeba/servers/common.hpp"

namespace amoeba::servers {

namespace bank_rights {
inline constexpr int kWithdrawBit = 4;
inline constexpr int kDepositBit = 5;
inline constexpr int kMintBit = 6;  // meaningful only on the master account
inline constexpr Rights kWithdraw{1u << kWithdrawBit};
inline constexpr Rights kDeposit{1u << kDepositBit};
inline constexpr Rights kMint{1u << kMintBit};
}  // namespace bank_rights

/// The bank's operation table: every op states its wire shape and the
/// rights the presented capability must grant, in one place.
namespace bank_ops {

struct BalanceRequest {
  std::uint32_t currency = 0;
  using Wire = rpc::Layout<BalanceRequest, rpc::Param<0, &BalanceRequest::currency>>;
};
struct BalanceReply {
  std::int64_t balance = 0;
  using Wire = rpc::Layout<BalanceReply, rpc::Param<0, &BalanceReply::balance>>;
};

struct TransferRequest {
  std::uint32_t currency = 0;
  std::int64_t amount = 0;
  core::Capability to;  // travels in the data field (§2.1)
  using Wire = rpc::Layout<TransferRequest,
                           rpc::Param<0, &TransferRequest::currency>,
                           rpc::Param<1, &TransferRequest::amount>,
                           rpc::Data<&TransferRequest::to>>;
};

struct ConvertRequest {
  std::uint32_t from_currency = 0;
  std::uint32_t to_currency = 0;
  std::int64_t amount = 0;
  using Wire = rpc::Layout<ConvertRequest,
                           rpc::Param<0, &ConvertRequest::from_currency>,
                           rpc::Param<1, &ConvertRequest::to_currency>,
                           rpc::Param<2, &ConvertRequest::amount>>;
};
struct ConvertReply {
  std::int64_t converted = 0;
  using Wire = rpc::Layout<ConvertReply, rpc::Param<0, &ConvertReply::converted>>;
};

struct MintRequest {
  std::uint32_t currency = 0;
  std::int64_t amount = 0;
  core::Capability to;
  using Wire = rpc::Layout<MintRequest,
                           rpc::Param<0, &MintRequest::currency>,
                           rpc::Param<1, &MintRequest::amount>,
                           rpc::Data<&MintRequest::to>>;
};

using TransferOp = rpc::Op<TransferRequest, rpc::Empty>;

inline constexpr rpc::Op<rpc::Empty, rpc::CapabilityReply> kCreateAccount{
    0x0501, "bank.create_account", rpc::kFactoryOp};
inline constexpr rpc::Op<BalanceRequest, BalanceReply> kBalance{
    0x0502, "bank.balance", core::rights::kRead};
inline constexpr TransferOp kTransfer{
    0x0503, "bank.transfer", bank_rights::kWithdraw, bank_rights::kDeposit};
inline constexpr rpc::Op<ConvertRequest, ConvertReply> kConvert{
    0x0504, "bank.convert",
    bank_rights::kWithdraw.with(bank_rights::kDepositBit)};
inline constexpr rpc::Op<MintRequest, rpc::Empty> kMint{
    0x0505, "bank.mint", bank_rights::kMint, bank_rights::kDeposit};

}  // namespace bank_ops

/// Currencies are small integers; the examples use these.
namespace currency {
inline constexpr std::uint32_t kDollar = 0;  // disk space
inline constexpr std::uint32_t kFranc = 1;   // CPU time
inline constexpr std::uint32_t kYen = 2;     // phototypesetter pages
}  // namespace currency

class BankServer final : public rpc::Service {
 public:
  /// `backend`, when set, makes the account table durable: every create,
  /// balance change, revocation, and destroy is write-ahead-journaled, and
  /// a constructor handed a non-empty volume RECOVERS -- accounts,
  /// balances, the master account, and every outstanding capability
  /// survive the restart, as do the at-most-once reply-cache floors
  /// (duplicates of pre-crash transfers still drop, never re-execute).
  BankServer(net::Machine& machine, Port get_port,
             std::shared_ptr<const core::ProtectionScheme> scheme,
             std::uint64_t seed,
             std::shared_ptr<storage::Backend> backend = nullptr);
  ~BankServer() override { stop(); }  // quiesce workers before members die

  /// The bank's own capability: the only source of new money (kMint).
  [[nodiscard]] core::Capability master_capability() const {
    return master_;
  }

  /// Configures a conversion rate: amount_to = amount_from * num / den
  /// (integer floor).  Unconfigured pairs are inconvertible.
  void set_conversion_rate(std::uint32_t from, std::uint32_t to,
                           std::int64_t num, std::int64_t den);

 private:
  struct Account {
    std::unordered_map<std::uint32_t, std::int64_t> balances;
    bool is_master = false;
  };
  using Store = core::ObjectStore<Account>;

  /// Payload codec + backend wiring for the durable store (empty handle
  /// when `backend` is null).
  [[nodiscard]] static core::Durability<Account> durability(
      std::shared_ptr<storage::Backend> backend,
      std::shared_ptr<storage::GroupCommitter> committer);

  [[nodiscard]] Result<bank_ops::BalanceReply> do_balance(
      const bank_ops::BalanceRequest& req, Store::Opened& account);
  [[nodiscard]] Result<void> do_transfer(const core::Capability& from,
                                         const bank_ops::TransferRequest& req);
  [[nodiscard]] Result<bank_ops::ConvertReply> do_convert(
      const bank_ops::ConvertRequest& req, Store::Opened& account);
  [[nodiscard]] Result<void> do_mint(const core::Capability& master,
                                     const bank_ops::MintRequest& req);

  // Account state lives in (and is locked by) the sharded store; transfers
  // hold both accounts' shard locks via open2.  Only the rate table needs
  // its own lock (written by set_conversion_rate, read by converts).
  // Declared before store_: the store enqueues on it for its whole
  // lifetime (destruction order tears the store down first).
  std::shared_ptr<storage::GroupCommitter> committer_;
  Store store_;
  core::Capability master_;
  mutable std::shared_mutex rates_mutex_;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::pair<std::int64_t, std::int64_t>>
      rates_;
};

/// Client stub for the bank service.
class BankClient {
 public:
  BankClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  [[nodiscard]] Result<core::Capability> create_account();
  [[nodiscard]] Result<std::int64_t> balance(const core::Capability& account,
                                             std::uint32_t currency);
  /// Moves `amount` of `currency` from `from` (withdraw right) to `to`
  /// (deposit right).  The target capability travels in the data field.
  [[nodiscard]] Result<void> transfer(const core::Capability& from,
                                      const core::Capability& to,
                                      std::uint32_t currency,
                                      std::int64_t amount);

  /// One independent transfer inside a multi-transfer (§3.6's payroll
  /// shape: one payer, many payees -- or any mix).
  struct Transfer {
    core::Capability from;
    core::Capability to;
    std::uint32_t currency = 0;
    std::int64_t amount = 0;
  };

  /// Executes independent transfers as ONE batched round trip; outcomes
  /// come back per transfer, in order.  Each entry is atomic exactly as a
  /// lone transfer is (both accounts under their shard locks); entries are
  /// independent of each other -- a failed entry does not roll back its
  /// neighbours.  An envelope-level failure is reported on every entry.
  [[nodiscard]] std::vector<Result<void>> transfer_many(
      std::span<const Transfer> transfers);
  /// Converts within one account at the configured rate.
  [[nodiscard]] Result<std::int64_t> convert(const core::Capability& account,
                                             std::uint32_t from_currency,
                                             std::uint32_t to_currency,
                                             std::int64_t amount);
  /// Creates new money (master capability only).
  [[nodiscard]] Result<void> mint(const core::Capability& master,
                                  const core::Capability& to,
                                  std::uint32_t currency, std::int64_t amount);

  [[nodiscard]] Port server_port() const { return server_port_; }

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::servers
