#include "amoeba/servers/page_tree.hpp"

#include <algorithm>
#include <functional>

namespace amoeba::servers {
namespace {

/// Child slot of `page_no` at tree `level` (level 0 = root).
std::uint32_t slot_at(std::uint32_t page_no, int level) {
  const int shift = 4 * (PageStore::kDepth - 1 - level);
  return (page_no >> shift) & (PageStore::kFanout - 1);
}

}  // namespace

PageStore::PageStore(std::uint32_t page_size) : page_size_(page_size) {
  if (page_size == 0) {
    throw UsageError("PageStore requires non-zero page size");
  }
  nodes_.emplace_back();  // index 0 unused (id arithmetic)
  pages_.emplace_back();
}

std::uint32_t PageStore::alloc_node(const Node& content) {
  std::uint32_t index;
  if (!free_nodes_.empty()) {
    index = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[index] = content;
  } else {
    index = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(content);
  }
  nodes_[index].refcount = 1;
  ++stats_.live_nodes;
  ++stats_.nodes_copied;
  return index * 2 + 1;  // odd id
}

std::uint32_t PageStore::alloc_page(std::span<const std::uint8_t> data) {
  std::uint32_t index;
  if (!free_pages_.empty()) {
    index = free_pages_.back();
    free_pages_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(pages_.size());
    pages_.emplace_back();
  }
  Page& page = pages_[index];
  page.data.assign(data.begin(), data.end());
  page.data.resize(page_size_, 0);
  page.refcount = 1;
  ++stats_.live_pages;
  ++stats_.pages_written;
  return (index + 1) * 2;  // even id, never 0
}

void PageStore::release_id(std::uint32_t id) {
  if (id == 0) {
    return;
  }
  if (is_page_id(id)) {
    Page& page = pages_[id / 2 - 1];
    if (--page.refcount == 0) {
      page.data.clear();
      page.data.shrink_to_fit();
      free_pages_.push_back(id / 2 - 1);
      --stats_.live_pages;
    }
    return;
  }
  const std::uint32_t index = id / 2;
  Node& node = nodes_[index];
  if (--node.refcount == 0) {
    for (const std::uint32_t child : node.children) {
      release_id(child);
    }
    free_nodes_.push_back(index);
    --stats_.live_nodes;
  }
}

Result<Buffer> PageStore::read(std::uint32_t root,
                               std::uint32_t page_no) const {
  if (page_no >= kMaxPages) {
    return ErrorCode::invalid_argument;
  }
  std::uint32_t id = root;
  for (int level = 0; level < kDepth && id != 0; ++level) {
    id = nodes_[id / 2].children[slot_at(page_no, level)];
  }
  if (id == 0) {
    return Buffer(page_size_, 0);  // hole: reads as zeros
  }
  return pages_[id / 2 - 1].data;
}

std::uint32_t PageStore::cow(std::uint32_t node_id, int level,
                             std::uint32_t page_no,
                             std::span<const std::uint8_t> data) {
  if (level == kDepth) {
    return alloc_page(data);
  }
  Node copy;
  if (node_id != 0) {
    copy = nodes_[node_id / 2];
  }
  const std::uint32_t slot = slot_at(page_no, level);
  const std::uint32_t old_child = copy.children[slot];
  copy.children[slot] = cow(old_child, level + 1, page_no, data);
  // The new node shares every untouched child with the old one: each
  // gains a reference.  The replaced child does NOT (the new node points
  // at its replacement).
  for (std::uint32_t i = 0; i < kFanout; ++i) {
    if (i != slot && copy.children[i] != 0) {
      if (is_page_id(copy.children[i])) {
        ++pages_[copy.children[i] / 2 - 1].refcount;
      } else {
        ++nodes_[copy.children[i] / 2].refcount;
      }
    }
  }
  return alloc_node(copy);
}

Result<std::uint32_t> PageStore::write(std::uint32_t root,
                                       std::uint32_t page_no,
                                       std::span<const std::uint8_t> data) {
  if (page_no >= kMaxPages || data.size() > page_size_) {
    return ErrorCode::invalid_argument;
  }
  return cow(root, 0, page_no, data);
}

std::vector<std::pair<std::uint32_t, Buffer>> PageStore::pages_of(
    std::uint32_t root) const {
  std::vector<std::pair<std::uint32_t, Buffer>> out;
  if (root == 0) {
    return out;
  }
  // Depth-first in slot order yields ascending page numbers.
  const std::function<void(std::uint32_t, int, std::uint32_t)> walk =
      [&](std::uint32_t id, int level, std::uint32_t prefix) {
        if (id == 0) {
          return;
        }
        if (level == kDepth) {
          out.emplace_back(prefix, pages_[id / 2 - 1].data);
          return;
        }
        const Node& node = nodes_[id / 2];
        for (std::uint32_t slot = 0; slot < kFanout; ++slot) {
          walk(node.children[slot], level + 1, prefix * kFanout + slot);
        }
      };
  walk(root, 0, 0);
  return out;
}

std::uint32_t PageStore::rebuild(
    std::span<const std::pair<std::uint32_t, Buffer>> pages) {
  std::uint32_t root = kEmptyRoot;
  for (const auto& [page_no, data] : pages) {
    const auto next = write(root, page_no, data);
    if (!next.ok()) {
      release(root);
      throw UsageError("PageStore::rebuild: page outside tree bounds");
    }
    release(root);  // intermediate roots are stepping stones, not snapshots
    root = next.value();
  }
  return root;
}

void PageStore::retain(std::uint32_t root) {
  if (root == 0) {
    return;
  }
  if (is_page_id(root)) {
    throw UsageError("PageStore::retain: root must be a node id");
  }
  ++nodes_[root / 2].refcount;
}

void PageStore::release(std::uint32_t root) { release_id(root); }

}  // namespace amoeba::servers
