#include "amoeba/servers/disk.hpp"

#include <algorithm>

namespace amoeba::servers {

SimDisk::SimDisk(std::uint32_t block_count, std::uint32_t block_size,
                 bool write_once)
    : block_count_(block_count),
      block_size_(block_size),
      write_once_(write_once),
      storage_(static_cast<std::size_t>(block_count) * block_size, 0),
      allocated_(block_count, false),
      written_(block_count, false),
      free_count_(block_count) {
  if (block_count == 0 || block_size == 0) {
    throw UsageError("SimDisk requires non-zero geometry");
  }
  free_list_.reserve(block_count);
  // Populate so that allocation order starts at block 0.
  for (std::uint32_t b = block_count; b-- > 0;) {
    free_list_.push_back(b);
  }
}

bool SimDisk::valid_and_allocated(std::uint32_t block) const {
  return block < block_count_ && allocated_[block];
}

Result<std::uint32_t> SimDisk::allocate() {
  if (free_list_.empty()) {
    return ErrorCode::no_space;
  }
  const std::uint32_t block = free_list_.back();
  free_list_.pop_back();
  allocated_[block] = true;
  written_[block] = false;
  --free_count_;
  ++stats_.allocations;
  std::fill_n(storage_.begin() + static_cast<std::ptrdiff_t>(block) *
                                     block_size_,
              block_size_, 0);
  return block;
}

Result<void> SimDisk::free_block(std::uint32_t block) {
  if (!valid_and_allocated(block)) {
    return ErrorCode::no_such_object;
  }
  allocated_[block] = false;
  free_list_.push_back(block);
  ++free_count_;
  ++stats_.frees;
  return {};
}

Result<void> SimDisk::restore(std::uint32_t block,
                              std::span<const std::uint8_t> data,
                              bool was_written) {
  if (block >= block_count_ || data.size() > block_size_) {
    return ErrorCode::invalid_argument;
  }
  if (!allocated_[block]) {
    std::erase(free_list_, block);
    allocated_[block] = true;
    --free_count_;
  }
  written_[block] = was_written;
  const auto begin = storage_.begin() +
                     static_cast<std::ptrdiff_t>(block) * block_size_;
  std::copy(data.begin(), data.end(), begin);
  std::fill(begin + static_cast<std::ptrdiff_t>(data.size()),
            begin + block_size_, 0);
  return {};
}

Result<Buffer> SimDisk::read(std::uint32_t block) const {
  if (!valid_and_allocated(block)) {
    return ErrorCode::no_such_object;
  }
  ++stats_.reads;
  const auto begin = storage_.begin() +
                     static_cast<std::ptrdiff_t>(block) * block_size_;
  return Buffer(begin, begin + block_size_);
}

Result<void> SimDisk::write(std::uint32_t block,
                            std::span<const std::uint8_t> data) {
  if (!valid_and_allocated(block)) {
    return ErrorCode::no_such_object;
  }
  if (data.size() > block_size_) {
    return ErrorCode::invalid_argument;
  }
  if (write_once_ && written_[block]) {
    return ErrorCode::immutable;
  }
  written_[block] = true;
  ++stats_.writes;
  const auto begin = storage_.begin() +
                     static_cast<std::ptrdiff_t>(block) * block_size_;
  std::copy(data.begin(), data.end(), begin);
  std::fill(begin + static_cast<std::ptrdiff_t>(data.size()),
            begin + block_size_, 0);
  return {};
}

}  // namespace amoeba::servers
