#include "amoeba/servers/bank_server.hpp"

#include <limits>

namespace amoeba::servers {
namespace {

/// Addition with overflow rejection (balances are client-controlled).
[[nodiscard]] bool add_checked(std::int64_t a, std::int64_t b,
                               std::int64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

}  // namespace

BankServer::BankServer(net::Machine& machine, Port get_port,
                       std::shared_ptr<const core::ProtectionScheme> scheme,
                       std::uint64_t seed)
    : rpc::Service(machine, get_port, "bank"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed) {
  Account master;
  master.is_master = true;
  master_ = store_.create(std::move(master));
}

void BankServer::set_conversion_rate(std::uint32_t from, std::uint32_t to,
                                     std::int64_t num, std::int64_t den) {
  if (num <= 0 || den <= 0) {
    throw UsageError("conversion rate must be positive");
  }
  const std::lock_guard lock(mutex_);
  rates_[{from, to}] = {num, den};
}

net::Message BankServer::handle(const net::Delivery& request) {
  const std::lock_guard lock(mutex_);
  if (auto owner = handle_owner_ops(store_, request); owner.has_value()) {
    return std::move(*owner);
  }
  const core::Capability cap = header_capability(request.message);
  switch (request.message.header.opcode) {
    case bank_op::kCreateAccount: {
      const core::Capability fresh = store_.create(Account{});
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      set_header_capability(reply, fresh);
      return reply;
    }
    case bank_op::kBalance: {
      auto opened = store_.open(cap, core::rights::kRead);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      const std::uint32_t cur =
          static_cast<std::uint32_t>(request.message.header.params[0]);
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      const auto& balances = opened.value().value->balances;
      auto it = balances.find(cur);
      reply.header.params[0] =
          static_cast<std::uint64_t>(it == balances.end() ? 0 : it->second);
      return reply;
    }
    case bank_op::kTransfer:
      return do_transfer(request, cap);
    case bank_op::kConvert:
      return do_convert(request, cap);
    case bank_op::kMint:
      return do_mint(request, cap);
    default:
      return error_reply(request, ErrorCode::no_such_operation);
  }
}

net::Message BankServer::do_transfer(const net::Delivery& request,
                                     const core::Capability& from_cap) {
  auto from = store_.open(from_cap, bank_rights::kWithdraw);
  if (!from.ok()) {
    return fail(request, from);
  }
  Reader r(request.message.data);
  const core::Capability to_cap = read_capability(r);
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  auto to = store_.open(to_cap, bank_rights::kDeposit);
  if (!to.ok()) {
    return fail(request, to);
  }
  const std::uint32_t cur =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  const std::int64_t amount =
      static_cast<std::int64_t>(request.message.header.params[1]);
  if (amount <= 0) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  std::int64_t& from_balance = from.value().value->balances[cur];
  if (from_balance < amount) {
    return error_reply(request, ErrorCode::insufficient_funds);
  }
  if (from.value().object == to.value().object) {
    return error_reply(request, ErrorCode::ok);  // self-transfer: no-op
  }
  // Distinct accounts: the maps are distinct, so taking the second
  // reference cannot invalidate the first.
  std::int64_t& to_balance = to.value().value->balances[cur];
  std::int64_t new_to = 0;
  if (!add_checked(to_balance, amount, new_to)) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  from_balance -= amount;
  to_balance = new_to;
  return error_reply(request, ErrorCode::ok);
}

net::Message BankServer::do_convert(const net::Delivery& request,
                                    const core::Capability& cap) {
  // Converting rearranges the holder's own money: needs both directions.
  auto opened = store_.open(
      cap, bank_rights::kWithdraw.with(bank_rights::kDepositBit));
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const std::uint32_t from_cur =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  const std::uint32_t to_cur =
      static_cast<std::uint32_t>(request.message.header.params[1]);
  const std::int64_t amount =
      static_cast<std::int64_t>(request.message.header.params[2]);
  if (amount <= 0) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  auto rate = rates_.find({from_cur, to_cur});
  if (rate == rates_.end()) {
    return error_reply(request, ErrorCode::bad_currency);  // inconvertible
  }
  auto& balances = opened.value().value->balances;
  if (balances[from_cur] < amount) {
    return error_reply(request, ErrorCode::insufficient_funds);
  }
  const auto [num, den] = rate->second;
  const std::int64_t converted = amount * num / den;
  std::int64_t new_balance = 0;
  if (!add_checked(balances[to_cur], converted, new_balance)) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  balances[from_cur] -= amount;
  balances[to_cur] = new_balance;
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = static_cast<std::uint64_t>(converted);
  return reply;
}

net::Message BankServer::do_mint(const net::Delivery& request,
                                 const core::Capability& master_cap) {
  auto master = store_.open(master_cap, bank_rights::kMint);
  if (!master.ok()) {
    return fail(request, master);
  }
  if (!master.value().value->is_master) {
    // A forged kMint bit on an ordinary account must not create money.
    return error_reply(request, ErrorCode::permission_denied);
  }
  Reader r(request.message.data);
  const core::Capability to_cap = read_capability(r);
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  auto to = store_.open(to_cap, bank_rights::kDeposit);
  if (!to.ok()) {
    return fail(request, to);
  }
  const std::uint32_t cur =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  const std::int64_t amount =
      static_cast<std::int64_t>(request.message.header.params[1]);
  if (amount <= 0) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  std::int64_t new_balance = 0;
  if (!add_checked(to.value().value->balances[cur], amount, new_balance)) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  to.value().value->balances[cur] = new_balance;
  return error_reply(request, ErrorCode::ok);
}

// -------------------------------------------------------------- BankClient

Result<core::Capability> BankClient::create_account() {
  auto reply = call(*transport_, server_port_, bank_op::kCreateAccount);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<std::int64_t> BankClient::balance(const core::Capability& account,
                                         std::uint32_t currency) {
  auto reply = call(*transport_, server_port_, bank_op::kBalance, &account,
                    {}, {currency, 0, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return static_cast<std::int64_t>(reply.value().header.params[0]);
}

Result<void> BankClient::transfer(const core::Capability& from,
                                  const core::Capability& to,
                                  std::uint32_t currency,
                                  std::int64_t amount) {
  Writer w;
  write_capability(w, to);
  return as_void(call(*transport_, server_port_, bank_op::kTransfer, &from,
                      w.take(),
                      {currency, static_cast<std::uint64_t>(amount), 0, 0}));
}

Result<std::int64_t> BankClient::convert(const core::Capability& account,
                                         std::uint32_t from_currency,
                                         std::uint32_t to_currency,
                                         std::int64_t amount) {
  auto reply = call(*transport_, server_port_, bank_op::kConvert, &account,
                    {},
                    {from_currency, to_currency,
                     static_cast<std::uint64_t>(amount), 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return static_cast<std::int64_t>(reply.value().header.params[0]);
}

Result<void> BankClient::mint(const core::Capability& master,
                              const core::Capability& to,
                              std::uint32_t currency, std::int64_t amount) {
  Writer w;
  write_capability(w, to);
  return as_void(call(*transport_, server_port_, bank_op::kMint, &master,
                      w.take(),
                      {currency, static_cast<std::uint64_t>(amount), 0, 0}));
}

}  // namespace amoeba::servers
