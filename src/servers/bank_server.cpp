#include "amoeba/servers/bank_server.hpp"

#include <optional>

namespace amoeba::servers {
namespace {

/// Addition with overflow rejection (balances are client-controlled).
[[nodiscard]] bool add_checked(std::int64_t a, std::int64_t b,
                               std::int64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

/// Multiplication likewise (conversion rates scale client balances).
[[nodiscard]] bool mul_checked(std::int64_t a, std::int64_t b,
                               std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

}  // namespace

core::Durability<BankServer::Account> BankServer::durability(
    std::shared_ptr<storage::Backend> backend,
    std::shared_ptr<storage::GroupCommitter> committer) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Account> d;
  d.backend = std::move(backend);
  d.committer = std::move(committer);
  d.encode = [](Writer& w, const Account& account) {
    w.u32(static_cast<std::uint32_t>(account.balances.size()));
    for (const auto& [currency, balance] : account.balances) {
      w.u32(currency);
      w.i64(balance);
    }
    w.u8(account.is_master ? 1 : 0);
  };
  d.decode = [](Reader& r, Account& account) {
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
      const std::uint32_t currency = r.u32();
      account.balances[currency] = r.i64();
    }
    account.is_master = r.u8() != 0;
    return r.ok();
  };
  return d;
}

BankServer::BankServer(net::Machine& machine, Port get_port,
                       std::shared_ptr<const core::ProtectionScheme> scheme,
                       std::uint64_t seed,
                       std::shared_ptr<storage::Backend> backend)
    : rpc::Service(machine, get_port, "bank"),
      committer_(storage::GroupCommitter::create(backend)),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed,
             Store::kDefaultShards, durability(backend, committer_)) {
  if (store_.durability_stats().recovered) {
    // Restart path: the master account is already in the recovered table;
    // re-mint its capability instead of creating (and journaling) a new
    // economy.
    std::optional<ObjectNumber> master_object;
    store_.for_each([&](ObjectNumber object, const Account& account) {
      if (account.is_master) {
        master_object = object;
      }
    });
    if (!master_object.has_value()) {
      throw UsageError("BankServer: recovered volume has no master account");
    }
    master_ = store_.mint_for(*master_object, Rights::all()).value();
  } else {
    Account master;
    master.is_master = true;
    master_ = store_.create(std::move(master));
  }
  attach_durability(std::move(backend), committer_);

  rpc::register_std_ops(*this, store_);
  on(bank_ops::kCreateAccount,
     [this](const auto&) -> Result<rpc::CapabilityReply> {
       return rpc::CapabilityReply{store_.create(Account{})};
     });
  // kBalance is the bank's read path: its open() proves a repeat
  // capability through the seqlock'd validate cache before locking.
  on(bank_ops::kBalance, store_, [this](const auto& call, auto& account) {
    return do_balance(call.body, account);
  });
  on(bank_ops::kTransfer, store_, [this](const auto& call) {
    return do_transfer(call.capability, call.body);
  });
  on(bank_ops::kConvert, store_, [this](const auto& call, auto& account) {
    return do_convert(call.body, account);
  });
  on(bank_ops::kMint, store_, [this](const auto& call) {
    return do_mint(call.capability, call.body);
  });
}

void BankServer::set_conversion_rate(std::uint32_t from, std::uint32_t to,
                                     std::int64_t num, std::int64_t den) {
  if (num <= 0 || den <= 0) {
    throw UsageError("conversion rate must be positive");
  }
  const std::unique_lock lock(rates_mutex_);
  rates_[{from, to}] = {num, den};
}

Result<bank_ops::BalanceReply> BankServer::do_balance(
    const bank_ops::BalanceRequest& req, Store::Opened& account) {
  const auto& balances = account.value->balances;
  auto it = balances.find(req.currency);
  return bank_ops::BalanceReply{it == balances.end() ? 0 : it->second};
}

Result<void> BankServer::do_transfer(const core::Capability& from_cap,
                                     const bank_ops::TransferRequest& req) {
  // Both accounts under their shard locks at once: the transfer is atomic
  // against every other transfer touching either account, without any
  // bank-wide serialization.  The rights come straight from the op table.
  auto pair = store_.open2(from_cap, bank_ops::kTransfer.required, req.to,
                           bank_ops::kTransfer.data_rights);
  if (!pair.ok()) {
    return pair.error();
  }
  auto& [from, to] = pair.value();
  if (req.amount <= 0) {
    return ErrorCode::invalid_argument;
  }
  std::int64_t& from_balance = from.value->balances[req.currency];
  if (from_balance < req.amount) {
    return ErrorCode::insufficient_funds;
  }
  if (from.object == to.object) {
    return {};  // self-transfer: no-op
  }
  // Distinct accounts: the maps are distinct, so taking the second
  // reference cannot invalidate the first.
  std::int64_t& to_balance = to.value->balances[req.currency];
  std::int64_t new_to = 0;
  if (!add_checked(to_balance, req.amount, new_to)) {
    return ErrorCode::invalid_argument;
  }
  from_balance -= req.amount;
  to_balance = new_to;
  // Both sides journal as ONE append group when the pair is released: a
  // crash image never holds the debit without the credit.
  from.mark_dirty();
  to.mark_dirty();
  return {};
}

Result<bank_ops::ConvertReply> BankServer::do_convert(
    const bank_ops::ConvertRequest& req, Store::Opened& account) {
  if (req.amount <= 0) {
    return ErrorCode::invalid_argument;
  }
  std::pair<std::int64_t, std::int64_t> rate;
  {
    const std::shared_lock lock(rates_mutex_);
    auto it = rates_.find({req.from_currency, req.to_currency});
    if (it == rates_.end()) {
      return ErrorCode::bad_currency;  // inconvertible
    }
    rate = it->second;
  }
  auto& balances = account.value->balances;
  if (balances[req.from_currency] < req.amount) {
    return ErrorCode::insufficient_funds;
  }
  const auto [num, den] = rate;
  std::int64_t scaled = 0;
  if (!mul_checked(req.amount, num, scaled)) {
    return ErrorCode::invalid_argument;
  }
  const std::int64_t converted = scaled / den;
  std::int64_t new_balance = 0;
  if (!add_checked(balances[req.to_currency], converted, new_balance)) {
    return ErrorCode::invalid_argument;
  }
  balances[req.from_currency] -= req.amount;
  balances[req.to_currency] = new_balance;
  account.mark_dirty();
  return bank_ops::ConvertReply{converted};
}

Result<void> BankServer::do_mint(const core::Capability& master_cap,
                                 const bank_ops::MintRequest& req) {
  auto pair = store_.open2(master_cap, bank_ops::kMint.required, req.to,
                           bank_ops::kMint.data_rights);
  if (!pair.ok()) {
    return pair.error();
  }
  auto& [master, to] = pair.value();
  if (!master.value->is_master) {
    // A forged kMint bit on an ordinary account must not create money.
    return ErrorCode::permission_denied;
  }
  if (req.amount <= 0) {
    return ErrorCode::invalid_argument;
  }
  std::int64_t new_balance = 0;
  if (!add_checked(to.value->balances[req.currency], req.amount,
                   new_balance)) {
    return ErrorCode::invalid_argument;
  }
  to.value->balances[req.currency] = new_balance;
  to.mark_dirty();
  return {};
}

// -------------------------------------------------------------- BankClient

Result<core::Capability> BankClient::create_account() {
  auto reply = rpc::call(*transport_, server_port_, bank_ops::kCreateAccount);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<std::int64_t> BankClient::balance(const core::Capability& account,
                                         std::uint32_t currency) {
  auto reply = rpc::call(*transport_, server_port_, bank_ops::kBalance,
                         account, {currency});
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().balance;
}

Result<void> BankClient::transfer(const core::Capability& from,
                                  const core::Capability& to,
                                  std::uint32_t currency,
                                  std::int64_t amount) {
  return rpc::call(*transport_, server_port_, bank_ops::kTransfer, from,
                   {currency, amount, to});
}

std::vector<Result<void>> BankClient::transfer_many(
    std::span<const Transfer> transfers) {
  rpc::TypedBatch batch(*transport_, server_port_);
  std::vector<rpc::TypedBatch::Entry<bank_ops::TransferOp>> entries;
  entries.reserve(transfers.size());
  for (const auto& transfer : transfers) {
    entries.push_back(
        batch.add(bank_ops::kTransfer, transfer.from,
                  {transfer.currency, transfer.amount, transfer.to}));
  }
  std::vector<Result<void>> results;
  results.reserve(transfers.size());
  auto replies = batch.run();
  if (!replies.ok()) {
    results.assign(transfers.size(), Result<void>(replies.error()));
    return results;
  }
  // run() guarantees one reply per queued entry on success.
  for (const auto& entry : entries) {
    results.push_back(replies.value().get(entry));
  }
  return results;
}

Result<std::int64_t> BankClient::convert(const core::Capability& account,
                                         std::uint32_t from_currency,
                                         std::uint32_t to_currency,
                                         std::int64_t amount) {
  auto reply = rpc::call(*transport_, server_port_, bank_ops::kConvert,
                         account, {from_currency, to_currency, amount});
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().converted;
}

Result<void> BankClient::mint(const core::Capability& master,
                              const core::Capability& to,
                              std::uint32_t currency, std::int64_t amount) {
  return rpc::call(*transport_, server_port_, bank_ops::kMint, master,
                   {currency, amount, to});
}

}  // namespace amoeba::servers
