#include "amoeba/servers/bank_server.hpp"

#include <limits>

namespace amoeba::servers {
namespace {

/// Addition with overflow rejection (balances are client-controlled).
[[nodiscard]] bool add_checked(std::int64_t a, std::int64_t b,
                               std::int64_t& out) {
  return !__builtin_add_overflow(a, b, &out);
}

/// Multiplication likewise (conversion rates scale client balances).
[[nodiscard]] bool mul_checked(std::int64_t a, std::int64_t b,
                               std::int64_t& out) {
  return !__builtin_mul_overflow(a, b, &out);
}

}  // namespace

BankServer::BankServer(net::Machine& machine, Port get_port,
                       std::shared_ptr<const core::ProtectionScheme> scheme,
                       std::uint64_t seed)
    : rpc::Service(machine, get_port, "bank"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed) {
  Account master;
  master.is_master = true;
  master_ = store_.create(std::move(master));

  register_owner_ops(*this, store_);
  on(bank_op::kCreateAccount, [this](const net::Delivery& request) {
    return capability_reply(request, store_.create(Account{}));
  });
  on(bank_op::kBalance,
     [this](const net::Delivery& request) { return do_balance(request); });
  on(bank_op::kTransfer,
     [this](const net::Delivery& request) { return do_transfer(request); });
  on(bank_op::kConvert,
     [this](const net::Delivery& request) { return do_convert(request); });
  on(bank_op::kMint,
     [this](const net::Delivery& request) { return do_mint(request); });
}

void BankServer::set_conversion_rate(std::uint32_t from, std::uint32_t to,
                                     std::int64_t num, std::int64_t den) {
  if (num <= 0 || den <= 0) {
    throw UsageError("conversion rate must be positive");
  }
  const std::unique_lock lock(rates_mutex_);
  rates_[{from, to}] = {num, den};
}

net::Message BankServer::do_balance(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const std::uint32_t cur =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  const auto& balances = opened.value().value->balances;
  auto it = balances.find(cur);
  reply.header.params[0] =
      static_cast<std::uint64_t>(it == balances.end() ? 0 : it->second);
  return reply;
}

net::Message BankServer::do_transfer(const net::Delivery& request) {
  Reader r(request.message.data);
  const core::Capability to_cap = read_capability(r);
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  // Both accounts under their shard locks at once: the transfer is atomic
  // against every other transfer touching either account, without any
  // bank-wide serialization.
  auto pair = store_.open2(header_capability(request.message),
                           bank_rights::kWithdraw, to_cap,
                           bank_rights::kDeposit);
  if (!pair.ok()) {
    return fail(request, pair);
  }
  auto& [from, to] = pair.value();
  const std::uint32_t cur =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  const std::int64_t amount =
      static_cast<std::int64_t>(request.message.header.params[1]);
  if (amount <= 0) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  std::int64_t& from_balance = from.value->balances[cur];
  if (from_balance < amount) {
    return error_reply(request, ErrorCode::insufficient_funds);
  }
  if (from.object == to.object) {
    return error_reply(request, ErrorCode::ok);  // self-transfer: no-op
  }
  // Distinct accounts: the maps are distinct, so taking the second
  // reference cannot invalidate the first.
  std::int64_t& to_balance = to.value->balances[cur];
  std::int64_t new_to = 0;
  if (!add_checked(to_balance, amount, new_to)) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  from_balance -= amount;
  to_balance = new_to;
  return error_reply(request, ErrorCode::ok);
}

net::Message BankServer::do_convert(const net::Delivery& request) {
  // Converting rearranges the holder's own money: needs both directions.
  auto opened =
      store_.open(header_capability(request.message),
                  bank_rights::kWithdraw.with(bank_rights::kDepositBit));
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const std::uint32_t from_cur =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  const std::uint32_t to_cur =
      static_cast<std::uint32_t>(request.message.header.params[1]);
  const std::int64_t amount =
      static_cast<std::int64_t>(request.message.header.params[2]);
  if (amount <= 0) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  std::pair<std::int64_t, std::int64_t> rate;
  {
    const std::shared_lock lock(rates_mutex_);
    auto it = rates_.find({from_cur, to_cur});
    if (it == rates_.end()) {
      return error_reply(request, ErrorCode::bad_currency);  // inconvertible
    }
    rate = it->second;
  }
  auto& balances = opened.value().value->balances;
  if (balances[from_cur] < amount) {
    return error_reply(request, ErrorCode::insufficient_funds);
  }
  const auto [num, den] = rate;
  std::int64_t scaled = 0;
  if (!mul_checked(amount, num, scaled)) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::int64_t converted = scaled / den;
  std::int64_t new_balance = 0;
  if (!add_checked(balances[to_cur], converted, new_balance)) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  balances[from_cur] -= amount;
  balances[to_cur] = new_balance;
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = static_cast<std::uint64_t>(converted);
  return reply;
}

net::Message BankServer::do_mint(const net::Delivery& request) {
  Reader r(request.message.data);
  const core::Capability to_cap = read_capability(r);
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  auto pair = store_.open2(header_capability(request.message),
                           bank_rights::kMint, to_cap, bank_rights::kDeposit);
  if (!pair.ok()) {
    return fail(request, pair);
  }
  auto& [master, to] = pair.value();
  if (!master.value->is_master) {
    // A forged kMint bit on an ordinary account must not create money.
    return error_reply(request, ErrorCode::permission_denied);
  }
  const std::uint32_t cur =
      static_cast<std::uint32_t>(request.message.header.params[0]);
  const std::int64_t amount =
      static_cast<std::int64_t>(request.message.header.params[1]);
  if (amount <= 0) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  std::int64_t new_balance = 0;
  if (!add_checked(to.value->balances[cur], amount, new_balance)) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  to.value->balances[cur] = new_balance;
  return error_reply(request, ErrorCode::ok);
}

// -------------------------------------------------------------- BankClient

Result<core::Capability> BankClient::create_account() {
  auto reply = call(*transport_, server_port_, bank_op::kCreateAccount);
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<std::int64_t> BankClient::balance(const core::Capability& account,
                                         std::uint32_t currency) {
  auto reply = call(*transport_, server_port_, bank_op::kBalance, &account,
                    {}, {currency, 0, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return static_cast<std::int64_t>(reply.value().header.params[0]);
}

Result<void> BankClient::transfer(const core::Capability& from,
                                  const core::Capability& to,
                                  std::uint32_t currency,
                                  std::int64_t amount) {
  Writer w;
  write_capability(w, to);
  return as_void(call(*transport_, server_port_, bank_op::kTransfer, &from,
                      w.take(),
                      {currency, static_cast<std::uint64_t>(amount), 0, 0}));
}

std::vector<Result<void>> BankClient::transfer_many(
    std::span<const Transfer> transfers) {
  rpc::Batch batch(*transport_, server_port_);
  for (const auto& transfer : transfers) {
    Writer w;
    write_capability(w, transfer.to);
    const auto from = core::pack(transfer.from);
    batch.add(bank_op::kTransfer, &from, w.take(),
              {transfer.currency, static_cast<std::uint64_t>(transfer.amount),
               0, 0});
  }
  std::vector<Result<void>> results;
  results.reserve(transfers.size());
  auto replies = batch.run();
  if (!replies.ok()) {
    results.assign(transfers.size(), Result<void>(replies.error()));
    return results;
  }
  // run() guarantees one reply per queued entry on success.
  for (const auto& reply : replies.value()) {
    results.push_back(reply.status == ErrorCode::ok
                          ? Result<void>()
                          : Result<void>(reply.status));
  }
  return results;
}

Result<std::int64_t> BankClient::convert(const core::Capability& account,
                                         std::uint32_t from_currency,
                                         std::uint32_t to_currency,
                                         std::int64_t amount) {
  auto reply = call(*transport_, server_port_, bank_op::kConvert, &account,
                    {},
                    {from_currency, to_currency,
                     static_cast<std::uint64_t>(amount), 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return static_cast<std::int64_t>(reply.value().header.params[0]);
}

Result<void> BankClient::mint(const core::Capability& master,
                              const core::Capability& to,
                              std::uint32_t currency, std::int64_t amount) {
  Writer w;
  write_capability(w, to);
  return as_void(call(*transport_, server_port_, bank_op::kMint, &master,
                      w.take(),
                      {currency, static_cast<std::uint64_t>(amount), 0, 0}));
}

}  // namespace amoeba::servers
