// The sparse capability (Fig. 2).
//
//    Server Port | Object | Rights | Check Field
//        48      |   24   |   8    |     48       bits
//
// A capability names an object, addresses the server managing it, and
// certifies the holder's rights -- all in 16 bytes that live in ordinary
// user memory and travel in ordinary messages.  Nothing about it is
// kernel-mediated; its integrity rests entirely on the cryptographic
// schemes in amoeba/core/schemes.hpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "amoeba/common/types.hpp"

namespace amoeba::core {

/// Wire image: exactly 16 bytes, little-endian fields in Fig. 2 order.
using CapabilityBytes = std::array<std::uint8_t, 16>;

struct Capability {
  Port server_port;     // put-port of the managing server
  ObjectNumber object;  // index meaningful only to that server
  Rights rights;        // one bit per permitted operation
  CheckField check;     // the sparse protection field

  friend constexpr auto operator<=>(const Capability&,
                                    const Capability&) = default;

  [[nodiscard]] bool is_null() const {
    return server_port.is_null() && object.value() == 0 &&
           rights.bits() == 0 && check.value() == 0;
  }
};

/// Serializes in Fig. 2 field order.
[[nodiscard]] CapabilityBytes pack(const Capability& cap);

/// Inverse of pack.  Total: every 16-byte string parses (validation is the
/// protection scheme's job, not the parser's -- sparseness, not format,
/// protects capabilities).
[[nodiscard]] Capability unpack(const CapabilityBytes& bytes);

[[nodiscard]] std::string to_string(const Capability& cap);

/// Generic rights bits shared by the Amoeba servers.  Bits 4..7 are free
/// for server-specific operations.
namespace rights {
inline constexpr int kReadBit = 0;
inline constexpr int kWriteBit = 1;
inline constexpr int kDestroyBit = 2;
/// Guards owner operations: revoking all capabilities, fabricating
/// sub-capabilities server-side, changing object metadata.
inline constexpr int kAdminBit = 3;

inline constexpr Rights kRead{1u << kReadBit};
inline constexpr Rights kWrite{1u << kWriteBit};
inline constexpr Rights kDestroy{1u << kDestroyBit};
inline constexpr Rights kAdmin{1u << kAdminBit};
}  // namespace rights

}  // namespace amoeba::core
