// Server-side object table: per-object payload plus the secret random
// number, bound to one protection scheme and one server put-port.
//
// This is the piece every Amoeba server shares: "the server would then
// pick a random number, store this number in its object table, and insert
// it into the newly-formed object capability" (§2.3).  It also implements
// the two owner operations the paper highlights:
//   * sub-capability fabrication ("send the capability back to the server
//     along with a bit mask and a request to fabricate a new capability
//     with fewer rights"), and
//   * instant revocation ("ask the server to change the random number
//     stored in its internal table and return a new capability"),
// plus destroy-with-slot-reuse, where a reused object number draws a fresh
// secret so stale capabilities for the dead object cannot resurrect.
//
// Not thread-safe by itself; a multi-worker service serializes access
// (CP.50: define the mutex together with the data it guards -- that mutex
// lives in the owning service, next to its store).
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/core/schemes.hpp"

namespace amoeba::core {

template <typename T>
class ObjectStore {
 public:
  ObjectStore(std::shared_ptr<const ProtectionScheme> scheme, Port server_port,
              std::uint64_t seed)
      : scheme_(std::move(scheme)), server_port_(server_port), rng_(seed) {
    if (scheme_ == nullptr) {
      throw UsageError("ObjectStore requires a protection scheme");
    }
  }

  /// Creates an object and mints its owner capability carrying `rights`.
  [[nodiscard]] Capability create(T value, Rights rights = Rights::all()) {
    std::uint32_t index;
    if (!free_list_.empty()) {
      index = free_list_.back();
      free_list_.pop_back();
    } else {
      if (slots_.size() > ObjectNumber::kMask) {
        throw UsageError("ObjectStore: 24-bit object space exhausted");
      }
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& slot = slots_[index];
    slot.secret = scheme_->new_secret(rng_);
    slot.value = std::move(value);
    slot.live = true;
    ++live_count_;
    return scheme_->mint(server_port_, ObjectNumber(index), slot.secret,
                         rights);
  }

  struct Opened {
    T* value = nullptr;
    Rights rights;
    ObjectNumber object;
  };

  /// The server workhorse: look the object up by the (unencrypted) object
  /// field, validate the check field against the stored secret, and verify
  /// the granted rights cover `required`.
  [[nodiscard]] Result<Opened> open(const Capability& cap, Rights required) {
    Slot* slot = find(cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = scheme_->validate(cap, slot->secret);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(required)) {
      return ErrorCode::permission_denied;
    }
    return Opened{&slot->value, granted.value(), cap.object};
  }

  /// Server-side sub-capability fabrication: any valid capability may be
  /// narrowed to `mask` (intersection).  No special right is required,
  /// exactly as in the paper -- you can only lose rights this way.
  [[nodiscard]] Result<Capability> restrict(const Capability& cap,
                                            Rights mask) {
    Slot* slot = find(cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = scheme_->validate(cap, slot->secret);
    if (!granted.ok()) {
      return granted.error();
    }
    return scheme_->mint(server_port_, cap.object, slot->secret,
                         granted.value().intersect(mask));
  }

  /// Revocation: draws a new secret, invalidating every outstanding
  /// capability for the object, and returns a fresh capability with the
  /// caller's rights.  Guarded by the admin bit ("obviously this operation
  /// must be protected with a bit in the RIGHTS field").
  [[nodiscard]] Result<Capability> revoke(const Capability& cap) {
    auto opened = open(cap, rights::kAdmin);
    if (!opened.ok()) {
      return opened.error();
    }
    Slot& slot = slots_[cap.object.value()];
    slot.secret = scheme_->new_secret(rng_);
    return scheme_->mint(server_port_, cap.object, slot.secret,
                         opened.value().rights);
  }

  /// Destroys the object; its number returns to the free list.
  [[nodiscard]] Result<void> destroy(const Capability& cap) {
    auto opened = open(cap, rights::kDestroy);
    if (!opened.ok()) {
      return opened.error();
    }
    Slot& slot = slots_[cap.object.value()];
    slot.live = false;
    slot.value = T{};
    --live_count_;
    free_list_.push_back(cap.object.value());
    return {};
  }

  /// Server-internal mint (e.g. a directory server fabricating the
  /// capability for a freshly created root directory, or re-minting after
  /// administrative operations).  Returns no_such_object for dead slots.
  [[nodiscard]] Result<Capability> mint_for(ObjectNumber object,
                                            Rights rights) {
    Slot* slot = find(object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    return scheme_->mint(server_port_, object, slot->secret, rights);
  }

  /// Direct payload access without capability checks -- for server
  /// internals and test assertions only.
  [[nodiscard]] T* peek(ObjectNumber object) {
    Slot* slot = find(object);
    return slot == nullptr ? nullptr : &slot->value;
  }

  [[nodiscard]] std::size_t live_count() const { return live_count_; }
  [[nodiscard]] const ProtectionScheme& scheme() const { return *scheme_; }
  [[nodiscard]] Port server_port() const { return server_port_; }

 private:
  struct Slot {
    std::uint64_t secret = 0;
    T value{};
    bool live = false;
  };

  Slot* find(ObjectNumber object) {
    const std::uint32_t index = object.value();
    if (index >= slots_.size() || !slots_[index].live) {
      return nullptr;
    }
    return &slots_[index];
  }

  std::shared_ptr<const ProtectionScheme> scheme_;
  Port server_port_;
  Rng rng_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_list_;
  std::size_t live_count_ = 0;
};

}  // namespace amoeba::core
