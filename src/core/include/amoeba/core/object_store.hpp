// Server-side object table: per-object payload plus the secret random
// number, bound to one protection scheme and one server put-port.
//
// This is the piece every Amoeba server shares: "the server would then
// pick a random number, store this number in its object table, and insert
// it into the newly-formed object capability" (§2.3).  It also implements
// the two owner operations the paper highlights:
//   * sub-capability fabrication ("send the capability back to the server
//     along with a bit mask and a request to fabricate a new capability
//     with fewer rights"), and
//   * instant revocation ("ask the server to change the random number
//     stored in its internal table and return a new capability"),
// plus destroy-with-slot-reuse, where a reused object number draws a fresh
// secret so stale capabilities for the dead object cannot resurrect.
//
// Concurrency model.  The table is sharded: object numbers are assigned so
// that `object % shard_count` names the owning shard, and each shard has
// its own mutex, slot vector, free list and RNG.  All operations are
// thread-safe; independent objects in different shards proceed in
// parallel, which is what lets a multi-worker service drop its
// service-wide lock (the paper's premise that validation is a cheap table
// lookup only holds if the lookup does not serialize the whole server).
// open() returns an accessor that holds the shard lock for the accessor's
// lifetime, so the payload pointer stays valid and exclusive until the
// caller drops it.  Two-object operations (a bank transfer) go through
// open2()/open_with_peek(), which acquire the two shard locks in index
// order -- the deadlock-freedom argument is the classic total order on
// lock acquisition.
//
// Validation cache.  Each shard carries a small direct-mapped cache of
// successfully validated capabilities (the §2.4 soft-protection cache,
// generalized to every scheme): a repeat open() with a capability that
// validated before skips the Feistel/one-way recomputation.  Entries are
// keyed by (object, rights, check) and stamped with the slot's secret
// epoch; rotating the secret (create into a reused slot, revoke, destroy)
// bumps the epoch, so stale entries die without any scan -- revocation
// stays instant and exact.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/core/schemes.hpp"

namespace amoeba::core {

template <typename T>
class ShardedObjectStore {
 public:
  /// Power of two; 16 shards keeps per-shard contention negligible for a
  /// service with a few dozen workers while costing ~1 KiB per shard.
  static constexpr std::size_t kDefaultShards = 16;

  ShardedObjectStore(std::shared_ptr<const ProtectionScheme> scheme,
                     Port server_port, std::uint64_t seed,
                     std::size_t shards = kDefaultShards)
      : scheme_(std::move(scheme)), server_port_(server_port) {
    if (scheme_ == nullptr) {
      throw UsageError("ObjectStore requires a protection scheme");
    }
    if (shards == 0 || (shards & (shards - 1)) != 0) {
      throw UsageError("ObjectStore shard count must be a power of two");
    }
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      // Distinct per-shard RNG streams derived from the store seed.
      shards_.push_back(std::make_unique<Shard>(seed ^ (0x9E3779B97F4A7C15ULL *
                                                        (s + 1))));
    }
  }

  /// Exclusive accessor to one live object.  Holds the owning shard's lock
  /// for its lifetime: `value` stays valid and data-race-free until the
  /// Opened is dropped.  Do not call single-capability store operations on
  /// the same store while one is held (use destroy(Opened&&) / open2 for
  /// the multi-step patterns); the shard mutex is not recursive.
  class Opened {
   public:
    T* value = nullptr;
    Rights rights;
    ObjectNumber object;

    Opened() = default;
    Opened(Opened&&) noexcept = default;
    Opened& operator=(Opened&&) noexcept = default;

   private:
    friend class ShardedObjectStore;
    Opened(T* v, Rights r, ObjectNumber o, std::unique_lock<std::mutex> lock)
        : value(v), rights(r), object(o), lock_(std::move(lock)) {}
    std::unique_lock<std::mutex> lock_;
  };

  /// Two objects opened atomically (both shard locks held, acquired in
  /// index order).  When both capabilities name the same shard, `b` shares
  /// `a`'s lock.
  struct Opened2 {
    Opened a;
    Opened b;
  };

  /// One validated object plus an unvalidated peek at a second (may be
  /// null when the second object is dead); both shard locks held.
  struct OpenedWith {
    Opened opened;
    T* peeked = nullptr;

   private:
    friend class ShardedObjectStore;
    std::unique_lock<std::mutex> other_lock_;
  };

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Creates an object and mints its owner capability carrying `rights`.
  /// Freed slots anywhere in the table are reused before any shard grows,
  /// so the object-number space stays dense and a destroy+create pair
  /// round-trips through the same number (with a fresh secret).
  [[nodiscard]] Capability create(T value, Rights rights = Rights::all()) {
    const std::size_t start =
        cursor_.fetch_add(1, std::memory_order_relaxed) & (shards_.size() - 1);
    std::size_t chosen = start;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::size_t s = (start + i) & (shards_.size() - 1);
      if (shards_[s]->free_count.load(std::memory_order_relaxed) > 0) {
        chosen = s;
        break;
      }
    }
    Shard& shard = *shards_[chosen];
    const std::unique_lock lock(shard.mutex);
    std::uint32_t index;
    if (!shard.free_list.empty()) {
      index = shard.free_list.back();
      shard.free_list.pop_back();
      shard.free_count.fetch_sub(1, std::memory_order_relaxed);
    } else {
      if (shard.slots.size() >
          (ObjectNumber::kMask - chosen) / shards_.size()) {
        throw UsageError("ObjectStore: 24-bit object space exhausted");
      }
      index = static_cast<std::uint32_t>(shard.slots.size());
      shard.slots.emplace_back();
    }
    Slot& slot = shard.slots[index];
    slot.secret = scheme_->new_secret(shard.rng);
    ++slot.epoch;  // stale cache entries for a reused number die here
    slot.value = std::move(value);
    slot.live = true;
    live_count_.fetch_add(1, std::memory_order_relaxed);
    const auto object = ObjectNumber(
        static_cast<std::uint32_t>(index * shards_.size() + chosen));
    return scheme_->mint(server_port_, object, slot.secret, rights);
  }

  /// The server workhorse: look the object up by the (unencrypted) object
  /// field, validate the check field against the stored secret (through
  /// the per-shard validated-capability cache), and verify the granted
  /// rights cover `required`.
  [[nodiscard]] Result<Opened> open(const Capability& cap, Rights required) {
    Shard& shard = shard_of(cap.object);
    std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard, *slot, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(required)) {
      return ErrorCode::permission_denied;
    }
    return Opened(&slot->value, granted.value(), cap.object, std::move(lock));
  }

  /// Validates a capability and the required rights WITHOUT keeping the
  /// object open: the shard lock is taken only for the lookup/validation
  /// and released before returning.  This is the typed dispatcher's
  /// pre-handler check for multi-object operations, where the handler must
  /// take its own open2() locks afterwards (holding an accessor here would
  /// deadlock); the handler's re-validation hits the per-shard cache.
  [[nodiscard]] Result<Rights> check(const Capability& cap, Rights required) {
    Shard& shard = shard_of(cap.object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard, *slot, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(required)) {
      return ErrorCode::permission_denied;
    }
    return granted;
  }

  /// Opens two objects atomically (the bank-transfer shape).  Locks the
  /// two owning shards in ascending index order, so concurrent pair
  /// operations cannot deadlock whatever their argument order.
  [[nodiscard]] Result<Opened2> open2(const Capability& cap_a,
                                      Rights required_a,
                                      const Capability& cap_b,
                                      Rights required_b) {
    const std::size_t sa = shard_index(cap_a.object);
    const std::size_t sb = shard_index(cap_b.object);
    std::unique_lock<std::mutex> lock_a;
    std::unique_lock<std::mutex> lock_b;
    lock_pair(sa, sb, lock_a, lock_b);

    Shard& shard_a = *shards_[sa];
    Slot* slot_a = find(shard_a, cap_a.object);
    if (slot_a == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted_a = validate_cached(shard_a, *slot_a, cap_a);
    if (!granted_a.ok()) {
      return granted_a.error();
    }
    if (!granted_a.value().has_all(required_a)) {
      return ErrorCode::permission_denied;
    }
    Shard& shard_b = *shards_[sb];
    Slot* slot_b = find(shard_b, cap_b.object);
    if (slot_b == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted_b = validate_cached(shard_b, *slot_b, cap_b);
    if (!granted_b.ok()) {
      return granted_b.error();
    }
    if (!granted_b.value().has_all(required_b)) {
      return ErrorCode::permission_denied;
    }
    Opened2 pair;
    pair.a = Opened(&slot_a->value, granted_a.value(), cap_a.object,
                    std::move(lock_a));
    pair.b = Opened(&slot_b->value, granted_b.value(), cap_b.object,
                    std::move(lock_b));
    return pair;
  }

  /// Validates `cap` and, under the same pair of shard locks, peeks the
  /// payload of `other` without a capability check (the multiversion
  /// commit shape: the draft capability is validated, the file it forked
  /// from is server-internal state).  `peeked` is null when `other` is
  /// dead or unknown.
  [[nodiscard]] Result<OpenedWith> open_with_peek(const Capability& cap,
                                                  Rights required,
                                                  ObjectNumber other) {
    const std::size_t sa = shard_index(cap.object);
    const std::size_t sb = shard_index(other);
    std::unique_lock<std::mutex> lock_a;
    std::unique_lock<std::mutex> lock_b;
    lock_pair(sa, sb, lock_a, lock_b);

    Shard& shard_a = *shards_[sa];
    Slot* slot_a = find(shard_a, cap.object);
    if (slot_a == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard_a, *slot_a, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(required)) {
      return ErrorCode::permission_denied;
    }
    Slot* slot_b = find(*shards_[sb], other);
    OpenedWith result;
    result.opened =
        Opened(&slot_a->value, granted.value(), cap.object, std::move(lock_a));
    result.peeked = slot_b == nullptr ? nullptr : &slot_b->value;
    result.other_lock_ = std::move(lock_b);
    return result;
  }

  /// Server-side sub-capability fabrication: any valid capability may be
  /// narrowed to `mask` (intersection).  No special right is required,
  /// exactly as in the paper -- you can only lose rights this way.
  [[nodiscard]] Result<Capability> restrict(const Capability& cap,
                                            Rights mask) {
    Shard& shard = shard_of(cap.object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard, *slot, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    return scheme_->mint(server_port_, cap.object, slot->secret,
                         granted.value().intersect(mask));
  }

  /// Revocation: draws a new secret, invalidating every outstanding
  /// capability for the object, and returns a fresh capability with the
  /// caller's rights.  Guarded by the admin bit ("obviously this operation
  /// must be protected with a bit in the RIGHTS field").
  [[nodiscard]] Result<Capability> revoke(const Capability& cap) {
    Shard& shard = shard_of(cap.object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard, *slot, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(rights::kAdmin)) {
      return ErrorCode::permission_denied;
    }
    slot->secret = scheme_->new_secret(shard.rng);
    ++slot->epoch;  // instant, exact cache invalidation
    return scheme_->mint(server_port_, cap.object, slot->secret,
                         granted.value());
  }

  /// Destroys the object; its number returns to the owning shard's free
  /// list.
  [[nodiscard]] Result<void> destroy(const Capability& cap) {
    auto opened = open(cap, rights::kDestroy);
    if (!opened.ok()) {
      return opened.error();
    }
    return destroy(std::move(opened.value()));
  }

  /// Destroys through an already-held accessor (for handlers that opened
  /// the object, inspected it, and then decide to destroy -- re-opening
  /// would self-deadlock on the shard mutex).  Requires the destroy right
  /// on the accessor, like the capability form.
  [[nodiscard]] Result<void> destroy(Opened&& opened) {
    if (opened.value == nullptr || !opened.lock_.owns_lock()) {
      throw UsageError("ObjectStore::destroy: empty accessor");
    }
    if (!opened.rights.has_all(rights::kDestroy)) {
      return ErrorCode::permission_denied;
    }
    const std::size_t s = shard_index(opened.object);
    Shard& shard = *shards_[s];
    Slot& slot =
        shard.slots[opened.object.value() / shards_.size()];
    slot.live = false;
    slot.value = T{};
    ++slot.epoch;
    live_count_.fetch_sub(1, std::memory_order_relaxed);
    shard.free_list.push_back(
        static_cast<std::uint32_t>(opened.object.value() / shards_.size()));
    shard.free_count.fetch_add(1, std::memory_order_relaxed);
    opened.value = nullptr;
    opened.lock_.unlock();
    return {};
  }

  /// Server-internal mint (e.g. a directory server fabricating the
  /// capability for a freshly created root directory, or re-minting after
  /// administrative operations).  Returns no_such_object for dead slots.
  [[nodiscard]] Result<Capability> mint_for(ObjectNumber object,
                                            Rights rights) {
    Shard& shard = shard_of(object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    return scheme_->mint(server_port_, object, slot->secret, rights);
  }

  /// Direct payload access without capability checks -- for server
  /// internals and test assertions only.  The returned pointer is not
  /// protected by any lock; concurrent destruction of the object leaves it
  /// dangling.  Concurrent code should use open()/open_with_peek().
  [[nodiscard]] T* peek(ObjectNumber object) {
    Shard& shard = shard_of(object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, object);
    return slot == nullptr ? nullptr : &slot->value;
  }

  [[nodiscard]] std::size_t live_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ProtectionScheme& scheme() const { return *scheme_; }
  [[nodiscard]] Port server_port() const { return server_port_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Aggregate validated-capability cache statistics across shards.
  [[nodiscard]] CacheStats cache_stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
      const std::unique_lock lock(shard->mutex);
      total.hits += shard->cache_hits;
      total.misses += shard->cache_misses;
    }
    return total;
  }

 private:
  struct Slot {
    std::uint64_t secret = 0;
    T value{};
    bool live = false;
    std::uint32_t epoch = 0;  // bumped on every secret rotation
  };

  /// Direct-mapped validated-capability cache entry.  `epoch` ties the
  /// entry to one secret generation of the slot.
  struct CacheEntry {
    std::uint32_t object = 0;
    std::uint32_t epoch = 0;
    std::uint64_t check = 0;
    std::uint8_t rights = 0;
    bool used = false;
    Rights granted;
  };
  static constexpr std::size_t kCacheEntries = 256;  // per shard, bounded

  struct Shard {
    explicit Shard(std::uint64_t seed) : rng(seed) {}
    mutable std::mutex mutex;
    std::vector<Slot> slots;
    std::vector<std::uint32_t> free_list;
    std::atomic<std::uint32_t> free_count{0};
    Rng rng;
    std::array<CacheEntry, kCacheEntries> cache{};
    std::uint64_t cache_hits = 0;    // guarded by mutex
    std::uint64_t cache_misses = 0;  // guarded by mutex
  };

  [[nodiscard]] std::size_t shard_index(ObjectNumber object) const {
    return object.value() & (shards_.size() - 1);
  }
  [[nodiscard]] Shard& shard_of(ObjectNumber object) {
    return *shards_[shard_index(object)];
  }

  /// Caller holds the shard mutex.
  Slot* find(Shard& shard, ObjectNumber object) {
    const std::size_t index = object.value() / shards_.size();
    if (index >= shard.slots.size() || !shard.slots[index].live) {
      return nullptr;
    }
    return &shard.slots[index];
  }

  /// Locks the two shards' mutexes in ascending index order (one lock when
  /// they coincide).  lock_a/lock_b come back owning sa/sb respectively.
  void lock_pair(std::size_t sa, std::size_t sb,
                 std::unique_lock<std::mutex>& lock_a,
                 std::unique_lock<std::mutex>& lock_b) {
    if (sa == sb) {
      lock_a = std::unique_lock(shards_[sa]->mutex);
      return;
    }
    const std::size_t lo = sa < sb ? sa : sb;
    const std::size_t hi = sa < sb ? sb : sa;
    std::unique_lock first(shards_[lo]->mutex);
    std::unique_lock second(shards_[hi]->mutex);
    lock_a = sa == lo ? std::move(first) : std::move(second);
    lock_b = sb == hi ? std::move(second) : std::move(first);
  }

  /// Validation through the shard's cache; caller holds the shard mutex.
  Result<Rights> validate_cached(Shard& shard, Slot& slot,
                                 const Capability& cap) {
    const std::uint64_t mix =
        (static_cast<std::uint64_t>(cap.object.value()) << 8 |
         cap.rights.bits()) * 0x9E3779B97F4A7C15ULL ^
        cap.check.value() * 0xC2B2AE3D27D4EB4FULL;
    CacheEntry& entry = shard.cache[(mix >> 32) & (kCacheEntries - 1)];
    if (entry.used && entry.object == cap.object.value() &&
        entry.epoch == slot.epoch && entry.check == cap.check.value() &&
        entry.rights == cap.rights.bits()) {
      ++shard.cache_hits;
      return entry.granted;
    }
    ++shard.cache_misses;
    const Result<Rights> granted = scheme_->validate(cap, slot.secret);
    if (granted.ok()) {
      entry = CacheEntry{cap.object.value(), slot.epoch, cap.check.value(),
                         cap.rights.bits(), true, granted.value()};
    }
    return granted;
  }

  std::shared_ptr<const ProtectionScheme> scheme_;
  Port server_port_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> live_count_{0};
};

/// Every server's object table.  The sharded implementation keeps the
/// original single-threaded API, so the name the servers use is an alias.
template <typename T>
using ObjectStore = ShardedObjectStore<T>;

}  // namespace amoeba::core
