// Server-side object table: per-object payload plus the secret random
// number, bound to one protection scheme and one server put-port.
//
// This is the piece every Amoeba server shares: "the server would then
// pick a random number, store this number in its object table, and insert
// it into the newly-formed object capability" (§2.3).  It also implements
// the two owner operations the paper highlights:
//   * sub-capability fabrication ("send the capability back to the server
//     along with a bit mask and a request to fabricate a new capability
//     with fewer rights"), and
//   * instant revocation ("ask the server to change the random number
//     stored in its internal table and return a new capability"),
// plus destroy-with-slot-reuse, where a reused object number draws a fresh
// secret so stale capabilities for the dead object cannot resurrect.
//
// Concurrency model.  The table is sharded: object numbers are assigned so
// that `object % shard_count` names the owning shard, and each shard has
// its own mutex, slot chunks, free list and RNG.  All operations are
// thread-safe; independent objects in different shards proceed in
// parallel, which is what lets a multi-worker service drop its
// service-wide lock (the paper's premise that validation is a cheap table
// lookup only holds if the lookup does not serialize the whole server).
// open() returns an accessor that holds the shard lock for the accessor's
// lifetime, so the payload pointer stays valid and exclusive until the
// caller drops it.  Two-object operations (a bank transfer) go through
// open2()/open_with_peek(), which acquire the two shard locks in index
// order -- the deadlock-freedom argument is the classic total order on
// lock acquisition.
//
// Validation cache.  Each shard carries a small direct-mapped cache of
// successfully validated capabilities (the §2.4 soft-protection cache,
// generalized to every scheme): a repeat open() with a capability that
// validated before skips the Feistel/one-way recomputation.  Entries are
// keyed by (object, rights, check) and stamped with the slot's secret
// epoch; rotating the secret (create into a reused slot, revoke, destroy)
// bumps the epoch, so stale entries die without any scan -- revocation
// stays instant and exact.
//
// Lock-free repeat validation.  check() -- and the validation prefix of
// open() -- first runs validate_fast(): a pure-load probe that takes NO
// lock at all.  The probe reads the slot's lock-free header (live flag +
// secret epoch) and the shard's cache entry, each under a per-record
// common::SeqCount seqlock generation; writers (create, revoke, destroy,
// cache refill -- all already serialized by the shard mutex) wrap their
// stores in a SeqCount::WriteGuard, so a reader that overlaps any
// transition fails its generation recheck and falls back to the locked
// slow path.  A fast hit requires the cache entry's epoch to equal the
// epoch read from the slot IN THE SAME stable generation, which is
// exactly the revocation guarantee: the epoch bump is inside the slot's
// write guard, so no capability ever fast-validates against a rotated
// secret.  Anything short of a bit-exact hit -- cache miss, dead slot,
// unpublished index, busy seqlock -- is answered by the mutex path with
// identical semantics, never by the probe itself.  Slot storage is
// chunked and address-stable (chunks are published once via atomic
// pointer and never move or shrink) so probes hold no lock while shards
// grow; shard mutexes are common::CountedMutex, so the lock-counter test
// can PROVE the zero-acquisition claim rather than argue it.
//
// Durability (storage/).  A store constructed with a Durability handle
// write-ahead-journals every state change -- create, payload mutation,
// secret rotation, destroy -- into its backend, one append-only journal
// per shard, ENCODED under the owning shard's lock so journaling rides
// the per-shard concurrency instead of reintroducing a global lock.
// Records carry the object number, the secret check-field number, and the
// server-supplied serialized payload, so every capability issued before a
// crash still validates after recovery.  Payload mutations are explicit:
// a handler that writes through an accessor calls Opened::mark_dirty()
// (or mark_dirty_delta() with a byte-range patch, journaled as a compact
// delta record instead of the full image), and the record is framed when
// the accessor is released, still under the shard lock.  Pair accessors
// (Opened2) flush their two dirty payloads as ONE atomic journal group,
// so a crash image can never hold half a bank transfer.
//
// Group commit.  With Durability::committer set, the framed record is
// ENQUEUED (under the shard lock) to the volume's group-commit flusher
// with an assigned commit ticket; the mutating operation then releases
// the shard lock and blocks until the flusher reports the ticket durable,
// so "durable on return" still holds while one backend write + one fsync
// per flush cycle covers every record that piled up meanwhile.  Handlers
// that can pipeline use Opened::release_async() to carry the ticket as a
// future and wait through ShardedObjectStore::wait_durable() later.
// Without a committer every append is synchronous on the mutator thread
// (the PR-5 shape, still supported).
//
// Shards self-compact: after `compact_after` records a shard serializes
// its live slots into a snapshot and restarts its journal.  The recovery
// constructor (a Durability whose backend is non-empty) replays
// snapshot-then-journal to rebuild every shard -- secrets, payloads, free
// lists -- tolerating a torn final record.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "amoeba/common/epoch.hpp"
#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/common/serial.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/core/schemes.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/record.hpp"

namespace amoeba::core {

/// Attaches a store to a storage volume.  `encode`/`decode` are the
/// payload codecs (a server declares how its object type serializes);
/// both are required when `backend` is set.  A non-empty backend triggers
/// recovery; an empty one starts a fresh durable store.
template <typename T>
struct Durability {
  std::shared_ptr<storage::Backend> backend;  // null = in-memory only
  /// Group-commit queue for `backend` (must wrap the same volume).  When
  /// set, journal appends are enqueued and batched by the volume's flusher
  /// and mutators block -- after releasing the shard lock -- on their
  /// commit ticket; when null, every append is synchronous.
  std::shared_ptr<storage::GroupCommitter> committer;
  std::function<void(Writer&, const T&)> encode;
  std::function<bool(Reader&, T&)> decode;
  /// Applies one RecordType::delta patch (journaled by a handler through
  /// Opened::mark_dirty_delta) to a live payload during recovery replay.
  /// Must be idempotent (replayed prefixes apply patches twice).  Required
  /// iff any handler journals deltas.
  std::function<bool(Reader&, T&)> apply_delta;
  /// Called during RECOVERY REPLAY before a decoded payload is overwritten
  /// or discarded (create-over-live, mutate, destroy) -- servers whose
  /// payloads own external resources (page-tree references) release them
  /// here.  Never called on the live operation paths, where handlers
  /// already manage those resources explicitly.
  std::function<void(T&)> dispose;
  /// Journal records a shard absorbs before it folds them into a fresh
  /// snapshot (log compaction); 0 disables auto-compaction.
  std::size_t compact_after = 4096;
};

template <typename T>
class ShardedObjectStore {
 public:
  /// Power of two; 16 shards keeps per-shard contention negligible for a
  /// service with a few dozen workers while costing ~1 KiB per shard.
  static constexpr std::size_t kDefaultShards = 16;

  ShardedObjectStore(std::shared_ptr<const ProtectionScheme> scheme,
                     Port server_port, std::uint64_t seed,
                     std::size_t shards = kDefaultShards,
                     Durability<T> durability = {})
      : scheme_(std::move(scheme)),
        server_port_(server_port),
        durability_(std::move(durability)) {
    if (scheme_ == nullptr) {
      throw UsageError("ObjectStore requires a protection scheme");
    }
    if (shards == 0 || (shards & (shards - 1)) != 0) {
      throw UsageError("ObjectStore shard count must be a power of two");
    }
    if (durability_.backend != nullptr) {
      if (!durability_.encode || !durability_.decode) {
        throw UsageError("ObjectStore: durable stores need payload codecs");
      }
      if (durability_.backend->shard_count() != shards) {
        throw UsageError(
            "ObjectStore: backend shard count must match the store's "
            "(object-number layout is per-shard)");
      }
    }
    if (durability_.committer != nullptr &&
        durability_.committer->backend() != durability_.backend) {
      throw UsageError(
          "ObjectStore: the committer must wrap the store's own backend "
          "(tickets are per-volume)");
    }
    shards_.reserve(shards);
    // Highest slot index a shard can ever hold in the 24-bit object space
    // -- fixes the size of its chunk-pointer directory up front, so the
    // directory itself never reallocates under lock-free readers.
    const std::size_t max_slots = ObjectNumber::kMask / shards + 1;
    for (std::size_t s = 0; s < shards; ++s) {
      // Distinct per-shard RNG streams derived from the store seed.
      shards_.push_back(std::make_unique<Shard>(
          seed ^ (0x9E3779B97F4A7C15ULL * (s + 1)), max_slots));
    }
    if (durability_.backend != nullptr && !durability_.backend->empty()) {
      recover();
    }
  }

  /// Exclusive accessor to one live object.  Holds the owning shard's lock
  /// for its lifetime: `value` stays valid and data-race-free until the
  /// Opened is dropped.  Do not call single-capability store operations on
  /// the same store while one is held (use destroy(Opened&&) / open2 for
  /// the multi-step patterns); the shard mutex is not recursive.
  ///
  /// Durability hook: a handler that mutates `*value` calls mark_dirty();
  /// dropping the accessor then journals the re-serialized payload while
  /// the shard lock is still held.  Accessors of in-memory stores ignore
  /// the flag.
  class Opened {
   public:
    T* value = nullptr;
    Rights rights;
    ObjectNumber object;

    Opened() = default;
    Opened(Opened&& other) noexcept { *this = std::move(other); }
    Opened& operator=(Opened&& other) noexcept {
      if (this != &other) {
        finish();
        value = std::exchange(other.value, nullptr);
        rights = other.rights;
        object = other.object;
        store_ = std::exchange(other.store_, nullptr);
        dirty_ = std::exchange(other.dirty_, false);
        deltas_ = std::move(other.deltas_);
        other.deltas_.clear();
        pending_ = std::exchange(other.pending_, 0);
        lock_ = std::move(other.lock_);
      }
      return *this;
    }
    ~Opened() { finish(); }

    /// Declares that `*value` was (or will be) modified: the payload is
    /// journaled when this accessor is released.
    void mark_dirty() { dirty_ = true; }

    /// Declares that `*value` was patched in place: `patch` -- a
    /// server-defined byte-range patch the store's apply_delta codec can
    /// replay -- is journaled as a compact delta record when this accessor
    /// is released, instead of the payload's full image.  A full
    /// mark_dirty() on the same accessor supersedes every pending patch
    /// (the re-encoded payload already contains their effects).  Accessors
    /// of in-memory stores ignore it.  Throws UsageError on a durable
    /// store without an apply_delta codec -- validated HERE, at mark time,
    /// because the journaling itself runs inside release paths (accessor
    /// destructors) that must not throw.
    void mark_dirty_delta(Buffer patch) {
      if (store_ != nullptr && store_->durable() &&
          !store_->durability_.apply_delta) {
        throw UsageError(
            "ObjectStore: mark_dirty_delta needs an apply_delta codec "
            "(Durability::apply_delta is unset)");
      }
      deltas_.push_back(std::move(patch));
    }

    /// Journals a marked-dirty payload NOW, while the shard lock is still
    /// held, instead of at release (the durability wait still happens at
    /// release).  Required before destroy()ing the partner of a same-shard
    /// pair (the destroy drops the shared lock); harmless otherwise.
    void flush() { flush_dirty(); }

    /// Journals any dirty payload and releases the object WITHOUT blocking
    /// on group-commit durability: returns the commit ticket to hand to
    /// ShardedObjectStore::wait_durable() later (0 -- already durable --
    /// for in-memory and synchronously journaled stores).  The pipelined
    /// form: keep a bounded window of outstanding tickets and overlap many
    /// mutations against one flush cycle.
    [[nodiscard]] std::uint64_t release_async() {
      flush_dirty();
      const std::uint64_t ticket = pending_;
      pending_ = 0;
      value = nullptr;
      store_ = nullptr;
      if (lock_.owns_lock()) {
        lock_.unlock();
      }
      return ticket;
    }

   private:
    friend class ShardedObjectStore;
    friend struct Opened2;
    friend class OpenedWith;
    Opened(ShardedObjectStore* store, T* v, Rights r, ObjectNumber o,
           std::unique_lock<common::CountedMutex> lock)
        : value(v), rights(r), object(o), store_(store),
          lock_(std::move(lock)) {}

    /// Journals the payload if dirty (full image, or the pending delta
    /// patches when only mark_dirty_delta was called).  Runs while the
    /// owning shard's mutex is held -- by this accessor's own lock, or
    /// (for the lock-sharing member of a same-shard pair) by its
    /// partner's.  Group-committed stores only ENQUEUE here; the blocking
    /// wait belongs to finish(), after the lock drops.
    void flush_dirty() {
      if (store_ != nullptr && value != nullptr) {
        if (dirty_) {
          pending_ = store_->journal_mutate_locked(object, *value);
        } else {
          for (const Buffer& patch : deltas_) {
            pending_ = store_->journal_delta_locked(object, patch);
          }
        }
      }
      dirty_ = false;
      deltas_.clear();
    }

    /// Full release: journal under the lock, drop the lock, THEN block on
    /// the commit ticket -- waiting while holding the shard mutex would
    /// serialize every other object of the shard behind one fsync.
    void finish() {
      flush_dirty();
      const std::uint64_t ticket = std::exchange(pending_, 0);
      ShardedObjectStore* store = std::exchange(store_, nullptr);
      value = nullptr;
      if (lock_.owns_lock()) {
        lock_.unlock();
      }
      if (ticket != 0 && store != nullptr) {
        store->wait_durable(ticket);
      }
    }

    ShardedObjectStore* store_ = nullptr;
    bool dirty_ = false;
    std::vector<Buffer> deltas_;    // pending mark_dirty_delta patches
    std::uint64_t pending_ = 0;     // commit ticket of the journaled flush
    std::unique_lock<common::CountedMutex> lock_;
  };

  /// Two objects opened atomically (both shard locks held, acquired in
  /// index order).  When both capabilities name the same shard, `b` shares
  /// `a`'s lock.  Dirty payloads of the pair are journaled as ONE atomic
  /// group when the pair is released -- a crash/restart cannot observe a
  /// debit without its credit.  Group-committed stores block ONCE on the
  /// group's ticket, after both shard locks have dropped.
  struct Opened2 {
    Opened a;
    Opened b;

    Opened2() = default;
    Opened2(Opened2&& other) noexcept = default;
    Opened2& operator=(Opened2&& other) noexcept {
      if (this != &other) {
        finish_pair();
        a = std::move(other.a);
        b = std::move(other.b);
      }
      return *this;
    }
    ~Opened2() { finish_pair(); }

   private:
    /// Journals both dirty payloads in one backend append group (locks
    /// still held), disarms the members' own flushes, releases both
    /// locks, THEN waits once on the group's commit ticket.
    void finish_pair() {
      ShardedObjectStore* store = a.store_ != nullptr ? a.store_ : b.store_;
      if (store == nullptr) {
        return;
      }
      std::uint64_t ticket = store->journal_pair_locked(a, b);
      // Tickets are one monotone volume-wide sequence: waiting for the
      // largest covers every earlier flush() of either member.
      ticket = std::max({ticket, std::exchange(a.pending_, std::uint64_t{0}),
                         std::exchange(b.pending_, std::uint64_t{0})});
      a = Opened();
      b = Opened();
      if (ticket != 0) {
        store->wait_durable(ticket);
      }
    }
  };

  /// One validated object plus an unvalidated peek at a second (may be
  /// null when the second object is dead); both shard locks held.  A
  /// handler mutating the PEEKED payload calls mark_peeked_dirty(); the
  /// peeked object's payload is then journaled on release, together with
  /// the opened one's if that is dirty too.
  class OpenedWith {
   public:
    Opened opened;
    T* peeked = nullptr;

    OpenedWith() = default;
    OpenedWith(OpenedWith&& other) noexcept { *this = std::move(other); }
    OpenedWith& operator=(OpenedWith&& other) noexcept {
      if (this != &other) {
        finish_with();
        opened = std::move(other.opened);
        peeked = std::exchange(other.peeked, nullptr);
        other_ = other.other_;
        store_ = std::exchange(other.store_, nullptr);
        peek_dirty_ = std::exchange(other.peek_dirty_, false);
        other_lock_ = std::move(other.other_lock_);
      }
      return *this;
    }
    ~OpenedWith() { finish_with(); }

    void mark_peeked_dirty() { peek_dirty_ = true; }

   private:
    friend class ShardedObjectStore;
    /// Journals the peeked payload (if dirty) and the opened one's own
    /// flush while both shard locks are still held, releases both locks,
    /// THEN waits once on the largest commit ticket.
    void finish_with() {
      ShardedObjectStore* store =
          store_ != nullptr ? store_ : opened.store_;
      std::uint64_t ticket = 0;
      if (peek_dirty_ && store_ != nullptr && peeked != nullptr) {
        ticket = store_->journal_mutate_locked(other_, *peeked);
      }
      peek_dirty_ = false;
      peeked = nullptr;
      store_ = nullptr;
      opened.flush_dirty();
      ticket =
          std::max(ticket, std::exchange(opened.pending_, std::uint64_t{0}));
      if (other_lock_.owns_lock()) {
        other_lock_.unlock();
      }
      opened = Opened();  // drops the opened shard's lock; nothing to wait
      if (ticket != 0 && store != nullptr) {
        store->wait_durable(ticket);
      }
    }

    ObjectNumber other_;
    ShardedObjectStore* store_ = nullptr;
    bool peek_dirty_ = false;
    std::unique_lock<common::CountedMutex> other_lock_;
  };

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  /// Journal/recovery counters (all zero for in-memory stores).
  struct DurabilityStats {
    std::uint64_t journal_records = 0;  // records appended since start
    std::uint64_t journal_bytes = 0;
    std::uint64_t snapshots = 0;            // compactions performed
    std::uint64_t recovered_objects = 0;    // live slots after recovery
    std::uint64_t replayed_records = 0;     // journal records applied
    bool recovered = false;                 // this store was rebuilt
    // Group-commit submission pipeline (zero without a committer; the
    // ring counters additionally stay zero on sync backends).  Mirrors
    // storage::GroupCommitter::Stats -- see that struct for semantics.
    std::uint64_t inflight_cycles = 0;
    std::uint64_t sqe_submitted = 0;
    std::uint64_t cqe_completed = 0;
    std::uint64_t linger_us_current = 0;
  };

  /// Creates an object and mints its owner capability carrying `rights`.
  /// Freed slots anywhere in the table are reused before any shard grows,
  /// so the object-number space stays dense and a destroy+create pair
  /// round-trips through the same number (with a fresh secret).
  [[nodiscard]] Capability create(T value, Rights rights = Rights::all()) {
    const std::size_t start =
        cursor_.fetch_add(1, std::memory_order_relaxed) & (shards_.size() - 1);
    std::size_t chosen = start;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const std::size_t s = (start + i) & (shards_.size() - 1);
      if (shards_[s]->free_count.load(std::memory_order_relaxed) > 0) {
        chosen = s;
        break;
      }
    }
    Shard& shard = *shards_[chosen];
    std::unique_lock lock(shard.mutex);
    std::uint32_t index;
    if (!shard.free_list.empty()) {
      index = shard.free_list.back();
      shard.free_list.pop_back();
      shard.free_count.fetch_sub(1, std::memory_order_relaxed);
    } else {
      index = shard.slot_limit.load(std::memory_order_relaxed);
      if (index > (ObjectNumber::kMask - chosen) / shards_.size()) {
        throw UsageError("ObjectStore: 24-bit object space exhausted");
      }
    }
    Slot& slot = slot_grow(shard, index);
    {
      // Seqlock transition: concurrent lock-free probes of this slot see
      // either the pre-create or post-create generation, never a torn mix.
      const common::SeqCount::WriteGuard guard(slot.seq);
      slot.secret = scheme_->new_secret(shard.rng);
      bump_epoch(slot);  // stale cache entries for a reused number die here
      slot.live.store(true, std::memory_order_relaxed);
    }
    slot.value = std::move(value);  // payload is mutex-guarded, not probed
    live_count_.fetch_add(1, std::memory_order_relaxed);
    const auto object = ObjectNumber(
        static_cast<std::uint32_t>(index * shards_.size() + chosen));
    const std::uint64_t secret = slot.secret;
    const std::uint64_t ticket = journal_locked(
        chosen, shard, storage::RecordType::create, object, secret,
        &slot.value);
    lock.unlock();
    wait_durable(ticket);  // minting needs no lock: the secret is copied
    return scheme_->mint(server_port_, object, secret, rights);
  }

  /// Blocks until the given group-commit ticket is durable (no-op for
  /// ticket 0 or a store without a committer).  Pairs with
  /// Opened::release_async() for pipelined mutation windows.
  void wait_durable(std::uint64_t ticket) {
    if (ticket != 0 && durability_.committer != nullptr) {
      durability_.committer->wait_durable(ticket);
    }
  }

  /// The server workhorse: look the object up by the (unencrypted) object
  /// field, validate the check field against the stored secret (through
  /// the per-shard validated-capability cache), and verify the granted
  /// rights cover `required`.
  ///
  /// The validation PREFIX is lock-free on a repeat capability: a
  /// validate_fast() hit proves the capability valid for the slot's
  /// current secret generation, and if the generation is unchanged once
  /// the shard lock is held (it must be held anyway -- the accessor owns
  /// the payload exclusively), the cached grant is reused and the
  /// crypto/cache machinery is skipped entirely.
  [[nodiscard]] Result<Opened> open(const Capability& cap, Rights required) {
    Shard& shard = shard_of(cap.object);
    const std::optional<FastHit> hit = validate_fast(shard, cap);
    if (hit.has_value() && !hit->granted.has_all(required)) {
      return ErrorCode::permission_denied;  // valid cap, insufficient rights
    }
    std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    Rights granted;
    if (hit.has_value() &&
        slot->epoch.load(std::memory_order_relaxed) == hit->epoch) {
      granted = hit->granted;  // same secret generation: the hit stands
    } else {
      const Result<Rights> validated = validate_cached(shard, *slot, cap);
      if (!validated.ok()) {
        return validated.error();
      }
      granted = validated.value();
    }
    if (!granted.has_all(required)) {
      return ErrorCode::permission_denied;
    }
    return Opened(this, &slot->value, granted, cap.object, std::move(lock));
  }

  /// Validates a capability and the required rights WITHOUT keeping the
  /// object open.  This is the typed dispatcher's pre-handler check for
  /// multi-object operations, where the handler must take its own open2()
  /// locks afterwards (holding an accessor here would deadlock).
  ///
  /// Lock-free on a repeat capability: a validate_fast() hit answers with
  /// ZERO mutex acquisitions (the property tests/lockfree_validate_test
  /// proves through the CountedMutex counters).  Everything else --
  /// first-seen capability, rotated secret, dead object, seqlock
  /// collision -- falls back to check_locked() with identical semantics.
  [[nodiscard]] Result<Rights> check(const Capability& cap, Rights required) {
    if (const std::optional<FastHit> hit = validate_fast(shard_of(cap.object),
                                                         cap)) {
      if (!hit->granted.has_all(required)) {
        return ErrorCode::permission_denied;
      }
      return hit->granted;
    }
    return check_locked(cap, required);
  }

  /// The mutex slow path of check(): shard lock, slot lookup, validation
  /// through the per-shard cache.  Public so the bench contrast
  /// (bench_e11) can drive the locked and lock-free paths side by side;
  /// servers call check().
  [[nodiscard]] Result<Rights> check_locked(const Capability& cap,
                                            Rights required) {
    Shard& shard = shard_of(cap.object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard, *slot, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(required)) {
      return ErrorCode::permission_denied;
    }
    return granted;
  }

  /// Opens two objects atomically (the bank-transfer shape).  Locks the
  /// two owning shards in ascending index order, so concurrent pair
  /// operations cannot deadlock whatever their argument order.
  [[nodiscard]] Result<Opened2> open2(const Capability& cap_a,
                                      Rights required_a,
                                      const Capability& cap_b,
                                      Rights required_b) {
    const std::size_t sa = shard_index(cap_a.object);
    const std::size_t sb = shard_index(cap_b.object);
    std::unique_lock<common::CountedMutex> lock_a;
    std::unique_lock<common::CountedMutex> lock_b;
    lock_pair(sa, sb, lock_a, lock_b);

    Shard& shard_a = *shards_[sa];
    Slot* slot_a = find(shard_a, cap_a.object);
    if (slot_a == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted_a = validate_cached(shard_a, *slot_a, cap_a);
    if (!granted_a.ok()) {
      return granted_a.error();
    }
    if (!granted_a.value().has_all(required_a)) {
      return ErrorCode::permission_denied;
    }
    Shard& shard_b = *shards_[sb];
    Slot* slot_b = find(shard_b, cap_b.object);
    if (slot_b == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted_b = validate_cached(shard_b, *slot_b, cap_b);
    if (!granted_b.ok()) {
      return granted_b.error();
    }
    if (!granted_b.value().has_all(required_b)) {
      return ErrorCode::permission_denied;
    }
    Opened2 pair;
    pair.a = Opened(this, &slot_a->value, granted_a.value(), cap_a.object,
                    std::move(lock_a));
    pair.b = Opened(this, &slot_b->value, granted_b.value(), cap_b.object,
                    std::move(lock_b));
    return pair;
  }

  /// Validates `cap` and, under the same pair of shard locks, peeks the
  /// payload of `other` without a capability check (the multiversion
  /// commit shape: the draft capability is validated, the file it forked
  /// from is server-internal state).  `peeked` is null when `other` is
  /// dead or unknown.
  [[nodiscard]] Result<OpenedWith> open_with_peek(const Capability& cap,
                                                  Rights required,
                                                  ObjectNumber other) {
    const std::size_t sa = shard_index(cap.object);
    const std::size_t sb = shard_index(other);
    std::unique_lock<common::CountedMutex> lock_a;
    std::unique_lock<common::CountedMutex> lock_b;
    lock_pair(sa, sb, lock_a, lock_b);

    Shard& shard_a = *shards_[sa];
    Slot* slot_a = find(shard_a, cap.object);
    if (slot_a == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard_a, *slot_a, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(required)) {
      return ErrorCode::permission_denied;
    }
    Slot* slot_b = find(*shards_[sb], other);
    OpenedWith result;
    result.opened = Opened(this, &slot_a->value, granted.value(), cap.object,
                           std::move(lock_a));
    result.peeked = slot_b == nullptr ? nullptr : &slot_b->value;
    result.other_ = other;
    result.store_ = this;
    result.other_lock_ = std::move(lock_b);
    return result;
  }

  /// Server-side sub-capability fabrication: any valid capability may be
  /// narrowed to `mask` (intersection).  No special right is required,
  /// exactly as in the paper -- you can only lose rights this way.
  [[nodiscard]] Result<Capability> restrict(const Capability& cap,
                                            Rights mask) {
    Shard& shard = shard_of(cap.object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard, *slot, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    return scheme_->mint(server_port_, cap.object, slot->secret,
                         granted.value().intersect(mask));
  }

  /// Revocation: draws a new secret, invalidating every outstanding
  /// capability for the object, and returns a fresh capability with the
  /// caller's rights.  Guarded by the admin bit ("obviously this operation
  /// must be protected with a bit in the RIGHTS field").
  [[nodiscard]] Result<Capability> revoke(const Capability& cap) {
    Shard& shard = shard_of(cap.object);
    std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, cap.object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    const Result<Rights> granted = validate_cached(shard, *slot, cap);
    if (!granted.ok()) {
      return granted.error();
    }
    if (!granted.value().has_all(rights::kAdmin)) {
      return ErrorCode::permission_denied;
    }
    {
      // Seqlock transition: the epoch bump is what kills every cached
      // fast-path hit for the rotated secret -- instant, exact revocation.
      const common::SeqCount::WriteGuard guard(slot->seq);
      slot->secret = scheme_->new_secret(shard.rng);
      bump_epoch(*slot);
    }
    const std::uint64_t secret = slot->secret;
    const std::uint64_t ticket =
        journal_locked(shard_index(cap.object), shard,
                       storage::RecordType::rotate, cap.object, secret,
                       nullptr);
    lock.unlock();
    wait_durable(ticket);
    return scheme_->mint(server_port_, cap.object, secret, granted.value());
  }

  /// Destroys the object; its number returns to the owning shard's free
  /// list.
  [[nodiscard]] Result<void> destroy(const Capability& cap) {
    auto opened = open(cap, rights::kDestroy);
    if (!opened.ok()) {
      return opened.error();
    }
    return destroy(std::move(opened.value()));
  }

  /// Destroys through an already-held accessor (for handlers that opened
  /// the object, inspected it, and then decide to destroy -- re-opening
  /// would self-deadlock on the shard mutex).  Requires the destroy right
  /// on the accessor, like the capability form.
  [[nodiscard]] Result<void> destroy(Opened&& opened) {
    if (opened.value == nullptr || !opened.lock_.owns_lock()) {
      throw UsageError("ObjectStore::destroy: empty accessor");
    }
    if (!opened.rights.has_all(rights::kDestroy)) {
      return ErrorCode::permission_denied;
    }
    const std::size_t s = shard_index(opened.object);
    Shard& shard = *shards_[s];
    Slot& slot = slot_at(shard, opened.object.value() / shards_.size());
    {
      // Seqlock transition: a concurrent fast probe either sees the old
      // live generation (linearized before this destroy) or fails/misses.
      const common::SeqCount::WriteGuard guard(slot.seq);
      slot.live.store(false, std::memory_order_relaxed);
      bump_epoch(slot);
    }
    slot.value = T{};
    live_count_.fetch_sub(1, std::memory_order_relaxed);
    shard.free_list.push_back(
        static_cast<std::uint32_t>(opened.object.value() / shards_.size()));
    shard.free_count.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t ticket = journal_locked(s, shard,
                                          storage::RecordType::destroy,
                                          opened.object, 0, nullptr);
    // An earlier explicit flush() may have left a pending ticket; the
    // destroy record supersedes any still-unflushed mutation marks.
    ticket = std::max(ticket, std::exchange(opened.pending_, std::uint64_t{0}));
    opened.dirty_ = false;
    opened.deltas_.clear();
    opened.value = nullptr;
    opened.store_ = nullptr;
    opened.lock_.unlock();
    wait_durable(ticket);
    return {};
  }

  /// Server-internal mint (e.g. a directory server fabricating the
  /// capability for a freshly created root directory, or re-minting after
  /// administrative operations).  Returns no_such_object for dead slots.
  [[nodiscard]] Result<Capability> mint_for(ObjectNumber object,
                                            Rights rights) {
    Shard& shard = shard_of(object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, object);
    if (slot == nullptr) {
      return ErrorCode::no_such_object;
    }
    return scheme_->mint(server_port_, object, slot->secret, rights);
  }

  /// Direct payload access without capability checks -- for server
  /// internals and test assertions only.  The returned pointer is not
  /// protected by any lock; concurrent destruction of the object leaves it
  /// dangling.  Concurrent code should use open()/open_with_peek().
  [[nodiscard]] T* peek(ObjectNumber object) {
    Shard& shard = shard_of(object);
    const std::unique_lock lock(shard.mutex);
    Slot* slot = find(shard, object);
    return slot == nullptr ? nullptr : &slot->value;
  }

  /// Visits every live object under its shard lock:
  /// fn(ObjectNumber, const T&).  One shard locked at a time -- the
  /// restart paths use this to rebuild derived server state (memory
  /// budgets, the bank's master account) after recovery.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      const std::unique_lock lock(shard.mutex);
      const std::uint32_t limit =
          shard.slot_limit.load(std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < limit; ++i) {
        Slot& slot = slot_at(shard, i);
        if (slot.live.load(std::memory_order_relaxed)) {
          fn(ObjectNumber(static_cast<std::uint32_t>(i * shards_.size() + s)),
             static_cast<const T&>(slot.value));
        }
      }
    }
  }

  /// Folds every shard's journal into a fresh snapshot now (manual log
  /// compaction; also what a clean shutdown would call).  No-op for
  /// in-memory stores.
  void compact() {
    if (durability_.backend == nullptr) {
      return;
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      const std::unique_lock lock(shard.mutex);
      snapshot_shard_locked(s, shard);
    }
  }

  [[nodiscard]] std::size_t live_count() const {
    return live_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ProtectionScheme& scheme() const { return *scheme_; }
  [[nodiscard]] Port server_port() const { return server_port_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool durable() const {
    return durability_.backend != nullptr;
  }

  /// Aggregate validated-capability cache statistics across shards.
  /// Lock-free: the counters are relaxed atomics bumped by both the
  /// fast probe and the locked path, so a stats scrape (metrics
  /// exporters poll these) never contends with the validate hot path.
  /// The aggregate is a moment-in-time approximation, not a snapshot.
  [[nodiscard]] CacheStats cache_stats() const {
    CacheStats total;
    for (const auto& shard : shards_) {
      total.hits += shard->cache_hits.load(std::memory_order_relaxed);
      total.misses += shard->cache_misses.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Journal/recovery counters (zeroes for an in-memory store).
  /// The store's group committer -- null for in-memory and synchronously
  /// journaled stores.  Exposed for flusher statistics (benchmarks print
  /// group sizes) and for sharing one committer across stores of a volume.
  [[nodiscard]] const std::shared_ptr<storage::GroupCommitter>& committer()
      const {
    return durability_.committer;
  }

  [[nodiscard]] DurabilityStats durability_stats() const {
    DurabilityStats total = recovery_stats_;
    for (const auto& shard : shards_) {
      const std::unique_lock lock(shard->mutex);
      total.journal_records += shard->journal_records;
      total.journal_bytes += shard->journal_bytes;
      total.snapshots += shard->snapshots;
    }
    if (durability_.committer != nullptr) {
      const auto gc = durability_.committer->stats();
      total.inflight_cycles = gc.inflight_cycles;
      total.sqe_submitted = gc.sqe_submitted;
      total.cqe_completed = gc.cqe_completed;
      total.linger_us_current = gc.linger_us_current;
    }
    return total;
  }

 private:
  struct Slot {
    /// Guards the lock-free-readable header below: every writer
    /// transition (create, revoke, destroy, recovery replay) holds the
    /// shard mutex AND wraps its header stores in a WriteGuard, so the
    /// no-lock probe can detect overlap and bail.
    common::SeqCount seq;
    std::atomic<std::uint32_t> epoch{0};  // bumped on every secret rotation
    std::atomic<bool> live{false};
    // Mutex-guarded only; NEVER read by the lock-free probe (the probe
    // trusts the epoch-stamped cache entry instead of the secret).
    std::uint64_t secret = 0;
    T value{};
  };

  /// Slots live in fixed-size chunks that never move once published:
  /// lock-free probes dereference Slot addresses without any lock, so
  /// the storage must be address-stable across shard growth (the old
  /// std::vector<Slot> would reallocate under the reader).
  static constexpr std::size_t kChunkSlots = 512;  // power of two
  struct SlotChunk {
    std::array<Slot, kChunkSlots> slots{};
  };

  /// Direct-mapped validated-capability cache entry.  `epoch` ties the
  /// entry to one secret generation of the slot.  Fields are relaxed
  /// atomics under the entry's own SeqCount: the single writer (the
  /// locked path's refill, serialized by the shard mutex) flips the
  /// generation odd around its stores, so the lock-free probe reads a
  /// consistent tuple or rejects.
  struct CacheEntry {
    common::SeqCount seq;
    std::atomic<std::uint32_t> object{0};
    std::atomic<std::uint32_t> epoch{0};
    std::atomic<std::uint64_t> check{0};
    std::atomic<std::uint8_t> rights{0};
    std::atomic<std::uint8_t> granted{0};
    std::atomic<bool> used{false};
  };
  static constexpr std::size_t kCacheEntries = 256;  // per shard, bounded

  struct Shard {
    Shard(std::uint64_t seed, std::size_t max_slots)
        : chunk_count((max_slots + kChunkSlots - 1) / kChunkSlots),
          chunks(std::make_unique<std::atomic<SlotChunk*>[]>(chunk_count)),
          rng(seed) {}
    ~Shard() {
      for (std::size_t c = 0; c < chunk_count; ++c) {
        delete chunks[c].load(std::memory_order_relaxed);
      }
    }
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    mutable common::CountedMutex mutex;
    // ---- lock-free-readable state -------------------------------------
    // Chunk directory, sized at construction for the whole 24-bit object
    // space (so the directory itself never grows).  A chunk pointer is
    // null until the shard first reaches it, then immutable.
    const std::size_t chunk_count;
    std::unique_ptr<std::atomic<SlotChunk*>[]> chunks;
    // High-water mark of constructed slots; release-published after the
    // owning chunk pointer, acquire-read by probes before either.
    std::atomic<std::uint32_t> slot_limit{0};
    std::array<CacheEntry, kCacheEntries> cache{};
    // mutable: bumped from the const lock-free probe (validate_fast).
    mutable std::atomic<std::uint64_t> cache_hits{0};    // approximate
    mutable std::atomic<std::uint64_t> cache_misses{0};  // approximate
    // ---- mutex-guarded state ------------------------------------------
    std::vector<std::uint32_t> free_list;
    std::atomic<std::uint32_t> free_count{0};
    Rng rng;
    // Durability state, all guarded by mutex.
    std::uint64_t lsn = 0;            // last journal LSN issued
    std::uint64_t records_pending = 0;  // records since the last snapshot
    std::uint64_t journal_records = 0;
    std::uint64_t journal_bytes = 0;
    std::uint64_t snapshots = 0;
    Writer scratch_payload;  // reused per append: no steady-state allocs
    Buffer scratch_frame;
  };

  [[nodiscard]] std::size_t shard_index(ObjectNumber object) const {
    return object.value() & (shards_.size() - 1);
  }
  [[nodiscard]] Shard& shard_of(ObjectNumber object) {
    return *shards_[shard_index(object)];
  }

  /// Bumps the slot's secret epoch.  Caller holds the shard mutex and a
  /// WriteGuard on the slot (or runs single-threaded recovery).
  static void bump_epoch(Slot& slot) {
    slot.epoch.store(slot.epoch.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  }

  /// Slot by index for writers (caller holds the shard mutex and knows
  /// index < slot_limit).
  [[nodiscard]] static Slot& slot_at(Shard& shard, std::size_t index) {
    return shard.chunks[index / kChunkSlots]
        .load(std::memory_order_relaxed)
        ->slots[index % kChunkSlots];
  }

  /// Slot by index for the LOCK-FREE probe: null when the index is past
  /// the published high-water mark.  The acquire loads pair with
  /// slot_grow's release stores, so a non-null result is a fully
  /// constructed slot.
  [[nodiscard]] static const Slot* slot_peek_atomic(const Shard& shard,
                                                    std::size_t index) {
    if (index >= shard.slot_limit.load(std::memory_order_acquire)) {
      return nullptr;
    }
    const SlotChunk* chunk =
        shard.chunks[index / kChunkSlots].load(std::memory_order_acquire);
    return chunk == nullptr ? nullptr : &chunk->slots[index % kChunkSlots];
  }

  /// Grows the shard to cover `index`: materializes the owning chunk if
  /// needed and publishes the new high-water mark (chunk pointer FIRST,
  /// both release -- the probe's acquire loads see them in order).
  /// Caller holds the shard mutex and has bounds-checked `index`.
  Slot& slot_grow(Shard& shard, std::size_t index) {
    if (index / kChunkSlots >= shard.chunk_count) {
      throw UsageError("ObjectStore: slot index out of range");
    }
    // Materialize every chunk up to the owning one (recovery can land on
    // a high index first): slot_at may then address ANY index below
    // slot_limit without a null check.  Chunks below the current limit
    // already exist, so the scan starts at the limit's own chunk.
    const std::size_t first_gap =
        shard.slot_limit.load(std::memory_order_relaxed) / kChunkSlots;
    SlotChunk* chunk = nullptr;
    for (std::size_t c = std::min(first_gap, index / kChunkSlots);
         c <= index / kChunkSlots; ++c) {
      chunk = shard.chunks[c].load(std::memory_order_relaxed);
      if (chunk == nullptr) {
        chunk = new SlotChunk();
        shard.chunks[c].store(chunk, std::memory_order_release);
      }
    }
    if (index >= shard.slot_limit.load(std::memory_order_relaxed)) {
      shard.slot_limit.store(static_cast<std::uint32_t>(index) + 1,
                             std::memory_order_release);
    }
    return chunk->slots[index % kChunkSlots];
  }

  /// Caller holds the shard mutex.
  Slot* find(Shard& shard, ObjectNumber object) {
    const std::size_t index = object.value() / shards_.size();
    if (index >= shard.slot_limit.load(std::memory_order_relaxed)) {
      return nullptr;
    }
    Slot& slot = slot_at(shard, index);
    return slot.live.load(std::memory_order_relaxed) ? &slot : nullptr;
  }

  /// A successful lock-free validation: the granted rights plus the
  /// secret epoch they were proven against (open() re-checks the epoch
  /// under the shard lock to decide whether the proof still stands).
  struct FastHit {
    Rights granted;
    std::uint32_t epoch = 0;
  };

  /// The no-lock validate probe.  Returns a hit ONLY when, within one
  /// stable seqlock generation of both records, the slot is live and the
  /// shard's cache entry matches the capability bit for bit at the
  /// slot's current secret epoch -- i.e. this exact capability already
  /// validated against this exact secret and nothing rotated since.
  /// Every other outcome (miss, dead slot, unpublished index, torn read)
  /// is nullopt: the caller falls back to the mutex path, which is the
  /// sole authority for failures.  Performs zero lock acquisitions.
  [[nodiscard]] std::optional<FastHit> validate_fast(
      const Shard& shard, const Capability& cap) const {
    const Slot* slot =
        slot_peek_atomic(shard, cap.object.value() / shards_.size());
    if (slot == nullptr) {
      return std::nullopt;
    }
    const std::uint32_t slot_gen = slot->seq.read_begin();
    if (common::SeqCount::busy(slot_gen)) {
      ++common::this_thread_lock_counters().seqlock_fallbacks;
      return std::nullopt;
    }
    const std::uint32_t epoch = slot->epoch.load(std::memory_order_relaxed);
    const bool live = slot->live.load(std::memory_order_relaxed);
    if (!slot->seq.read_ok(slot_gen)) {
      ++common::this_thread_lock_counters().seqlock_fallbacks;
      return std::nullopt;
    }
    if (!live) {
      return std::nullopt;
    }
    const CacheEntry& entry = shard.cache[cache_slot(cap)];
    const std::uint32_t entry_gen = entry.seq.read_begin();
    if (common::SeqCount::busy(entry_gen)) {
      ++common::this_thread_lock_counters().seqlock_fallbacks;
      return std::nullopt;
    }
    const bool used = entry.used.load(std::memory_order_relaxed);
    const std::uint32_t entry_object =
        entry.object.load(std::memory_order_relaxed);
    const std::uint32_t entry_epoch =
        entry.epoch.load(std::memory_order_relaxed);
    const std::uint64_t entry_check =
        entry.check.load(std::memory_order_relaxed);
    const std::uint8_t entry_rights =
        entry.rights.load(std::memory_order_relaxed);
    const Rights granted(entry.granted.load(std::memory_order_relaxed));
    if (!entry.seq.read_ok(entry_gen)) {
      ++common::this_thread_lock_counters().seqlock_fallbacks;
      return std::nullopt;
    }
    if (!used || entry_object != cap.object.value() ||
        entry_epoch != epoch || entry_check != cap.check.value() ||
        entry_rights != cap.rights.bits()) {
      return std::nullopt;  // not proven for THIS epoch: slow path decides
    }
    shard.cache_hits.fetch_add(1, std::memory_order_relaxed);
    return FastHit{granted, epoch};
  }

  /// Locks the two shards' mutexes in ascending index order (one lock when
  /// they coincide).  lock_a/lock_b come back owning sa/sb respectively.
  void lock_pair(std::size_t sa, std::size_t sb,
                 std::unique_lock<common::CountedMutex>& lock_a,
                 std::unique_lock<common::CountedMutex>& lock_b) {
    if (sa == sb) {
      lock_a = std::unique_lock(shards_[sa]->mutex);
      return;
    }
    const std::size_t lo = sa < sb ? sa : sb;
    const std::size_t hi = sa < sb ? sb : sa;
    std::unique_lock first(shards_[lo]->mutex);
    std::unique_lock second(shards_[hi]->mutex);
    lock_a = sa == lo ? std::move(first) : std::move(second);
    lock_b = sb == hi ? std::move(second) : std::move(first);
  }

  /// Direct-mapped cache index of a capability (hash over the full
  /// key tuple so near-identical capabilities spread).
  [[nodiscard]] static std::size_t cache_slot(const Capability& cap) {
    const std::uint64_t mix =
        (static_cast<std::uint64_t>(cap.object.value()) << 8 |
         cap.rights.bits()) * 0x9E3779B97F4A7C15ULL ^
        cap.check.value() * 0xC2B2AE3D27D4EB4FULL;
    return (mix >> 32) & (kCacheEntries - 1);
  }

  /// Validation through the shard's cache; caller holds the shard mutex.
  /// The refill wraps its stores in the entry's WriteGuard so the
  /// lock-free probe never observes a half-written entry; the reads here
  /// can stay relaxed because the mutex already excludes every writer.
  Result<Rights> validate_cached(Shard& shard, Slot& slot,
                                 const Capability& cap) {
    CacheEntry& entry = shard.cache[cache_slot(cap)];
    const std::uint32_t slot_epoch =
        slot.epoch.load(std::memory_order_relaxed);
    if (entry.used.load(std::memory_order_relaxed) &&
        entry.object.load(std::memory_order_relaxed) == cap.object.value() &&
        entry.epoch.load(std::memory_order_relaxed) == slot_epoch &&
        entry.check.load(std::memory_order_relaxed) == cap.check.value() &&
        entry.rights.load(std::memory_order_relaxed) == cap.rights.bits()) {
      shard.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return Rights(entry.granted.load(std::memory_order_relaxed));
    }
    shard.cache_misses.fetch_add(1, std::memory_order_relaxed);
    const Result<Rights> granted = scheme_->validate(cap, slot.secret);
    if (granted.ok()) {
      const common::SeqCount::WriteGuard guard(entry.seq);
      entry.object.store(cap.object.value(), std::memory_order_relaxed);
      entry.epoch.store(slot_epoch, std::memory_order_relaxed);
      entry.check.store(cap.check.value(), std::memory_order_relaxed);
      entry.rights.store(cap.rights.bits(), std::memory_order_relaxed);
      entry.granted.store(granted.value().bits(),
                          std::memory_order_relaxed);
      entry.used.store(true, std::memory_order_relaxed);
    }
    return granted;
  }

  // ---- durability internals (caller holds the shard mutex) --------------

  /// Frames one record with a pre-serialized payload view into the shard's
  /// scratch buffer (returned by reference; reused per append, so the
  /// steady-state hot path allocates nothing).  Framing -- under the shard
  /// lock -- is where the record's LSN is assigned, so a snapshot taken
  /// later under the same lock always covers every framed record, flushed
  /// or still queued.
  [[nodiscard]] const Buffer& frame_raw(Shard& shard, storage::RecordType type,
                                        ObjectNumber object,
                                        std::uint64_t secret,
                                        std::span<const std::uint8_t> payload) {
    shard.scratch_frame.clear();
    storage::encode_record_into(type, object, secret, ++shard.lsn, payload,
                                shard.scratch_frame);
    shard.journal_bytes += shard.scratch_frame.size();
    ++shard.journal_records;
    ++shard.records_pending;
    return shard.scratch_frame;
  }

  /// frame_raw with the payload serialized through the store's codec.
  /// `payload` may be null (destroy/rotate).
  [[nodiscard]] const Buffer& frame_record(Shard& shard,
                                           storage::RecordType type,
                                           ObjectNumber object,
                                           std::uint64_t secret,
                                           const T* payload) {
    shard.scratch_payload.clear();
    if (payload != nullptr) {
      durability_.encode(shard.scratch_payload, *payload);
    }
    return frame_raw(shard, type, object, secret,
                     shard.scratch_payload.buffer());
  }

  /// Appends one single-shard record to the volume: LSN assignment and
  /// shard counters here (under the shard lock), then either
  /// * group commit -- the record is ENCODED DIRECTLY into the
  ///   committer's staging buffer via enqueue_with(), skipping the
  ///   frame-to-scratch copy the pre-encoded enqueue() path pays, or
  /// * synchronous mode -- framed into the shard scratch and appended on
  ///   this thread (returns 0, already durable).
  /// Caller holds the shard mutex; group-committed callers wait on the
  /// returned ticket AFTER dropping it.
  [[nodiscard]] std::uint64_t submit_raw_locked(
      std::size_t s, Shard& shard, storage::RecordType type,
      ObjectNumber object, std::uint64_t secret,
      std::span<const std::uint8_t> payload) {
    const std::uint64_t lsn = ++shard.lsn;
    ++shard.journal_records;
    ++shard.records_pending;
    std::uint64_t ticket = 0;
    if (durability_.committer != nullptr) {
      std::size_t framed = 0;
      ticket = durability_.committer->enqueue_with(s, [&](Buffer& staging) {
        const std::size_t before = staging.size();
        storage::encode_record_into(type, object, secret, lsn, payload,
                                    staging);
        framed = staging.size() - before;
      });
      shard.journal_bytes += framed;
    } else {
      shard.scratch_frame.clear();
      storage::encode_record_into(type, object, secret, lsn, payload,
                                  shard.scratch_frame);
      shard.journal_bytes += shard.scratch_frame.size();
      durability_.backend->append_journal(s, shard.scratch_frame);
    }
    maybe_compact_locked(s, shard);
    return ticket;
  }

  /// Appends one record to the shard's journal and runs the compaction
  /// check.  No-op without a backend (returns 0).
  [[nodiscard]] std::uint64_t journal_locked(std::size_t s, Shard& shard,
                                             storage::RecordType type,
                                             ObjectNumber object,
                                             std::uint64_t secret,
                                             const T* payload) {
    if (durability_.backend == nullptr) {
      return 0;
    }
    shard.scratch_payload.clear();
    if (payload != nullptr) {
      durability_.encode(shard.scratch_payload, *payload);
    }
    return submit_raw_locked(s, shard, type, object, secret,
                             shard.scratch_payload.buffer());
  }

  /// Journals one payload mutation.  The caller (an accessor flush) holds
  /// the owning shard's mutex.
  [[nodiscard]] std::uint64_t journal_mutate_locked(ObjectNumber object,
                                                    const T& value) {
    if (durability_.backend == nullptr) {
      return 0;
    }
    const std::size_t s = shard_index(object);
    return journal_locked(s, *shards_[s], storage::RecordType::mutate, object,
                          0, &value);
  }

  /// Journals one delta patch (Opened::mark_dirty_delta).  The caller
  /// holds the owning shard's mutex.
  [[nodiscard]] std::uint64_t journal_delta_locked(ObjectNumber object,
                                                   const Buffer& patch) {
    if (durability_.backend == nullptr) {
      return 0;
    }
    if (!durability_.apply_delta) {
      throw UsageError(
          "ObjectStore: mark_dirty_delta needs an apply_delta codec "
          "(recovery could not replay the patch)");
    }
    const std::size_t s = shard_index(object);
    return submit_raw_locked(s, *shards_[s], storage::RecordType::delta,
                             object, 0, patch);
  }

  /// Journals the dirty payloads (and pending delta patches) of a pair
  /// accessor as one atomic append group, then disarms the members' own
  /// flushes (their destructors run right after).  Caller holds both
  /// shard locks; the returned ticket is waited on after they drop.
  [[nodiscard]] std::uint64_t journal_pair_locked(Opened& a, Opened& b) {
    if (durability_.backend == nullptr) {
      a.dirty_ = false;
      b.dirty_ = false;
      a.deltas_.clear();
      b.deltas_.clear();
      return 0;
    }
    std::vector<storage::ShardAppend> group;
    for (Opened* member : {&a, &b}) {
      if (member->value == nullptr) {
        continue;
      }
      const std::size_t s = shard_index(member->object);
      Shard& shard = *shards_[s];
      // The group owns copies of the frames: both members may share one
      // shard (and its scratch buffer).
      if (member->dirty_) {
        group.push_back({s, frame_record(shard, storage::RecordType::mutate,
                                         member->object, 0, member->value)});
      } else {
        if (!member->deltas_.empty() && !durability_.apply_delta) {
          throw UsageError(
              "ObjectStore: mark_dirty_delta needs an apply_delta codec "
              "(recovery could not replay the patch)");
        }
        for (const Buffer& patch : member->deltas_) {
          group.push_back(
              {s, frame_raw(shard, storage::RecordType::delta, member->object,
                            0, patch)});
        }
      }
      member->dirty_ = false;
      member->deltas_.clear();
    }
    if (group.empty()) {
      return 0;
    }
    std::uint64_t ticket = 0;
    if (durability_.committer != nullptr) {
      // One enqueue_group: no flush-cycle boundary can split the pair.
      ticket = durability_.committer->enqueue_group(std::move(group));
    } else {
      durability_.backend->append_journal_batch(std::move(group));
    }
    for (Opened* member : {&a, &b}) {
      if (member->value != nullptr && member->store_ != nullptr) {
        const std::size_t s = shard_index(member->object);
        maybe_compact_locked(s, *shards_[s]);
      }
    }
    return ticket;
  }

  void maybe_compact_locked(std::size_t s, Shard& shard) {
    if (durability_.compact_after != 0 &&
        shard.records_pending >= durability_.compact_after) {
      snapshot_shard_locked(s, shard);
    }
  }

  /// Serializes the shard's live slots into a snapshot and restarts its
  /// journal.  Caller holds the shard mutex.
  ///
  /// Safe against the group-commit queue: records are LSN-stamped at frame
  /// time under this same lock, so `shard.lsn` here covers every record
  /// ever framed for the shard -- including ones still sitting in the
  /// committer's queue.  If the flusher writes such a record AFTER the
  /// install truncates the journal, replay skips it (lsn <= applied_lsn)
  /// and the snapshot, which already reflects its effect, wins.
  void snapshot_shard_locked(std::size_t s, Shard& shard) {
    std::vector<storage::SnapshotSlot> slots;
    const std::uint32_t limit =
        shard.slot_limit.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < limit; ++i) {
      const Slot& slot = slot_at(shard, i);
      if (!slot.live.load(std::memory_order_relaxed)) {
        continue;
      }
      storage::SnapshotSlot image;
      image.object =
          ObjectNumber(static_cast<std::uint32_t>(i * shards_.size() + s));
      image.secret = slot.secret;
      Writer w;
      durability_.encode(w, slot.value);
      image.payload = w.take();
      slots.push_back(std::move(image));
    }
    durability_.backend->install_snapshot(
        s, storage::encode_snapshot(slots, shard.lsn));
    shard.records_pending = 0;
    ++shard.snapshots;
  }

  /// Rebuilds every shard from snapshot-then-journal.  Runs from the
  /// constructor (no concurrency yet).
  void recover() {
    recovery_stats_.recovered = true;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      Shard& shard = *shards_[s];
      std::vector<storage::SnapshotSlot> snapshot;
      std::uint64_t applied_lsn = 0;
      if (!storage::decode_snapshot(durability_.backend->read_snapshot(s),
                                    snapshot, applied_lsn)) {
        throw UsageError("ObjectStore: corrupt shard snapshot on recovery");
      }
      for (storage::SnapshotSlot& image : snapshot) {
        Slot& slot = slot_for_recovery(shard, image.object);
        Reader r(image.payload);
        T value{};
        if (!durability_.decode(r, value)) {
          throw UsageError("ObjectStore: corrupt payload in shard snapshot");
        }
        slot.secret = image.secret;
        slot.value = std::move(value);
        slot.live.store(true, std::memory_order_relaxed);
      }
      shard.lsn = applied_lsn;
      const auto records =
          storage::decode_journal(durability_.backend->read_journal(s));
      for (const storage::Record& record : records) {
        if (record.lsn <= applied_lsn) {
          continue;  // already folded into the snapshot (compaction race)
        }
        apply_record(shard, record, s);
        shard.lsn = record.lsn;
        ++recovery_stats_.replayed_records;
      }
      // Free lists: every slot index below the high-water mark that is not
      // live was on the free list when the journal ended.
      std::uint32_t live_in_shard = 0;
      shard.free_list.clear();
      const std::uint32_t limit =
          shard.slot_limit.load(std::memory_order_relaxed);
      for (std::uint32_t i = 0; i < limit; ++i) {
        if (slot_at(shard, i).live.load(std::memory_order_relaxed)) {
          ++live_in_shard;
        } else {
          shard.free_list.push_back(i);
        }
      }
      shard.free_count.store(
          static_cast<std::uint32_t>(shard.free_list.size()),
          std::memory_order_relaxed);
      live_count_.fetch_add(live_in_shard, std::memory_order_relaxed);
    }
    recovery_stats_.recovered_objects = live_count();
  }

  /// Grows the shard's slot storage as needed and returns the slot for
  /// `object` (recovery only; intermediate slots stay dead until their own
  /// records arrive, then land on the free list).  Recovery runs from the
  /// constructor, before any reader exists, so plain stores suffice.
  Slot& slot_for_recovery(Shard& shard, ObjectNumber object) {
    const std::size_t index = object.value() / shards_.size();
    if (index / kChunkSlots >= shard.chunk_count) {
      throw UsageError("ObjectStore: journal names an out-of-range object");
    }
    return slot_grow(shard, index);
  }

  /// Applies one journal record idempotently (replaying a record the
  /// table already reflects converges to the same state).
  void apply_record(Shard& shard, const storage::Record& record,
                    std::size_t s) {
    if (shard_index(record.object) != s) {
      return;  // record addressed to the wrong shard: ignore
    }
    Slot& slot = slot_for_recovery(shard, record.object);
    // The old payload's external resources are released BEFORE the new
    // payload decodes: decode side effects may re-acquire the very same
    // resources (the block server re-claims its disk block on every
    // mutate replay), so the order must be release-then-rebuild.
    const auto dispose_old = [&] {
      if (slot.live.load(std::memory_order_relaxed) && durability_.dispose) {
        durability_.dispose(slot.value);
      }
    };
    switch (record.type) {
      case storage::RecordType::create: {
        dispose_old();
        Reader r(record.payload);
        T value{};
        if (!durability_.decode(r, value)) {
          throw UsageError("ObjectStore: corrupt create payload in journal");
        }
        slot.secret = record.secret;
        slot.value = std::move(value);
        slot.live.store(true, std::memory_order_relaxed);
        bump_epoch(slot);
        break;
      }
      case storage::RecordType::mutate: {
        if (!slot.live.load(std::memory_order_relaxed)) {
          break;  // mutation of an object destroyed later in a replayed
                  // prefix -- or noise; either way the slot stays dead
        }
        dispose_old();
        Reader r(record.payload);
        T value{};
        if (!durability_.decode(r, value)) {
          throw UsageError("ObjectStore: corrupt mutate payload in journal");
        }
        slot.value = std::move(value);
        break;
      }
      case storage::RecordType::delta: {
        if (!slot.live.load(std::memory_order_relaxed)) {
          break;  // patch for an object destroyed later in the prefix
        }
        // No dispose_old: the patch edits the live payload in place, and
        // the codec manages any external resources the edit touches.
        if (!durability_.apply_delta) {
          throw UsageError(
              "ObjectStore: delta record in journal but no apply_delta "
              "codec configured");
        }
        Reader r(record.payload);
        if (!durability_.apply_delta(r, slot.value)) {
          throw UsageError("ObjectStore: corrupt delta payload in journal");
        }
        break;
      }
      case storage::RecordType::rotate:
        if (slot.live.load(std::memory_order_relaxed)) {
          slot.secret = record.secret;
          bump_epoch(slot);
        }
        break;
      case storage::RecordType::destroy:
        dispose_old();
        slot.live.store(false, std::memory_order_relaxed);
        slot.value = T{};
        bump_epoch(slot);
        break;
    }
  }

  std::shared_ptr<const ProtectionScheme> scheme_;
  Port server_port_;
  Durability<T> durability_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> live_count_{0};
  DurabilityStats recovery_stats_;  // written once during recovery
};

/// Every server's object table.  The sharded implementation keeps the
/// original single-threaded API, so the name the servers use is an alias.
template <typename T>
using ObjectStore = ShardedObjectStore<T>;

}  // namespace amoeba::core
