// The four rights-protection algorithms of §2.3, behind one interface.
//
//   Scheme 0 "simple":      CHECK = per-object random number; rights are
//                           all-or-nothing ("does not distinguish between
//                           READ, WRITE, DELETE...").
//   Scheme 1 "encrypted":   RIGHTS‖CHECK (56 bits) encrypted under the
//                           per-object key; decrypting to the known
//                           constant in the CHECK position validates.
//   Scheme 2 "one-way XOR": CHECK = F(random XOR rights); plaintext
//                           rights; tampering detected by recomputation.
//   Scheme 3 "commutative": CHECK = random with the functions F_k applied
//                           for every deleted right; ANY holder can delete
//                           right k locally, no server round-trip.
//
// A scheme object holds only public parameters (the one-way function, the
// commutative family's modulus/exponents); the per-object secret lives in
// the server's object table and is passed into mint/validate.  This split
// mirrors the paper: servers keep random numbers in their tables, the
// algorithms themselves are public.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/crypto/commutative.hpp"
#include "amoeba/crypto/one_way.hpp"

namespace amoeba::core {

enum class SchemeKind : std::uint8_t {
  simple = 0,
  encrypted = 1,
  one_way_xor = 2,
  commutative = 3,
};

[[nodiscard]] const char* scheme_name(SchemeKind kind);

class ProtectionScheme {
 public:
  virtual ~ProtectionScheme() = default;

  [[nodiscard]] virtual SchemeKind kind() const = 0;

  /// Draws a fresh per-object secret (the "random number chosen and stored
  /// in the file table").  Re-drawing it is revocation.
  [[nodiscard]] virtual std::uint64_t new_secret(Rng& rng) const = 0;

  /// Fabricates a capability for `object` granting `rights`, protected by
  /// `secret`.  Server-side: requires the secret.
  [[nodiscard]] virtual Capability mint(Port server_port, ObjectNumber object,
                                        std::uint64_t secret,
                                        Rights rights) const = 0;

  /// Checks an incoming capability against the stored secret; returns the
  /// rights it genuinely grants, or bad_capability.
  [[nodiscard]] virtual Result<Rights> validate(const Capability& cap,
                                                std::uint64_t secret) const = 0;

  /// True for Scheme 3: holders can delete rights without the server.
  [[nodiscard]] virtual bool supports_local_restrict() const { return false; }

  /// Client-side deletion of right `bit` (Scheme 3 only; others return
  /// no_such_operation).  Requires no secret -- only public parameters.
  [[nodiscard]] virtual Result<Capability> restrict_local(
      const Capability& cap, int bit) const;
};

/// Scheme 0.  Minted capabilities carry Rights::all(); validation grants
/// all rights on a check match.
class SimpleScheme final : public ProtectionScheme {
 public:
  [[nodiscard]] SchemeKind kind() const override { return SchemeKind::simple; }
  [[nodiscard]] std::uint64_t new_secret(Rng& rng) const override;
  [[nodiscard]] Capability mint(Port server_port, ObjectNumber object,
                                std::uint64_t secret,
                                Rights rights) const override;
  [[nodiscard]] Result<Rights> validate(const Capability& cap,
                                        std::uint64_t secret) const override;
};

/// Scheme 1.  The secret is a 64-bit cipher key for the 56-bit-block
/// Feistel cipher; the known constant is zero, as in the paper.
class EncryptedScheme final : public ProtectionScheme {
 public:
  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::encrypted;
  }
  [[nodiscard]] std::uint64_t new_secret(Rng& rng) const override;
  [[nodiscard]] Capability mint(Port server_port, ObjectNumber object,
                                std::uint64_t secret,
                                Rights rights) const override;
  [[nodiscard]] Result<Rights> validate(const Capability& cap,
                                        std::uint64_t secret) const override;
};

/// Scheme 2.  CHECK = F(secret XOR rights); F is the shared one-way
/// function (publicly known, like the F-box's).
class OneWayXorScheme final : public ProtectionScheme {
 public:
  explicit OneWayXorScheme(std::shared_ptr<const crypto::OneWayFn> f =
                               crypto::default_one_way());
  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::one_way_xor;
  }
  [[nodiscard]] std::uint64_t new_secret(Rng& rng) const override;
  [[nodiscard]] Capability mint(Port server_port, ObjectNumber object,
                                std::uint64_t secret,
                                Rights rights) const override;
  [[nodiscard]] Result<Rights> validate(const Capability& cap,
                                        std::uint64_t secret) const override;

 private:
  std::shared_ptr<const crypto::OneWayFn> f_;
};

/// Scheme 3.  Carries the commutative family's public parameters, so the
/// same object can be shared by servers (who mint/validate with secrets)
/// and clients (who only restrict locally).
class CommutativeScheme final : public ProtectionScheme {
 public:
  /// Generates a fresh public family (modulus) for this server.
  explicit CommutativeScheme(Rng& rng) : family_(rng) {}
  /// Client-side construction from published parameters.
  explicit CommutativeScheme(crypto::CommutativeFamily family)
      : family_(std::move(family)) {}

  [[nodiscard]] SchemeKind kind() const override {
    return SchemeKind::commutative;
  }
  [[nodiscard]] std::uint64_t new_secret(Rng& rng) const override;
  [[nodiscard]] Capability mint(Port server_port, ObjectNumber object,
                                std::uint64_t secret,
                                Rights rights) const override;
  [[nodiscard]] Result<Rights> validate(const Capability& cap,
                                        std::uint64_t secret) const override;
  [[nodiscard]] bool supports_local_restrict() const override { return true; }
  [[nodiscard]] Result<Capability> restrict_local(const Capability& cap,
                                                  int bit) const override;

  [[nodiscard]] const crypto::CommutativeFamily& family() const {
    return family_;
  }

 private:
  crypto::CommutativeFamily family_;
};

/// Factory over the enum; `rng` seeds scheme-level parameters (only the
/// commutative scheme has any).
[[nodiscard]] std::shared_ptr<const ProtectionScheme> make_scheme(
    SchemeKind kind, Rng& rng);

}  // namespace amoeba::core
