#include "amoeba/core/schemes.hpp"

#include "amoeba/crypto/feistel.hpp"

namespace amoeba::core {
namespace {

constexpr std::uint64_t kMask48 = CheckField::kMask;
// The paper's "known constant, say, 0" in the RANDOM position of Scheme 1.
constexpr std::uint64_t kKnownConstant = 0;

}  // namespace

const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::simple: return "simple";
    case SchemeKind::encrypted: return "encrypted";
    case SchemeKind::one_way_xor: return "one_way_xor";
    case SchemeKind::commutative: return "commutative";
  }
  return "unknown";
}

Result<Capability> ProtectionScheme::restrict_local(const Capability&,
                                                    int) const {
  // Schemes 0-2: "it requires going back to the server every time a
  // sub-capability with fewer rights is needed."
  return ErrorCode::no_such_operation;
}

// ------------------------------------------------------------ SimpleScheme

std::uint64_t SimpleScheme::new_secret(Rng& rng) const {
  return rng.bits(CheckField::kBits);
}

Capability SimpleScheme::mint(Port server_port, ObjectNumber object,
                              std::uint64_t secret, Rights /*rights*/) const {
  // All operations are allowed to anyone holding the capability; the
  // rights field is decorative, so mint the honest value.
  return Capability{server_port, object, Rights::all(), CheckField(secret)};
}

Result<Rights> SimpleScheme::validate(const Capability& cap,
                                      std::uint64_t secret) const {
  if (cap.check.value() != (secret & kMask48)) {
    return ErrorCode::bad_capability;
  }
  return Rights::all();
}

// --------------------------------------------------------- EncryptedScheme

std::uint64_t EncryptedScheme::new_secret(Rng& rng) const {
  return rng.next();  // full 64-bit cipher key
}

Capability EncryptedScheme::mint(Port server_port, ObjectNumber object,
                                 std::uint64_t secret, Rights rights) const {
  const crypto::Feistel cipher(secret, 56);
  const std::uint64_t plaintext =
      (static_cast<std::uint64_t>(rights.bits()) << 48) | kKnownConstant;
  const std::uint64_t ciphertext = cipher.encrypt(plaintext);
  // The combined RIGHTS-RANDOM field holds the ciphertext: high 8 bits in
  // the rights slot, low 48 in the check slot.
  return Capability{server_port, object,
                    Rights(static_cast<std::uint8_t>(ciphertext >> 48)),
                    CheckField(ciphertext & kMask48)};
}

Result<Rights> EncryptedScheme::validate(const Capability& cap,
                                         std::uint64_t secret) const {
  const crypto::Feistel cipher(secret, 56);
  const std::uint64_t ciphertext =
      (static_cast<std::uint64_t>(cap.rights.bits()) << 48) |
      cap.check.value();
  const std::uint64_t plaintext = cipher.decrypt(ciphertext);
  if ((plaintext & kMask48) != kKnownConstant) {
    return ErrorCode::bad_capability;
  }
  return Rights(static_cast<std::uint8_t>(plaintext >> 48));
}

// -------------------------------------------------------- OneWayXorScheme

OneWayXorScheme::OneWayXorScheme(std::shared_ptr<const crypto::OneWayFn> f)
    : f_(std::move(f)) {
  if (f_ == nullptr) {
    throw UsageError("OneWayXorScheme requires a one-way function");
  }
}

std::uint64_t OneWayXorScheme::new_secret(Rng& rng) const {
  return rng.bits(CheckField::kBits);
}

Capability OneWayXorScheme::mint(Port server_port, ObjectNumber object,
                                 std::uint64_t secret, Rights rights) const {
  // "The RIGHTS field is then EXCLUSIVE-ORed with the random number and
  // then used as the argument of the one-way function."
  const std::uint64_t check =
      f_->apply_raw((secret ^ rights.bits()) & kMask48);
  return Capability{server_port, object, rights, CheckField(check)};
}

Result<Rights> OneWayXorScheme::validate(const Capability& cap,
                                         std::uint64_t secret) const {
  const std::uint64_t expected =
      f_->apply_raw((secret ^ cap.rights.bits()) & kMask48);
  if (expected != cap.check.value()) {
    return ErrorCode::bad_capability;
  }
  return cap.rights;
}

// ------------------------------------------------------- CommutativeScheme

std::uint64_t CommutativeScheme::new_secret(Rng& rng) const {
  return family_.random_element(rng);
}

Capability CommutativeScheme::mint(Port server_port, ObjectNumber object,
                                   std::uint64_t secret, Rights rights) const {
  // Start from the stored random number (which stands for all rights) and
  // delete every right the new capability must lack.
  const std::uint64_t check = family_.apply_for_cleared(rights, secret);
  return Capability{server_port, object, rights, CheckField(check)};
}

Result<Rights> CommutativeScheme::validate(const Capability& cap,
                                           std::uint64_t secret) const {
  // "The server fetches the original random number from its table, looks
  // at the RIGHTS field and applies the functions corresponding to the
  // deleted rights to it."
  const std::uint64_t expected = family_.apply_for_cleared(cap.rights, secret);
  if (expected != cap.check.value()) {
    return ErrorCode::bad_capability;
  }
  return cap.rights;
}

Result<Capability> CommutativeScheme::restrict_local(const Capability& cap,
                                                     int bit) const {
  if (bit < 0 || bit >= Rights::kBits) {
    return ErrorCode::invalid_argument;
  }
  if (!cap.rights.has(bit)) {
    return ErrorCode::permission_denied;  // right already absent
  }
  Capability restricted = cap;
  restricted.rights = cap.rights.without(bit);
  restricted.check = CheckField(family_.apply(bit, cap.check.value()));
  return restricted;
}

// ------------------------------------------------------------------ factory

std::shared_ptr<const ProtectionScheme> make_scheme(SchemeKind kind,
                                                    Rng& rng) {
  switch (kind) {
    case SchemeKind::simple:
      return std::make_shared<const SimpleScheme>();
    case SchemeKind::encrypted:
      return std::make_shared<const EncryptedScheme>();
    case SchemeKind::one_way_xor:
      return std::make_shared<const OneWayXorScheme>();
    case SchemeKind::commutative:
      return std::make_shared<const CommutativeScheme>(rng);
  }
  throw UsageError("make_scheme: unknown scheme kind");
}

}  // namespace amoeba::core
