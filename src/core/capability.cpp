#include "amoeba/core/capability.hpp"

#include <cstdio>

namespace amoeba::core {

CapabilityBytes pack(const Capability& cap) {
  CapabilityBytes out{};
  const std::uint64_t port = cap.server_port.value();
  for (int i = 0; i < 6; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(port >> (8 * i));
  }
  const std::uint32_t obj = cap.object.value();
  for (int i = 0; i < 3; ++i) {
    out[static_cast<std::size_t>(6 + i)] =
        static_cast<std::uint8_t>(obj >> (8 * i));
  }
  out[9] = cap.rights.bits();
  const std::uint64_t check = cap.check.value();
  for (int i = 0; i < 6; ++i) {
    out[static_cast<std::size_t>(10 + i)] =
        static_cast<std::uint8_t>(check >> (8 * i));
  }
  return out;
}

Capability unpack(const CapabilityBytes& bytes) {
  std::uint64_t port = 0;
  for (int i = 5; i >= 0; --i) {
    port = (port << 8) | bytes[static_cast<std::size_t>(i)];
  }
  std::uint32_t obj = 0;
  for (int i = 2; i >= 0; --i) {
    obj = (obj << 8) | bytes[static_cast<std::size_t>(6 + i)];
  }
  std::uint64_t check = 0;
  for (int i = 5; i >= 0; --i) {
    check = (check << 8) | bytes[static_cast<std::size_t>(10 + i)];
  }
  return Capability{Port(port), ObjectNumber(obj), Rights(bytes[9]),
                    CheckField(check)};
}

std::string to_string(const Capability& cap) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "[%012llx/%06x r=%02x c=%012llx]",
                static_cast<unsigned long long>(cap.server_port.value()),
                cap.object.value(), cap.rights.bits(),
                static_cast<unsigned long long>(cap.check.value()));
  return buf;
}

}  // namespace amoeba::core
