#include "amoeba/net/mailbox.hpp"

namespace amoeba::net {

void Mailbox::push(Delivery delivery) {
  {
    const std::lock_guard lock(mutex_);
    if (closed_) {
      return;  // late frame for a dead receiver: dropped, like real links
    }
    queue_.push_back(std::move(delivery));
  }
  cv_.notify_one();
}

std::optional<Delivery> Mailbox::pop(
    std::stop_token stop, std::optional<std::chrono::milliseconds> timeout) {
  std::unique_lock lock(mutex_);
  const auto ready = [this] { return closed_ || !queue_.empty(); };
  if (timeout.has_value()) {
    const auto deadline = std::chrono::steady_clock::now() + *timeout;
    // wait_until with a stop_token returns when ready(), stopped, or timed
    // out; loop is unnecessary because the predicate is re-checked inside.
    if (!cv_.wait_until(lock, stop, deadline, ready)) {
      return std::nullopt;
    }
  } else {
    if (!cv_.wait(lock, stop, ready)) {
      return std::nullopt;  // stop requested
    }
  }
  if (queue_.empty()) {
    return std::nullopt;  // closed
  }
  Delivery d = std::move(queue_.front());
  queue_.pop_front();
  return d;
}

std::deque<Delivery> Mailbox::drain(
    std::stop_token stop, std::optional<std::chrono::milliseconds> timeout) {
  std::unique_lock lock(mutex_);
  const auto ready = [this] { return closed_ || !queue_.empty(); };
  if (timeout.has_value()) {
    const auto deadline = std::chrono::steady_clock::now() + *timeout;
    if (!cv_.wait_until(lock, stop, deadline, ready)) {
      return {};
    }
  } else {
    if (!cv_.wait(lock, stop, ready)) {
      return {};
    }
  }
  std::deque<Delivery> out;
  out.swap(queue_);
  return out;
}

std::optional<Delivery> Mailbox::try_pop() {
  const std::lock_guard lock(mutex_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  Delivery d = std::move(queue_.front());
  queue_.pop_front();
  return d;
}

void Mailbox::close() {
  {
    const std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool Mailbox::closed() const {
  const std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t Mailbox::size() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

}  // namespace amoeba::net
