#include "amoeba/net/network.hpp"

#include <algorithm>

#include "amoeba/common/error.hpp"

namespace amoeba::net {

// ---------------------------------------------------------------- TapHandle

TapHandle& TapHandle::operator=(TapHandle&& other) noexcept {
  if (this != &other) {
    if (net_ != nullptr) {
      net_->detach_tap(id_);
    }
    net_ = other.net_;
    id_ = other.id_;
    other.net_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

TapHandle::~TapHandle() {
  if (net_ != nullptr) {
    net_->detach_tap(id_);
  }
}

// ----------------------------------------------------------------- Receiver

Receiver& Receiver::operator=(Receiver&& other) noexcept {
  if (this != &other) {
    release();
    net_ = other.net_;
    put_port_ = other.put_port_;
    id_ = other.id_;
    mailbox_ = std::move(other.mailbox_);
    owns_mailbox_ = other.owns_mailbox_;
    other.net_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

Receiver::~Receiver() { release(); }

void Receiver::release() {
  if (net_ != nullptr && mailbox_ != nullptr) {
    if (owns_mailbox_) {
      mailbox_->close();
    }
    net_->unregister(id_, put_port_);
  }
  net_ = nullptr;
  mailbox_.reset();
}

// ------------------------------------------------------------------ Machine

Receiver Machine::listen(Port get_port) {
  return net_->register_listener(*this, get_port);
}

Receiver Machine::listen(Port get_port, std::shared_ptr<Mailbox> mailbox) {
  return net_->register_listener(*this, get_port, std::move(mailbox));
}

bool Machine::transmit(Message msg, MachineId dst) {
  return net_->transmit_from(*this, std::move(msg), dst);
}

void Machine::broadcast(Message msg) {
  net_->broadcast_from(*this, std::move(msg));
}

std::optional<MachineId> Machine::locate(Port put_port) {
  return net_->locate_from(*this, put_port);
}

// ------------------------------------------------------------------ Network

Network::Network() : Network(Config()) {}

Network::Network(Config config, std::shared_ptr<const crypto::OneWayFn> f)
    : config_(config),
      f_(std::move(f)),
      taps_(std::make_shared<const TapList>()),
      drop_probability_(config.drop_probability),
      duplicate_probability_(config.duplicate_probability),
      reorder_probability_(config.reorder_probability),
      rng_(config.seed) {
  if (f_ == nullptr) {
    throw UsageError("Network requires a one-way function");
  }
}

Network::~Network() = default;

Machine& Network::add_machine(std::string name) {
  const std::lock_guard lock(machines_mutex_);
  const MachineId id(config_.machine_id_base +
                     static_cast<std::uint32_t>(machines_.size() + 1));
  machines_.push_back(std::unique_ptr<Machine>(
      new Machine(this, id, std::move(name), f_, config_.fbox_enabled)));
  return *machines_.back();
}

bool Network::is_local_machine(MachineId id) const {
  const std::lock_guard lock(machines_mutex_);
  return id.value() > config_.machine_id_base &&
         id.value() <= config_.machine_id_base + machines_.size();
}

void Network::mutate_taps(const std::function<void(TapList&)>& edit) {
  // Copy-on-write: writers serialize on taps_mutex_, readers (emit) keep
  // loading the previous immutable snapshot until the swap.
  const std::lock_guard lock(taps_mutex_);
  TapList next = *taps_.load();
  edit(next);
  const bool active = !next.empty();
  taps_.store(std::make_shared<const TapList>(std::move(next)));
  taps_active_.store(active, std::memory_order_release);
}

TapHandle Network::attach_tap(TapFn fn) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  mutate_taps([&](TapList& taps) { taps.emplace_back(id, std::move(fn)); });
  return TapHandle(this, id);
}

void Network::detach_tap(std::uint64_t id) {
  mutate_taps([&](TapList& taps) {
    std::erase_if(taps, [id](const auto& t) { return t.first == id; });
  });
}

void Network::set_fault_injection(double drop_probability,
                                  double duplicate_probability,
                                  double reorder_probability) {
  drop_probability_.store(drop_probability, std::memory_order_relaxed);
  duplicate_probability_.store(duplicate_probability,
                               std::memory_order_relaxed);
  reorder_probability_.store(reorder_probability, std::memory_order_relaxed);
  flush_held();  // lowering the knobs must not strand a held frame
}

void Network::set_link_faults(MachineId src, MachineId dst,
                              const LinkFaults& faults) {
  {
    const std::lock_guard lock(fault_mutex_);
    link_faults_[link_key(src, dst)] = faults;
    link_faults_active_.store(true, std::memory_order_release);
  }
  flush_held();
}

void Network::clear_link_faults() {
  {
    const std::lock_guard lock(fault_mutex_);
    link_faults_.clear();
    link_faults_active_.store(false, std::memory_order_release);
  }
  flush_held();
}

void Network::flush_held() {
  std::vector<Held> releases;
  {
    const std::lock_guard lock(fault_mutex_);
    releases.reserve(held_.size());
    for (auto& [link, held] : held_) {
      releases.push_back(std::move(held));
    }
    held_.clear();
    held_count_.store(0, std::memory_order_relaxed);
  }
  for (auto& held : releases) {
    stats_.delivered.fetch_add(1, std::memory_order_relaxed);
    held.mailbox->push(std::move(held.delivery));
  }
}

void Network::emit(const TapRecord& record) {
  // Snapshot load; taps run outside every lock (CP.22: never call unknown
  // code while holding a lock).
  const std::shared_ptr<const TapList> taps = taps_.load();
  for (const auto& [id, fn] : *taps) {
    fn(record);
  }
}

bool Network::taps_active() const {
  return taps_active_.load(std::memory_order_acquire);
}

Network::FaultPlan Network::fault_plan(MachineId src, MachineId dst,
                                       bool allow_hold) {
  double drop = drop_probability_.load(std::memory_order_relaxed);
  double duplicate = duplicate_probability_.load(std::memory_order_relaxed);
  double reorder = reorder_probability_.load(std::memory_order_relaxed);
  const bool links = link_faults_active_.load(std::memory_order_acquire);
  if (!links && drop <= 0.0 && duplicate <= 0.0 && reorder <= 0.0) {
    return {};  // fault-free fast path: no lock, no RNG draw
  }
  const std::lock_guard lock(fault_mutex_);
  if (links) {
    const auto it = link_faults_.find(link_key(src, dst));
    if (it != link_faults_.end()) {
      drop = it->second.drop;
      duplicate = it->second.duplicate;
      reorder = it->second.reorder;
    }
  }
  if (drop > 0.0 && rng_.uniform01() < drop) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return {.copies = 0};
  }
  FaultPlan plan;
  if (duplicate > 0.0 && rng_.uniform01() < duplicate) {
    stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
    plan.copies = 2;
  }
  if (allow_hold && reorder > 0.0 && rng_.uniform01() < reorder) {
    plan.hold = true;
  }
  return plan;
}

Receiver Network::register_listener(Machine& m, Port get_port,
                                    std::shared_ptr<Mailbox> shared_mailbox) {
  const Port put_port = m.fbox().listen_port(get_port);
  const bool owns_mailbox = shared_mailbox == nullptr;
  auto mailbox =
      owns_mailbox ? std::make_shared<Mailbox>() : std::move(shared_mailbox);
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = stripe_for(put_port);
  const std::lock_guard lock(stripe.mutex);
  const PortMap* current = stripe.map.load(std::memory_order_relaxed);
  auto next = std::make_unique<PortMap>(current != nullptr ? *current
                                                           : PortMap{});
  // Rebuild only the edited port's entry; every other port's entry is
  // shared (shared_ptr shallow copy) between the old and new snapshots.
  auto entry = std::make_shared<PortEntry>();
  if (const auto it = next->find(put_port); it != next->end()) {
    entry->registrations = it->second->registrations;
    entry->cursor.store(it->second->cursor.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  }
  entry->registrations.push_back(Registration{id, m.id(), mailbox});
  (*next)[put_port] = std::move(entry);
  // Publish, THEN retire: readers pinned on the old snapshot keep it alive
  // through the epoch domain; new readers acquire the successor.
  stripe.map.store(next.release(), std::memory_order_release);
  if (current != nullptr) {
    common::EpochDomain::global().retire(current);
  }
  return Receiver(this, put_port, id, std::move(mailbox), owns_mailbox);
}

void Network::unregister(std::uint64_t id, Port put_port) {
  Stripe& stripe = stripe_for(put_port);
  const std::lock_guard lock(stripe.mutex);
  const PortMap* current = stripe.map.load(std::memory_order_relaxed);
  if (current == nullptr) {
    return;
  }
  const auto found = current->find(put_port);
  if (found == current->end()) {
    return;
  }
  auto next = std::make_unique<PortMap>(*current);
  auto entry = std::make_shared<PortEntry>();
  entry->registrations = found->second->registrations;
  entry->cursor.store(found->second->cursor.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  std::erase_if(entry->registrations,
                [id](const Registration& r) { return r.id == id; });
  if (entry->registrations.empty()) {
    // The whole entry -- including its round-robin cursor -- goes away
    // with the last GET, so port churn cannot grow the registry.
    next->erase(put_port);
  } else {
    (*next)[put_port] = std::move(entry);
  }
  stripe.map.store(next.release(), std::memory_order_release);
  common::EpochDomain::global().retire(current);
}

void Network::count_outgoing(const Message& msg, bool broadcast) {
  (broadcast ? stats_.broadcasts : stats_.unicasts)
      .fetch_add(1, std::memory_order_relaxed);
  if ((msg.header.flags & kFlagBatch) != 0) {
    stats_.batch_frames.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Network::transmit_from(Machine& src, Message msg, MachineId dst) {
  count_outgoing(msg, /*broadcast=*/false);
  // The F-box transformation happens on the way out; after this point the
  // message is in wire form and the secret get-port/signature values are
  // gone.
  src.fbox().transform_outgoing(msg.header);

  if (taps_active()) {
    emit(TapRecord{FrameKind::data, src.id(), dst, msg, Port()});
  }
  return deliver_one(src.id(), std::move(msg), dst);
}

bool Network::deliver_one(MachineId src, Message msg, MachineId dst) {
  const FaultPlan plan = fault_plan(src, dst, /*allow_hold=*/true);
  // Pick the destination mailbox: a registration on `dst` whose port
  // matches the frame's destination field.
  std::shared_ptr<Mailbox> mailbox;
  {
    // Lock-free registry probe: pin the epoch, read the stripe's current
    // immutable snapshot, copy the chosen mailbox shared_ptr out.  The
    // mailbox stays valid past the pin because the copy owns it.
    Stripe& stripe = stripe_for(msg.header.dest);
    const common::EpochDomain::Guard guard =
        common::EpochDomain::global().pin();
    const PortMap* map = stripe.map.load(std::memory_order_acquire);
    const auto it = map != nullptr ? map->find(msg.header.dest)
                                   : PortMap::const_iterator{};
    if (map != nullptr && it != map->end()) {
      // Round-robin across this port's registrations on that machine
      // (two passes over the tiny registration list -- no allocation on
      // the delivery fast path).
      const auto& registrations = it->second->registrations;
      std::size_t eligible = 0;
      for (const auto& reg : registrations) {
        eligible += reg.machine == dst ? 1 : 0;
      }
      if (eligible > 0) {
        std::size_t idx =
            it->second->cursor.fetch_add(1, std::memory_order_relaxed) %
            eligible;
        for (const auto& reg : registrations) {
          if (reg.machine == dst && idx-- == 0) {
            mailbox = reg.mailbox;
            break;
          }
        }
      }
    }
  }
  if (mailbox == nullptr) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    return false;  // receiving F-box had no GET outstanding
  }
  const std::uint64_t link = link_key(src, dst);
  int copies = plan.copies;
  bool stashed = false;
  if (plan.hold) {
    // Reorder injection: stash one copy until the NEXT frame on this link
    // has been delivered (at most one held frame per link; when the slot
    // is taken the frame falls through to normal delivery, which is
    // itself the reordering for the already-held one).  A duplicate copy
    // rolled for the same frame is NOT held -- it is delivered below, so
    // duplication and reordering compose instead of cancelling.
    {
      const std::lock_guard lock(fault_mutex_);
      if (!held_.contains(link)) {
        held_.emplace(link, Held{mailbox, Delivery{src, msg}});
        held_count_.fetch_add(1, std::memory_order_relaxed);
        stashed = true;
      }
    }
    if (stashed) {
      stats_.reordered.fetch_add(1, std::memory_order_relaxed);
      if (--copies <= 0) {
        return true;  // the lone copy rides the holdback slot
      }
    }
  }
  stats_.delivered.fetch_add(static_cast<std::uint64_t>(copies),
                             std::memory_order_relaxed);
  for (int i = 0; i + 1 < copies; ++i) {
    mailbox->push(Delivery{src, msg});
  }
  if (copies > 0) {
    mailbox->push(Delivery{src, std::move(msg)});  // last copy moves
  }
  // A frame held on this link is released AFTER the one just handled --
  // the actual reordering (never the frame stashed this very call).
  // held_count_ keeps the fault-free path off the fault mutex.
  if (!stashed && held_count_.load(std::memory_order_relaxed) > 0) {
    std::optional<Held> release;
    {
      const std::lock_guard lock(fault_mutex_);
      const auto it = held_.find(link);
      if (it != held_.end()) {
        release.emplace(std::move(it->second));
        held_.erase(it);
        held_count_.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    if (release.has_value()) {
      stats_.delivered.fetch_add(1, std::memory_order_relaxed);
      release->mailbox->push(std::move(release->delivery));
    }
  }
  return true;
}

void Network::broadcast_from(Machine& src, Message msg) {
  count_outgoing(msg, /*broadcast=*/true);
  src.fbox().transform_outgoing(msg.header);

  if (taps_active()) {
    emit(TapRecord{FrameKind::data, src.id(), MachineId(), msg, Port()});
  }
  broadcast_deliver(src.id(), msg);
}

void Network::broadcast_deliver(MachineId src, const Message& msg) {
  std::vector<std::pair<std::shared_ptr<Mailbox>, MachineId>> targets;
  {
    Stripe& stripe = stripe_for(msg.header.dest);
    const common::EpochDomain::Guard guard =
        common::EpochDomain::global().pin();
    const PortMap* map = stripe.map.load(std::memory_order_acquire);
    const auto it = map != nullptr ? map->find(msg.header.dest)
                                   : PortMap::const_iterator{};
    if (map != nullptr && it != map->end()) {
      targets.reserve(it->second->registrations.size());
      for (const auto& reg : it->second->registrations) {
        targets.emplace_back(reg.mailbox, reg.machine);
      }
    }
  }
  if (targets.empty()) {
    stats_.rejected.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Fault injection applies PER DELIVERY LEG: each receiving machine is a
  // distinct (src -> dst) link, so per-link overrides target individual
  // receivers, independent drop dice can lose a broadcast at some
  // receivers but not others, and reorder holdback works exactly like the
  // unicast path (one held frame per link, released by the next frame on
  // that same link).
  for (auto& [mailbox, dst] : targets) {
    const FaultPlan plan = fault_plan(src, dst, /*allow_hold=*/true);
    int copies = plan.copies;
    const std::uint64_t link = link_key(src, dst);
    bool stashed = false;
    if (plan.hold) {
      {
        const std::lock_guard lock(fault_mutex_);
        if (!held_.contains(link)) {
          held_.emplace(link, Held{mailbox, Delivery{src, msg}});
          held_count_.fetch_add(1, std::memory_order_relaxed);
          stashed = true;
        }
      }
      if (stashed) {
        stats_.reordered.fetch_add(1, std::memory_order_relaxed);
        --copies;
      }
    }
    if (copies > 0) {
      stats_.delivered.fetch_add(static_cast<std::uint64_t>(copies),
                                 std::memory_order_relaxed);
      for (int i = 0; i < copies; ++i) {
        mailbox->push(Delivery{src, msg});
      }
    }
    // A frame previously held on this link is released AFTER the one just
    // delivered -- the reordering -- mirroring the unicast path.
    if (!stashed && copies > 0 &&
        held_count_.load(std::memory_order_relaxed) > 0) {
      std::optional<Held> release;
      {
        const std::lock_guard lock(fault_mutex_);
        const auto it = held_.find(link);
        if (it != held_.end()) {
          release.emplace(std::move(it->second));
          held_.erase(it);
          held_count_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      if (release.has_value()) {
        stats_.delivered.fetch_add(1, std::memory_order_relaxed);
        release->mailbox->push(std::move(release->delivery));
      }
    }
  }
}

std::optional<MachineId> Network::lookup_listener(Port put_port) {
  Stripe& stripe = stripe_for(put_port);
  const common::EpochDomain::Guard guard = common::EpochDomain::global().pin();
  const PortMap* map = stripe.map.load(std::memory_order_acquire);
  const auto it =
      map != nullptr ? map->find(put_port) : PortMap::const_iterator{};
  if (map != nullptr && it != map->end() &&
      !it->second->registrations.empty()) {
    return it->second->registrations.front().machine;
  }
  return std::nullopt;
}

std::optional<MachineId> Network::locate_from(Machine& src, Port put_port) {
  stats_.locates.fetch_add(1, std::memory_order_relaxed);
  if (taps_active()) {
    emit(TapRecord{FrameKind::locate_request, src.id(), MachineId(),
                   Message{}, put_port});
  }
  const std::optional<MachineId> found = lookup_listener(put_port);
  if (found.has_value() && taps_active()) {
    emit(TapRecord{FrameKind::locate_reply, *found, src.id(), Message{},
                   put_port});
  }
  return found;
}

}  // namespace amoeba::net
