#include "amoeba/net/frame_proxy.hpp"

#include "amoeba/common/error.hpp"
#include "amoeba/common/serial.hpp"
#include "socket_util.hpp"

namespace amoeba::net {

namespace {
// Matches SocketNetwork's framing cap; a bigger length means the stream
// desynchronized and the session is torn down.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;
}  // namespace

FrameProxy::FrameProxy(Config config)
    : config_(std::move(config)), rng_(config_.seed) {
  listen_fd_ = detail::listen_on(config_.listen_port, &listen_port_);
  if (listen_fd_ < 0) {
    throw UsageError("FrameProxy: cannot listen on port " +
                     std::to_string(config_.listen_port));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

FrameProxy::~FrameProxy() {
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  acceptor_.join();
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::lock_guard lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (const auto& session : sessions) {
    tear_down(*session);
  }
  for (const auto& session : sessions) {
    if (session->to_target.joinable()) session->to_target.join();
    if (session->to_client.joinable()) session->to_client.join();
    ::close(session->client_fd);
    ::close(session->target_fd);
  }
  ::close(listen_fd_);
}

void FrameProxy::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(client_fd);
      return;
    }
    const int target_fd =
        detail::connect_to(config_.target_host, config_.target_port);
    if (target_fd < 0) {
      // Target down: refuse the client too, so the failure propagates.
      ::close(client_fd);
      continue;
    }
    detail::set_nodelay(client_fd);
    auto session = std::make_shared<Session>();
    session->client_fd = client_fd;
    session->target_fd = target_fd;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    session->to_target = std::thread(
        [this, session] { pump(session, session->client_fd, session->target_fd); });
    session->to_client = std::thread(
        [this, session] { pump(session, session->target_fd, session->client_fd); });
    const std::lock_guard lock(sessions_mutex_);
    std::erase_if(sessions_, [](const std::shared_ptr<Session>& s) {
      // Reap finished sessions (both pumps exited) so long runs with many
      // reconnects do not accumulate threads.
      if (s->up.load()) return false;
      if (s->to_target.joinable()) s->to_target.join();
      if (s->to_client.joinable()) s->to_client.join();
      ::close(s->client_fd);
      ::close(s->target_fd);
      return true;
    });
    sessions_.push_back(std::move(session));
  }
}

void FrameProxy::tear_down(Session& session) {
  if (session.up.exchange(false)) {
    ::shutdown(session.client_fd, SHUT_RDWR);
    ::shutdown(session.target_fd, SHUT_RDWR);
  }
}

void FrameProxy::pump(const std::shared_ptr<Session>& session, int from,
                      int to) {
  Buffer frame;
  for (;;) {
    std::uint8_t len_bytes[4];
    if (!detail::read_exact(from, len_bytes, sizeof(len_bytes))) break;
    const std::uint32_t len =
        static_cast<std::uint32_t>(len_bytes[0]) |
        (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
        (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
        (static_cast<std::uint32_t>(len_bytes[3]) << 24);
    if (len == 0 || len > kMaxFrameBytes) break;
    frame.resize(len);
    if (!detail::read_exact(from, frame.data(), len)) break;

    if (partitioned_.load(std::memory_order_relaxed)) {
      stats_.dropped.fetch_add(1, std::memory_order_relaxed);
      continue;  // connection stays up; the frame just never arrives
    }
    const double drop = drop_probability_.load(std::memory_order_relaxed);
    if (drop > 0.0) {
      double roll;
      {
        const std::lock_guard lock(rng_mutex_);
        roll = rng_.uniform01();
      }
      if (roll < drop) {
        stats_.dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    const std::int64_t delay = delay_ms_.load(std::memory_order_relaxed);
    if (delay > 0) {
      stats_.delayed.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    if (!detail::write_exact(to, len_bytes, sizeof(len_bytes)) ||
        !detail::write_exact(to, frame.data(), frame.size())) {
      break;
    }
    stats_.forwarded.fetch_add(1, std::memory_order_relaxed);
  }
  tear_down(*session);
}

void FrameProxy::set_faults(double drop_probability,
                            std::chrono::milliseconds delay) {
  drop_probability_.store(drop_probability, std::memory_order_relaxed);
  delay_ms_.store(delay.count(), std::memory_order_relaxed);
}

void FrameProxy::set_partitioned(bool partitioned) {
  partitioned_.store(partitioned, std::memory_order_relaxed);
}

void FrameProxy::sever() {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::lock_guard lock(sessions_mutex_);
    sessions = sessions_;
  }
  for (const auto& session : sessions) {
    if (session->up.load()) {
      stats_.severed.fetch_add(1, std::memory_order_relaxed);
      tear_down(*session);
    }
  }
}

FrameProxy::Stats FrameProxy::stats() const {
  Stats stats;
  stats.forwarded = stats_.forwarded.load(std::memory_order_relaxed);
  stats.dropped = stats_.dropped.load(std::memory_order_relaxed);
  stats.delayed = stats_.delayed.load(std::memory_order_relaxed);
  stats.connections = stats_.connections.load(std::memory_order_relaxed);
  stats.severed = stats_.severed.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace amoeba::net
