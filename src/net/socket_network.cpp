#include "amoeba/net/socket_network.hpp"

#include <algorithm>

#include "amoeba/common/error.hpp"
#include "socket_util.hpp"

namespace amoeba::net {

namespace {

// One frame on the stream: u32 little-endian body length, then the body.
// Body layout: u8 kind | u32 src machine | u32 dst machine | payload.
// docs/PROTOCOL.md §10 is the normative description.
constexpr std::uint8_t kFrameData = 1;
constexpr std::uint8_t kFrameLocateRequest = 2;
constexpr std::uint8_t kFrameLocateReply = 3;
constexpr std::uint8_t kFrameHello = 4;

// Upper bound on one frame body; anything larger is treated as a protocol
// violation and tears the link down (a desynchronized or hostile stream
// must not drive multi-gigabyte allocations).
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

void put_frame_kind(Writer& w, std::uint8_t kind, MachineId src,
                    MachineId dst) {
  w.u8(kind);
  w.u32(src.value());
  w.u32(dst.value());
}

Buffer encode_data(MachineId src, MachineId dst, const Message& msg) {
  Writer w;
  put_frame_kind(w, kFrameData, src, dst);
  w.port(msg.header.dest);
  w.port(msg.header.reply);
  w.port(msg.header.signature);
  w.u16(msg.header.opcode);
  w.u16(msg.header.flags);
  w.u16(static_cast<std::uint16_t>(msg.header.status));
  w.raw(msg.header.capability);
  for (const std::uint64_t param : msg.header.params) {
    w.u64(param);
  }
  w.u64(msg.header.client);
  w.u64(msg.header.seq);
  w.bytes(msg.data);
  return w.take();
}

bool decode_data(Reader& r, Message* msg) {
  msg->header.dest = r.port();
  msg->header.reply = r.port();
  msg->header.signature = r.port();
  msg->header.opcode = r.u16();
  msg->header.flags = r.u16();
  msg->header.status = static_cast<ErrorCode>(r.u16());
  r.raw(msg->header.capability);
  for (std::uint64_t& param : msg->header.params) {
    param = r.u64();
  }
  msg->header.client = r.u64();
  msg->header.seq = r.u64();
  msg->data = r.bytes();
  return r.exhausted();
}

Buffer encode_locate_request(Port put_port, std::uint64_t nonce) {
  Writer w;
  put_frame_kind(w, kFrameLocateRequest, MachineId(), MachineId());
  w.port(put_port);
  w.u64(nonce);
  return w.take();
}

Buffer encode_locate_reply(Port put_port, std::uint64_t nonce,
                           MachineId machine) {
  Writer w;
  put_frame_kind(w, kFrameLocateReply, MachineId(), MachineId());
  w.port(put_port);
  w.u64(nonce);
  w.u32(machine.value());
  return w.take();
}

Buffer encode_hello(std::uint32_t machine_id_base) {
  Writer w;
  put_frame_kind(w, kFrameHello, MachineId(), MachineId());
  w.u32(machine_id_base);
  return w.take();
}

}  // namespace

// The fd is closed only when the last reference drops: writers hold a
// shared_ptr across their write, so a torn-down (shutdown) fd can never be
// reused by a new socket while a write is still in flight on it.
SocketNetwork::Link::~Link() {
  if (fd >= 0) ::close(fd);
}

SocketNetwork::SocketNetwork(SocketConfig config,
                             std::shared_ptr<const crypto::OneWayFn> f)
    : Network(config.net, std::move(f)), config_(std::move(config)) {
  if (config_.listen) {
    start_listener();
  }
  peers_.reserve(config_.peers.size());
  for (const PeerAddress& addr : config_.peers) {
    auto peer = std::make_unique<Peer>();
    peer->addr = addr;
    peers_.push_back(std::move(peer));
  }
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    peers_[i]->dialer = std::jthread(
        [this, i](const std::stop_token& stop) { dial_loop(stop, i); });
  }
}

SocketNetwork::~SocketNetwork() {
  stopping_.store(true, std::memory_order_release);
  acceptor_.request_stop();
  for (const auto& peer : peers_) {
    peer->dialer.request_stop();
    peer->cv.notify_all();
  }
  if (listen_fd_ >= 0) {
    // Unblocks accept() on Linux; the fd itself is closed after the join.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (const auto& peer : peers_) {
    if (peer->dialer.joinable()) peer->dialer.join();
  }
  // No new links can appear now; tear the existing ones so readers unblock.
  for (const auto& link : live_links()) {
    tear_down(*link);
  }
  std::vector<std::jthread> readers;
  {
    const std::lock_guard lock(links_mutex_);
    readers.swap(readers_);
  }
  for (std::jthread& reader : readers) {
    if (reader.joinable()) reader.join();
  }
  {
    const std::lock_guard lock(locates_mutex_);
  }
  locates_cv_.notify_all();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void SocketNetwork::start_listener() {
  listen_fd_ = detail::listen_on(config_.listen_port, &listen_port_);
  if (listen_fd_ < 0) {
    throw UsageError("SocketNetwork: cannot listen on port " +
                     std::to_string(config_.listen_port));
  }
  acceptor_ = std::jthread(
      [this](const std::stop_token& stop) { accept_loop(stop); });
}

void SocketNetwork::accept_loop(const std::stop_token& stop) {
  while (!stop.stop_requested()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or fatally broken): stop accepting
    }
    if (stop.stop_requested()) {
      ::close(fd);
      return;
    }
    detail::set_nodelay(fd);
    auto link = std::make_shared<Link>();
    link->fd = fd;
    link->peer = -1;
    sstats_.accepts.fetch_add(1, std::memory_order_relaxed);
    send_frame(*link, encode_hello(config_.net.machine_id_base));
    adopt_link(std::move(link));
  }
}

void SocketNetwork::dial_loop(const std::stop_token& stop,
                              std::size_t peer_index) {
  Peer& peer = *peers_[peer_index];
  auto backoff = config_.reconnect_initial;
  while (!stop.stop_requested()) {
    {
      std::unique_lock lock(peer.mutex);
      if (peer.link != nullptr && peer.link->up.load()) {
        // Connected: sleep until the reader tears the link down.
        peer.cv.wait(lock, stop, [&] {
          return peer.link == nullptr || !peer.link->up.load();
        });
        continue;
      }
    }
    const int fd = detail::connect_to(peer.addr.host, peer.addr.port);
    if (stop.stop_requested()) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      std::unique_lock lock(peer.mutex);
      peer.cv.wait_for(lock, stop, backoff, [] { return false; });
      backoff = std::min(backoff * 2, config_.reconnect_cap);
      continue;
    }
    auto link = std::make_shared<Link>();
    link->fd = fd;
    link->peer = static_cast<int>(peer_index);
    sstats_.connects.fetch_add(1, std::memory_order_relaxed);
    send_frame(*link, encode_hello(config_.net.machine_id_base));
    {
      const std::lock_guard lock(peer.mutex);
      peer.link = link;
    }
    peer.cv.notify_all();  // wait_connected
    adopt_link(std::move(link));
    backoff = config_.reconnect_initial;
  }
}

void SocketNetwork::adopt_link(std::shared_ptr<Link> link) {
  const std::lock_guard lock(links_mutex_);
  if (stopping_.load(std::memory_order_acquire)) {
    ::close(link->fd);
    link->fd = -1;
    return;
  }
  if (link->peer < 0) {
    // Prune inbound links whose reader already tore them down, so a
    // client that reconnects many times does not grow the list forever.
    std::erase_if(inbound_,
                  [](const std::shared_ptr<Link>& l) { return !l->up.load(); });
    inbound_.push_back(link);
  }
  readers_.emplace_back([this, link = std::move(link)]() mutable {
    reader_loop(std::move(link));
  });
}

void SocketNetwork::tear_down(Link& link) {
  if (link.up.exchange(false)) {
    ::shutdown(link.fd, SHUT_RDWR);
    sstats_.disconnects.fetch_add(1, std::memory_order_relaxed);
    if (link.peer >= 0) {
      peers_[static_cast<std::size_t>(link.peer)]->cv.notify_all();
    }
  }
}

void SocketNetwork::reader_loop(std::shared_ptr<Link> link) {
  Buffer body;
  for (;;) {
    std::uint8_t len_bytes[4];
    if (!detail::read_exact(link->fd, len_bytes, sizeof(len_bytes))) break;
    const std::uint32_t len =
        static_cast<std::uint32_t>(len_bytes[0]) |
        (static_cast<std::uint32_t>(len_bytes[1]) << 8) |
        (static_cast<std::uint32_t>(len_bytes[2]) << 16) |
        (static_cast<std::uint32_t>(len_bytes[3]) << 24);
    if (len == 0 || len > kMaxFrameBytes) break;
    body.resize(len);
    if (!detail::read_exact(link->fd, body.data(), len)) break;
    sstats_.frames_received.fetch_add(1, std::memory_order_relaxed);
    handle_frame(link, body);
  }
  tear_down(*link);
}

void SocketNetwork::handle_frame(const std::shared_ptr<Link>& link,
                                 const Buffer& body) {
  Reader r(body);
  const std::uint8_t kind = r.u8();
  const MachineId src(r.u32());
  const MachineId dst(r.u32());
  if (!r.ok()) return;
  switch (kind) {
    case kFrameData: {
      Message msg;
      if (!decode_data(r, &msg)) return;
      // Every frame names its true sender; that is how this node learns
      // which link reaches which remote machine (and how replies to a
      // reconnected client find its NEW connection).
      learn_route(src, link);
      if (taps_active()) {
        emit(TapRecord{FrameKind::data, src, dst, msg, Port()});
      }
      if (dst.is_null()) {
        broadcast_deliver(src, msg);
      } else {
        // Local fault knobs apply to the local leg exactly as on the
        // simulated wire; deployment-shaped faults live in FrameProxy.
        deliver_one(src, std::move(msg), dst);
      }
      break;
    }
    case kFrameLocateRequest: {
      const Port put_port = r.port();
      const std::uint64_t nonce = r.u64();
      if (!r.exhausted()) return;
      // Answer only on a local hit; silence means "not here" and the
      // requester times out (negative replies would race registration).
      if (const auto found = lookup_listener(put_port); found.has_value()) {
        send_frame(*link, encode_locate_reply(put_port, nonce, *found));
      }
      break;
    }
    case kFrameLocateReply: {
      const Port put_port = r.port();
      const std::uint64_t nonce = r.u64();
      const MachineId machine(r.u32());
      if (!r.exhausted() || machine.is_null()) return;
      static_cast<void>(put_port);
      learn_route(machine, link);
      {
        const std::lock_guard lock(locates_mutex_);
        const auto it = pending_locates_.find(nonce);
        if (it != pending_locates_.end() && !it->second.done) {
          it->second.result = machine;
          it->second.done = true;
        }
      }
      locates_cv_.notify_all();
      break;
    }
    case kFrameHello:
      break;  // connection liveness only; routes are learned per frame
    default:
      break;  // unknown kinds are skipped so the protocol can grow
  }
}

bool SocketNetwork::send_frame(Link& link, const Buffer& frame) {
  if (!link.up.load(std::memory_order_acquire)) return false;
  std::uint8_t len_bytes[4];
  const auto len = static_cast<std::uint32_t>(frame.size());
  len_bytes[0] = static_cast<std::uint8_t>(len);
  len_bytes[1] = static_cast<std::uint8_t>(len >> 8);
  len_bytes[2] = static_cast<std::uint8_t>(len >> 16);
  len_bytes[3] = static_cast<std::uint8_t>(len >> 24);
  const std::lock_guard lock(link.write_mutex);
  if (!link.up.load(std::memory_order_acquire)) return false;
  if (!detail::write_exact(link.fd, len_bytes, sizeof(len_bytes)) ||
      !detail::write_exact(link.fd, frame.data(), frame.size())) {
    sstats_.send_failures.fetch_add(1, std::memory_order_relaxed);
    tear_down(link);
    return false;
  }
  sstats_.frames_sent.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<std::shared_ptr<SocketNetwork::Link>> SocketNetwork::live_links() {
  std::vector<std::shared_ptr<Link>> links;
  for (const auto& peer : peers_) {
    const std::lock_guard lock(peer->mutex);
    if (peer->link != nullptr && peer->link->up.load()) {
      links.push_back(peer->link);
    }
  }
  {
    const std::lock_guard lock(links_mutex_);
    for (const auto& link : inbound_) {
      if (link->up.load()) links.push_back(link);
    }
  }
  return links;
}

void SocketNetwork::learn_route(MachineId machine,
                                const std::shared_ptr<Link>& link) {
  if (machine.is_null() || is_local_machine(machine)) return;
  const std::lock_guard lock(routes_mutex_);
  Route& route = routes_[machine];
  route.peer = link->peer;
  route.inbound = link->peer < 0 ? link : std::weak_ptr<Link>{};
}

std::shared_ptr<SocketNetwork::Link> SocketNetwork::route_link(MachineId dst) {
  Route route;
  {
    const std::lock_guard lock(routes_mutex_);
    const auto it = routes_.find(dst);
    if (it == routes_.end()) return nullptr;
    route = it->second;
  }
  if (route.peer >= 0) {
    Peer& peer = *peers_[static_cast<std::size_t>(route.peer)];
    const std::lock_guard lock(peer.mutex);
    if (peer.link != nullptr && peer.link->up.load()) return peer.link;
    return nullptr;  // link down; the dialer is already re-dialing
  }
  if (auto link = route.inbound.lock(); link != nullptr && link->up.load()) {
    return link;
  }
  return nullptr;
}

bool SocketNetwork::send_remote(MachineId src, const Message& msg,
                                MachineId dst) {
  bool known;
  {
    const std::lock_guard lock(routes_mutex_);
    known = routes_.contains(dst);
  }
  if (!known) {
    // Nothing ever taught us where `dst` lives: surface it like the
    // simulated wire's "no GET outstanding" so the caller re-locates.
    sstats_.unrouted.fetch_add(1, std::memory_order_relaxed);
    live_stats().rejected.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::shared_ptr<Link> link = route_link(dst);
  if (link == nullptr || !send_frame(*link, encode_data(src, dst, msg))) {
    // Link down or torn mid-write: the frame is lost in flight, which is
    // inside the simulated wire's best-effort contract -- the admitted
    // frame "fell off the wire" and retransmission recovers.
    live_stats().dropped.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

bool SocketNetwork::transmit_from(Machine& src, Message msg, MachineId dst) {
  if (is_local_machine(dst)) {
    return Network::transmit_from(src, std::move(msg), dst);
  }
  count_outgoing(msg, /*broadcast=*/false);
  src.fbox().transform_outgoing(msg.header);
  if (taps_active()) {
    emit(TapRecord{FrameKind::data, src.id(), dst, msg, Port()});
  }
  return send_remote(src.id(), msg, dst);
}

void SocketNetwork::broadcast_from(Machine& src, Message msg) {
  count_outgoing(msg, /*broadcast=*/true);
  src.fbox().transform_outgoing(msg.header);
  if (taps_active()) {
    emit(TapRecord{FrameKind::data, src.id(), MachineId(), msg, Port()});
  }
  const Buffer frame = encode_data(src.id(), MachineId(), msg);
  for (const auto& link : live_links()) {
    send_frame(*link, frame);
  }
  broadcast_deliver(src.id(), msg);
}

std::optional<MachineId> SocketNetwork::remote_locate(Port put_port) {
  const std::vector<std::shared_ptr<Link>> links = live_links();
  if (links.empty()) return std::nullopt;
  const std::uint64_t nonce =
      next_nonce_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::lock_guard lock(locates_mutex_);
    pending_locates_.emplace(nonce, PendingLocate{});
  }
  const Buffer frame = encode_locate_request(put_port, nonce);
  for (const auto& link : links) {
    send_frame(*link, frame);
  }
  std::optional<MachineId> result;
  {
    std::unique_lock lock(locates_mutex_);
    locates_cv_.wait_for(lock, config_.locate_timeout, [&] {
      return pending_locates_.at(nonce).done ||
             stopping_.load(std::memory_order_acquire);
    });
    result = pending_locates_.at(nonce).result;
    pending_locates_.erase(nonce);
  }
  return result;
}

std::optional<MachineId> SocketNetwork::locate_from(Machine& src,
                                                    Port put_port) {
  live_stats().locates.fetch_add(1, std::memory_order_relaxed);
  if (taps_active()) {
    emit(TapRecord{FrameKind::locate_request, src.id(), MachineId(),
                   Message{}, put_port});
  }
  std::optional<MachineId> found = lookup_listener(put_port);
  if (!found.has_value()) {
    found = remote_locate(put_port);
  }
  if (found.has_value() && taps_active()) {
    emit(TapRecord{FrameKind::locate_reply, *found, src.id(), Message{},
                   put_port});
  }
  return found;
}

bool SocketNetwork::wait_connected(std::size_t peer_index,
                                   std::chrono::milliseconds timeout) {
  if (peer_index >= peers_.size()) return false;
  Peer& peer = *peers_[peer_index];
  std::unique_lock lock(peer.mutex);
  return peer.cv.wait_for(lock, timeout, [&] {
    return peer.link != nullptr && peer.link->up.load();
  });
}

SocketNetwork::SocketStats SocketNetwork::socket_stats() const {
  SocketStats stats;
  stats.frames_sent = sstats_.frames_sent.load(std::memory_order_relaxed);
  stats.frames_received =
      sstats_.frames_received.load(std::memory_order_relaxed);
  stats.send_failures = sstats_.send_failures.load(std::memory_order_relaxed);
  stats.unrouted = sstats_.unrouted.load(std::memory_order_relaxed);
  stats.connects = sstats_.connects.load(std::memory_order_relaxed);
  stats.accepts = sstats_.accepts.load(std::memory_order_relaxed);
  stats.disconnects = sstats_.disconnects.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace amoeba::net
