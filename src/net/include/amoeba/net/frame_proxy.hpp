// A frame-aware TCP proxy for injecting deployment-shaped link faults.
//
// The simulated Network injects faults per frame; a real TCP stream cannot
// lose bytes in the middle without desynchronizing the length-prefixed
// framing.  FrameProxy sits between two SocketNetwork nodes, re-parses the
// stream into frames, and rolls fault dice PER FRAME each direction:
//
//   * drop: the frame silently never reaches the other side,
//   * delay: the pump sleeps before forwarding (adds latency and, because
//     connections are independent, reordering across connections),
//   * partition: no frames pass in either direction until lifted
//     (connections stay up -- the nastier half-alive failure mode),
//   * sever: every live connection is torn down at once, forcing both
//     sides through their reconnect paths.
//
// One proxy fronts one target endpoint: clients dial the proxy's
// listen_port() instead of the target's, and each accepted connection gets
// its own connection to the target (so a target crash tears the client
// connection too, propagating the failure like a real middlebox).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/common/rng.hpp"

namespace amoeba::net {

class FrameProxy {
 public:
  struct Config {
    std::string target_host = "127.0.0.1";
    std::uint16_t target_port = 0;
    std::uint16_t listen_port = 0;  // 0 = ephemeral
    std::uint64_t seed = 1;
  };

  struct Stats {
    std::uint64_t forwarded = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t connections = 0;
    std::uint64_t severed = 0;
  };

  explicit FrameProxy(Config config);
  ~FrameProxy();

  FrameProxy(const FrameProxy&) = delete;
  FrameProxy& operator=(const FrameProxy&) = delete;

  /// The port clients should dial (resolves an ephemeral listen_port).
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  /// Per-frame fault knobs, adjustable at runtime from the harness.
  void set_faults(double drop_probability,
                  std::chrono::milliseconds delay = {});
  void set_partitioned(bool partitioned);
  /// Tears down every live proxied connection (both sides), forcing the
  /// endpoints through reconnect.
  void sever();

  [[nodiscard]] Stats stats() const;

 private:
  struct Session {
    int client_fd = -1;
    int target_fd = -1;
    std::atomic<bool> up{true};
    std::thread to_target;
    std::thread to_client;
  };

  void accept_loop();
  void pump(const std::shared_ptr<Session>& session, int from, int to);
  static void tear_down(Session& session);

  Config config_;
  std::uint16_t listen_port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  std::atomic<double> drop_probability_{0.0};
  std::atomic<std::int64_t> delay_ms_{0};
  std::atomic<bool> partitioned_{false};

  mutable std::mutex rng_mutex_;
  Rng rng_;

  struct AtomicStats {
    std::atomic<std::uint64_t> forwarded{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> delayed{0};
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> severed{0};
  };
  AtomicStats stats_;

  mutable std::mutex sessions_mutex_;
  std::vector<std::shared_ptr<Session>> sessions_;

  std::thread acceptor_;  // last: joined first in the destructor
};

}  // namespace amoeba::net
