// The simulated LAN plus the F-box protection layer (§2.2, Fig. 1).
//
// Model, matching the paper's assumptions exactly:
//   * Every machine attaches through an F-box; there is no way to put a
//     frame on the wire except Machine::transmit/broadcast, which apply the
//     F-box transformation (in F-box mode) to the reply and signature
//     header fields.  "We assume that somehow or other all messages
//     entering and leaving every processor undergo a simple transformation
//     that users cannot bypass."
//   * The network stamps the true source machine id on every frame;
//     senders cannot forge it (§2.4's key assumption for the software
//     scheme).
//   * A GET(G) registers interest in put-port P = F(G); the receiving
//     F-box admits only frames whose destination port has a matching GET.
//     In software-protection mode (fbox disabled) ports are plain values:
//     GET(G) listens on G itself and no transformation happens -- the
//     §2.4 machinery in amoeba/softprot must then provide protection.
//   * Passive wiretaps observe every frame in wire form -- this is the
//     intruder's eavesdropping power.
//   * Frames can be dropped, duplicated, or reordered under fault
//     injection -- globally or per directed (src, dst) link -- which is
//     what the at-most-once RPC layer (docs/PROTOCOL.md §5) is tested
//     against.
//
// LOCATE (§2.2: broadcasting a LOCATE message to find which machine serves
// a port) is provided as a kernel-level primitive: Machine::locate scans
// listeners, emitting tap records for the request and reply so intruders
// observe location traffic like any other.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "amoeba/common/epoch.hpp"
#include "amoeba/common/rng.hpp"
#include "amoeba/common/types.hpp"
#include "amoeba/crypto/one_way.hpp"
#include "amoeba/net/mailbox.hpp"
#include "amoeba/net/message.hpp"

namespace amoeba::net {

class Network;
class Machine;

enum class FrameKind { data, locate_request, locate_reply };

/// What a wiretap sees: the frame in wire form (ports already transformed).
struct TapRecord {
  FrameKind kind = FrameKind::data;
  MachineId src;
  MachineId dst;  // null for broadcast
  Message message;           // valid for data frames
  Port locate_port;          // valid for locate frames
};

using TapFn = std::function<void(const TapRecord&)>;

/// RAII wiretap attachment.
class TapHandle {
 public:
  TapHandle() = default;
  TapHandle(Network* net, std::uint64_t id) : net_(net), id_(id) {}
  TapHandle(TapHandle&& other) noexcept { *this = std::move(other); }
  TapHandle& operator=(TapHandle&& other) noexcept;
  TapHandle(const TapHandle&) = delete;
  TapHandle& operator=(const TapHandle&) = delete;
  ~TapHandle();

 private:
  Network* net_ = nullptr;
  std::uint64_t id_ = 0;
};

/// RAII GET registration: while alive, frames addressed to put_port() are
/// delivered to the owned mailbox.  Destroying it is the moment the F-box
/// stops admitting frames for that port (used to model server shutdown and
/// migration).
class Receiver {
 public:
  Receiver() = default;
  Receiver(Receiver&& other) noexcept { *this = std::move(other); }
  Receiver& operator=(Receiver&& other) noexcept;
  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;
  ~Receiver();

  /// The public put-port this registration listens on (F(G) in F-box mode,
  /// G itself otherwise).
  [[nodiscard]] Port put_port() const { return put_port_; }

  /// Blocking receive; see Mailbox::pop.  Frames queued to one receiver
  /// are popped in delivery order (which matches transmit order on a link
  /// unless reorder injection held a frame back).
  [[nodiscard]] std::optional<Delivery> receive(
      std::stop_token stop,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt) {
    return mailbox_ ? mailbox_->pop(stop, timeout) : std::nullopt;
  }

  [[nodiscard]] bool valid() const { return mailbox_ != nullptr; }

 private:
  friend class Machine;
  friend class Network;
  Receiver(Network* net, Port put_port, std::uint64_t id,
           std::shared_ptr<Mailbox> mailbox, bool owns_mailbox = true)
      : net_(net), put_port_(put_port), id_(id), mailbox_(std::move(mailbox)),
        owns_mailbox_(owns_mailbox) {}

  void release();

  Network* net_ = nullptr;
  Port put_port_;
  std::uint64_t id_ = 0;
  std::shared_ptr<Mailbox> mailbox_;
  // A demultiplexed registration (listen into a caller-owned mailbox shared
  // by many ports) must not close that mailbox when one port unregisters.
  bool owns_mailbox_ = true;
};

/// The F-box: the per-machine transformation unit.  Exposed as its own
/// class so the Fig. 1 ablation ("what if the transformation were absent")
/// is a one-flag change at Network construction.
class FBox {
 public:
  FBox(std::shared_ptr<const crypto::OneWayFn> f, bool enabled)
      : f_(std::move(f)), enabled_(enabled) {}

  /// Maps a get-port to the put-port the box will admit frames for.
  [[nodiscard]] Port listen_port(Port get_port) const {
    return enabled_ ? f_->apply(get_port) : get_port;
  }

  /// Outbound transformation: applies F to the reply and signature fields
  /// (never the destination).  Identity when disabled.
  void transform_outgoing(Header& header) const {
    if (!enabled_) return;
    if (!header.reply.is_null()) header.reply = f_->apply(header.reply);
    if (!header.signature.is_null())
      header.signature = f_->apply(header.signature);
  }

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const crypto::OneWayFn& f() const { return *f_; }

 private:
  std::shared_ptr<const crypto::OneWayFn> f_;
  bool enabled_;
};

/// A processor module attached to the network through its F-box.
class Machine {
 public:
  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const FBox& fbox() const { return fbox_; }

  /// GET(G): registers a listener; the returned Receiver collects frames
  /// sent to put_port().  Multiple receivers may listen on one port (a
  /// multi-threaded service); frames are delivered round-robin.
  [[nodiscard]] Receiver listen(Port get_port);

  /// GET(G) into a caller-owned mailbox shared by many registrations: the
  /// demultiplexer a completion-based RPC client needs to collect replies
  /// for every one-shot reply port through one pump.  The Receiver still
  /// owns the registration (destroying it withdraws the GET) but leaves
  /// the mailbox open.
  [[nodiscard]] Receiver listen(Port get_port,
                                std::shared_ptr<Mailbox> mailbox);

  /// PUT to a specific machine.  Returns true if the destination F-box
  /// admitted the frame (a GET was outstanding) -- the link-level signal
  /// kernels use to invalidate stale location cache entries.  Delivery is
  /// best-effort: under fault injection an admitted frame may still be
  /// dropped, duplicated, or held back for reordering, and the sender
  /// cannot tell (a dropped frame still reports true).  Thread-safe; never
  /// blocks on receivers.
  bool transmit(Message msg, MachineId dst);

  /// PUT broadcast: delivered to every matching GET on the network, with
  /// the same best-effort guarantee as transmit.  Fault injection rolls
  /// independently per delivery leg: each receiving machine is its own
  /// (src -> dst) link, so per-link overrides, drop/duplicate dice, and
  /// reorder holdback apply to individual receivers exactly as on the
  /// unicast path (a broadcast can be lost at one receiver and arrive at
  /// another).  Thread-safe.
  void broadcast(Message msg);

  /// Kernel LOCATE: finds a machine with a GET outstanding for `put_port`.
  /// Synchronous registry scan; never faulted, never blocked by traffic.
  [[nodiscard]] std::optional<MachineId> locate(Port put_port);

 private:
  friend class Network;
  Machine(Network* net, MachineId id, std::string name,
          std::shared_ptr<const crypto::OneWayFn> f, bool fbox_enabled)
      : net_(net), id_(id), name_(std::move(name)),
        fbox_(std::move(f), fbox_enabled) {}

  Network* net_;
  MachineId id_;
  std::string name_;
  FBox fbox_;
};

/// Fault probabilities for one directed (src, dst) link; overrides the
/// global knobs for that link when installed via set_link_faults.
struct LinkFaults {
  double drop = 0.0;       // frame silently lost
  double duplicate = 0.0;  // frame delivered twice
  double reorder = 0.0;    // frame held back until the next on the link
};

class Network {
 public:
  struct Config {
    bool fbox_enabled = true;
    std::uint64_t seed = 1;
    double drop_probability = 0.0;       // applied per delivery attempt
    double duplicate_probability = 0.0;  // applied per delivered frame
    double reorder_probability = 0.0;    // applied per delivered frame
    // Machine ids are assigned base+1, base+2, ...  One in-process network
    // always uses 0; nodes of a multi-process cluster (SocketNetwork) each
    // take a disjoint base so the stamped source ids -- which key reply
    // caches and the software-protection matrix -- stay unique clusterwide.
    std::uint32_t machine_id_base = 0;
  };

  struct Stats {
    std::atomic<std::uint64_t> unicasts{0};
    std::atomic<std::uint64_t> broadcasts{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> rejected{0};   // no matching GET
    std::atomic<std::uint64_t> dropped{0};    // fault injection
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> reordered{0};  // frames held back
    std::atomic<std::uint64_t> locates{0};
    std::atomic<std::uint64_t> batch_frames{0};  // frames with kFlagBatch
  };

  /// Default-configured network (F-boxes on, no faults).
  Network();
  explicit Network(Config config,
                   std::shared_ptr<const crypto::OneWayFn> f =
                       crypto::default_one_way());
  virtual ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Adds a machine; the reference stays valid for the network's lifetime.
  /// Thread-safe against concurrent add_machine and traffic.
  Machine& add_machine(std::string name);

  /// Attaches a passive wiretap seeing every frame in wire form.  Taps run
  /// on sender threads, outside every network lock; detaching (dropping
  /// the handle) never blocks frame delivery.
  [[nodiscard]] TapHandle attach_tap(TapFn fn);

  /// Live counters; each field is independently atomic (a snapshot read
  /// across fields is not a consistent cut).
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] bool fbox_enabled() const { return config_.fbox_enabled; }

  /// Adjusts the network-wide fault knobs at runtime (tests and benches).
  /// Thread-safe; releases any frame currently held back by reorder
  /// injection, so lowering the knobs cannot strand traffic.
  void set_fault_injection(double drop_probability,
                           double duplicate_probability,
                           double reorder_probability = 0.0);

  /// Installs fault probabilities for one directed (src -> dst) link,
  /// overriding the global knobs for frames on that link only (the other
  /// direction keeps its own setting).  Thread-safe; flushes held frames
  /// like set_fault_injection.
  void set_link_faults(MachineId src, MachineId dst, const LinkFaults& faults);

  /// Removes every per-link override (global knobs apply again) and
  /// releases held frames.
  void clear_link_faults();

 protected:
  // The three frame entry points are virtual so a transport subclass
  // (SocketNetwork) can route frames for non-local machines onto another
  // medium while reusing the local building blocks below.  All return
  // without holding any lock while invoking taps/mailboxes.
  virtual bool transmit_from(Machine& src, Message msg, MachineId dst);
  virtual void broadcast_from(Machine& src, Message msg);
  virtual std::optional<MachineId> locate_from(Machine& src, Port put_port);

  /// Frame accounting (unicast/broadcast + batch counters) for one send.
  void count_outgoing(const Message& msg, bool broadcast);
  /// The simulated wire for one local delivery leg: rolls the fault dice,
  /// probes the stripe registry for a GET on (dst, msg.dest), round-robins
  /// across matching registrations, and services the reorder holdback slot
  /// for the link.  `msg` must already be in wire form (F-box applied).
  /// Returns whether the destination F-box admitted the frame.
  bool deliver_one(MachineId src, Message msg, MachineId dst);
  /// Broadcast legs to every local registration on msg.dest, with per-leg
  /// fault dice exactly like the unicast path (counts one rejected frame
  /// when nobody listens).  `msg` must already be in wire form.
  void broadcast_deliver(MachineId src, const Message& msg);
  /// First local machine with a GET outstanding on put_port, if any.
  [[nodiscard]] std::optional<MachineId> lookup_listener(Port put_port);
  /// True when `id` names a machine of THIS network instance (falls inside
  /// the (machine_id_base, machine_id_base + count] window).
  [[nodiscard]] bool is_local_machine(MachineId id) const;
  void emit(const TapRecord& record);
  [[nodiscard]] bool taps_active() const;
  [[nodiscard]] Stats& live_stats() { return stats_; }

 private:
  friend class Machine;
  friend class Receiver;
  friend class TapHandle;

  struct Registration {
    std::uint64_t id;
    MachineId machine;
    std::shared_ptr<Mailbox> mailbox;
  };

  /// All GET registrations for one put-port, plus the delivery cursor that
  /// spreads frames round-robin across them.  The registration vector is
  /// IMMUTABLE once the entry is published into a stripe snapshot -- a
  /// registration change builds a replacement entry (carrying the cursor
  /// value forward) inside a replacement map.  Only the cursor mutates in
  /// place, which is why it is atomic and mutable: readers bump it through
  /// a const snapshot, and a racy bump lost to a concurrent rebuild only
  /// skews round-robin fairness, never correctness.
  struct PortEntry {
    std::vector<Registration> registrations;
    mutable std::atomic<std::size_t> cursor{0};
  };

  /// One stripe's registration table: an immutable snapshot, swapped
  /// atomically.  Entries are shared_ptr so a successor map shallow-copies
  /// untouched ports and rebuilds only the one being edited.
  using PortMap = std::unordered_map<Port, std::shared_ptr<const PortEntry>>;

  /// One stripe of the listener registry, RCU-style.  The read side
  /// (transmit/broadcast/locate) takes NO lock: it pins the global
  /// EpochDomain, acquire-loads the current snapshot, and copies out the
  /// mailbox shared_ptrs it needs before unpinning.  Writers serialize on
  /// the stripe's CountedMutex (counted so tests can prove the traffic
  /// path never touches it), publish a successor map with a release store,
  /// and retire the predecessor to the domain -- so a registration storm
  /// never blocks a single frame, it only makes readers see slightly stale
  /// snapshots (indistinguishable from the frame having raced the GET).
  struct Stripe {
    mutable common::CountedMutex mutex;        // writers only
    std::atomic<const PortMap*> map{nullptr};  // EBR-protected snapshot
    ~Stripe() { delete map.load(std::memory_order_relaxed); }
  };
  static constexpr std::size_t kStripes = 64;

  [[nodiscard]] Stripe& stripe_for(Port port) {
    return stripes_[std::hash<Port>{}(port) & (kStripes - 1)];
  }

  using TapList = std::vector<std::pair<std::uint64_t, TapFn>>;

  Receiver register_listener(Machine& m, Port get_port,
                             std::shared_ptr<Mailbox> shared_mailbox = nullptr);
  void unregister(std::uint64_t id, Port put_port);
  void detach_tap(std::uint64_t id);
  void mutate_taps(const std::function<void(TapList&)>& edit);

  /// Outcome of one fault-dice roll for one frame.
  struct FaultPlan {
    int copies = 1;     // delivery attempts (0 = dropped)
    bool hold = false;  // stash the frame until the next one on the link
  };
  /// Rolls the dice for a frame on (src -> dst); per-link overrides beat
  /// the global knobs.  `allow_hold` is false on the broadcast path
  /// (reorder applies to unicast links only).
  FaultPlan fault_plan(MachineId src, MachineId dst, bool allow_hold);
  /// Delivers every frame currently held back by reorder injection.
  void flush_held();

  Config config_;  // immutable after construction (fault knobs are below)
  std::shared_ptr<const crypto::OneWayFn> f_;
  Stats stats_;

  std::array<Stripe, kStripes> stripes_;

  mutable std::mutex machines_mutex_;
  std::deque<std::unique_ptr<Machine>> machines_;  // stable addresses

  // Wiretaps: emit() loads an immutable snapshot atomically; attach/detach
  // build a fresh list and swap it in, so frame delivery never blocks on
  // tap churn.  taps_active_ is the fast-path gate: when no tap is
  // attached (the common case) transmit skips building TapRecords -- a
  // full message copy per frame -- entirely.
  mutable std::mutex taps_mutex_;  // serializes writers only
  std::atomic<std::shared_ptr<const TapList>> taps_;
  std::atomic<bool> taps_active_{false};

  // Fault injection: probabilities are atomics (runtime-adjustable); the
  // dice RNG, per-link overrides, and reorder holdback slots share one
  // lock, touched only when a fault mode is armed (link_faults_active_ and
  // held_count_ gate the fast path so fault-free traffic never takes it).
  std::atomic<double> drop_probability_;
  std::atomic<double> duplicate_probability_;
  std::atomic<double> reorder_probability_;
  mutable std::mutex fault_mutex_;
  Rng rng_;

  /// One frame held back by reorder injection, released after the next
  /// frame on its link (or by a fault-knob change / flush).
  struct Held {
    std::shared_ptr<Mailbox> mailbox;
    Delivery delivery;
  };
  [[nodiscard]] static std::uint64_t link_key(MachineId src, MachineId dst) {
    return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
  }
  std::unordered_map<std::uint64_t, LinkFaults> link_faults_;  // fault_mutex_
  std::unordered_map<std::uint64_t, Held> held_;               // fault_mutex_
  std::atomic<bool> link_faults_active_{false};
  std::atomic<std::size_t> held_count_{0};

  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace amoeba::net
