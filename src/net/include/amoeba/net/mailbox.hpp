// A thread-safe message queue: the rendezvous between frame delivery (the
// sender's thread) and a process blocked in GET (the receiver's thread).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <stop_token>

#include "amoeba/net/message.hpp"

namespace amoeba::net {

class Mailbox {
 public:
  /// Enqueues a message and wakes one waiter.  Never blocks.
  void push(Delivery delivery);

  /// Blocks until a message arrives, the mailbox closes, the stop token is
  /// triggered, or the (optional) timeout elapses.  Returns nullopt in the
  /// latter three cases.
  [[nodiscard]] std::optional<Delivery> pop(
      std::stop_token stop,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Non-blocking variant.
  [[nodiscard]] std::optional<Delivery> try_pop();

  /// Blocks like pop, then reaps the WHOLE backlog under one lock: the
  /// batch-reap path for completion pumps draining many replies at once.
  /// Empty result means stop/close/timeout, exactly like pop's nullopt.
  [[nodiscard]] std::deque<Delivery> drain(
      std::stop_token stop,
      std::optional<std::chrono::milliseconds> timeout = std::nullopt);

  /// Closes the mailbox: pending and future pops return nullopt.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable_any cv_;
  std::deque<Delivery> queue_;
  bool closed_ = false;
};

}  // namespace amoeba::net
