// Real-socket transport: the simulated LAN's frame surface over TCP.
//
// A SocketNetwork is a Network whose machines can also reach machines
// hosted by OTHER SocketNetwork instances -- typically other processes --
// through length-prefixed frames on TCP connections.  Everything above the
// frame surface (rpc::Transport, at-most-once retransmission, replication
// shipping) works unchanged, because the surface is unchanged:
//
//   * transmit: a local destination takes the in-process path (including
//     this node's fault knobs); a remote destination is routed onto the
//     TCP link its machine id was learned from.  A frame sent while the
//     link is down is silently dropped -- exactly the best-effort contract
//     the simulated wire already has, which the at-most-once layer's
//     retransmission is built to absorb.
//   * locate: local registrations answer immediately; otherwise a LOCATE
//     request fans out to every connected peer and the first positive
//     reply wins (the paper's broadcast LOCATE, §2.2).
//   * the stamped source machine id travels inside every frame, so
//     at-most-once identity (src machine, client id, seq) survives TCP
//     reconnects -- a retransmitted request arriving on a brand-new
//     connection still hits the same reply-cache entry.
//
// Identity across processes: all nodes must construct their schemes and
// F-boxes from the same deterministic one-way function (the library
// default), and each node takes a disjoint Config::machine_id_base so
// machine ids are unique clusterwide.  Trust note: over real sockets the
// source machine id is asserted by the sending node rather than enforced
// by hardware; the deployment must make links as trustworthy as the
// paper's F-box wire (see docs/PROTOCOL.md §10).
//
// Faults are NOT injected by this transport (the local fault knobs apply
// only to locally delivered frames).  Deployment-shaped loss, delay, and
// partition come from net::FrameProxy sitting between nodes.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "amoeba/net/network.hpp"

namespace amoeba::net {

/// TCP endpoint of another SocketNetwork node (or a FrameProxy in front of
/// one).
struct PeerAddress {
  std::string host;
  std::uint16_t port = 0;
};

class SocketNetwork final : public Network {
 public:
  struct SocketConfig {
    Config net;                     // seed, F-box flag, machine_id_base, ...
    bool listen = true;             // accept inbound connections
    std::uint16_t listen_port = 0;  // 0 = ephemeral (see listen_port())
    std::vector<PeerAddress> peers;  // links this node dials and re-dials
    std::chrono::milliseconds reconnect_initial{25};
    std::chrono::milliseconds reconnect_cap{1000};
    std::chrono::milliseconds locate_timeout{1000};
  };

  struct SocketStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t send_failures = 0;  // write errors (link then torn down)
    std::uint64_t unrouted = 0;       // remote dst with no learned route
    std::uint64_t connects = 0;       // successful outbound dials
    std::uint64_t accepts = 0;
    std::uint64_t disconnects = 0;
  };

  explicit SocketNetwork(SocketConfig config,
                         std::shared_ptr<const crypto::OneWayFn> f =
                             crypto::default_one_way());
  ~SocketNetwork() override;

  /// The TCP port the accept socket actually bound (resolves an ephemeral
  /// listen_port of 0).  Zero when listening is disabled.
  [[nodiscard]] std::uint16_t listen_port() const { return listen_port_; }

  /// Blocks until the dialed link to peers[index] is up (tests and
  /// harnesses synchronize startup with this instead of sleeping).
  bool wait_connected(std::size_t peer_index,
                      std::chrono::milliseconds timeout);

  [[nodiscard]] SocketStats socket_stats() const;

 protected:
  bool transmit_from(Machine& src, Message msg, MachineId dst) override;
  void broadcast_from(Machine& src, Message msg) override;
  std::optional<MachineId> locate_from(Machine& src, Port put_port) override;

 private:
  /// One live TCP connection, inbound or outbound.  Writers serialize on
  /// write_mutex; the dedicated reader thread owns the read side.  Either
  /// side tearing the link marks it down and shuts the socket so the other
  /// side unblocks.
  struct Link {
    int fd = -1;
    int peer = -1;  // index into peers_ for outbound links, -1 inbound
    std::mutex write_mutex;
    std::atomic<bool> up{true};
    ~Link();  // closes fd when the last shared_ptr drops
  };

  /// Dialer state for one configured peer.
  struct Peer {
    PeerAddress addr;
    mutable std::mutex mutex;
    std::condition_variable_any cv;  // connect/disconnect/shutdown signal
    std::shared_ptr<Link> link;      // null until the first dial succeeds
    std::jthread dialer;
  };

  /// Where frames for a remote machine id go: the peer link (re-resolved
  /// per send so reconnects are picked up) or a specific inbound link.
  struct Route {
    int peer = -1;
    std::weak_ptr<Link> inbound;
  };

  void start_listener();
  void accept_loop(const std::stop_token& stop);
  void dial_loop(const std::stop_token& stop, std::size_t peer_index);
  void reader_loop(std::shared_ptr<Link> link);
  void adopt_link(std::shared_ptr<Link> link);
  void tear_down(Link& link);

  bool send_frame(Link& link, const Buffer& frame);
  /// Every currently-live link (the one outbound link per connected peer
  /// plus all inbound links).
  std::vector<std::shared_ptr<Link>> live_links();
  std::shared_ptr<Link> route_link(MachineId dst);
  void learn_route(MachineId machine, const std::shared_ptr<Link>& link);

  bool send_remote(MachineId src, const Message& msg, MachineId dst);
  void handle_frame(const std::shared_ptr<Link>& link, const Buffer& body);
  std::optional<MachineId> remote_locate(Port put_port);

  SocketConfig config_;
  std::uint16_t listen_port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};

  mutable std::mutex routes_mutex_;
  std::unordered_map<MachineId, Route> routes_;

  mutable std::mutex links_mutex_;
  std::vector<std::shared_ptr<Link>> inbound_;
  std::vector<std::jthread> readers_;

  struct PendingLocate {
    std::optional<MachineId> result;
    bool done = false;
  };
  std::mutex locates_mutex_;
  std::condition_variable locates_cv_;
  std::unordered_map<std::uint64_t, PendingLocate> pending_locates_;
  std::atomic<std::uint64_t> next_nonce_{1};

  struct AtomicSocketStats {
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> send_failures{0};
    std::atomic<std::uint64_t> unrouted{0};
    std::atomic<std::uint64_t> connects{0};
    std::atomic<std::uint64_t> accepts{0};
    std::atomic<std::uint64_t> disconnects{0};
  };
  AtomicSocketStats sstats_;

  // Declared last so every thread stops before members above are torn
  // down (jthread joins in reverse declaration order).
  std::vector<std::unique_ptr<Peer>> peers_;
  std::jthread acceptor_;
};

}  // namespace amoeba::net
