// The standard Amoeba message format (§2.1-2.2).
//
// "The standard message format provides a place for one capability in the
// header, typically for the object being operated on ... The header also
// contains room for the operation code and some parameters."  Three port
// fields drive the F-box protocol: destination (a put-port, passed through
// on the wire), reply (submitted as a secret get-port, transformed to its
// put-port by the sender's F-box), and signature (submitted secret,
// transformed likewise -- receivers compare against the published F(S)).
//
// The capability travels as 16 raw bytes at this layer; amoeba/core gives
// it structure.  Layering note: net must not depend on core, which is why
// the header holds bytes, not a core::Capability.
#pragma once

#include <array>
#include <cstdint>

#include "amoeba/common/error.hpp"
#include "amoeba/common/serial.hpp"
#include "amoeba/common/types.hpp"

namespace amoeba::net {

/// Wire image of one capability (Fig. 2: 48 + 24 + 8 + 48 bits = 16 bytes).
using CapabilityBytes = std::array<std::uint8_t, 16>;

/// Header flag bits.  The batch bit marks envelope frames carrying many
/// sub-requests (or sub-replies) in the data field; the network counts
/// them separately so frame-level accounting stays honest when one frame
/// stands in for N transactions.
inline constexpr std::uint16_t kFlagBatch = 0x0001;
/// The frame carries at-most-once bookkeeping: (client, seq) identify the
/// transaction, the issuing transport retransmits it until acknowledged,
/// and the serving side suppresses duplicates through its reply cache.
inline constexpr std::uint16_t kFlagAtMostOnce = 0x0002;
/// Set on every copy after the first the transport puts on the wire for
/// one transaction (diagnostics and accounting only; receivers treat
/// retransmitted and original frames identically).
inline constexpr std::uint16_t kFlagRetransmit = 0x0004;

struct Header {
  Port dest;        // put-port of the addressed service
  Port reply;       // get-port when submitted; put-port once on the wire
  Port signature;   // optional sender signature; 0 = unsigned
  std::uint16_t opcode = 0;     // request: operation; reply: echo of it
  std::uint16_t flags = 0;      // kFlag* bits; passed through untransformed
  ErrorCode status = ErrorCode::ok;  // meaningful in replies
  CapabilityBytes capability{};      // object being operated on (may be 0)
  std::array<std::uint64_t, 4> params{};  // small scalar parameters
  // At-most-once transaction identity (docs/PROTOCOL.md §5).  client is
  // the issuing transport's random 64-bit id (0 = no at-most-once
  // semantics requested, the legacy frame shape); seq increases per
  // transaction on that transport.  Replies echo both so wire traces
  // correlate.  Neither field is secret; protection still rests entirely
  // on ports and capabilities.
  std::uint64_t client = 0;
  std::uint64_t seq = 0;
};

struct Message {
  Header header;
  Buffer data;  // bulk payload; may carry further capabilities, names, ...
};

/// What the receiving NIC hands the process: the frame plus its stamped
/// (unforgeable) source machine.  Servers reply to `src`; the software
/// protection layer selects its matrix key by it.
struct Delivery {
  MachineId src;
  Message message;
};

/// Builds a reply message addressed to the request's (already transformed)
/// reply port, echoing the opcode and the at-most-once transaction
/// identity (client, seq) so wire traces correlate request and reply.
[[nodiscard]] inline Message make_reply(const Message& request,
                                        ErrorCode status) {
  Message reply;
  reply.header.dest = request.header.reply;
  reply.header.opcode = request.header.opcode;
  reply.header.status = status;
  reply.header.client = request.header.client;
  reply.header.seq = request.header.seq;
  return reply;
}

}  // namespace amoeba::net
