// Internal POSIX socket helpers shared by SocketNetwork and FrameProxy.
// Not installed; everything here assumes blocking stream sockets whose
// reads are unblocked by shutdown() from another thread.
#pragma once

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

namespace amoeba::net::detail {

inline bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  while (n > 0) {
    const ssize_t got = ::recv(fd, out, n, 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      return false;
    }
    out += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

inline bool write_exact(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    // MSG_NOSIGNAL: a torn connection must surface as EPIPE, not SIGPIPE.
    const ssize_t put = ::send(fd, data, n, MSG_NOSIGNAL);
    if (put <= 0) {
      if (put < 0 && errno == EINTR) continue;
      return false;
    }
    data += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

inline void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Blocking TCP connect; returns the fd or -1.
inline int connect_to(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) set_nodelay(fd);
  return fd;
}

/// Binds and listens on 127.0.0.1:`port` (0 = ephemeral); stores the
/// actually bound port in *bound.  Returns the fd or -1.
inline int listen_on(std::uint16_t port, std::uint16_t* bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
    *bound = ntohs(actual.sin_port);
  }
  return fd;
}

}  // namespace amoeba::net::detail
