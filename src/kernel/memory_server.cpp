#include "amoeba/kernel/memory_server.hpp"

#include <algorithm>

namespace amoeba::kernel {

using servers::capability_reply;
using servers::error_reply;
using servers::fail;
using servers::header_capability;
using servers::register_owner_ops;
using servers::set_header_capability;

MemoryServer::MemoryServer(net::Machine& machine, Port get_port,
                           std::shared_ptr<const core::ProtectionScheme> scheme,
                           std::uint64_t seed, std::uint64_t memory_limit)
    : rpc::Service(machine, get_port, "memory"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed),
      memory_limit_(memory_limit) {
  register_owner_ops(*this, store_);
  on(mem_op::kCreateSegment, [this](const net::Delivery& request) {
    return do_create_segment(request);
  });
  on(mem_op::kReadSegment,
     [this](const net::Delivery& request) { return do_rw_segment(request); });
  on(mem_op::kWriteSegment,
     [this](const net::Delivery& request) { return do_rw_segment(request); });
  on(mem_op::kSegmentInfo, [this](const net::Delivery& request) {
    return do_segment_info(request);
  });
  on(mem_op::kDeleteSegment, [this](const net::Delivery& request) {
    return do_delete_segment(request);
  });
  on(mem_op::kMakeProcess, [this](const net::Delivery& request) {
    return do_make_process(request);
  });
  on(mem_op::kStartProcess, [this](const net::Delivery& request) {
    return do_process_state(request);
  });
  on(mem_op::kStopProcess, [this](const net::Delivery& request) {
    return do_process_state(request);
  });
  on(mem_op::kProcessInfo, [this](const net::Delivery& request) {
    return do_process_info(request);
  });
  on(mem_op::kDeleteProcess, [this](const net::Delivery& request) {
    return do_delete_process(request);
  });
}

std::uint64_t MemoryServer::memory_in_use() const {
  const std::lock_guard lock(memory_mutex_);
  return memory_in_use_;
}

net::Message MemoryServer::do_create_segment(const net::Delivery& request) {
  const std::uint64_t size = request.message.header.params[0];
  {
    // Reserve the budget first.  Overflow-safe form: `in_use + size` with
    // a client-controlled size could wrap past the limit check.
    const std::lock_guard lock(memory_mutex_);
    if (size > memory_limit_ || memory_in_use_ > memory_limit_ - size) {
      return error_reply(request, ErrorCode::no_space);
    }
    memory_in_use_ += size;
  }
  try {
    Segment segment;
    segment.bytes.resize(size, 0);
    return capability_reply(request,
                            store_.create(Payload{std::move(segment)}));
  } catch (...) {
    // Allocation or slot creation failed after the budget was reserved:
    // roll the reservation back before the service loop reports the
    // failure, or the leaked budget would eventually wedge every create.
    const std::lock_guard lock(memory_mutex_);
    memory_in_use_ -= size;
    throw;
  }
}

net::Message MemoryServer::do_rw_segment(const net::Delivery& request) {
  const bool writing =
      request.message.header.opcode == mem_op::kWriteSegment;
  auto opened = store_.open(header_capability(request.message),
                            writing ? core::rights::kWrite
                                    : core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto* segment = std::get_if<Segment>(opened.value().value);
  if (segment == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::uint64_t offset = request.message.header.params[0];
  if (writing) {
    const auto& data = request.message.data;
    // Overflow-safe bounds check: `offset + data.size()` with a
    // client-controlled offset could wrap and pass.
    if (offset > segment->bytes.size() ||
        data.size() > segment->bytes.size() - offset) {
      return error_reply(request, ErrorCode::invalid_argument);
    }
    std::copy(data.begin(), data.end(),
              segment->bytes.begin() + static_cast<std::ptrdiff_t>(offset));
    return error_reply(request, ErrorCode::ok);
  }
  const std::uint64_t length = request.message.header.params[1];
  if (offset > segment->bytes.size()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::uint64_t take = std::min(length, segment->bytes.size() - offset);
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.data.assign(
      segment->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
      segment->bytes.begin() + static_cast<std::ptrdiff_t>(offset + take));
  return reply;
}

net::Message MemoryServer::do_segment_info(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const auto* segment = std::get_if<Segment>(opened.value().value);
  if (segment == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = segment->bytes.size();
  return reply;
}

net::Message MemoryServer::do_delete_segment(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kDestroy);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const auto* segment = std::get_if<Segment>(opened.value().value);
  if (segment == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const std::uint64_t freed = segment->bytes.size();
  const auto destroyed = store_.destroy(std::move(opened.value()));
  if (destroyed.ok()) {
    const std::lock_guard lock(memory_mutex_);
    memory_in_use_ -= freed;
  }
  return error_reply(request, destroyed.error());
}

net::Message MemoryServer::do_process_state(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kWrite);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  auto* process = std::get_if<Process>(opened.value().value);
  if (process == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  process->state = request.message.header.opcode == mem_op::kStartProcess
                       ? ProcessState::running
                       : ProcessState::stopped;
  return error_reply(request, ErrorCode::ok);
}

net::Message MemoryServer::do_process_info(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kRead);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  const auto* process = std::get_if<Process>(opened.value().value);
  if (process == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  reply.header.params[0] = static_cast<std::uint64_t>(process->state);
  reply.header.params[1] = process->segments.size();
  return reply;
}

net::Message MemoryServer::do_delete_process(const net::Delivery& request) {
  auto opened =
      store_.open(header_capability(request.message), core::rights::kDestroy);
  if (!opened.ok()) {
    return fail(request, opened);
  }
  if (std::get_if<Process>(opened.value().value) == nullptr) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  return error_reply(request,
                     store_.destroy(std::move(opened.value())).error());
}

net::Message MemoryServer::do_make_process(const net::Delivery& request) {
  Reader r(request.message.data);
  const std::uint32_t count = r.u32();
  Process process;
  process.segments.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const core::Capability segment_cap = servers::read_capability(r);
    // Each segment capability must be valid for THIS memory server and
    // grant at least read (the child's image is loaded from it).
    auto segment = store_.open(segment_cap, core::rights::kRead);
    if (!segment.ok()) {
      return fail(request, segment);
    }
    if (std::get_if<Segment>(segment.value().value) == nullptr) {
      return error_reply(request, ErrorCode::invalid_argument);
    }
    process.segments.push_back(segment_cap);
  }
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const core::Capability fresh = store_.create(Payload{std::move(process)});
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  set_header_capability(reply, fresh);
  return reply;
}

// ------------------------------------------------------------ MemoryClient

Result<core::Capability> MemoryClient::create_segment(std::uint64_t size) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kCreateSegment,
                             nullptr, {}, {size, 0, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<Buffer> MemoryClient::read(const core::Capability& segment,
                                  std::uint64_t offset, std::uint64_t length) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kReadSegment,
                             &segment, {}, {offset, length, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().data);
}

Result<void> MemoryClient::write(const core::Capability& segment,
                                 std::uint64_t offset,
                                 std::span<const std::uint8_t> data) {
  return servers::as_void(servers::call(
      *transport_, server_port_, mem_op::kWriteSegment, &segment,
      Buffer(data.begin(), data.end()), {offset, 0, 0, 0}));
}

Result<std::uint64_t> MemoryClient::segment_size(
    const core::Capability& segment) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kSegmentInfo,
                             &segment);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<void> MemoryClient::delete_segment(const core::Capability& segment) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kDeleteSegment, &segment));
}

Result<core::Capability> MemoryClient::make_process(
    std::span<const core::Capability> segments) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const auto& cap : segments) {
    servers::write_capability(w, cap);
  }
  auto reply = servers::call(*transport_, server_port_, mem_op::kMakeProcess,
                             nullptr, w.take());
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<void> MemoryClient::start(const core::Capability& process) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kStartProcess, &process));
}

Result<void> MemoryClient::stop(const core::Capability& process) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kStopProcess, &process));
}

Result<MemoryClient::ProcessInfo> MemoryClient::process_info(
    const core::Capability& process) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kProcessInfo,
                             &process);
  if (!reply.ok()) {
    return reply.error();
  }
  return ProcessInfo{
      static_cast<ProcessState>(reply.value().header.params[0]),
      reply.value().header.params[1]};
}

Result<void> MemoryClient::delete_process(const core::Capability& process) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kDeleteProcess, &process));
}

}  // namespace amoeba::kernel
