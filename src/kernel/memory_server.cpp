#include "amoeba/kernel/memory_server.hpp"

#include <algorithm>

namespace amoeba::kernel {

using servers::error_reply;
using servers::fail;
using servers::handle_owner_ops;
using servers::header_capability;
using servers::set_header_capability;

MemoryServer::MemoryServer(net::Machine& machine, Port get_port,
                           std::shared_ptr<const core::ProtectionScheme> scheme,
                           std::uint64_t seed, std::uint64_t memory_limit)
    : rpc::Service(machine, get_port, "memory"),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed),
      memory_limit_(memory_limit) {}

std::uint64_t MemoryServer::memory_in_use() const {
  const std::lock_guard lock(mutex_);
  return memory_in_use_;
}

net::Message MemoryServer::handle(const net::Delivery& request) {
  const std::lock_guard lock(mutex_);
  if (auto owner = handle_owner_ops(store_, request); owner.has_value()) {
    return std::move(*owner);
  }
  const core::Capability cap = header_capability(request.message);
  switch (request.message.header.opcode) {
    case mem_op::kCreateSegment: {
      const std::uint64_t size = request.message.header.params[0];
      if (memory_in_use_ + size > memory_limit_) {
        return error_reply(request, ErrorCode::no_space);
      }
      memory_in_use_ += size;
      Segment segment;
      segment.bytes.resize(size, 0);
      const core::Capability fresh =
          store_.create(Payload{std::move(segment)});
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      set_header_capability(reply, fresh);
      return reply;
    }
    case mem_op::kReadSegment: {
      auto opened = store_.open(cap, core::rights::kRead);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      const auto* segment = std::get_if<Segment>(opened.value().value);
      if (segment == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      const std::uint64_t offset = request.message.header.params[0];
      const std::uint64_t length = request.message.header.params[1];
      if (offset > segment->bytes.size()) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      const std::uint64_t take =
          std::min(length, segment->bytes.size() - offset);
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      reply.data.assign(
          segment->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
          segment->bytes.begin() + static_cast<std::ptrdiff_t>(offset + take));
      return reply;
    }
    case mem_op::kWriteSegment: {
      auto opened = store_.open(cap, core::rights::kWrite);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      auto* segment = std::get_if<Segment>(opened.value().value);
      if (segment == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      const std::uint64_t offset = request.message.header.params[0];
      const auto& data = request.message.data;
      if (offset + data.size() > segment->bytes.size()) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      std::copy(data.begin(), data.end(),
                segment->bytes.begin() + static_cast<std::ptrdiff_t>(offset));
      return error_reply(request, ErrorCode::ok);
    }
    case mem_op::kSegmentInfo: {
      auto opened = store_.open(cap, core::rights::kRead);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      const auto* segment = std::get_if<Segment>(opened.value().value);
      if (segment == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      reply.header.params[0] = segment->bytes.size();
      return reply;
    }
    case mem_op::kDeleteSegment: {
      auto opened = store_.open(cap, core::rights::kDestroy);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      const auto* segment = std::get_if<Segment>(opened.value().value);
      if (segment == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      memory_in_use_ -= segment->bytes.size();
      return error_reply(request, store_.destroy(cap).error());
    }
    case mem_op::kMakeProcess:
      return do_make_process(request);
    case mem_op::kStartProcess:
    case mem_op::kStopProcess: {
      auto opened = store_.open(cap, core::rights::kWrite);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      auto* process = std::get_if<Process>(opened.value().value);
      if (process == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      process->state = request.message.header.opcode == mem_op::kStartProcess
                           ? ProcessState::running
                           : ProcessState::stopped;
      return error_reply(request, ErrorCode::ok);
    }
    case mem_op::kProcessInfo: {
      auto opened = store_.open(cap, core::rights::kRead);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      const auto* process = std::get_if<Process>(opened.value().value);
      if (process == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      reply.header.params[0] = static_cast<std::uint64_t>(process->state);
      reply.header.params[1] = process->segments.size();
      return reply;
    }
    case mem_op::kDeleteProcess: {
      auto opened = store_.open(cap, core::rights::kDestroy);
      if (!opened.ok()) {
        return fail(request, opened);
      }
      if (std::get_if<Process>(opened.value().value) == nullptr) {
        return error_reply(request, ErrorCode::invalid_argument);
      }
      return error_reply(request, store_.destroy(cap).error());
    }
    default:
      return error_reply(request, ErrorCode::no_such_operation);
  }
}

net::Message MemoryServer::do_make_process(const net::Delivery& request) {
  Reader r(request.message.data);
  const std::uint32_t count = r.u32();
  Process process;
  process.segments.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const core::Capability segment_cap = servers::read_capability(r);
    // Each segment capability must be valid for THIS memory server and
    // grant at least read (the child's image is loaded from it).
    auto segment = store_.open(segment_cap, core::rights::kRead);
    if (!segment.ok()) {
      return fail(request, segment);
    }
    if (std::get_if<Segment>(segment.value().value) == nullptr) {
      return error_reply(request, ErrorCode::invalid_argument);
    }
    process.segments.push_back(segment_cap);
  }
  if (!r.exhausted()) {
    return error_reply(request, ErrorCode::invalid_argument);
  }
  const core::Capability fresh = store_.create(Payload{std::move(process)});
  net::Message reply = net::make_reply(request.message, ErrorCode::ok);
  set_header_capability(reply, fresh);
  return reply;
}

// ------------------------------------------------------------ MemoryClient

Result<core::Capability> MemoryClient::create_segment(std::uint64_t size) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kCreateSegment,
                             nullptr, {}, {size, 0, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<Buffer> MemoryClient::read(const core::Capability& segment,
                                  std::uint64_t offset, std::uint64_t length) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kReadSegment,
                             &segment, {}, {offset, length, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().data);
}

Result<void> MemoryClient::write(const core::Capability& segment,
                                 std::uint64_t offset,
                                 std::span<const std::uint8_t> data) {
  return servers::as_void(servers::call(
      *transport_, server_port_, mem_op::kWriteSegment, &segment,
      Buffer(data.begin(), data.end()), {offset, 0, 0, 0}));
}

Result<std::uint64_t> MemoryClient::segment_size(
    const core::Capability& segment) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kSegmentInfo,
                             &segment);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<void> MemoryClient::delete_segment(const core::Capability& segment) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kDeleteSegment, &segment));
}

Result<core::Capability> MemoryClient::make_process(
    std::span<const core::Capability> segments) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const auto& cap : segments) {
    servers::write_capability(w, cap);
  }
  auto reply = servers::call(*transport_, server_port_, mem_op::kMakeProcess,
                             nullptr, w.take());
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<void> MemoryClient::start(const core::Capability& process) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kStartProcess, &process));
}

Result<void> MemoryClient::stop(const core::Capability& process) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kStopProcess, &process));
}

Result<MemoryClient::ProcessInfo> MemoryClient::process_info(
    const core::Capability& process) {
  auto reply = servers::call(*transport_, server_port_, mem_op::kProcessInfo,
                             &process);
  if (!reply.ok()) {
    return reply.error();
  }
  return ProcessInfo{
      static_cast<ProcessState>(reply.value().header.params[0]),
      reply.value().header.params[1]};
}

Result<void> MemoryClient::delete_process(const core::Capability& process) {
  return servers::as_void(servers::call(*transport_, server_port_,
                                        mem_op::kDeleteProcess, &process));
}

}  // namespace amoeba::kernel
