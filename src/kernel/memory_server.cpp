#include "amoeba/kernel/memory_server.hpp"

#include <algorithm>

namespace amoeba::kernel {

core::Durability<MemoryServer::Payload> MemoryServer::durability(
    std::shared_ptr<storage::Backend> backend,
    std::shared_ptr<storage::GroupCommitter> committer) {
  if (backend == nullptr) {
    return {};
  }
  core::Durability<Payload> d;
  d.backend = std::move(backend);
  d.committer = std::move(committer);
  d.encode = [](Writer& w, const Payload& payload) {
    if (const auto* segment = std::get_if<Segment>(&payload)) {
      w.u8(1);
      w.bytes(segment->bytes);
    } else {
      const auto& process = std::get<Process>(payload);
      w.u8(2);
      w.u8(static_cast<std::uint8_t>(process.state));
      w.u32(static_cast<std::uint32_t>(process.segments.size()));
      for (const auto& cap : process.segments) {
        w.raw(core::pack(cap));
      }
    }
  };
  d.decode = [](Reader& r, Payload& payload) {
    const std::uint8_t tag = r.u8();
    if (tag == 1) {
      Segment segment;
      segment.bytes = r.bytes();
      payload = std::move(segment);
      return r.ok();
    }
    if (tag == 2) {
      Process process;
      process.state = static_cast<ProcessState>(r.u8());
      const std::uint32_t count = r.u32();
      process.segments.reserve(count);
      for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        core::CapabilityBytes cap{};
        r.raw(cap);
        process.segments.push_back(core::unpack(cap));
      }
      payload = std::move(process);
      return r.ok();
    }
    return false;
  };
  return d;
}

MemoryServer::MemoryServer(net::Machine& machine, Port get_port,
                           std::shared_ptr<const core::ProtectionScheme> scheme,
                           std::uint64_t seed, std::uint64_t memory_limit,
                           std::shared_ptr<storage::Backend> backend)
    : rpc::Service(machine, get_port, "memory"),
      committer_(storage::GroupCommitter::create(backend)),
      store_(std::move(scheme), machine.fbox().listen_port(get_port), seed,
             Store::kDefaultShards, durability(backend, committer_)),
      memory_limit_(memory_limit) {
  if (store_.durability_stats().recovered) {
    // Restart path: the machine budget is derived state -- recompute it
    // from the recovered segments.
    std::uint64_t in_use = 0;
    store_.for_each([&](ObjectNumber, const Payload& payload) {
      if (const auto* segment = std::get_if<Segment>(&payload)) {
        in_use += segment->bytes.size();
      }
    });
    const std::lock_guard lock(memory_mutex_);
    memory_in_use_ = in_use;
  }
  attach_durability(std::move(backend), committer_);
  // std.destroy must return a segment's bytes to the machine budget.
  rpc::register_std_ops(
      *this, store_,
      {.destroy = [this](Store::Opened&& opened) {
         return do_delete_any(std::move(opened));
       }});
  on(mem_ops::kCreateSegment,
     [this](const auto& call) { return do_create_segment(call.body); });
  // kReadSegment/kSegmentInfo repeat the same segment capability per
  // page-in; open()'s seqlock'd cache proves it without the shard mutex.
  on(mem_ops::kReadSegment, store_, [this](const auto& call, auto& opened) {
    return do_read_segment(call.body, opened);
  });
  on(mem_ops::kWriteSegment, store_, [this](const auto& call, auto& opened) {
    return do_write_segment(call.body, opened);
  });
  on(mem_ops::kSegmentInfo, store_,
     [](const auto&, auto& opened) -> Result<mem_ops::SegmentInfoReply> {
       const auto* segment = std::get_if<Segment>(opened.value);
       if (segment == nullptr) {
         return ErrorCode::invalid_argument;
       }
       return mem_ops::SegmentInfoReply{segment->bytes.size()};
     });
  on(mem_ops::kDeleteSegment, store_, [this](const auto&, auto& opened) {
    return do_delete_segment(std::move(opened));
  });
  on(mem_ops::kMakeProcess,
     [this](const auto& call) { return do_make_process(call.body); });
  on(mem_ops::kStartProcess, store_, [this](const auto&, auto& opened) {
    return do_process_state(opened, ProcessState::running);
  });
  on(mem_ops::kStopProcess, store_, [this](const auto&, auto& opened) {
    return do_process_state(opened, ProcessState::stopped);
  });
  on(mem_ops::kProcessInfo, store_,
     [](const auto&, auto& opened) -> Result<mem_ops::ProcessInfoReply> {
       const auto* process = std::get_if<Process>(opened.value);
       if (process == nullptr) {
         return ErrorCode::invalid_argument;
       }
       return mem_ops::ProcessInfoReply{process->state,
                                        process->segments.size()};
     });
  on(mem_ops::kDeleteProcess, store_, [this](const auto&, auto& opened) {
    if (std::get_if<Process>(opened.value) == nullptr) {
      return Result<void>{ErrorCode::invalid_argument};
    }
    return store_.destroy(std::move(opened));
  });
}

std::uint64_t MemoryServer::memory_in_use() const {
  const std::lock_guard lock(memory_mutex_);
  return memory_in_use_;
}

Result<rpc::CapabilityReply> MemoryServer::do_create_segment(
    const mem_ops::CreateSegmentRequest& req) {
  const std::uint64_t size = req.size;
  {
    // Reserve the budget first.  Overflow-safe form: `in_use + size` with
    // a client-controlled size could wrap past the limit check.
    const std::lock_guard lock(memory_mutex_);
    if (size > memory_limit_ || memory_in_use_ > memory_limit_ - size) {
      return ErrorCode::no_space;
    }
    memory_in_use_ += size;
  }
  try {
    Segment segment;
    segment.bytes.resize(size, 0);
    return rpc::CapabilityReply{store_.create(Payload{std::move(segment)})};
  } catch (...) {
    // Allocation or slot creation failed after the budget was reserved:
    // roll the reservation back before the service loop reports the
    // failure, or the leaked budget would eventually wedge every create.
    const std::lock_guard lock(memory_mutex_);
    memory_in_use_ -= size;
    throw;
  }
}

Result<rpc::BytesReply> MemoryServer::do_read_segment(
    const mem_ops::ReadSegmentRequest& req, Store::Opened& opened) {
  const auto* segment = std::get_if<Segment>(opened.value);
  if (segment == nullptr) {
    return ErrorCode::invalid_argument;
  }
  if (req.offset > segment->bytes.size()) {
    return ErrorCode::invalid_argument;
  }
  const std::uint64_t take =
      std::min(req.length, segment->bytes.size() - req.offset);
  rpc::BytesReply reply;
  reply.bytes.assign(
      segment->bytes.begin() + static_cast<std::ptrdiff_t>(req.offset),
      segment->bytes.begin() + static_cast<std::ptrdiff_t>(req.offset + take));
  return reply;
}

Result<void> MemoryServer::do_write_segment(
    const mem_ops::WriteSegmentRequest& req, Store::Opened& opened) {
  auto* segment = std::get_if<Segment>(opened.value);
  if (segment == nullptr) {
    return ErrorCode::invalid_argument;
  }
  // Overflow-safe bounds check: `offset + bytes.size()` with a
  // client-controlled offset could wrap and pass.
  if (req.offset > segment->bytes.size() ||
      req.bytes.size() > segment->bytes.size() - req.offset) {
    return ErrorCode::invalid_argument;
  }
  std::copy(req.bytes.begin(), req.bytes.end(),
            segment->bytes.begin() + static_cast<std::ptrdiff_t>(req.offset));
  opened.mark_dirty();
  return {};
}

Result<void> MemoryServer::do_delete_segment(Store::Opened&& opened) {
  const auto* segment = std::get_if<Segment>(opened.value);
  if (segment == nullptr) {
    return ErrorCode::invalid_argument;
  }
  const std::uint64_t freed = segment->bytes.size();
  const auto destroyed = store_.destroy(std::move(opened));
  if (destroyed.ok()) {
    const std::lock_guard lock(memory_mutex_);
    memory_in_use_ -= freed;
  }
  return destroyed;
}

Result<void> MemoryServer::do_delete_any(Store::Opened&& opened) {
  if (std::holds_alternative<Segment>(*opened.value)) {
    return do_delete_segment(std::move(opened));
  }
  return store_.destroy(std::move(opened));
}

Result<rpc::CapabilityReply> MemoryServer::do_make_process(
    const mem_ops::MakeProcessRequest& req) {
  Process process;
  process.segments.reserve(req.segments.size());
  for (const core::Capability& segment_cap : req.segments) {
    // Each segment capability must be valid for THIS memory server and
    // grant the rights the op table declares (read: the child's image is
    // loaded from it).
    auto segment =
        store_.open(segment_cap, mem_ops::kMakeProcess.data_rights);
    if (!segment.ok()) {
      return segment.error();
    }
    if (std::get_if<Segment>(segment.value().value) == nullptr) {
      return ErrorCode::invalid_argument;
    }
    process.segments.push_back(segment_cap);
  }
  return rpc::CapabilityReply{store_.create(Payload{std::move(process)})};
}

Result<void> MemoryServer::do_process_state(Store::Opened& opened,
                                            ProcessState state) {
  auto* process = std::get_if<Process>(opened.value);
  if (process == nullptr) {
    return ErrorCode::invalid_argument;
  }
  process->state = state;
  opened.mark_dirty();
  return {};
}

// ------------------------------------------------------------ MemoryClient

Result<core::Capability> MemoryClient::create_segment(std::uint64_t size) {
  auto reply =
      rpc::call(*transport_, server_port_, mem_ops::kCreateSegment, {size});
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<Buffer> MemoryClient::read(const core::Capability& segment,
                                  std::uint64_t offset, std::uint64_t length) {
  auto reply = rpc::call(*transport_, server_port_, mem_ops::kReadSegment,
                         segment, {offset, length});
  if (!reply.ok()) {
    return reply.error();
  }
  return std::move(reply.value().bytes);
}

Result<void> MemoryClient::write(const core::Capability& segment,
                                 std::uint64_t offset,
                                 std::span<const std::uint8_t> data) {
  return rpc::call(*transport_, server_port_, mem_ops::kWriteSegment, segment,
                   {offset, Buffer(data.begin(), data.end())});
}

Result<std::uint64_t> MemoryClient::segment_size(
    const core::Capability& segment) {
  auto reply =
      rpc::call(*transport_, server_port_, mem_ops::kSegmentInfo, segment);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().size;
}

Result<void> MemoryClient::delete_segment(const core::Capability& segment) {
  return rpc::call(*transport_, server_port_, mem_ops::kDeleteSegment,
                   segment);
}

Result<core::Capability> MemoryClient::make_process(
    std::span<const core::Capability> segments) {
  mem_ops::MakeProcessRequest req;
  req.segments.assign(segments.begin(), segments.end());
  auto reply = rpc::call(*transport_, server_port_, mem_ops::kMakeProcess,
                         std::move(req));
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().capability;
}

Result<void> MemoryClient::start(const core::Capability& process) {
  return rpc::call(*transport_, server_port_, mem_ops::kStartProcess,
                   process);
}

Result<void> MemoryClient::stop(const core::Capability& process) {
  return rpc::call(*transport_, server_port_, mem_ops::kStopProcess, process);
}

Result<MemoryClient::ProcessInfo> MemoryClient::process_info(
    const core::Capability& process) {
  auto reply =
      rpc::call(*transport_, server_port_, mem_ops::kProcessInfo, process);
  if (!reply.ok()) {
    return reply.error();
  }
  return ProcessInfo{reply.value().state, reply.value().segment_count};
}

Result<void> MemoryClient::delete_process(const core::Capability& process) {
  return rpc::call(*transport_, server_port_, mem_ops::kDeleteProcess,
                   process);
}

}  // namespace amoeba::kernel
