// The memory server (§3.1).
//
// "The memory server is a process that manages physical memory and
// processes at the lowest level.  It is actually part of the kernel
// present on each machine, but it communicates with other processes via
// the normal message protocol so that its clients do not perceive it as
// being special in any way."
//
// Segments are byte arrays created/loaded/read via capabilities; MAKE
// PROCESS turns a list of segment capabilities (text, data, stack) into a
// process object that can be started and stopped.  Because requests are
// plain RPC, a parent can direct CREATE SEGMENT at a *remote* machine's
// memory server and build the child there -- "providing a more convenient
// and efficient interface than the traditional FORK + EXEC."  Process
// execution itself is simulated (processes are resource objects with a
// lifecycle); the capability interface is what the paper describes, and
// what this reproduction exercises.  An "electronic disk" is nothing but a
// segment read and written by local or remote processes.
#pragma once

#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/common.hpp"

namespace amoeba::kernel {

namespace mem_op {
inline constexpr std::uint16_t kCreateSegment = 0x0601;  // params[0] = size
inline constexpr std::uint16_t kReadSegment = 0x0602;    // params: offset, length
inline constexpr std::uint16_t kWriteSegment = 0x0603;   // params[0] = offset
inline constexpr std::uint16_t kSegmentInfo = 0x0604;    // -> params[0] = size
inline constexpr std::uint16_t kDeleteSegment = 0x0605;
inline constexpr std::uint16_t kMakeProcess = 0x0606;    // data: N segment caps
inline constexpr std::uint16_t kStartProcess = 0x0607;
inline constexpr std::uint16_t kStopProcess = 0x0608;
inline constexpr std::uint16_t kProcessInfo = 0x0609;    // -> state, #segments
inline constexpr std::uint16_t kDeleteProcess = 0x060A;
}  // namespace mem_op

enum class ProcessState : std::uint8_t {
  constructed = 0,
  running = 1,
  stopped = 2,
};

class MemoryServer final : public rpc::Service {
 public:
  /// `memory_limit` bounds the summed segment sizes (no_space beyond it).
  MemoryServer(net::Machine& machine, Port get_port,
               std::shared_ptr<const core::ProtectionScheme> scheme,
               std::uint64_t seed, std::uint64_t memory_limit = 64 << 20);
  ~MemoryServer() override { stop(); }  // quiesce workers before members die

  [[nodiscard]] std::uint64_t memory_in_use() const;

 private:
  struct Segment {
    Buffer bytes;
  };
  struct Process {
    std::vector<core::Capability> segments;
    ProcessState state = ProcessState::constructed;
  };
  using Payload = std::variant<Segment, Process>;

  net::Message do_create_segment(const net::Delivery& request);
  net::Message do_rw_segment(const net::Delivery& request);
  net::Message do_segment_info(const net::Delivery& request);
  net::Message do_delete_segment(const net::Delivery& request);
  net::Message do_make_process(const net::Delivery& request);
  net::Message do_process_state(const net::Delivery& request);
  net::Message do_process_info(const net::Delivery& request);
  net::Message do_delete_process(const net::Delivery& request);

  // Segments/processes are exclusive under their shard locks while
  // opened; only the machine-wide memory budget needs its own lock.
  core::ObjectStore<Payload> store_;
  std::uint64_t memory_limit_;
  mutable std::mutex memory_mutex_;
  std::uint64_t memory_in_use_ = 0;  // guarded by memory_mutex_
};

/// Client stub for a (possibly remote) memory server.
class MemoryClient {
 public:
  MemoryClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  [[nodiscard]] Result<core::Capability> create_segment(std::uint64_t size);
  [[nodiscard]] Result<Buffer> read(const core::Capability& segment,
                                    std::uint64_t offset,
                                    std::uint64_t length);
  [[nodiscard]] Result<void> write(const core::Capability& segment,
                                   std::uint64_t offset,
                                   std::span<const std::uint8_t> data);
  [[nodiscard]] Result<std::uint64_t> segment_size(
      const core::Capability& segment);
  [[nodiscard]] Result<void> delete_segment(const core::Capability& segment);

  /// MAKE PROCESS: segment capabilities (text, data, stack, ...) become a
  /// process capability "with which the child can be started, stopped, and
  /// generally manipulated."
  [[nodiscard]] Result<core::Capability> make_process(
      std::span<const core::Capability> segments);
  [[nodiscard]] Result<void> start(const core::Capability& process);
  [[nodiscard]] Result<void> stop(const core::Capability& process);
  struct ProcessInfo {
    ProcessState state;
    std::uint64_t segment_count;
  };
  [[nodiscard]] Result<ProcessInfo> process_info(
      const core::Capability& process);
  [[nodiscard]] Result<void> delete_process(const core::Capability& process);

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::kernel
