// The memory server (§3.1).
//
// "The memory server is a process that manages physical memory and
// processes at the lowest level.  It is actually part of the kernel
// present on each machine, but it communicates with other processes via
// the normal message protocol so that its clients do not perceive it as
// being special in any way."
//
// Segments are byte arrays created/loaded/read via capabilities; MAKE
// PROCESS turns a list of segment capabilities (text, data, stack) into a
// process object that can be started and stopped.  Because requests are
// plain RPC, a parent can direct CREATE SEGMENT at a *remote* machine's
// memory server and build the child there -- "providing a more convenient
// and efficient interface than the traditional FORK + EXEC."  Process
// execution itself is simulated (processes are resource objects with a
// lifecycle); the capability interface is what the paper describes, and
// what this reproduction exercises.  An "electronic disk" is nothing but a
// segment read and written by local or remote processes.
#pragma once

#include <memory>
#include <mutex>
#include <variant>
#include <vector>

#include "amoeba/core/object_store.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/common.hpp"

namespace amoeba::kernel {

enum class ProcessState : std::uint8_t {
  constructed = 0,
  running = 1,
  stopped = 2,
};

/// The memory server's operation table.
namespace mem_ops {

struct CreateSegmentRequest {
  std::uint64_t size = 0;
  using Wire = rpc::Layout<CreateSegmentRequest,
                           rpc::Param<0, &CreateSegmentRequest::size>>;
};

struct ReadSegmentRequest {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  using Wire = rpc::Layout<ReadSegmentRequest,
                           rpc::Param<0, &ReadSegmentRequest::offset>,
                           rpc::Param<1, &ReadSegmentRequest::length>>;
};

struct WriteSegmentRequest {
  std::uint64_t offset = 0;
  Buffer bytes;
  using Wire = rpc::Layout<WriteSegmentRequest,
                           rpc::Param<0, &WriteSegmentRequest::offset>,
                           rpc::RawData<&WriteSegmentRequest::bytes>>;
};

struct SegmentInfoReply {
  std::uint64_t size = 0;
  using Wire =
      rpc::Layout<SegmentInfoReply, rpc::Param<0, &SegmentInfoReply::size>>;
};

struct MakeProcessRequest {
  std::vector<core::Capability> segments;  // text, data, stack, ...
  using Wire = rpc::Layout<MakeProcessRequest,
                           rpc::Data<&MakeProcessRequest::segments>>;
};

struct ProcessInfoReply {
  ProcessState state = ProcessState::constructed;
  std::uint64_t segment_count = 0;
  using Wire = rpc::Layout<ProcessInfoReply,
                           rpc::Param<0, &ProcessInfoReply::state>,
                           rpc::Param<1, &ProcessInfoReply::segment_count>>;
};

inline constexpr rpc::Op<CreateSegmentRequest, rpc::CapabilityReply>
    kCreateSegment{0x0601, "mem.create_segment", rpc::kFactoryOp};
inline constexpr rpc::Op<ReadSegmentRequest, rpc::BytesReply> kReadSegment{
    0x0602, "mem.read_segment", core::rights::kRead};
inline constexpr rpc::Op<WriteSegmentRequest, rpc::Empty> kWriteSegment{
    0x0603, "mem.write_segment", core::rights::kWrite};
inline constexpr rpc::Op<rpc::Empty, SegmentInfoReply> kSegmentInfo{
    0x0604, "mem.segment_info", core::rights::kRead};
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kDeleteSegment{
    0x0605, "mem.delete_segment", core::rights::kDestroy};
// MAKE PROCESS consumes segment capabilities from the data field; each
// must grant read (the child's image is loaded from it).
inline constexpr rpc::Op<MakeProcessRequest, rpc::CapabilityReply>
    kMakeProcess{0x0606, "mem.make_process", rpc::kFactoryOp,
                 core::rights::kRead};
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kStartProcess{
    0x0607, "mem.start_process", core::rights::kWrite};
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kStopProcess{
    0x0608, "mem.stop_process", core::rights::kWrite};
inline constexpr rpc::Op<rpc::Empty, ProcessInfoReply> kProcessInfo{
    0x0609, "mem.process_info", core::rights::kRead};
inline constexpr rpc::Op<rpc::Empty, rpc::Empty> kDeleteProcess{
    0x060A, "mem.delete_process", core::rights::kDestroy};

}  // namespace mem_ops

class MemoryServer final : public rpc::Service {
 public:
  /// `memory_limit` bounds the summed segment sizes (no_space beyond it).
  /// `backend`, when set, journals segments (content included) and
  /// processes; the restart path replays the volume and recomputes the
  /// machine's memory budget from the recovered segments.
  MemoryServer(net::Machine& machine, Port get_port,
               std::shared_ptr<const core::ProtectionScheme> scheme,
               std::uint64_t seed, std::uint64_t memory_limit = 64 << 20,
               std::shared_ptr<storage::Backend> backend = nullptr);
  ~MemoryServer() override { stop(); }  // quiesce workers before members die

  [[nodiscard]] std::uint64_t memory_in_use() const;

 private:
  struct Segment {
    Buffer bytes;
  };
  struct Process {
    std::vector<core::Capability> segments;
    ProcessState state = ProcessState::constructed;
  };
  using Payload = std::variant<Segment, Process>;
  using Store = core::ObjectStore<Payload>;

  [[nodiscard]] static core::Durability<Payload> durability(
      std::shared_ptr<storage::Backend> backend,
      std::shared_ptr<storage::GroupCommitter> committer);

  [[nodiscard]] Result<rpc::CapabilityReply> do_create_segment(
      const mem_ops::CreateSegmentRequest& req);
  [[nodiscard]] Result<rpc::BytesReply> do_read_segment(
      const mem_ops::ReadSegmentRequest& req, Store::Opened& opened);
  [[nodiscard]] Result<void> do_write_segment(
      const mem_ops::WriteSegmentRequest& req, Store::Opened& opened);
  /// Returns the budget on destruction; shared by mem.delete_segment and
  /// std.destroy (which also accepts processes).
  [[nodiscard]] Result<void> do_delete_segment(Store::Opened&& opened);
  [[nodiscard]] Result<void> do_delete_any(Store::Opened&& opened);
  [[nodiscard]] Result<rpc::CapabilityReply> do_make_process(
      const mem_ops::MakeProcessRequest& req);
  [[nodiscard]] Result<void> do_process_state(Store::Opened& opened,
                                              ProcessState state);

  // Segments/processes are exclusive under their shard locks while
  // opened; only the machine-wide memory budget needs its own lock.
  // Declared before store_: the store enqueues on it for its whole
  // lifetime (destruction order tears the store down first).
  std::shared_ptr<storage::GroupCommitter> committer_;
  Store store_;
  std::uint64_t memory_limit_;
  mutable std::mutex memory_mutex_;
  std::uint64_t memory_in_use_ = 0;  // guarded by memory_mutex_
};

/// Client stub for a (possibly remote) memory server.
class MemoryClient {
 public:
  MemoryClient(rpc::Transport& transport, Port server_port)
      : transport_(&transport), server_port_(server_port) {}

  [[nodiscard]] Result<core::Capability> create_segment(std::uint64_t size);
  [[nodiscard]] Result<Buffer> read(const core::Capability& segment,
                                    std::uint64_t offset,
                                    std::uint64_t length);
  [[nodiscard]] Result<void> write(const core::Capability& segment,
                                   std::uint64_t offset,
                                   std::span<const std::uint8_t> data);
  [[nodiscard]] Result<std::uint64_t> segment_size(
      const core::Capability& segment);
  [[nodiscard]] Result<void> delete_segment(const core::Capability& segment);

  /// MAKE PROCESS: segment capabilities (text, data, stack, ...) become a
  /// process capability "with which the child can be started, stopped, and
  /// generally manipulated."
  [[nodiscard]] Result<core::Capability> make_process(
      std::span<const core::Capability> segments);
  [[nodiscard]] Result<void> start(const core::Capability& process);
  [[nodiscard]] Result<void> stop(const core::Capability& process);
  struct ProcessInfo {
    ProcessState state;
    std::uint64_t segment_count;
  };
  [[nodiscard]] Result<ProcessInfo> process_info(
      const core::Capability& process);
  [[nodiscard]] Result<void> delete_process(const core::Capability& process);

 private:
  rpc::Transport* transport_;
  Port server_port_;
};

}  // namespace amoeba::kernel
