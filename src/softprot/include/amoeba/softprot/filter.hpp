// The sealing message filter: §2.4's per-machine-pair capability
// encryption with the hashed capability caches.
//
// "To avoid having to run the encryption/decryption algorithm frequently,
// all machines can maintain a hashed cache of capabilities that they have
// been using frequently.  Clients will hash their caches on the
// unencrypted capabilities in the form of triples: (unencrypted
// capability, destination, encrypted capability), whereas servers will
// hash theirs in the form of triples: (encrypted capability, source,
// unencrypted capability)."
//
// One filter instance serves both roles: outgoing() is the client-side
// triple, incoming() the server-side one.  Cache capacity is bounded;
// eviction clears the whole table (caches are soft state).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "amoeba/common/rng.hpp"
#include "amoeba/rpc/filter.hpp"
#include "amoeba/softprot/keystore.hpp"

namespace amoeba::softprot {

class SealingFilter final : public rpc::MessageFilter {
 public:
  struct Options {
    bool encrypt_data = false;     // also encrypt the message body
    bool cache_enabled = true;     // the §2.4 hashed caches
    std::size_t cache_capacity = 4096;
  };

  struct Stats {
    std::uint64_t seal_cache_hits = 0;
    std::uint64_t seal_cache_misses = 0;
    std::uint64_t unseal_cache_hits = 0;
    std::uint64_t unseal_cache_misses = 0;
    std::uint64_t missing_key_failures = 0;
  };

  SealingFilter(std::shared_ptr<KeyStore> keys, std::uint64_t seed);
  SealingFilter(std::shared_ptr<KeyStore> keys, std::uint64_t seed,
                Options options);

  /// Seals the header capability (and optionally the data) for `dst` with
  /// M[me][dst].  Batch envelopes (net::kFlagBatch) get every per-entry
  /// capability image in the payload sealed too -- batching must not leak
  /// in cleartext what a lone request would protect.  A missing tx key
  /// leaves the message unsealed -- the receiver will fail to make sense
  /// of it, which is the §2.4 failure mode for unkeyed peers.
  void outgoing(net::Message& msg, MachineId dst) override;

  /// Unseals with M[src][me] (batch envelope entries included).  Returns
  /// false when no rx key exists.
  [[nodiscard]] bool incoming(net::Message& msg, MachineId src) override;

  [[nodiscard]] Stats stats() const;

 private:
  // The conventional key participates in the cache key: when a peer is
  // re-keyed (reboot + fresh handshake), entries sealed under the old key
  // become unreachable instead of serving stale ciphertext.
  struct CacheKey {
    net::CapabilityBytes capability;
    MachineId peer;
    std::uint64_t key;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };
  using Cache = std::unordered_map<CacheKey, net::CapabilityBytes,
                                   CacheKeyHash>;

  static void transform_batch_entries(Buffer& data, std::uint64_t key,
                                      bool sealing);

  std::shared_ptr<KeyStore> keys_;
  Options options_;
  mutable std::mutex mutex_;
  Rng rng_;
  Cache seal_cache_;    // (plain cap, dst) -> sealed cap
  Cache unseal_cache_;  // (sealed cap, src) -> plain cap
  Stats stats_;
};

}  // namespace amoeba::softprot
