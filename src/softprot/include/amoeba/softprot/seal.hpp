// Sealing primitives for F-box-less protection (§2.4).
//
// Capabilities in transit are encrypted under the conventional key
// selected by the (source, destination) machine pair.  A capability is 16
// bytes = two 64-bit halves; seal128 runs a two-pass chained construction
// over the width-64 Feistel cipher (forward CBC then a keyed backward
// pass) so that every output bit depends on every input bit and on the
// whole key -- a single-pass two-block CBC would leave the first block
// independent of the second.
//
// Message data is optionally encrypted with a per-message keystream
// ("the data need not be encrypted, although that is also possible").
#pragma once

#include <cstdint>
#include <span>

#include "amoeba/net/message.hpp"

namespace amoeba::softprot {

/// Encrypts 16 bytes in place under `key`.
void seal128(std::uint64_t key, net::CapabilityBytes& block);

/// Inverse of seal128.
void unseal128(std::uint64_t key, net::CapabilityBytes& block);

/// XOR-keystream over `data` derived from (key, nonce); symmetric, so the
/// same call decrypts.  The nonce must be fresh per message (the sealing
/// filter draws it and carries it in a header parameter).
void xcrypt_data(std::uint64_t key, std::uint64_t nonce,
                 std::span<std::uint8_t> data);

}  // namespace amoeba::softprot
