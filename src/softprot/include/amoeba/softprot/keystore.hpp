// The conventional-key matrix of §2.4.
//
// "Imagine a (possibly symmetric) conceptual matrix, M, of conventional
// encryption keys, with the rows being labeled by source machine and the
// columns by destination machine. ... Each machine is assumed to know the
// contents of its row and column of the matrix, and nothing else."
//
// KeyStore is one machine's row-and-column knowledge: tx(dst) = M[me][dst]
// (keys it encrypts with when sending to dst), rx(src) = M[src][me] (keys
// it decrypts with for traffic from src).  KeyMatrix is the conceptual
// whole matrix -- used by the trusted-provisioning path in tests and
// benches; production-style setup goes through the §2.4 public-key
// handshake (amoeba/softprot/handshake.hpp), which fills stores pairwise.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "amoeba/common/rng.hpp"
#include "amoeba/common/types.hpp"

namespace amoeba::softprot {

class KeyStore {
 public:
  void set_tx(MachineId dst, std::uint64_t key);
  void set_rx(MachineId src, std::uint64_t key);
  [[nodiscard]] std::optional<std::uint64_t> tx(MachineId dst) const;
  [[nodiscard]] std::optional<std::uint64_t> rx(MachineId src) const;

  /// Forgets every key -- what a reboot does to a machine's key state.
  /// Combined with fresh keys on re-handshake, this is why "the use of
  /// different conventional keys after each reboot makes it impossible for
  /// an intruder to fool anyone by playing back old messages."
  void clear();

  [[nodiscard]] std::size_t tx_count() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<MachineId, std::uint64_t> tx_keys_;
  std::unordered_map<MachineId, std::uint64_t> rx_keys_;
};

/// Trusted provisioning: generates a full random matrix over a set of
/// machines and installs each machine's row and column into its store.
class KeyMatrix {
 public:
  explicit KeyMatrix(std::uint64_t seed) : rng_(seed) {}

  struct Member {
    MachineId id;
    std::shared_ptr<KeyStore> store;
  };

  /// Draws M[i][j] for all pairs (including i == j, harmless) and fills
  /// every member's row/column.
  void provision(const std::vector<Member>& members);

 private:
  Rng rng_;
};

}  // namespace amoeba::softprot
