#include "amoeba/softprot/keystore.hpp"

namespace amoeba::softprot {

void KeyStore::set_tx(MachineId dst, std::uint64_t key) {
  const std::lock_guard lock(mutex_);
  tx_keys_[dst] = key;
}

void KeyStore::set_rx(MachineId src, std::uint64_t key) {
  const std::lock_guard lock(mutex_);
  rx_keys_[src] = key;
}

std::optional<std::uint64_t> KeyStore::tx(MachineId dst) const {
  const std::lock_guard lock(mutex_);
  auto it = tx_keys_.find(dst);
  return it == tx_keys_.end() ? std::nullopt : std::optional(it->second);
}

std::optional<std::uint64_t> KeyStore::rx(MachineId src) const {
  const std::lock_guard lock(mutex_);
  auto it = rx_keys_.find(src);
  return it == rx_keys_.end() ? std::nullopt : std::optional(it->second);
}

void KeyStore::clear() {
  const std::lock_guard lock(mutex_);
  tx_keys_.clear();
  rx_keys_.clear();
}

std::size_t KeyStore::tx_count() const {
  const std::lock_guard lock(mutex_);
  return tx_keys_.size();
}

void KeyMatrix::provision(const std::vector<Member>& members) {
  for (const auto& row : members) {
    for (const auto& col : members) {
      const std::uint64_t key = rng_.next();  // M[row][col]
      row.store->set_tx(col.id, key);
      col.store->set_rx(row.id, key);
    }
  }
}

}  // namespace amoeba::softprot
