#include "amoeba/softprot/handshake.hpp"

#include <algorithm>
#include "amoeba/softprot/seal.hpp"

namespace amoeba::softprot {

Buffer encode_announcement(const Announcement& a) {
  Writer w;
  w.port(a.boot_put_port);
  w.u64(a.public_key.n);
  w.u64(a.public_key.e);
  return w.take();
}

Result<Announcement> decode_announcement(std::span<const std::uint8_t> data) {
  Reader r(data);
  Announcement a;
  a.boot_put_port = r.port();
  a.public_key.n = r.u64();
  a.public_key.e = r.u64();
  if (!r.exhausted()) {
    return ErrorCode::invalid_argument;
  }
  return a;
}

BootService::BootService(net::Machine& machine, Port get_port,
                         std::shared_ptr<KeyStore> keys, std::uint64_t seed)
    : rpc::Service(machine, get_port, "boot"),
      keys_(std::move(keys)),
      rng_(seed) {
  if (keys_ == nullptr) {
    throw UsageError("BootService requires a key store");
  }
  keypair_ = crypto::rsa_generate(rng_);
  on(boot_ops::kExchangeKey, [this](const auto& call) {
    return do_exchange(call.src(), call.body);
  });
}

void BootService::announce() {
  net::Message msg;
  msg.header.dest = machine().fbox().listen_port(kAnnounceGetPort);
  msg.header.opcode = kOpAnnounce;
  msg.data = encode_announcement(Announcement{put_port(), keypair_.pub});
  machine().broadcast(std::move(msg));
}

void BootService::reboot() { keys_->clear(); }

Result<rpc::BytesReply> BootService::do_exchange(
    MachineId client, const rpc::BytesRequest& req) {
  // Unwrap the client's proposed key K with our private key.
  const auto plain =
      crypto::rsa_unwrap(keypair_.priv.n, keypair_.priv.d, req.bytes);
  if (!plain.has_value() || plain->size() != 8) {
    return ErrorCode::unsealing_failed;
  }
  Reader r(*plain);
  const std::uint64_t client_key = r.u64();

  std::uint64_t reverse_key;
  {
    const std::lock_guard lock(mutex_);
    reverse_key = rng_.next();
  }
  // Install: client->us traffic decrypts with K, us->client encrypts with
  // the fresh reverse key.
  keys_->set_rx(client, client_key);
  keys_->set_tx(client, reverse_key);

  // Reply payload: (K, K') sealed with K itself, then transformed with our
  // private key -- the double encryption of the paper.
  net::CapabilityBytes both{};
  for (int i = 0; i < 8; ++i) {
    both[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(client_key >> (8 * i));
    both[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(reverse_key >> (8 * i));
  }
  seal128(client_key, both);
  return rpc::BytesReply{crypto::rsa_wrap(
      keypair_.priv.n, keypair_.priv.d, std::span(both.data(), both.size()))};
}

KeyExchange::KeyExchange(rpc::Transport& transport, Port boot_put_port,
                         const crypto::RsaPublicKey& server_pub, Rng& rng)
    : server_pub_(server_pub) {
  // Pick the fresh conventional key K for my->server traffic and fire the
  // proposal without waiting; any number may be in flight per transport.
  client_key_ = rng.next();
  Writer w;
  w.u64(client_key_);
  future_ = transport.trans_async(rpc::make_request(
      boot_put_port, boot_ops::kExchangeKey,
      {crypto::rsa_wrap(server_pub.n, server_pub.e, w.buffer())}));
}

Result<void> KeyExchange::complete(KeyStore& my_keys) {
  auto outcome = future_.get();
  if (!outcome.ok()) {
    return outcome.error();
  }
  if (outcome.value().message.header.status != ErrorCode::ok) {
    return outcome.value().message.header.status;
  }
  // Undo the private-key transform with the published public key, then
  // decrypt with K; the reply must echo K, which proves the responder owns
  // the private key (only it could produce a transform the public key
  // inverts to something K-decryptable containing K).
  const auto sealed = crypto::rsa_unwrap(server_pub_.n, server_pub_.e,
                                         outcome.value().message.data);
  if (!sealed.has_value() || sealed->size() != 16) {
    return ErrorCode::unsealing_failed;
  }
  net::CapabilityBytes both{};
  std::copy(sealed->begin(), sealed->end(), both.begin());
  unseal128(client_key_, both);
  std::uint64_t echoed = 0;
  std::uint64_t reverse_key = 0;
  for (int i = 7; i >= 0; --i) {
    echoed = (echoed << 8) | both[static_cast<std::size_t>(i)];
    reverse_key = (reverse_key << 8) | both[static_cast<std::size_t>(8 + i)];
  }
  if (echoed != client_key_) {
    return ErrorCode::unsealing_failed;  // impostor or corrupted exchange
  }
  const MachineId server_machine = outcome.value().src;
  my_keys.set_tx(server_machine, client_key_);
  my_keys.set_rx(server_machine, reverse_key);
  return {};
}

Result<void> establish_keys(rpc::Transport& transport, Port boot_put_port,
                            const crypto::RsaPublicKey& server_pub,
                            KeyStore& my_keys, Rng& rng) {
  return KeyExchange(transport, boot_put_port, server_pub, rng)
      .complete(my_keys);
}

Result<void> establish_keys(net::Machine& machine, Port boot_put_port,
                            const crypto::RsaPublicKey& server_pub,
                            KeyStore& my_keys, Rng& rng) {
  rpc::Transport transport(machine, rng.next());
  return establish_keys(transport, boot_put_port, server_pub, my_keys, rng);
}

}  // namespace amoeba::softprot
