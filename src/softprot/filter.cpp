#include "amoeba/softprot/filter.hpp"
#include "amoeba/common/error.hpp"

#include "amoeba/rpc/batch.hpp"
#include "amoeba/softprot/seal.hpp"

namespace amoeba::softprot {
namespace {

/// Nonce for data encryption rides in the last header parameter slot.
constexpr std::size_t kNonceParam = 3;

bool is_all_zero(const net::CapabilityBytes& b) {
  for (const auto byte : b) {
    if (byte != 0) return false;
  }
  return true;
}

}  // namespace

std::size_t SealingFilter::CacheKeyHash::operator()(const CacheKey& k) const {
  // FNV-1a over the 16 capability bytes folded with the peer id.
  std::size_t h = 14695981039346656037ULL;
  for (const auto byte : k.capability) {
    h = (h ^ byte) * 1099511628211ULL;
  }
  h ^= k.peer.value() + 0x9e3779b9;
  h ^= k.key * 0x9E3779B97F4A7C15ULL;
  return h;
}

SealingFilter::SealingFilter(std::shared_ptr<KeyStore> keys,
                             std::uint64_t seed)
    : SealingFilter(std::move(keys), seed, Options()) {}

SealingFilter::SealingFilter(std::shared_ptr<KeyStore> keys,
                             std::uint64_t seed, Options options)
    : keys_(std::move(keys)), options_(options), rng_(seed) {
  if (keys_ == nullptr) {
    throw UsageError("SealingFilter requires a key store");
  }
}

void SealingFilter::outgoing(net::Message& msg, MachineId dst) {
  const auto key = keys_->tx(dst);
  if (!key.has_value()) {
    return;  // unkeyed peer: message goes out unsealed (and will not parse)
  }
  // Null capabilities (requests that operate on no object) stay null:
  // sealing them would only re-key a public constant.
  if (!is_all_zero(msg.header.capability)) {
    const CacheKey probe{msg.header.capability, dst, *key};
    bool sealed_from_cache = false;
    if (options_.cache_enabled) {
      const std::lock_guard lock(mutex_);
      auto it = seal_cache_.find(probe);
      if (it != seal_cache_.end()) {
        ++stats_.seal_cache_hits;
        msg.header.capability = it->second;
        sealed_from_cache = true;
      } else {
        ++stats_.seal_cache_misses;
      }
    }
    if (!sealed_from_cache) {
      seal128(*key, msg.header.capability);
      if (options_.cache_enabled) {
        const std::lock_guard lock(mutex_);
        if (seal_cache_.size() >= options_.cache_capacity) {
          seal_cache_.clear();  // soft state: full flush is acceptable
        }
        seal_cache_.emplace(probe, msg.header.capability);
      }
    }
  }
  if ((msg.header.flags & net::kFlagBatch) != 0) {
    // Seal before (optional) data encryption, mirroring incoming's
    // decrypt-then-unseal order.
    transform_batch_entries(msg.data, *key, /*sealing=*/true);
  }
  if (options_.encrypt_data && !msg.data.empty()) {
    std::uint64_t nonce;
    {
      const std::lock_guard lock(mutex_);
      nonce = rng_.next();
    }
    msg.header.params[kNonceParam] = nonce;
    xcrypt_data(*key, nonce, msg.data);
  }
}

void SealingFilter::transform_batch_entries(Buffer& data, std::uint64_t key,
                                            bool sealing) {
  // A batch envelope carries one capability image per entry in the
  // payload; each must be (un)sealed exactly like a lone request's header
  // capability, or batching would put in cleartext what §2.4 protects.
  // Request and reply entries share one wire layout (the leading u16 is
  // opcode or status and passes through), so one direction-agnostic
  // decode serves both.  The hashed caches are not consulted here: the
  // envelope already amortizes the per-frame costs.
  auto entries = rpc::decode_batch_request(data);
  if (!entries.has_value()) {
    return;  // malformed envelope: pass through, the service rejects it
  }
  for (auto& entry : *entries) {
    if (is_all_zero(entry.capability)) {
      continue;  // null capability (no object): stays null, like the header
    }
    if (sealing) {
      seal128(key, entry.capability);
    } else {
      unseal128(key, entry.capability);
    }
  }
  data = rpc::encode_batch(*entries);
}

bool SealingFilter::incoming(net::Message& msg, MachineId src) {
  const auto key = keys_->rx(src);
  if (!key.has_value()) {
    const std::lock_guard lock(mutex_);
    ++stats_.missing_key_failures;
    return false;
  }
  if (!is_all_zero(msg.header.capability)) {
    const CacheKey probe{msg.header.capability, src, *key};
    bool unsealed_from_cache = false;
    if (options_.cache_enabled) {
      const std::lock_guard lock(mutex_);
      auto it = unseal_cache_.find(probe);
      if (it != unseal_cache_.end()) {
        ++stats_.unseal_cache_hits;
        msg.header.capability = it->second;
        unsealed_from_cache = true;
      } else {
        ++stats_.unseal_cache_misses;
      }
    }
    if (!unsealed_from_cache) {
      unseal128(*key, msg.header.capability);
      if (options_.cache_enabled) {
        const std::lock_guard lock(mutex_);
        if (unseal_cache_.size() >= options_.cache_capacity) {
          unseal_cache_.clear();
        }
        unseal_cache_.emplace(probe, msg.header.capability);
      }
    }
  }
  if (options_.encrypt_data && !msg.data.empty()) {
    xcrypt_data(*key, msg.header.params[kNonceParam], msg.data);
  }
  if ((msg.header.flags & net::kFlagBatch) != 0) {
    transform_batch_entries(msg.data, *key, /*sealing=*/false);
  }
  return true;
}

SealingFilter::Stats SealingFilter::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

}  // namespace amoeba::softprot
