#include "amoeba/softprot/seal.hpp"

#include "amoeba/crypto/feistel.hpp"

namespace amoeba::softprot {
namespace {

std::uint64_t load64(const net::CapabilityBytes& b, int offset) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[static_cast<std::size_t>(offset + i)];
  }
  return v;
}

void store64(net::CapabilityBytes& b, int offset, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    b[static_cast<std::size_t>(offset + i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

// Domain-separated subkeys for the two passes.
constexpr std::uint64_t kPass1 = 0x5EA1000000000001ULL;
constexpr std::uint64_t kPass2 = 0x5EA1000000000002ULL;
constexpr std::uint64_t kIv = 0xA0EBA1985C0FFEEULL;

}  // namespace

void seal128(std::uint64_t key, net::CapabilityBytes& block) {
  const crypto::Feistel f1(key ^ kPass1, 64);
  const crypto::Feistel f2(key ^ kPass2, 64);
  std::uint64_t a = load64(block, 0);
  std::uint64_t b = load64(block, 8);
  // Pass 1, forward: a' = E1(a ^ IV); b' = E1(b ^ a').
  a = f1.encrypt(a ^ kIv);
  b = f1.encrypt(b ^ a);
  // Pass 2, backward: b'' = E2(b'); a'' = E2(a' ^ b'').
  b = f2.encrypt(b);
  a = f2.encrypt(a ^ b);
  store64(block, 0, a);
  store64(block, 8, b);
}

void unseal128(std::uint64_t key, net::CapabilityBytes& block) {
  const crypto::Feistel f1(key ^ kPass1, 64);
  const crypto::Feistel f2(key ^ kPass2, 64);
  std::uint64_t a = load64(block, 0);
  std::uint64_t b = load64(block, 8);
  a = f2.decrypt(a) ^ b;
  b = f2.decrypt(b);
  b = f1.decrypt(b) ^ a;
  a = f1.decrypt(a) ^ kIv;
  store64(block, 0, a);
  store64(block, 8, b);
}

void xcrypt_data(std::uint64_t key, std::uint64_t nonce,
                 std::span<std::uint8_t> data) {
  const crypto::Feistel cipher(key ^ 0xDA7A5EA100000000ULL, 64);
  std::uint64_t keystream = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) {
      keystream = cipher.encrypt(nonce + i / 8);
    }
    data[i] ^= static_cast<std::uint8_t>(keystream >> (8 * (i % 8)));
  }
}

}  // namespace amoeba::softprot
