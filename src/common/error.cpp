#include "amoeba/common/error.hpp"

#include <cstdio>

#include "amoeba/common/types.hpp"

namespace amoeba {

const char* error_name(ErrorCode e) {
  switch (e) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::bad_capability: return "bad_capability";
    case ErrorCode::permission_denied: return "permission_denied";
    case ErrorCode::no_such_object: return "no_such_object";
    case ErrorCode::no_such_operation: return "no_such_operation";
    case ErrorCode::no_such_port: return "no_such_port";
    case ErrorCode::timeout: return "timeout";
    case ErrorCode::exists: return "exists";
    case ErrorCode::not_found: return "not_found";
    case ErrorCode::no_space: return "no_space";
    case ErrorCode::insufficient_funds: return "insufficient_funds";
    case ErrorCode::bad_currency: return "bad_currency";
    case ErrorCode::conflict: return "conflict";
    case ErrorCode::immutable: return "immutable";
    case ErrorCode::not_empty: return "not_empty";
    case ErrorCode::invalid_argument: return "invalid_argument";
    case ErrorCode::unsealing_failed: return "unsealing_failed";
    case ErrorCode::internal: return "internal";
  }
  return "unknown_error";
}

std::string to_string(ErrorCode e) { return error_name(e); }

namespace {
std::string hex48(std::uint64_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%012llx",
                static_cast<unsigned long long>(v));
  return buf;
}
}  // namespace

std::string to_string(Port p) { return "port:" + hex48(p.value()); }

std::string to_string(ObjectNumber o) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "obj:%06x", o.value());
  return buf;
}

std::string to_string(Rights r) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "rights:%02x", r.bits());
  return buf;
}

std::string to_string(CheckField c) { return "check:" + hex48(c.value()); }

std::string to_string(MachineId m) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "machine:%u", m.value());
  return buf;
}

}  // namespace amoeba
