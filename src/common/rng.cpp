#include "amoeba/common/rng.hpp"

#include <bit>

#include "amoeba/common/error.hpp"

namespace amoeba {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // makes that astronomically unlikely, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = std::rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = std::rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) {
    throw UsageError("Rng::below requires bound > 0");
  }
  // Rejection sampling: reject values in the final partial bucket.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next();
  while (v >= limit) {
    v = next();
  }
  return v % bound;
}

std::uint64_t Rng::bits(int bits) {
  if (bits < 1 || bits > 64) {
    throw UsageError("Rng::bits requires 1..64");
  }
  if (bits == 64) {
    return next();
  }
  return next() & ((std::uint64_t{1} << bits) - 1);
}

void Rng::fill(std::span<std::uint8_t> out) {
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t word = next();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

double Rng::uniform01() {
  // 53 uniform mantissa bits, the standard construction.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace amoeba
