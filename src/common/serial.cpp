#include "amoeba/common/serial.hpp"

#include <cstring>

namespace amoeba {

void Writer::u8(std::uint8_t v) { out_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v));
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u48(std::uint64_t v) {
  for (int i = 0; i < 6; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  out_.insert(out_.end(), data.begin(), data.end());
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.insert(out_.end(), s.begin(), s.end());
}

void Writer::raw(std::span<const std::uint8_t> data) {
  out_.insert(out_.end(), data.begin(), data.end());
}

bool Reader::take(std::size_t n, const std::uint8_t** out) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t Reader::u8() {
  const std::uint8_t* p = nullptr;
  return take(1, &p) ? *p : 0;
}

std::uint16_t Reader::u16() {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return 0;
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t Reader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t Reader::u48() {
  const std::uint8_t* p = nullptr;
  if (!take(6, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 5; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t Reader::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

Buffer Reader::bytes() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return {};
  return Buffer(p, p + n);
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

void Reader::raw(std::span<std::uint8_t> out) {
  if (out.empty()) {
    return;  // nothing to fill; memcpy/memset forbid null even for n = 0
  }
  const std::uint8_t* p = nullptr;
  if (!take(out.size(), &p)) {
    std::memset(out.data(), 0, out.size());
    return;
  }
  std::memcpy(out.data(), p, out.size());
}

}  // namespace amoeba
