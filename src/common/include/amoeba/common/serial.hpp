// Byte-level serialization for RPC message bodies.
//
// All integers travel little-endian.  Writer appends; Reader consumes and
// latches a failure flag on underflow so a malformed message is detected
// once at the end of parsing (checking `reader.ok()`) instead of at every
// field.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "amoeba/common/types.hpp"

namespace amoeba {

using Buffer = std::vector<std::uint8_t>;

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u48(std::uint64_t v);  // low 48 bits
  void u64(std::uint64_t v);
  /// Two's-complement i64 (payload codecs: balances, deltas).
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void port(Port p) { u48(p.value()); }
  void object(ObjectNumber o) { u32(o.value()); }
  void rights(Rights r) { u8(r.bits()); }
  void check(CheckField c) { u48(c.value()); }
  /// Length-prefixed (u32) byte run.
  void bytes(std::span<const std::uint8_t> data);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);
  /// Unprefixed byte run for fields whose width both sides know statically
  /// (capability images inside the batch envelope).
  void raw(std::span<const std::uint8_t> data);

  [[nodiscard]] const Buffer& buffer() const { return out_; }
  [[nodiscard]] Buffer take() { return std::move(out_); }
  /// Empties the buffer, KEEPING its capacity -- lets hot paths (the
  /// journaling encoder) reuse one Writer without reallocating.
  void clear() { out_.clear(); }

 private:
  Buffer out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u48();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  Port port() { return Port(u48()); }
  ObjectNumber object() { return ObjectNumber(u32()); }
  Rights rights() { return Rights(u8()); }
  CheckField check() { return CheckField(u48()); }
  Buffer bytes();
  std::string str();
  /// Unprefixed fixed-width byte run; fills `out` (zeroed on underflow).
  void raw(std::span<std::uint8_t> out);

  /// True when every read so far stayed inside the buffer.
  [[nodiscard]] bool ok() const { return !failed_; }
  /// True when the whole buffer was consumed and nothing underflowed.
  [[nodiscard]] bool exhausted() const { return ok() && pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace amoeba
