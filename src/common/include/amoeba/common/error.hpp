// Error model for the distributed layer.
//
// Following E.1/E.27 of the C++ Core Guidelines we split errors in two:
// programming errors (violated preconditions, broken invariants) throw,
// while *distributed* outcomes -- a server rejecting a capability, an
// object not existing, an RPC timing out -- are ordinary values carried in
// reply headers.  Result<T> is the vocabulary type for the latter.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace amoeba {

/// Status codes carried in every RPC reply header.  Servers map their
/// domain failures onto these; `ok` is zero so a zeroed header reads as
/// success.
enum class ErrorCode : std::uint16_t {
  ok = 0,
  bad_capability,     // check field did not validate
  permission_denied,  // capability valid but lacks the required right
  no_such_object,     // object number unknown to this server
  no_such_operation,  // opcode not understood by this server
  no_such_port,       // locate failed: nobody listens on this put-port
  timeout,            // no reply within the transaction deadline
  exists,             // name or object already present
  not_found,          // directory entry or lookup key absent
  no_space,           // disk/segment/account capacity exhausted
  insufficient_funds, // bank: balance too low
  bad_currency,       // bank: currencies do not match / not convertible
  conflict,           // multiversion: commit lost an optimistic race
  immutable,          // multiversion: writing a committed version
  not_empty,          // directory delete with entries present
  invalid_argument,   // malformed request parameters
  unsealing_failed,   // softprot: capability did not decrypt sensibly
  internal,           // server-side invariant failure surfaced to client
};

[[nodiscard]] const char* error_name(ErrorCode e);

/// error_name as a std::string, for streaming into test failure messages
/// and composing diagnostics ("bank.transfer: invalid_argument").
[[nodiscard]] std::string to_string(ErrorCode e);

/// Thrown only for local programming errors (precondition violations),
/// never for remote/distributed failures.
class UsageError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Minimal expected-like result type (std::expected is C++23; this repo is
/// C++20).  Holds either a value or an ErrorCode.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(ErrorCode error) : state_(error) {              // NOLINT(google-explicit-constructor)
    if (error == ErrorCode::ok) {
      throw UsageError("Result<T> error constructor requires a non-ok code");
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] ErrorCode error() const {
    return ok() ? ErrorCode::ok : std::get<ErrorCode>(state_);
  }

  [[nodiscard]] T& value() & {
    require_ok();
    return std::get<T>(state_);
  }
  [[nodiscard]] const T& value() const& {
    require_ok();
    return std::get<T>(state_);
  }
  // Returns by value (moved out) rather than T&&: an rvalue Result dies at
  // the end of its full expression, and a returned T&& would dangle in
  // range-for initializers and bound references (C++20 has no lifetime
  // extension through function calls).
  [[nodiscard]] T value() && {
    require_ok();
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(state_) : std::move(fallback);
  }

  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }

 private:
  void require_ok() const {
    if (!ok()) {
      throw UsageError(std::string("Result accessed while holding error: ") +
                       error_name(std::get<ErrorCode>(state_)));
    }
  }

  std::variant<T, ErrorCode> state_;
};

/// Result<void>: success or an error code.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(ErrorCode error) : error_(error) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return error_ == ErrorCode::ok; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] ErrorCode error() const { return error_; }

 private:
  ErrorCode error_ = ErrorCode::ok;
};

}  // namespace amoeba
