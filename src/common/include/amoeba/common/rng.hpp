// Deterministic pseudo-random generator used throughout the simulation.
//
// Servers draw their secret check numbers and get-ports from an Rng.  The
// implementation is xoshiro256** seeded through splitmix64 -- statistically
// strong and fully deterministic under a fixed seed, which the test suite
// and benchmarks depend on.  It is simulation-grade, not a CSPRNG; the
// paper's security argument only needs the drawn numbers to be sparse and
// unguessable by the simulated intruder, who has no side channel into the
// server's generator state.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace amoeba {

class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound).  Precondition: bound > 0 (throws
  /// UsageError otherwise).  Uses rejection sampling, so it is unbiased.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value with exactly `bits` low bits populated (1..64).
  std::uint64_t bits(int bits);

  /// Fills the span with uniform bytes.
  void fill(std::span<std::uint8_t> out);

  /// Uniform double in [0, 1).
  double uniform01();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace amoeba
