// Lock-free reader infrastructure: seqlock sequence counters, epoch-based
// reclamation (EBR), and instrumented lock counters.
//
// Two read-mostly hot paths ride this layer:
//   * the object store's validate path (core/object_store.hpp) -- per-slot
//     SeqCount counters let check() validate a repeat capability with
//     atomic loads only, falling back to the shard mutex on any
//     instability, and
//   * the network's stripe tables (net/network.cpp) -- registration maps
//     are immutable snapshots swapped atomically and reclaimed through
//     EpochDomain, so transmit/locate never block behind a registration.
//
// The instrumented counters exist so tests can PROVE a path is lock-free:
// CountedMutex bumps a thread-local counter on every acquisition, and a
// test that drives N operations through a supposedly lock-free path can
// assert the counter did not move (tests/lockfree_validate_test.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>

namespace amoeba::common {

// ---------------------------------------------------------------------
// Instrumented lock counters.

/// Per-thread lock instrumentation.  Cheap enough to update
/// unconditionally (one thread-local increment per acquisition); read by
/// tests and benchmarks, never by production logic.
struct LockCounters {
  std::uint64_t mutex_acquisitions = 0;  // CountedMutex::lock()/try_lock()
  std::uint64_t seqlock_fallbacks = 0;   // lock-free reads that bailed to
                                         // the locked slow path
};

/// The calling thread's counters.  Thread-local; no synchronization.
[[nodiscard]] LockCounters& this_thread_lock_counters();

/// Drop-in std::mutex that counts acquisitions on the calling thread.
/// Used for every lock a supposedly lock-free read path must NOT take
/// (object-store shard mutexes, network stripe writer mutexes), so the
/// "zero acquisitions" claim is checkable at runtime, not by inspection.
/// Satisfies Lockable: works with std::unique_lock / std::lock_guard.
class CountedMutex {
 public:
  void lock() {
    ++this_thread_lock_counters().mutex_acquisitions;
    mutex_.lock();
  }
  [[nodiscard]] bool try_lock() {
    const bool locked = mutex_.try_lock();
    if (locked) {
      ++this_thread_lock_counters().mutex_acquisitions;
    }
    return locked;
  }
  void unlock() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

// ---------------------------------------------------------------------
// Seqlock sequence counter.

/// A per-record sequence counter implementing the seqlock reader protocol
/// (Boehm, "Can seqlocks get along with programming language memory
/// models?").  Even value = record stable; odd = a writer is mid-update.
///
/// Writer side (MUST already be serialized by an external mutex -- the
/// counter does not arbitrate between writers):
///
///   { SeqCount::WriteGuard guard(slot.seq);   // seq becomes odd
///     slot.field.store(v, std::memory_order_relaxed);
///     ...
///   }                                          // seq becomes even again
///
/// Reader side (no lock; fields must be std::atomic, read relaxed):
///
///   const std::uint32_t s = slot.seq.read_begin();
///   if (SeqCount::busy(s)) { fall back to the locked path; }
///   auto a = slot.field.load(std::memory_order_relaxed);
///   ...
///   if (!slot.seq.read_ok(s)) { fall back; }
///   // a (and every other relaxed load in between) is a consistent
///   // snapshot of one stable generation.
///
/// Memory-model contract: WriteGuard's constructor publishes the odd
/// value before any field store can become visible (release fence), and
/// its destructor's release store publishes every field store before the
/// even value; read_ok()'s acquire fence pairs with both, so a reader
/// that saw any in-progress value fails validation.
class SeqCount {
 public:
  /// True if `observed` was captured mid-write (odd).
  [[nodiscard]] static constexpr bool busy(std::uint32_t observed) {
    return (observed & 1U) != 0;
  }

  /// First half of a lock-free read: capture the generation.
  [[nodiscard]] std::uint32_t read_begin() const {
    return seq_.load(std::memory_order_acquire);
  }

  /// Second half: true iff every relaxed load since read_begin() observed
  /// one stable generation.  `began` must come from read_begin(); a busy
  /// generation never validates.
  [[nodiscard]] bool read_ok(std::uint32_t began) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return !busy(began) && seq_.load(std::memory_order_relaxed) == began;
  }

  /// Marks the record unstable for the guard's lifetime.  The caller must
  /// hold the external writer mutex for this record.
  class WriteGuard {
   public:
    explicit WriteGuard(SeqCount& seq) : seq_(seq) {
      const std::uint32_t s = seq_.seq_.load(std::memory_order_relaxed);
      seq_.seq_.store(s + 1, std::memory_order_relaxed);
      // Order the odd store before the writer's field stores: a reader
      // that observes any new field value must also observe the odd seq
      // (or the final even one) and retry.
      std::atomic_thread_fence(std::memory_order_release);
    }
    ~WriteGuard() {
      const std::uint32_t s = seq_.seq_.load(std::memory_order_relaxed);
      seq_.seq_.store(s + 1, std::memory_order_release);
    }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    SeqCount& seq_;
  };

 private:
  std::atomic<std::uint32_t> seq_{0};
};

// ---------------------------------------------------------------------
// Epoch-based reclamation.

/// Grace-period memory reclamation for RCU-style snapshot structures
/// (Fraser-style EBR, three generations).  Readers pin the domain around
/// a critical section; writers unlink a snapshot, then retire() it, and
/// the domain frees it only after every reader that could have seen it
/// has unpinned.
///
/// Contracts:
///   * Readers: hold a Guard across every dereference of an EBR-protected
///     pointer.  pin() is wait-free after a thread's first use (one
///     seq_cst store + load); guards may nest.
///   * Writers: UNLINK FIRST (atomically replace the published pointer),
///     then retire() the old pointer FROM THE SAME THREAD.  That ordering
///     plus the domain's internal mutex is what guarantees a reader
///     pinned after the retirement epoch advances cannot observe the
///     retired pointer.
///   * Reclamation: a retired pointer is deleted at least two epoch
///     advances later, and an advance blocks while any reader is still
///     pinned in an older epoch -- so deletion never races a reader.
///
/// Thread records are allocated on first pin and recycled when threads
/// exit; the domain itself is never destroyed (global() leaks by design
/// to dodge static-destruction order against exiting threads).
class EpochDomain {
  struct ReaderRecord;

 public:
  /// RAII pin on the current epoch.  Non-copyable, movable.
  class Guard {
   public:
    Guard() = default;
    Guard(Guard&& other) noexcept
        : record_(std::exchange(other.record_, nullptr)) {}
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        release();
        record_ = std::exchange(other.record_, nullptr);
      }
      return *this;
    }
    ~Guard() { release(); }

   private:
    friend class EpochDomain;
    explicit Guard(ReaderRecord* record) : record_(record) {}
    void release() noexcept;

    ReaderRecord* record_ = nullptr;
  };

  /// Enters a read-side critical section.  Every EBR-protected pointer
  /// loaded while the Guard lives stays valid until the Guard drops.
  [[nodiscard]] Guard pin();

  /// Hands a no-longer-published pointer to the domain for deferred
  /// deletion.  The caller must have unlinked `ptr` (made it unreachable
  /// for NEW readers) before calling, on this same thread.
  template <typename T>
  void retire(const T* ptr) {
    retire_raw(const_cast<T*>(ptr),
               [](void* p) { delete static_cast<T*>(p); });
  }

  /// Blocks until every pointer retired before the call has been deleted
  /// (forces epoch advances; spins while stale readers stay pinned).
  /// Teardown/test helper -- never needed on hot paths.
  void synchronize();

  /// Count of retired-but-not-yet-deleted pointers (test observability).
  [[nodiscard]] std::size_t limbo_size() const;

  /// The process-wide domain all Amoeba readers share.  Never destroyed.
  [[nodiscard]] static EpochDomain& global();

  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
  };
  struct LimboList;

  void retire_raw(void* ptr, void (*deleter)(void*));
  [[nodiscard]] bool try_advance_locked();
  [[nodiscard]] ReaderRecord* record_for_this_thread();

  // Epoch readers observe; advanced one at a time under mutex_.
  std::atomic<std::uint64_t> global_epoch_{1};
  // Registered reader records, a grow-only lock-free stack.
  std::atomic<ReaderRecord*> records_{nullptr};
  // Serializes retire + epoch advance + limbo reclamation.
  mutable std::mutex mutex_;
  LimboList* limbo_;  // [3], indexed by epoch % 3; guarded by mutex_
};

}  // namespace amoeba::common
