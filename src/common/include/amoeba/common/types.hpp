// Fundamental value types shared across the Amoeba reproduction.
//
// The paper (Fig. 2) fixes the wire widths: a server put-port is 48 bits,
// an object number 24 bits, a rights field 8 bits, and the check field
// 48 bits.  We model each as a strong type wrapping the smallest natural
// integer so that ports cannot silently be confused with check fields and
// the width invariants hold by construction.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace amoeba {

/// A 48-bit port number (either a put-port or a get-port; which one it is
/// depends on context, see amoeba/crypto/one_way.hpp for the F mapping).
class Port {
 public:
  static constexpr int kBits = 48;
  static constexpr std::uint64_t kMask = (std::uint64_t{1} << kBits) - 1;

  constexpr Port() = default;
  /// Truncates the argument to 48 bits; callers producing ports from wider
  /// arithmetic (one-way functions) rely on this.
  constexpr explicit Port(std::uint64_t v) : value_(v & kMask) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_null() const { return value_ == 0; }

  friend constexpr auto operator<=>(Port, Port) = default;

 private:
  std::uint64_t value_ = 0;
};

/// A 24-bit object number, meaningful only to the server managing the
/// object (for a UNIX-like file server this would be the i-number).
class ObjectNumber {
 public:
  static constexpr int kBits = 24;
  static constexpr std::uint32_t kMask = (std::uint32_t{1} << kBits) - 1;

  constexpr ObjectNumber() = default;
  constexpr explicit ObjectNumber(std::uint32_t v) : value_(v & kMask) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  friend constexpr auto operator<=>(ObjectNumber, ObjectNumber) = default;

 private:
  std::uint32_t value_ = 0;
};

/// An 8-bit rights mask: one bit per permitted operation.  The meaning of
/// each bit is defined by the server that manages the object; common
/// assignments live in amoeba/core/rights.hpp.
class Rights {
 public:
  static constexpr int kBits = 8;
  static constexpr std::uint8_t kAll = 0xFF;

  constexpr Rights() = default;
  constexpr explicit Rights(std::uint8_t bits) : bits_(bits) {}

  static constexpr Rights all() { return Rights(kAll); }
  static constexpr Rights none() { return Rights(0); }

  [[nodiscard]] constexpr std::uint8_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool has(int bit) const {
    return (bits_ >> bit) & 1u;
  }
  [[nodiscard]] constexpr bool has_all(Rights needed) const {
    return (bits_ & needed.bits_) == needed.bits_;
  }
  /// True if this mask grants no more than `other` (subset relation).
  [[nodiscard]] constexpr bool subset_of(Rights other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  [[nodiscard]] constexpr Rights with(int bit) const {
    return Rights(static_cast<std::uint8_t>(bits_ | (1u << bit)));
  }
  [[nodiscard]] constexpr Rights without(int bit) const {
    return Rights(static_cast<std::uint8_t>(bits_ & ~(1u << bit)));
  }
  [[nodiscard]] constexpr Rights intersect(Rights other) const {
    return Rights(static_cast<std::uint8_t>(bits_ & other.bits_));
  }

  friend constexpr auto operator<=>(Rights, Rights) = default;

 private:
  std::uint8_t bits_ = 0;
};

/// The 48-bit check field: the sparse secret that makes a capability hard
/// to forge.  Its interpretation depends on the protection scheme in use.
class CheckField {
 public:
  static constexpr int kBits = 48;
  static constexpr std::uint64_t kMask = (std::uint64_t{1} << kBits) - 1;

  constexpr CheckField() = default;
  constexpr explicit CheckField(std::uint64_t v) : value_(v & kMask) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }

  friend constexpr auto operator<=>(CheckField, CheckField) = default;

 private:
  std::uint64_t value_ = 0;
};

/// Unforgeable machine address.  The simulated network stamps the source
/// machine id on every frame (the paper's §2.4 assumption: "an intruder can
/// forge nearly all parts of a message ... except the source address").
class MachineId {
 public:
  constexpr MachineId() = default;
  constexpr explicit MachineId(std::uint32_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_null() const { return value_ == 0; }

  friend constexpr auto operator<=>(MachineId, MachineId) = default;

 private:
  std::uint32_t value_ = 0;  // 0 is reserved for "no machine"
};

[[nodiscard]] std::string to_string(Port p);
[[nodiscard]] std::string to_string(ObjectNumber o);
[[nodiscard]] std::string to_string(Rights r);
[[nodiscard]] std::string to_string(CheckField c);
[[nodiscard]] std::string to_string(MachineId m);

}  // namespace amoeba

template <>
struct std::hash<amoeba::Port> {
  std::size_t operator()(amoeba::Port p) const noexcept {
    return std::hash<std::uint64_t>{}(p.value());
  }
};

template <>
struct std::hash<amoeba::ObjectNumber> {
  std::size_t operator()(amoeba::ObjectNumber o) const noexcept {
    return std::hash<std::uint32_t>{}(o.value());
  }
};

template <>
struct std::hash<amoeba::MachineId> {
  std::size_t operator()(amoeba::MachineId m) const noexcept {
    return std::hash<std::uint32_t>{}(m.value());
  }
};
