#include "amoeba/common/epoch.hpp"

#include <cstddef>
#include <thread>
#include <vector>

namespace amoeba::common {

LockCounters& this_thread_lock_counters() {
  thread_local LockCounters counters;
  return counters;
}

// ---------------------------------------------------------------------
// EpochDomain.

/// One reader thread's pin state.  Allocated on a thread's first pin,
/// pushed onto the domain's grow-only record stack, and recycled (not
/// freed) when the thread exits, so the advance scan never races a
/// disappearing record.  Reference-counted between the domain and the
/// owning thread's thread_local holder: whichever lets go last frees it.
struct alignas(64) EpochDomain::ReaderRecord {
  std::atomic<std::uint64_t> epoch{0};  // 0 = not pinned
  std::atomic<bool> owned{true};        // claimed by a live thread
  std::atomic<int> refs{2};             // domain + owning thread
  int depth = 0;                        // nested pins; owner thread only
  ReaderRecord* next = nullptr;         // immutable once published

  void drop_ref() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete this;
    }
  }
};

struct EpochDomain::LimboList {
  std::vector<Retired> items;
};

EpochDomain::EpochDomain() : limbo_(new LimboList[3]) {}

EpochDomain::~EpochDomain() {
  // By contract no reader is pinned; drain every limbo generation.
  for (int i = 0; i < 3; ++i) {
    for (const Retired& item : limbo_[i].items) {
      item.deleter(item.ptr);
    }
  }
  delete[] limbo_;
  ReaderRecord* record = records_.load(std::memory_order_acquire);
  while (record != nullptr) {
    ReaderRecord* next = record->next;
    record->drop_ref();  // records of still-live threads survive
    record = next;
  }
}

EpochDomain::ReaderRecord* EpochDomain::record_for_this_thread() {
  struct Holder {
    EpochDomain* domain = nullptr;
    ReaderRecord* record = nullptr;
    void release() {
      if (record != nullptr) {
        record->owned.store(false, std::memory_order_release);
        record->drop_ref();
        record = nullptr;
        domain = nullptr;
      }
    }
    ~Holder() { release(); }
  };
  thread_local Holder holder;
  if (holder.domain == this) {
    return holder.record;
  }
  holder.release();  // this thread switched domains (test-local domains)
  // Recycle a record some exited thread left behind, if any.
  ReaderRecord* record = nullptr;
  for (ReaderRecord* r = records_.load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    bool expected = false;
    if (r->owned.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      r->refs.fetch_add(1, std::memory_order_relaxed);
      record = r;
      break;
    }
  }
  if (record == nullptr) {
    record = new ReaderRecord();
    ReaderRecord* head = records_.load(std::memory_order_relaxed);
    do {
      record->next = head;
    } while (!records_.compare_exchange_weak(head, record,
                                             std::memory_order_release,
                                             std::memory_order_relaxed));
  }
  holder.domain = this;
  holder.record = record;
  return record;
}

EpochDomain::Guard EpochDomain::pin() {
  ReaderRecord* record = record_for_this_thread();
  if (record->depth++ == 0) {
    // Publish the epoch we are entering, then re-check it did not move:
    // an advance that raced past our store would otherwise let the
    // reclaimer believe we pinned the NEWER epoch while we read through
    // the older one.  seq_cst on both sides makes the scan and this
    // store/load pair totally ordered.
    for (;;) {
      const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
      record->epoch.store(e, std::memory_order_seq_cst);
      if (global_epoch_.load(std::memory_order_seq_cst) == e) {
        break;
      }
    }
  }
  return Guard(record);
}

void EpochDomain::Guard::release() noexcept {
  if (record_ != nullptr) {
    if (--record_->depth == 0) {
      record_->epoch.store(0, std::memory_order_release);
    }
    record_ = nullptr;
  }
}

void EpochDomain::retire_raw(void* ptr, void (*deleter)(void*)) {
  const std::lock_guard lock(mutex_);
  const std::uint64_t e = global_epoch_.load(std::memory_order_relaxed);
  limbo_[e % 3].items.push_back({ptr, deleter});
  (void)try_advance_locked();
}

bool EpochDomain::try_advance_locked() {
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (ReaderRecord* r = records_.load(std::memory_order_acquire);
       r != nullptr; r = r->next) {
    const std::uint64_t seen = r->epoch.load(std::memory_order_seq_cst);
    if (seen != 0 && seen != e) {
      return false;  // a reader is still inside an older epoch
    }
  }
  // Every active reader is in epoch e, and a reader can lag the global
  // epoch by at most one, so pointers retired in epoch e-2 (sitting in
  // the list about to be recycled for e+1) are unreachable: delete them.
  LimboList& graveyard = limbo_[(e + 1) % 3];
  for (const Retired& item : graveyard.items) {
    item.deleter(item.ptr);
  }
  graveyard.items.clear();
  global_epoch_.store(e + 1, std::memory_order_seq_cst);
  return true;
}

void EpochDomain::synchronize() {
  // Three successful advances cycle through every limbo generation.  An
  // advance fails only while some reader is pinned in an older epoch;
  // read-side sections are short, so yield and retry.  (Calling this
  // while holding a Guard on the same thread would spin forever.)
  int advances = 0;
  while (advances < 3) {
    bool advanced = false;
    {
      const std::lock_guard lock(mutex_);
      advanced = try_advance_locked();
    }
    if (advanced) {
      ++advances;
    } else {
      std::this_thread::yield();
    }
  }
}

std::size_t EpochDomain::limbo_size() const {
  const std::lock_guard lock(mutex_);
  std::size_t total = 0;
  for (int i = 0; i < 3; ++i) {
    total += limbo_[i].items.size();
  }
  return total;
}

EpochDomain& EpochDomain::global() {
  // Intentionally leaked: reader threads park their records here at exit,
  // and a static destructor racing thread shutdown would free the records
  // under them.  The process-exit "leak" is still reachable, so LSan is
  // quiet about it.
  static EpochDomain* domain = new EpochDomain();
  return *domain;
}

}  // namespace amoeba::common
