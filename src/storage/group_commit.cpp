#include "amoeba/storage/group_commit.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "amoeba/common/error.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"

namespace amoeba::storage {

GroupCommitter::GroupCommitter(std::shared_ptr<Backend> backend,
                               Options options)
    : backend_(std::move(backend)), options_(options) {
  if (backend_ == nullptr) {
    throw UsageError("GroupCommitter: null backend");
  }
  pending_.resize(backend_->shard_count());
  // A replicated volume binds itself to its committer: every flush cycle
  // then ships through the post-flush hook (the exact bytes that hit the
  // local disk, ack-mode wait included), and the decorator's own append
  // paths stand down for committer traffic.  Wiring this here means a
  // server gains replication by being handed a ReplicatedBackend --
  // no server code changes.
  if (auto* replicated = dynamic_cast<ReplicatedBackend*>(backend_.get())) {
    replicated->bind_committer(*this);
  }
  flusher_ = std::jthread(
      [this](const std::stop_token& stop) { flusher(stop); });
}

GroupCommitter::~GroupCommitter() {
  flusher_.request_stop();
  work_cv_.notify_all();
  // jthread joins; the flusher drains every pending enqueue first, so a
  // server shutting down cleanly never strands acknowledged-to-nobody
  // bytes in the queue.
}

std::shared_ptr<GroupCommitter> GroupCommitter::create(
    const std::shared_ptr<Backend>& backend, Options options) {
  return backend == nullptr ? nullptr
                            : std::make_shared<GroupCommitter>(backend,
                                                               options);
}

GroupCommitter::Ticket GroupCommitter::enqueue(
    std::size_t shard, std::span<const std::uint8_t> bytes) {
  bool wake;
  Ticket ticket;
  {
    const std::lock_guard lock(mutex_);
    Buffer& pending = pending_.at(shard);
    if (pending.empty()) {
      dirty_shards_.push_back(shard);
    }
    pending.insert(pending.end(), bytes.begin(), bytes.end());
    ++pending_records_;
    wake = issued_ == taken_;  // flusher may be asleep: nothing was queued
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

GroupCommitter::Ticket GroupCommitter::enqueue_group(
    std::vector<ShardAppend>&& appends) {
  bool wake;
  Ticket ticket;
  {
    // One mutex hold for the whole group: a flush-cycle boundary can never
    // split it, so the backend batch append (atomic w.r.t. capture())
    // receives the group intact.
    const std::lock_guard lock(mutex_);
    for (const ShardAppend& a : appends) {
      Buffer& pending = pending_.at(a.shard);
      if (pending.empty()) {
        dirty_shards_.push_back(a.shard);
      }
      pending.insert(pending.end(), a.bytes.begin(), a.bytes.end());
      ++pending_records_;
    }
    wake = issued_ == taken_;
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

GroupCommitter::Ticket GroupCommitter::enqueue_meta(std::string_view key,
                                                    Buffer value) {
  bool wake;
  Ticket ticket;
  {
    const std::lock_guard lock(mutex_);
    pending_meta_[std::string(key)] = std::move(value);
    wake = issued_ == taken_;
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

void GroupCommitter::wait_durable(Ticket ticket) {
  if (ticket == 0) {
    return;
  }
  std::unique_lock lock(mutex_);
  durable_cv_.wait(
      lock, [&] { return durable_ >= ticket || !failure_.empty(); });
  if (durable_ < ticket) {
    throw UsageError("GroupCommitter: flush failed, ticket not durable: " +
                     failure_);
  }
}

bool GroupCommitter::is_durable(Ticket ticket) const {
  if (ticket == 0) {
    return true;
  }
  const std::lock_guard lock(mutex_);
  return durable_ >= ticket;
}

void GroupCommitter::drain() {
  Ticket last;
  {
    const std::lock_guard lock(mutex_);
    last = issued_;
  }
  wait_durable(last);
}

GroupCommitter::Stats GroupCommitter::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

void GroupCommitter::set_post_flush_hook(PostFlushHook hook) {
  const std::lock_guard lock(mutex_);
  if (post_flush_hook_ != nullptr && hook != nullptr) {
    throw UsageError("GroupCommitter: post-flush hook already installed");
  }
  post_flush_hook_ = std::move(hook);
}

void GroupCommitter::flusher(const std::stop_token& stop) {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop.stop_requested() || issued_ > taken_;
    });
    if (issued_ == taken_) {
      return;  // stopped with an empty queue: clean exit
    }
    if (options_.flush_interval.count() > 0 && !stop.stop_requested()) {
      // Deliberate batching window (the --flush-interval experiment knob);
      // the default path skips it and lets fsync latency set the cadence.
      work_cv_.wait_for(lock, options_.flush_interval,
                        [&] { return stop.stop_requested(); });
    }
    // Claim everything queued so far as one cycle; mutators keep enqueuing
    // the moment the lock drops (that overlap is the whole amortization).
    const Ticket covered = issued_;
    taken_ = issued_;
    std::vector<ShardAppend> group;
    group.reserve(dirty_shards_.size());
    for (const std::size_t s : dirty_shards_) {
      group.push_back({s, std::exchange(pending_[s], Buffer{})});
    }
    dirty_shards_.clear();
    const std::uint64_t records = std::exchange(pending_records_, 0);
    auto metas = std::exchange(pending_meta_, {});
    const PostFlushHook hook = post_flush_hook_;
    lock.unlock();

    std::uint64_t cycle_bytes = 0;
    for (const ShardAppend& a : group) {
      cycle_bytes += a.bytes.size();
    }
    try {
      // Metadata first: within a cycle the reply-cache floor image must
      // hit the volume before the journal effects it gates (§8.4's
      // never-twice ordering; across cycles the rpc layer waits for the
      // floor ticket before journaling, so floors never trail effects).
      for (const auto& [key, value] : metas) {
        backend_->put_meta(key, value);
      }
      if (!group.empty()) {
        bool completed = false;
        // With a hook installed the group must survive the write (the
        // hook ships these exact bytes), so the backend gets its own
        // copy; without one, ownership moves as before.
        std::vector<ShardAppend> to_disk =
            hook != nullptr ? group : std::move(group);
        backend_->submit_append_group(std::move(to_disk),
                                      [&completed] { completed = true; });
        if (!completed) {
          // The base Backend completes inline; an async (io_uring-style)
          // override that defers completion needs a reaping loop here
          // before durability may advance.  None exists yet, so treat a
          // deferred completion as a contract violation.
          throw UsageError(
              "GroupCommitter: backend deferred completion unsupported");
        }
      }
      if (hook != nullptr) {
        // After the local writes, before the waiters release: the hook
        // (replication shipping) sees exactly what hit the disk, and a
        // released waiter knows the cycle was already offered to -- and,
        // per the ack mode, acknowledged by -- the backups.
        hook(FlushCycle{covered, cycle_bytes, &metas, &group});
      }
    } catch (const std::exception& e) {
      lock.lock();
      failure_ = e.what();
      durable_cv_.notify_all();
      return;  // waiters past durable_ are told the truth: not durable
    }

    lock.lock();
    durable_ = std::max(durable_, covered);
    ++stats_.groups;
    stats_.records += records;
    stats_.meta_writes += metas.size();
    stats_.max_group = std::max(stats_.max_group, records);
    stats_.flush_cycle_bytes += cycle_bytes;
    durable_cv_.notify_all();
  }
}

}  // namespace amoeba::storage
