#include "amoeba/storage/group_commit.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "amoeba/common/error.hpp"
#include "amoeba/storage/replication/replicated_backend.hpp"

namespace amoeba::storage {
namespace {

[[nodiscard]] std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

}  // namespace

GroupCommitter::GroupCommitter(std::shared_ptr<Backend> backend,
                               Options options)
    : backend_(std::move(backend)), options_(options) {
  if (backend_ == nullptr) {
    throw UsageError("GroupCommitter: null backend");
  }
  pending_.resize(backend_->shard_count());
  // A replicated volume binds itself to its committer: every flush cycle
  // then ships through the post-flush hook (the exact bytes that hit the
  // local disk, ack-mode wait included), and the decorator's own append
  // paths stand down for committer traffic.  Wiring this here means a
  // server gains replication by being handed a ReplicatedBackend --
  // no server code changes.
  if (auto* replicated = dynamic_cast<ReplicatedBackend*>(backend_.get())) {
    replicated->bind_committer(*this);
  }
  flusher_ = std::jthread(
      [this](const std::stop_token& stop) { flusher(stop); });
}

GroupCommitter::~GroupCommitter() {
  flusher_.request_stop();
  work_cv_.notify_all();
  // jthread joins; the flusher drains every pending enqueue AND waits out
  // every in-flight async completion first (completions touch this
  // object), so a server shutting down cleanly never strands
  // acknowledged-to-nobody bytes in the queue.
}

std::shared_ptr<GroupCommitter> GroupCommitter::create(
    const std::shared_ptr<Backend>& backend, Options options) {
  return backend == nullptr ? nullptr
                            : std::make_shared<GroupCommitter>(backend,
                                                               options);
}

GroupCommitter::Ticket GroupCommitter::enqueue(
    std::size_t shard, std::span<const std::uint8_t> bytes) {
  bool wake;
  Ticket ticket;
  {
    const std::lock_guard lock(mutex_);
    Buffer& pending = pending_.at(shard);
    if (pending.empty()) {
      dirty_shards_.push_back(shard);
    }
    pending.insert(pending.end(), bytes.begin(), bytes.end());
    ++pending_records_;
    wake = flusher_waiting_;  // batched wakeup: see enqueue_with
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

GroupCommitter::Ticket GroupCommitter::enqueue_group(
    std::vector<ShardAppend>&& appends) {
  bool wake;
  Ticket ticket;
  {
    // One mutex hold for the whole group: a flush-cycle boundary can never
    // split it, so the backend batch append (atomic w.r.t. capture())
    // receives the group intact.
    const std::lock_guard lock(mutex_);
    for (const ShardAppend& a : appends) {
      Buffer& pending = pending_.at(a.shard);
      if (pending.empty()) {
        dirty_shards_.push_back(a.shard);
      }
      pending.insert(pending.end(), a.bytes.begin(), a.bytes.end());
      ++pending_records_;
    }
    wake = flusher_waiting_;
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

GroupCommitter::Ticket GroupCommitter::enqueue_meta(std::string_view key,
                                                    Buffer value) {
  bool wake;
  Ticket ticket;
  {
    const std::lock_guard lock(mutex_);
    pending_meta_[std::string(key)] = std::move(value);
    wake = flusher_waiting_;
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

void GroupCommitter::wait_durable(Ticket ticket) {
  if (ticket == 0) {
    return;
  }
  std::unique_lock lock(mutex_);
  if (durable_ >= ticket) {
    return;  // already durable (even if a later cycle has since failed)
  }
  // Registering as a waiter collapses the adaptive linger: the flusher
  // lingers only while nobody is blocked, so wake it out of that wait.
  ++waiters_;
  work_cv_.notify_all();
  durable_cv_.wait(
      lock, [&] { return durable_ >= ticket || !failure_.empty(); });
  --waiters_;
  if (durable_ < ticket) {
    throw UsageError("GroupCommitter: flush failed, ticket not durable: " +
                     failure_);
  }
}

bool GroupCommitter::is_durable(Ticket ticket) const {
  if (ticket == 0) {
    return true;
  }
  const std::lock_guard lock(mutex_);
  return durable_ >= ticket;
}

void GroupCommitter::drain() {
  Ticket last;
  {
    const std::lock_guard lock(mutex_);
    last = issued_;
  }
  wait_durable(last);
}

GroupCommitter::Stats GroupCommitter::stats() const {
  Stats out;
  {
    const std::lock_guard lock(mutex_);
    out = stats_;
    out.inflight_cycles = inflight_.size();
  }
  // The ring counters live on the backend (zero/sync for blocking ones);
  // folding them in here gives durability_stats()/std_info one surface.
  const AsyncIoStats io = backend_->async_io_stats();
  out.sqe_submitted = io.sqe_submitted;
  out.cqe_completed = io.cqe_completed;
  return out;
}

void GroupCommitter::set_post_flush_hook(PostFlushHook hook) {
  const std::lock_guard lock(mutex_);
  if (post_flush_hook_ != nullptr && hook != nullptr) {
    throw UsageError("GroupCommitter: post-flush hook already installed");
  }
  post_flush_hook_ = std::move(hook);
}

void GroupCommitter::on_cycle_complete(const std::shared_ptr<Cycle>& cycle,
                                       std::exception_ptr error) {
  std::unique_lock lock(mutex_);
  if (cycle->done) {
    return;  // defensive: a backend must complete exactly once
  }
  cycle->done = true;
  cycle->error = std::move(error);
  drain_completions_locked(lock);
}

void GroupCommitter::drain_completions_locked(
    std::unique_lock<std::mutex>& lock) {
  if (draining_) {
    return;  // the thread inside the drain will pick this cycle up too
  }
  draining_ = true;
  while (!inflight_.empty() && inflight_.front()->done) {
    const std::shared_ptr<Cycle> cycle = inflight_.front();
    if (!failure_.empty()) {
      // Already latched: the cycle's outcome no longer matters, nothing
      // past the failure is ever reported durable.
      inflight_.pop_front();
      inflight_cv_.notify_all();
      continue;
    }
    if (cycle->error != nullptr) {
      failure_ = describe(cycle->error);
      inflight_.pop_front();
      durable_cv_.notify_all();
      inflight_cv_.notify_all();
      work_cv_.notify_all();  // the flusher stops claiming on failure
      continue;
    }
    const PostFlushHook hook = post_flush_hook_;
    if (hook != nullptr) {
      // After the local write, before the waiters release: the hook
      // (replication shipping) sees exactly what hit the disk, and a
      // released waiter knows the cycle was already offered to -- and,
      // per the ack mode, acknowledged by -- the backups.  Unlocked, and
      // strictly one cycle at a time in LSN order: `draining_` keeps a
      // concurrent completer out while the mutex is down.
      lock.unlock();
      std::exception_ptr hook_error;
      try {
        hook(FlushCycle{cycle->covered, cycle->bytes, &cycle->metas,
                        &cycle->appends});
      } catch (...) {
        hook_error = std::current_exception();
      }
      lock.lock();
      if (hook_error != nullptr) {
        // A hook failure (replication fencing) latches exactly like a
        // backend write failure: durability -- which now includes the
        // hook's ack contract -- is never reported optimistically.
        failure_ = describe(hook_error);
        inflight_.pop_front();
        durable_cv_.notify_all();
        inflight_cv_.notify_all();
        work_cv_.notify_all();
        continue;
      }
    }
    durable_ = std::max(durable_, cycle->covered);
    ++stats_.groups;
    stats_.records += cycle->records;
    stats_.meta_writes += cycle->metas.size();
    stats_.max_group = std::max(stats_.max_group, cycle->records);
    stats_.flush_cycle_bytes += cycle->bytes;
    inflight_.pop_front();
    durable_cv_.notify_all();
    inflight_cv_.notify_all();
  }
  draining_ = false;
}

void GroupCommitter::flusher(const std::stop_token& stop) {
  const auto ceiling =
      options_.flush_interval.count() > 0
          ? options_.flush_interval
          : (options_.adaptive_linger ? Options::kDefaultLingerCeiling
                                      : std::chrono::microseconds{0});
  const IoCounters& io = this_thread_io_counters();
  std::unique_lock lock(mutex_);
  for (;;) {
    flusher_waiting_ = true;
    work_cv_.wait(lock, [&] {
      return stop.stop_requested() || issued_ > taken_ || !failure_.empty();
    });
    flusher_waiting_ = false;
    if (!failure_.empty() || issued_ == taken_) {
      break;  // latched, or stopped with an empty queue
    }
    if (ceiling.count() > 0 && !stop.stop_requested()) {
      const auto start = std::chrono::steady_clock::now();
      if (options_.adaptive_linger) {
        // Grow the cycle while nobody is blocked on it; a waiter's
        // arrival (wait_durable notifies) collapses the linger at once.
        work_cv_.wait_until(lock, start + ceiling, [&] {
          return waiters_ > 0 || stop.stop_requested() || !failure_.empty();
        });
      } else {
        work_cv_.wait_for(lock, ceiling,
                          [&] { return stop.stop_requested(); });
      }
      stats_.linger_us_current = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    } else {
      stats_.linger_us_current = 0;
    }
    // Backpressure: with an async backend the submit returns immediately,
    // so bound how many cycles may be in flight -- the queue keeps
    // growing while we wait here, which is the "widen under backlog" half
    // of the pacing (the ring amortizes, the queue batches).
    inflight_cv_.wait(lock, [&] {
      return inflight_.size() < options_.max_inflight_cycles ||
             !failure_.empty() || stop.stop_requested();
    });
    if (!failure_.empty()) {
      break;
    }
    // Claim everything queued so far as one cycle; mutators keep enqueuing
    // the moment the lock drops (that overlap is the whole amortization).
    auto cycle = std::make_shared<Cycle>();
    cycle->covered = issued_;
    taken_ = issued_;
    cycle->appends.reserve(dirty_shards_.size());
    for (const std::size_t s : dirty_shards_) {
      cycle->appends.push_back({s, std::exchange(pending_[s], Buffer{})});
    }
    dirty_shards_.clear();
    cycle->records = std::exchange(pending_records_, 0);
    cycle->metas = std::exchange(pending_meta_, {});
    for (const ShardAppend& a : cycle->appends) {
      cycle->bytes += a.bytes.size();
    }
    const bool has_hook = post_flush_hook_ != nullptr;
    inflight_.push_back(cycle);
    lock.unlock();

    std::exception_ptr meta_error;
    try {
      // Metadata first: within a cycle the reply-cache floor image must
      // hit the volume before the journal effects it gates (§8.4's
      // never-twice ordering; across cycles the rpc layer waits for the
      // floor ticket before journaling, so floors never trail effects).
      for (const auto& [key, value] : cycle->metas) {
        backend_->put_meta(key, value);
      }
    } catch (...) {
      meta_error = std::current_exception();
    }
    if (meta_error != nullptr || cycle->appends.empty()) {
      // Meta-only cycles settle inline; the ordered drain still holds
      // them behind any earlier cycle whose CQE is outstanding.
      on_cycle_complete(cycle, meta_error);
    } else {
      // With a hook installed the group must survive the write (the hook
      // ships these exact bytes), so the backend gets its own copy;
      // without one, ownership moves as before.
      std::vector<ShardAppend> to_disk =
          has_hook ? cycle->appends : std::move(cycle->appends);
      try {
        backend_->submit_append_group(
            std::move(to_disk), [this, cycle](std::exception_ptr error) {
              on_cycle_complete(cycle, std::move(error));
            });
      } catch (...) {
        // Backends are expected to report through the completion, but a
        // synchronous throw (a decorator that validates, a test double)
        // must latch identically; on_cycle_complete drops the second
        // settle if the backend managed both.
        on_cycle_complete(cycle, std::current_exception());
      }
    }

    lock.lock();
    // The zero-blocking-syscall proof: under an io_uring backend this
    // stays at whatever the metadata writes cost (zero on the pure-mutate
    // path) because the ring, not this thread, runs the write+fdatasync.
    stats_.flusher_io_syscalls = io.writes + io.fsyncs;
  }
  // Shutdown/failure path: async completions still in flight touch this
  // object (mutex_, the cycle deque, the cvs) -- wait them out before the
  // destructor tears those members down.  Every submitted chain completes
  // (the uring reaper errors them at worst), so this terminates.
  inflight_cv_.wait(lock, [&] { return inflight_.empty(); });
}

}  // namespace amoeba::storage
