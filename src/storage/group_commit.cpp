#include "amoeba/storage/group_commit.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "amoeba/common/error.hpp"

namespace amoeba::storage {

GroupCommitter::GroupCommitter(std::shared_ptr<Backend> backend,
                               Options options)
    : backend_(std::move(backend)), options_(options) {
  if (backend_ == nullptr) {
    throw UsageError("GroupCommitter: null backend");
  }
  pending_.resize(backend_->shard_count());
  flusher_ = std::jthread(
      [this](const std::stop_token& stop) { flusher(stop); });
}

GroupCommitter::~GroupCommitter() {
  flusher_.request_stop();
  work_cv_.notify_all();
  // jthread joins; the flusher drains every pending enqueue first, so a
  // server shutting down cleanly never strands acknowledged-to-nobody
  // bytes in the queue.
}

std::shared_ptr<GroupCommitter> GroupCommitter::create(
    const std::shared_ptr<Backend>& backend, Options options) {
  return backend == nullptr ? nullptr
                            : std::make_shared<GroupCommitter>(backend,
                                                               options);
}

GroupCommitter::Ticket GroupCommitter::enqueue(
    std::size_t shard, std::span<const std::uint8_t> bytes) {
  bool wake;
  Ticket ticket;
  {
    const std::lock_guard lock(mutex_);
    Buffer& pending = pending_.at(shard);
    if (pending.empty()) {
      dirty_shards_.push_back(shard);
    }
    pending.insert(pending.end(), bytes.begin(), bytes.end());
    ++pending_records_;
    wake = issued_ == taken_;  // flusher may be asleep: nothing was queued
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

GroupCommitter::Ticket GroupCommitter::enqueue_group(
    std::vector<ShardAppend>&& appends) {
  bool wake;
  Ticket ticket;
  {
    // One mutex hold for the whole group: a flush-cycle boundary can never
    // split it, so the backend batch append (atomic w.r.t. capture())
    // receives the group intact.
    const std::lock_guard lock(mutex_);
    for (const ShardAppend& a : appends) {
      Buffer& pending = pending_.at(a.shard);
      if (pending.empty()) {
        dirty_shards_.push_back(a.shard);
      }
      pending.insert(pending.end(), a.bytes.begin(), a.bytes.end());
      ++pending_records_;
    }
    wake = issued_ == taken_;
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

GroupCommitter::Ticket GroupCommitter::enqueue_meta(std::string_view key,
                                                    Buffer value) {
  bool wake;
  Ticket ticket;
  {
    const std::lock_guard lock(mutex_);
    pending_meta_[std::string(key)] = std::move(value);
    wake = issued_ == taken_;
    ticket = ++issued_;
  }
  if (wake) {
    work_cv_.notify_one();
  }
  return ticket;
}

void GroupCommitter::wait_durable(Ticket ticket) {
  if (ticket == 0) {
    return;
  }
  std::unique_lock lock(mutex_);
  durable_cv_.wait(
      lock, [&] { return durable_ >= ticket || !failure_.empty(); });
  if (durable_ < ticket) {
    throw UsageError("GroupCommitter: flush failed, ticket not durable: " +
                     failure_);
  }
}

bool GroupCommitter::is_durable(Ticket ticket) const {
  if (ticket == 0) {
    return true;
  }
  const std::lock_guard lock(mutex_);
  return durable_ >= ticket;
}

void GroupCommitter::drain() {
  Ticket last;
  {
    const std::lock_guard lock(mutex_);
    last = issued_;
  }
  wait_durable(last);
}

GroupCommitter::Stats GroupCommitter::stats() const {
  const std::lock_guard lock(mutex_);
  return stats_;
}

void GroupCommitter::flusher(const std::stop_token& stop) {
  std::unique_lock lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop.stop_requested() || issued_ > taken_;
    });
    if (issued_ == taken_) {
      return;  // stopped with an empty queue: clean exit
    }
    if (options_.flush_interval.count() > 0 && !stop.stop_requested()) {
      // Deliberate batching window (the --flush-interval experiment knob);
      // the default path skips it and lets fsync latency set the cadence.
      work_cv_.wait_for(lock, options_.flush_interval,
                        [&] { return stop.stop_requested(); });
    }
    // Claim everything queued so far as one cycle; mutators keep enqueuing
    // the moment the lock drops (that overlap is the whole amortization).
    const Ticket covered = issued_;
    taken_ = issued_;
    std::vector<ShardAppend> group;
    group.reserve(dirty_shards_.size());
    for (const std::size_t s : dirty_shards_) {
      group.push_back({s, std::exchange(pending_[s], Buffer{})});
    }
    dirty_shards_.clear();
    const std::uint64_t records = std::exchange(pending_records_, 0);
    auto metas = std::exchange(pending_meta_, {});
    lock.unlock();

    try {
      // Metadata first: within a cycle the reply-cache floor image must
      // hit the volume before the journal effects it gates (§8.4's
      // never-twice ordering; across cycles the rpc layer waits for the
      // floor ticket before journaling, so floors never trail effects).
      for (const auto& [key, value] : metas) {
        backend_->put_meta(key, value);
      }
      if (!group.empty()) {
        bool completed = false;
        backend_->submit_append_group(std::move(group),
                                      [&completed] { completed = true; });
        if (!completed) {
          // The base Backend completes inline; an async (io_uring-style)
          // override that defers completion needs a reaping loop here
          // before durability may advance.  None exists yet, so treat a
          // deferred completion as a contract violation.
          throw UsageError(
              "GroupCommitter: backend deferred completion unsupported");
        }
      }
    } catch (const std::exception& e) {
      lock.lock();
      failure_ = e.what();
      durable_cv_.notify_all();
      return;  // waiters past durable_ are told the truth: not durable
    }

    lock.lock();
    durable_ = std::max(durable_, covered);
    ++stats_.groups;
    stats_.records += records;
    stats_.meta_writes += metas.size();
    stats_.max_group = std::max(stats_.max_group, records);
    durable_cv_.notify_all();
  }
}

}  // namespace amoeba::storage
