#include "amoeba/storage/record.hpp"

namespace amoeba::storage {
namespace {

constexpr std::uint32_t kSnapshotMagic = 0x414D534Eu;  // "AMSN"
constexpr std::uint16_t kSnapshotVersion = 1;

}  // namespace

std::uint32_t frame_checksum(std::span<const std::uint8_t> bytes) {
  std::uint32_t h = 0x811C9DC5u;  // FNV-1a
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x01000193u;
  }
  return h;
}

namespace {

inline void put_u32(Buffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(Buffer& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void patch_u32(Buffer& out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

void encode_record_into(RecordType type, ObjectNumber object,
                        std::uint64_t secret, std::uint64_t lsn,
                        std::span<const std::uint8_t> payload, Buffer& out) {
  // Framed in place (this is the journaling hot path: one reserve, no
  // temporary buffers): length u32 | checksum u32 | body, both patched
  // once the body is written.  Growth stays geometric when records
  // accumulate into one buffer (recovery merges, commit-log GC): a bare
  // reserve(size + frame) would reallocate -- and copy the whole journal
  // -- once per record.
  const std::size_t need = out.size() + 8 + 25 + payload.size();
  if (out.capacity() < need) {
    out.reserve(std::max(need, out.capacity() * 2));
  }
  const std::size_t frame_at = out.size();
  put_u32(out, 0);  // length placeholder
  put_u32(out, 0);  // checksum placeholder
  const std::size_t body_at = out.size();
  out.push_back(static_cast<std::uint8_t>(type));
  put_u32(out, object.value());
  put_u64(out, secret);
  put_u64(out, lsn);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  const auto body = std::span<const std::uint8_t>(out.data() + body_at,
                                                  out.size() - body_at);
  patch_u32(out, frame_at, static_cast<std::uint32_t>(body.size()));
  patch_u32(out, frame_at + 4, frame_checksum(body));
}

void encode_record(const Record& record, Buffer& out) {
  encode_record_into(record.type, record.object, record.secret, record.lsn,
                     record.payload, out);
}

std::vector<Record> decode_journal(std::span<const std::uint8_t> journal,
                                   bool* torn_tail) {
  std::vector<Record> records;
  if (torn_tail != nullptr) {
    *torn_tail = false;
  }
  std::size_t pos = 0;
  while (pos < journal.size()) {
    Reader frame(journal.subspan(pos));
    const std::uint32_t length = frame.u32();
    const std::uint32_t checksum = frame.u32();
    if (!frame.ok() || frame.remaining() < length) {
      if (torn_tail != nullptr) {
        *torn_tail = true;  // torn final append: recovery stops here
      }
      break;
    }
    const auto body = journal.subspan(pos + 8, length);
    if (frame_checksum(body) != checksum) {
      if (torn_tail != nullptr) {
        *torn_tail = true;
      }
      break;
    }
    Reader r(body);
    Record record;
    record.type = static_cast<RecordType>(r.u8());
    record.object = r.object();
    record.secret = r.u64();
    record.lsn = r.u64();
    record.payload = r.bytes();
    if (!r.ok() || record.type < RecordType::create ||
        record.type > RecordType::delta) {
      if (torn_tail != nullptr) {
        *torn_tail = true;
      }
      break;
    }
    records.push_back(std::move(record));
    pos += 8 + length;
  }
  return records;
}

Buffer encode_snapshot(const std::vector<SnapshotSlot>& slots,
                       std::uint64_t applied_lsn) {
  Writer w;
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u64(applied_lsn);
  w.u32(static_cast<std::uint32_t>(slots.size()));
  for (const SnapshotSlot& slot : slots) {
    w.object(slot.object);
    w.u64(slot.secret);
    w.bytes(slot.payload);
  }
  return w.take();
}

bool decode_snapshot(std::span<const std::uint8_t> bytes,
                     std::vector<SnapshotSlot>& out,
                     std::uint64_t& applied_lsn) {
  out.clear();
  applied_lsn = 0;
  if (bytes.empty()) {
    return true;  // fresh shard: no snapshot installed yet
  }
  Reader r(bytes);
  if (r.u32() != kSnapshotMagic || r.u16() != kSnapshotVersion) {
    return false;
  }
  applied_lsn = r.u64();
  const std::uint32_t count = r.u32();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SnapshotSlot slot;
    slot.object = r.object();
    slot.secret = r.u64();
    slot.payload = r.bytes();
    if (!r.ok()) {
      out.clear();
      return false;
    }
    out.push_back(std::move(slot));
  }
  return r.exhausted();
}

std::uint64_t peek_snapshot_lsn(std::span<const std::uint8_t> bytes) {
  Reader r(bytes);
  const std::uint32_t magic = r.u32();
  const std::uint16_t version = r.u16();
  const std::uint64_t applied_lsn = r.u64();
  if (!r.ok() || magic != kSnapshotMagic || version != kSnapshotVersion) {
    return 0;
  }
  return applied_lsn;
}

}  // namespace amoeba::storage
