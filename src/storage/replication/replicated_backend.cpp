#include "amoeba/storage/replication/replicated_backend.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "amoeba/storage/group_commit.hpp"
#include "amoeba/storage/replication/replica.hpp"

namespace amoeba::storage {

std::string_view to_string(AckMode mode) {
  switch (mode) {
    case AckMode::async:
      return "async";
    case AckMode::ack_one:
      return "ack-one";
    case AckMode::ack_all:
      return "ack-all";
  }
  return "?";
}

ReplicatedBackend::ReplicatedBackend(std::shared_ptr<Backend> local,
                                     AckMode mode)
    : local_(std::move(local)), mode_(mode) {
  if (local_ == nullptr) {
    throw UsageError("ReplicatedBackend: null local backend");
  }
  if (dynamic_cast<ReplicatedBackend*>(local_.get()) != nullptr) {
    throw UsageError("ReplicatedBackend: refusing to stack decorators");
  }
}

ReplicatedBackend::~ReplicatedBackend() {
  {
    const std::lock_guard lock(ack_mutex_);
    shutting_down_ = true;
  }
  ack_cv_.notify_all();
  // No mutex_: nothing attaches peers while the destructor runs, and a
  // shipper recovering from a gap takes mutex_ itself -- holding it here
  // would deadlock the join.
  for (const auto& peer : peers_) {
    peer->shipper.request_stop();
    {
      const std::lock_guard plock(peer->mutex);
    }
    peer->cv.notify_all();
  }
  for (const auto& peer : peers_) {
    if (peer->shipper.joinable()) {
      peer->shipper.join();  // shippers touch ack_cv_: join before members die
    }
  }
}

std::size_t ReplicatedBackend::shard_count() const {
  return local_->shard_count();
}

Buffer ReplicatedBackend::read_journal(std::size_t shard) const {
  return local_->read_journal(shard);
}

Buffer ReplicatedBackend::read_snapshot(std::size_t shard) const {
  return local_->read_snapshot(shard);
}

Buffer ReplicatedBackend::get_meta(std::string_view key) const {
  return local_->get_meta(key);
}

std::vector<std::string> ReplicatedBackend::meta_keys() const {
  return local_->meta_keys();
}

bool ReplicatedBackend::empty() const { return local_->empty(); }

void ReplicatedBackend::append_journal(std::size_t shard,
                                       std::span<const std::uint8_t> bytes) {
  local_->append_journal(shard, bytes);
  // Relaxed everywhere committer_bound_ is read: it flips false->true once,
  // before the committer's flusher starts, so every thread that can reach
  // these paths already observes the final value through the committer's
  // own synchronization -- the load needs no ordering of its own.
  if (committer_bound_.load(std::memory_order_relaxed)) {
    return;  // this write reaches backups inside its flush cycle's frame
  }
  // Direct (synchronous-durability) path: ship a mini-cycle.  The store
  // holds the shard lock across this call, so per-shard shipment order
  // matches local journal order.
  const ShardAppend append{shard, Buffer(bytes.begin(), bytes.end())};
  ship_mini_cycle({}, std::span(&append, 1));
}

void ReplicatedBackend::append_journal_batch(
    std::vector<ShardAppend>&& appends) {
  // Relaxed: see append_journal.
  if (committer_bound_.load(std::memory_order_relaxed)) {
    local_->append_journal_batch(std::move(appends));
    return;
  }
  std::vector<ShardAppend> to_ship = appends;  // local write consumes them
  local_->append_journal_batch(std::move(appends));
  ship_mini_cycle({}, to_ship);
}

void ReplicatedBackend::submit_append_group(std::vector<ShardAppend>&& appends,
                                            AppendCompletion complete) {
  // Relaxed: see append_journal.
  if (committer_bound_.load(std::memory_order_relaxed)) {
    // Committer traffic: the forwarded completion fires on the local
    // volume's reaping side (CQE of the linked fdatasync under io_uring);
    // the committer's ordered drain then runs the ship hook strictly
    // after it, in LSN order -- §8.5's acknowledgement rule.
    local_->submit_append_group(std::move(appends), std::move(complete));
    return;
  }
  std::vector<ShardAppend> to_ship = appends;
  local_->submit_append_group(std::move(appends), std::move(complete));
  ship_mini_cycle({}, to_ship);
}

void ReplicatedBackend::install_snapshot(std::size_t shard,
                                         std::span<const std::uint8_t> bytes) {
  local_->install_snapshot(shard, bytes);
  // Compaction ships under either arrangement (it never rides the
  // committer), and never waits for acks: replacing a snapshot is not
  // client-visible durability, so async shipping costs nothing.
  const std::lock_guard lock(mutex_);
  if (peers_.empty()) {
    return;
  }
  (void)broadcast_locked(++next_lsn_, true, shard,
                         Buffer(bytes.begin(), bytes.end()));
}

void ReplicatedBackend::put_meta(std::string_view key,
                                 std::span<const std::uint8_t> value) {
  local_->put_meta(key, value);
  // Relaxed: see append_journal.
  if (committer_bound_.load(std::memory_order_relaxed)) {
    return;  // coalesced metadata ships inside the flush-cycle frame
  }
  if (key.starts_with(kRepMetaPrefix)) {
    return;  // replication-internal keys never leave the volume
  }
  const MetaImage meta{key, value};
  ship_mini_cycle(std::span(&meta, 1), {});
}

void ReplicatedBackend::bind_committer(GroupCommitter& committer) {
  {
    // Relaxed store/load under mutex_: the mutex orders the bind itself;
    // the flag's cross-thread visibility rides the committer's flusher
    // start (see the relaxed-read comment at append_journal).
    const std::lock_guard lock(mutex_);
    if (committer_bound_.load(std::memory_order_relaxed)) {
      throw UsageError("ReplicatedBackend: already bound to a committer");
    }
    committer_bound_.store(true, std::memory_order_relaxed);
  }
  committer.set_post_flush_hook(
      [this](const GroupCommitter::FlushCycle& cycle) {
        ship_group_cycle(*cycle.metas, *cycle.appends);
      });
}

void ReplicatedBackend::attach_peer(std::shared_ptr<ReplicationLink> link) {
  if (link == nullptr) {
    throw UsageError("ReplicatedBackend: null replication link");
  }
  const std::lock_guard lock(mutex_);
  auto peer = std::make_unique<Peer>(std::move(link));
  Peer& ref = *peer;  // unique_ptr in a grow-only vector: address is stable
  ref.shipper = std::jthread(
      [this, &ref](const std::stop_token& stop) { shipper(ref, stop); });
  peers_.push_back(std::move(peer));
  // The new peer's opening shipments rebuild it from our current state
  // (existing peers receive them too and simply fast-forward).  The hook
  // fires after local durability, so any cycle shipped before this point
  // is already on the local volume and therefore inside this resync.
  resync_locked();
}

ReplicatedBackend::Stats ReplicatedBackend::stats() const {
  Stats out;
  out.mode = mode_;
  const std::lock_guard lock(mutex_);
  out.shipped_lsn = next_lsn_;
  out.peers.reserve(peers_.size());
  for (const auto& peer : peers_) {
    const std::lock_guard plock(peer->mutex);
    out.peers.push_back(
        {peer->link->peer_name(), peer->acked, peer->queue.size()});
  }
  return out;
}

void ReplicatedBackend::heartbeat() {
  std::vector<Peer*> peers;
  std::uint64_t shipped;
  {
    const std::lock_guard lock(mutex_);
    shipped = next_lsn_;
    peers.reserve(peers_.size());
    for (const auto& peer : peers_) {
      peers.push_back(peer.get());
    }
  }
  for (Peer* peer : peers) {  // RPCs outside mutex_
    const Result<std::uint64_t> floor = peer->link->heartbeat(shipped);
    if (floor.ok()) {
      const std::lock_guard plock(peer->mutex);
      peer->acked = std::max(peer->acked, floor.value());
    }
  }
}

std::shared_ptr<ReplicatedBackend::Shipment>
ReplicatedBackend::broadcast_locked(std::uint64_t rep_lsn, bool snapshot,
                                    std::size_t shard, Buffer bytes) {
  auto shipment = std::make_shared<Shipment>();
  shipment->rep_lsn = rep_lsn;
  shipment->snapshot = snapshot;
  shipment->shard = shard;
  shipment->bytes = std::move(bytes);
  switch (mode_) {
    case AckMode::async:
      shipment->needed = 0;
      break;
    case AckMode::ack_one:
      shipment->needed = 1;
      break;
    case AckMode::ack_all:
      shipment->needed = peers_.size();
      break;
  }
  for (const auto& peer : peers_) {
    {
      const std::lock_guard plock(peer->mutex);
      peer->queue.push_back(shipment);
    }
    peer->cv.notify_one();
  }
  return shipment;
}

void ReplicatedBackend::await_acks(
    const std::shared_ptr<Shipment>& shipment) {
  if (shipment == nullptr || shipment->needed == 0) {
    return;
  }
  std::unique_lock lock(ack_mutex_);
  ack_cv_.wait(lock, [&] {
    return shutting_down_ || fenced_ || shipment->acks >= shipment->needed;
  });
  if (shipment->acks >= shipment->needed) {
    return;
  }
  if (fenced_) {
    // A backup refused us as promoted: we are the deposed primary.  Fail
    // the durability wait loudly -- under a committer this latches the
    // flusher's failed state, so no mutation is ever reported durable by
    // a primary the cluster has moved past.
    throw UsageError("ReplicatedBackend: backup promoted; primary fenced");
  }
  // Shutting down: the only waiters left are the destructor's own caller
  // (teardown), so an unmet ack count is reported as nothing.
}

void ReplicatedBackend::ship_mini_cycle(std::span<const MetaImage> metas,
                                        std::span<const ShardAppend> appends) {
  std::shared_ptr<Shipment> shipment;
  {
    const std::lock_guard lock(mutex_);
    if (peers_.empty()) {
      return;
    }
    const std::uint64_t lsn = ++next_lsn_;
    shipment = broadcast_locked(lsn, false, 0,
                                encode_cycle_frame(lsn, metas, appends));
  }
  await_acks(shipment);
}

void ReplicatedBackend::ship_group_cycle(
    const std::map<std::string, Buffer, std::less<>>& metas,
    const std::vector<ShardAppend>& appends) {
  std::shared_ptr<Shipment> shipment;
  {
    const std::lock_guard lock(mutex_);
    if (peers_.empty()) {
      return;
    }
    std::vector<MetaImage> images;
    images.reserve(metas.size());
    for (const auto& [key, value] : metas) {
      if (std::string_view(key).starts_with(kRepMetaPrefix)) {
        continue;
      }
      images.push_back({key, value});
    }
    const std::uint64_t lsn = ++next_lsn_;
    shipment = broadcast_locked(lsn, false, 0,
                                encode_cycle_frame(lsn, images, appends));
  }
  await_acks(shipment);
}

void ReplicatedBackend::resync_locked() {
  if (peers_.empty()) {
    return;
  }
  const std::size_t shards = local_->shard_count();
  // Snapshots first -- including empty ones, which reset a shard a stale
  // replica may hold junk in -- each adopting its LSN as the new floor...
  for (std::size_t s = 0; s < shards; ++s) {
    (void)broadcast_locked(++next_lsn_, true, s, local_->read_snapshot(s));
  }
  // ...then one cycle frame carrying every journal tail and every
  // metadata image (minus replication-internal keys), which lands at
  // exactly floor+1.  Cycles already queued behind this point re-apply
  // on top; journal replay's LSN gating makes that a no-op.
  std::vector<ShardAppend> appends;
  for (std::size_t s = 0; s < shards; ++s) {
    Buffer journal = local_->read_journal(s);
    if (!journal.empty()) {
      appends.push_back({s, std::move(journal)});
    }
  }
  std::vector<std::pair<std::string, Buffer>> images;
  for (std::string& key : local_->meta_keys()) {
    if (std::string_view(key).starts_with(kRepMetaPrefix)) {
      continue;
    }
    Buffer value = local_->get_meta(key);
    images.emplace_back(std::move(key), std::move(value));
  }
  std::vector<MetaImage> metas;
  metas.reserve(images.size());
  for (const auto& [key, value] : images) {
    metas.push_back({key, value});
  }
  const std::uint64_t lsn = ++next_lsn_;
  (void)broadcast_locked(lsn, false, 0,
                         encode_cycle_frame(lsn, metas, appends));
}

void ReplicatedBackend::shipper(Peer& peer, const std::stop_token& stop) {
  for (;;) {
    std::shared_ptr<Shipment> next;
    {
      std::unique_lock lock(peer.mutex);
      peer.cv.wait(lock, [&] {
        return stop.stop_requested() || !peer.queue.empty();
      });
      if (peer.queue.empty()) {
        return;  // stopped with nothing left to offer: clean exit
      }
      next = peer.queue.front();
    }
    bool acked = false;
    bool rotated = false;
    for (;;) {
      const Result<std::uint64_t> floor =
          next->snapshot ? peer.link->ship_snapshot(next->rep_lsn,
                                                    next->shard, next->bytes)
                         : peer.link->ship_cycle(next->bytes);
      if (floor.ok()) {
        {
          const std::lock_guard plock(peer.mutex);
          peer.acked = std::max(peer.acked, floor.value());
        }
        acked = true;
        break;
      }
      if (floor.error() == ErrorCode::immutable) {
        // The backup was promoted: this primary is deposed.  Stop
        // offering and fence every durability waiter.
        {
          const std::lock_guard lock(ack_mutex_);
          fenced_ = true;
        }
        ack_cv_.notify_all();
        return;
      }
      if (stop.stop_requested()) {
        return;  // one post-stop attempt per shipment: a dead backup
                 // must not hang shutdown
      }
      if (floor.error() == ErrorCode::conflict) {
        // LSN gap: the backup is behind our stream (it restarted, or
        // lost state).  Queue a resync broadcast -- unless one is
        // already pending here (its snapshot shipments are still in the
        // queue) -- then rotate the gapped shipment behind it: once the
        // snapshots adopt the floor, everything rotated lands at or
        // below it and acks as a duplicate.  (Every queued shipment's
        // bytes are on the local volume -- shipments are broadcast after
        // their local write -- so the resync read subsumes them all.)
        bool resync_pending;
        {
          const std::lock_guard plock(peer.mutex);
          resync_pending =
              std::any_of(peer.queue.begin(), peer.queue.end(),
                          [](const auto& s) { return s->snapshot; });
        }
        if (!resync_pending) {
          const std::lock_guard lock(mutex_);
          resync_locked();
        }
        rotated = true;
        break;
      }
      // Transient link failure (timeout, drop): retry forever.  The
      // at-most-once transaction layer plus the replica's floor make the
      // retransmission harmless.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    {
      const std::lock_guard plock(peer.mutex);
      peer.queue.pop_front();  // only this thread pops: front is `next`
      if (rotated) {
        peer.queue.push_back(next);
      }
    }
    if (acked) {
      {
        const std::lock_guard lock(ack_mutex_);
        ++next->acks;
      }
      ack_cv_.notify_all();
    }
  }
}

}  // namespace amoeba::storage
