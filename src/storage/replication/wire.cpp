#include "amoeba/storage/replication/wire.hpp"

#include "amoeba/storage/record.hpp"

namespace amoeba::storage {

Buffer encode_cycle_frame(std::uint64_t rep_lsn,
                          std::span<const MetaImage> metas,
                          std::span<const ShardAppend> appends) {
  Writer w;
  w.u64(rep_lsn);
  w.u32(static_cast<std::uint32_t>(metas.size()));
  for (const MetaImage& meta : metas) {
    w.str(meta.key);
    w.bytes(meta.value);
  }
  w.u32(static_cast<std::uint32_t>(appends.size()));
  for (const ShardAppend& append : appends) {
    w.u32(static_cast<std::uint32_t>(append.shard));
    w.bytes(append.bytes);
  }
  const Buffer body = w.take();
  Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.size()));
  frame.u32(frame_checksum(body));
  frame.raw(body);
  return frame.take();
}

bool decode_cycle_frame(std::span<const std::uint8_t> bytes,
                        CycleFrame& out) {
  Reader header(bytes);
  const std::uint32_t length = header.u32();
  const std::uint32_t checksum = header.u32();
  if (!header.ok() || header.remaining() != length) {
    return false;  // truncated or trailing garbage: not one whole frame
  }
  const auto body = bytes.subspan(8, length);
  if (frame_checksum(body) != checksum) {
    return false;
  }
  Reader r(body);
  out.rep_lsn = r.u64();
  const std::uint32_t meta_count = r.u32();
  if (!r.ok() || meta_count > r.remaining()) {
    return false;  // hostile count: reject before allocating
  }
  out.metas.clear();
  out.metas.reserve(meta_count);
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    std::string key = r.str();
    Buffer value = r.bytes();
    if (!r.ok()) {
      return false;
    }
    out.metas.emplace_back(std::move(key), std::move(value));
  }
  const std::uint32_t append_count = r.u32();
  if (!r.ok() || append_count > r.remaining()) {
    return false;
  }
  out.appends.clear();
  out.appends.reserve(append_count);
  for (std::uint32_t i = 0; i < append_count; ++i) {
    const std::uint32_t shard = r.u32();
    Buffer record_bytes = r.bytes();
    if (!r.ok()) {
      return false;
    }
    out.appends.push_back(
        {static_cast<std::size_t>(shard), std::move(record_bytes)});
  }
  return r.exhausted();
}

}  // namespace amoeba::storage
