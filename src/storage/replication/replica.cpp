#include "amoeba/storage/replication/replica.hpp"

#include <utility>

#include "amoeba/common/serial.hpp"
#include "amoeba/storage/replication/wire.hpp"

namespace amoeba::storage {

ReplicaApplier::ReplicaApplier(std::shared_ptr<Backend> local)
    : local_(std::move(local)) {
  if (local_ == nullptr) {
    throw UsageError("ReplicaApplier: null backend");
  }
  const Buffer floor = local_->get_meta(kRepAppliedKey);
  if (!floor.empty()) {
    Reader r(floor);
    const std::uint64_t applied = r.u64();
    if (r.exhausted()) {
      applied_ = applied;
    }
  }
}

void ReplicaApplier::persist_floor_locked() {
  Writer w;
  w.u64(applied_);
  local_->put_meta(kRepAppliedKey, w.take());
}

Result<std::uint64_t> ReplicaApplier::apply_cycle(
    std::span<const std::uint8_t> frame) {
  const std::lock_guard lock(mutex_);
  if (promoted_) {
    return ErrorCode::immutable;  // fenced: this volume has a new primary
  }
  CycleFrame cycle;
  if (!decode_cycle_frame(frame, cycle)) {
    return ErrorCode::invalid_argument;
  }
  if (cycle.rep_lsn <= applied_) {
    return applied_;  // duplicate shipment: ack without re-applying
  }
  if (cycle.rep_lsn != applied_ + 1) {
    return ErrorCode::conflict;  // gap: the primary must resync us
  }
  for (auto& [key, value] : cycle.metas) {
    local_->put_meta(key, value);
  }
  if (!cycle.appends.empty()) {
    local_->append_journal_batch(std::move(cycle.appends));
  }
  applied_ = cycle.rep_lsn;
  persist_floor_locked();
  return applied_;
}

Result<std::uint64_t> ReplicaApplier::install_snapshot(
    std::uint64_t rep_lsn, std::size_t shard,
    std::span<const std::uint8_t> bytes) {
  const std::lock_guard lock(mutex_);
  if (promoted_) {
    return ErrorCode::immutable;
  }
  if (rep_lsn <= applied_) {
    return applied_;
  }
  if (shard >= local_->shard_count()) {
    return ErrorCode::invalid_argument;
  }
  local_->install_snapshot(shard, bytes);
  // Adopt, don't gap-check: a snapshot subsumes every shipment behind it,
  // and in-order FIFO shipping already offered those to us.  This is what
  // lets a full resync land on any floor.
  applied_ = rep_lsn;
  persist_floor_locked();
  return applied_;
}

std::uint64_t ReplicaApplier::promote() {
  const std::lock_guard lock(mutex_);
  promoted_ = true;
  return applied_;
}

std::uint64_t ReplicaApplier::applied() const {
  const std::lock_guard lock(mutex_);
  return applied_;
}

bool ReplicaApplier::promoted() const {
  const std::lock_guard lock(mutex_);
  return promoted_;
}

}  // namespace amoeba::storage
