#include "amoeba/storage/backend.hpp"

#include <algorithm>
#include <cctype>
#include <iterator>

#include "amoeba/common/error.hpp"

namespace amoeba::storage {
namespace {

void check_shards(std::size_t shards) {
  if (shards == 0) {
    throw UsageError("storage::Backend: need at least one shard");
  }
}

}  // namespace

// ----------------------------------------------------------- MemoryBackend

MemoryBackend::MemoryBackend(std::size_t shards) {
  check_shards(shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void MemoryBackend::append_journal(std::size_t shard,
                                   std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  {
    const std::lock_guard lock(s.mutex);
    s.journal.insert(s.journal.end(), bytes.begin(), bytes.end());
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  hook_after_append();
}

void MemoryBackend::append_journal_batch(std::vector<ShardAppend>&& appends) {
  if (appends.empty()) {
    return;
  }
  // All involved shard locks held together (ascending order, matching
  // capture()), so a crash image contains the whole group or none of it.
  std::vector<std::size_t> order;
  order.reserve(appends.size());
  for (const ShardAppend& a : appends) {
    order.push_back(a.shard);
  }
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(order.size());
  for (const std::size_t s : order) {
    locks.emplace_back(shards_.at(s)->mutex);
  }
  for (const ShardAppend& a : appends) {
    Buffer& journal = shards_[a.shard]->journal;
    journal.insert(journal.end(), a.bytes.begin(), a.bytes.end());
  }
  locks.clear();
  appends_.fetch_add(appends.size(), std::memory_order_relaxed);
  hook_after_append();
}

Buffer MemoryBackend::read_journal(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  return s.journal;
}

void MemoryBackend::install_snapshot(std::size_t shard,
                                     std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  s.snapshot.assign(bytes.begin(), bytes.end());
  s.journal.clear();  // compaction: the snapshot subsumes the log
}

Buffer MemoryBackend::read_snapshot(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  return s.snapshot;
}

void MemoryBackend::put_meta(std::string_view key,
                             std::span<const std::uint8_t> value) {
  const std::lock_guard lock(meta_mutex_);
  meta_[std::string(key)] = Buffer(value.begin(), value.end());
}

Buffer MemoryBackend::get_meta(std::string_view key) const {
  const std::lock_guard lock(meta_mutex_);
  const auto it = meta_.find(key);
  return it == meta_.end() ? Buffer{} : it->second;
}

bool MemoryBackend::empty() const {
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    if (!shard->journal.empty() || !shard->snapshot.empty()) {
      return false;
    }
  }
  const std::lock_guard lock(meta_mutex_);
  return meta_.empty();
}

void MemoryBackend::set_append_hook(std::function<void(std::uint64_t)> hook) {
  const std::lock_guard lock(hook_mutex_);
  hook_ = std::move(hook);
  hook_set_.store(hook_ != nullptr, std::memory_order_release);
}

void MemoryBackend::hook_after_append() {
  if (!hook_set_.load(std::memory_order_acquire)) {
    return;  // fast path: no barrier armed, no lock taken
  }
  std::function<void(std::uint64_t)> hook;
  {
    const std::lock_guard lock(hook_mutex_);
    hook = hook_;
  }
  if (hook) {
    // Outside every shard lock: the hook may capture() the volume.
    hook(appends_.load(std::memory_order_relaxed));
  }
}

std::shared_ptr<MemoryBackend> MemoryBackend::capture() const {
  auto image = std::make_shared<MemoryBackend>(shards_.size());
  // Every shard lock ascending, then meta: multi-shard append groups are
  // either fully on the image or fully absent.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    image->shards_[s]->journal = shards_[s]->journal;
    image->shards_[s]->snapshot = shards_[s]->snapshot;
  }
  {
    const std::lock_guard meta_lock(meta_mutex_);
    image->meta_ = meta_;
  }
  image->appends_.store(appends_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return image;
}

// ------------------------------------------------------------- FileBackend

FileBackend::FileBackend(std::filesystem::path directory, std::size_t shards)
    : directory_(std::move(directory)) {
  check_shards(shards);
  std::filesystem::create_directories(directory_);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->journal.open(journal_path(s),
                        std::ios::binary | std::ios::app);
    if (!shard->journal) {
      throw UsageError("FileBackend: cannot open journal in " +
                       directory_.string());
    }
    shards_.push_back(std::move(shard));
  }
}

std::filesystem::path FileBackend::journal_path(std::size_t shard) const {
  return directory_ / ("shard-" + std::to_string(shard) + ".journal");
}

std::filesystem::path FileBackend::snapshot_path(std::size_t shard) const {
  return directory_ / ("shard-" + std::to_string(shard) + ".snap");
}

std::filesystem::path FileBackend::meta_path(std::string_view key) const {
  std::string safe;
  for (const char c : key) {
    safe.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  return directory_ / ("meta-" + safe + ".bin");
}

void FileBackend::append_journal(std::size_t shard,
                                 std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  s.journal.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
  s.journal.flush();
  if (!s.journal) {
    // A write-ahead append that did not reach the disk must not be
    // reported as durable -- the store's caller would otherwise reply to
    // a client with an effect the volume cannot recover.
    throw UsageError("FileBackend: journal append failed (disk full?) in " +
                     directory_.string());
  }
}

void FileBackend::append_journal_batch(std::vector<ShardAppend>&& appends) {
  // A real disk offers no cross-file atomicity; per-shard appends with
  // torn-tail-tolerant framing are the honest contract here.
  for (const ShardAppend& a : appends) {
    append_journal(a.shard, a.bytes);
  }
}

namespace {

[[nodiscard]] Buffer read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {};
  }
  return Buffer(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
}

}  // namespace

Buffer FileBackend::read_journal(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  return read_file(journal_path(shard));
}

void FileBackend::install_snapshot(std::size_t shard,
                                   std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  const auto tmp = snapshot_path(shard).string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    if (!out) {
      // The snapshot never made it to disk intact: abort BEFORE the
      // rename/truncate, keeping the old snapshot + journal -- the
      // shard's only recoverable copy -- untouched.
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw UsageError("FileBackend: snapshot write failed (disk full?) in " +
                       directory_.string());
    }
  }
  std::filesystem::rename(tmp, snapshot_path(shard));
  // Truncate-and-reopen the journal: records are replay-idempotent, so a
  // crash between the rename and this truncate only replays onto state
  // the snapshot already holds.
  s.journal.close();
  s.journal.open(journal_path(shard), std::ios::binary | std::ios::trunc);
  s.journal.close();
  s.journal.open(journal_path(shard), std::ios::binary | std::ios::app);
}

Buffer FileBackend::read_snapshot(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  return read_file(snapshot_path(shard));
}

void FileBackend::put_meta(std::string_view key,
                           std::span<const std::uint8_t> value) {
  const std::lock_guard lock(meta_mutex_);
  const auto path = meta_path(key);
  const auto tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.size()));
    out.close();
    if (!out) {
      // An unwritten floor image must not replace the durable one (the
      // write-ahead ordering of §8.4 depends on it).
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw UsageError("FileBackend: metadata write failed (disk full?) in " +
                       directory_.string());
    }
  }
  std::filesystem::rename(tmp, path);
}

Buffer FileBackend::get_meta(std::string_view key) const {
  const std::lock_guard lock(meta_mutex_);
  return read_file(meta_path(key));
}

bool FileBackend::empty() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::error_code ec;
    if (std::filesystem::file_size(journal_path(s), ec) > 0 && !ec) {
      return false;
    }
    if (std::filesystem::exists(snapshot_path(s), ec)) {
      return false;
    }
  }
  const std::lock_guard lock(meta_mutex_);
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_)) {
    const auto name = entry.path().filename().string();
    if (name.starts_with("meta-")) {
      return false;
    }
  }
  return true;
}

}  // namespace amoeba::storage
