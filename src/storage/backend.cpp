#include "amoeba/storage/backend.hpp"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <exception>
#include <fstream>
#include <iterator>

#include "amoeba/common/error.hpp"
#include "amoeba/storage/record.hpp"

namespace amoeba::storage {
namespace {

void check_shards(std::size_t shards) {
  if (shards == 0) {
    throw UsageError("storage::Backend: need at least one shard");
  }
}

}  // namespace

IoCounters& this_thread_io_counters() {
  // One instance per thread: the mutator asserts ITS counters stayed flat
  // while the uring reaper was doing the writing, so the counters must not
  // be shared across threads.
  thread_local IoCounters counters;
  return counters;
}

// ----------------------------------------------------------------- Backend

void Backend::submit_append_group(std::vector<ShardAppend>&& appends,
                                  AppendCompletion complete) {
  // Synchronous adapter: append_journal_batch is durable on return, so the
  // completion fires inline.  An async backend overrides this to complete
  // from its reaping side instead.
  std::exception_ptr error;
  try {
    append_journal_batch(std::move(appends));
  } catch (...) {
    error = std::current_exception();
  }
  if (complete) {
    complete(error);
  } else if (error) {
    std::rethrow_exception(error);
  }
}

// ----------------------------------------------------------- MemoryBackend

MemoryBackend::MemoryBackend(std::size_t shards) {
  check_shards(shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void MemoryBackend::append_journal(std::size_t shard,
                                   std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  {
    const std::lock_guard lock(s.mutex);
    s.journal.insert(s.journal.end(), bytes.begin(), bytes.end());
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  hook_after_append();
}

void MemoryBackend::append_journal_batch(std::vector<ShardAppend>&& appends) {
  if (appends.empty()) {
    return;
  }
  // All involved shard locks held together (ascending order, matching
  // capture()), so a crash image contains the whole group or none of it.
  std::vector<std::size_t> order;
  order.reserve(appends.size());
  for (const ShardAppend& a : appends) {
    order.push_back(a.shard);
  }
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(order.size());
  for (const std::size_t s : order) {
    locks.emplace_back(shards_.at(s)->mutex);
  }
  for (const ShardAppend& a : appends) {
    Buffer& journal = shards_[a.shard]->journal;
    journal.insert(journal.end(), a.bytes.begin(), a.bytes.end());
  }
  locks.clear();
  appends_.fetch_add(appends.size(), std::memory_order_relaxed);
  hook_after_append();
}

Buffer MemoryBackend::read_journal(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  return s.journal;
}

void MemoryBackend::install_snapshot(std::size_t shard,
                                     std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  s.snapshot.assign(bytes.begin(), bytes.end());
  s.journal.clear();  // compaction: the snapshot subsumes the log
}

Buffer MemoryBackend::read_snapshot(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  return s.snapshot;
}

void MemoryBackend::put_meta(std::string_view key,
                             std::span<const std::uint8_t> value) {
  const std::lock_guard lock(meta_mutex_);
  meta_[std::string(key)] = Buffer(value.begin(), value.end());
}

Buffer MemoryBackend::get_meta(std::string_view key) const {
  const std::lock_guard lock(meta_mutex_);
  const auto it = meta_.find(key);
  return it == meta_.end() ? Buffer{} : it->second;
}

std::vector<std::string> MemoryBackend::meta_keys() const {
  const std::lock_guard lock(meta_mutex_);
  std::vector<std::string> keys;
  keys.reserve(meta_.size());
  for (const auto& [key, value] : meta_) {
    keys.push_back(key);
  }
  return keys;
}

bool MemoryBackend::empty() const {
  for (const auto& shard : shards_) {
    const std::lock_guard lock(shard->mutex);
    if (!shard->journal.empty() || !shard->snapshot.empty()) {
      return false;
    }
  }
  const std::lock_guard lock(meta_mutex_);
  return meta_.empty();
}

void MemoryBackend::set_append_hook(std::function<void(std::uint64_t)> hook) {
  const std::lock_guard lock(hook_mutex_);
  hook_ = std::move(hook);
  hook_set_.store(hook_ != nullptr, std::memory_order_release);
}

void MemoryBackend::hook_after_append() {
  if (!hook_set_.load(std::memory_order_acquire)) {
    return;  // fast path: no barrier armed, no lock taken
  }
  std::function<void(std::uint64_t)> hook;
  {
    const std::lock_guard lock(hook_mutex_);
    hook = hook_;
  }
  if (hook) {
    // Outside every shard lock: the hook may capture() the volume.
    hook(appends_.load(std::memory_order_relaxed));
  }
}

std::shared_ptr<MemoryBackend> MemoryBackend::capture() const {
  auto image = std::make_shared<MemoryBackend>(shards_.size());
  // Every shard lock ascending, then meta: multi-shard append groups are
  // either fully on the image or fully absent.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    locks.emplace_back(shard->mutex);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    image->shards_[s]->journal = shards_[s]->journal;
    image->shards_[s]->snapshot = shards_[s]->snapshot;
  }
  {
    const std::lock_guard meta_lock(meta_mutex_);
    image->meta_ = meta_;
  }
  image->appends_.store(appends_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
  return image;
}

// ------------------------------------------------------------- FileBackend

namespace {

/// Loops write(2) until every byte is on the fd (short writes, EINTR).
void write_all(int fd, std::span<const std::uint8_t> bytes,
               const std::filesystem::path& dir, const char* what) {
  ++this_thread_io_counters().writes;
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw UsageError(std::string("FileBackend: ") + what + " write failed (" +
                       std::strerror(errno) + ") in " + dir.string());
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::filesystem::path& dir,
                    const char* what) {
  ++this_thread_io_counters().fsyncs;
  if (::fsync(fd) != 0) {
    throw UsageError(std::string("FileBackend: ") + what + " fsync failed (" +
                     std::strerror(errno) + ") in " + dir.string());
  }
}

[[nodiscard]] Buffer read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return {};
  }
  const std::streamsize size = std::max<std::streamsize>(in.tellg(), 0);
  Buffer out(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(out.data()), size);
  }
  return out;
}

// Commit-log group frame: `length u32 | checksum u32 | body`, where body is
// `count u32 | count x (shard u32, len u32, len bytes)` and each entry's
// bytes are that shard's already-framed journal records.  The checksum
// covers the WHOLE body, so a group is on the recovered volume entirely or
// not at all -- the cross-shard atomicity a pile of per-shard files cannot
// provide.
constexpr std::uint64_t kCommitLogGcBytes = std::uint64_t{8} << 20;

inline std::uint32_t load_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

inline std::uint64_t load_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(load_u32(p)) |
         static_cast<std::uint64_t>(load_u32(p + 4)) << 32;
}

inline void put_u32(Buffer& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void patch_u32(Buffer& out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Walks commit-log group frames, invoking `entry(shard, record_bytes)` for
/// every entry of every intact frame.  Stops silently at the first torn or
/// corrupt frame: a crash mid-append loses the unacknowledged tail group
/// and nothing before it.
template <typename Fn>
void for_each_commit_entry(std::span<const std::uint8_t> log, Fn&& entry) {
  std::size_t pos = 0;
  while (pos < log.size()) {
    Reader frame(log.subspan(pos));
    const std::uint32_t length = frame.u32();
    const std::uint32_t checksum = frame.u32();
    if (!frame.ok() || frame.remaining() < length) {
      return;  // torn tail: the final group never got acknowledged
    }
    const auto body = log.subspan(pos + 8, length);
    if (frame_checksum(body) != checksum) {
      return;
    }
    Reader r(body);
    const std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t shard = r.u32();
      const Buffer bytes = r.bytes();
      if (!r.ok()) {
        return;  // checksummed body should never underrun; stop defensively
      }
      entry(static_cast<std::size_t>(shard), bytes);
    }
    pos += 8 + length;
  }
}

}  // namespace

FileBackend::FileBackend(std::filesystem::path directory, std::size_t shards)
    : directory_(std::move(directory)) {
  check_shards(shards);
  std::filesystem::create_directories(directory_);
  dir_fd_ = ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd_ < 0) {
    throw UsageError("FileBackend: cannot open directory " +
                     directory_.string());
  }
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->journal_fd =
        ::open(journal_path(s).c_str(),
               O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (shard->journal_fd < 0) {
      throw UsageError("FileBackend: cannot open journal in " +
                       directory_.string());
    }
    shards_.push_back(std::move(shard));
  }
  commit_fd_ = ::open(commit_log_path().c_str(),
                      O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (commit_fd_ < 0) {
    throw UsageError("FileBackend: cannot open commit log in " +
                     directory_.string());
  }
  const off_t size = ::lseek(commit_fd_, 0, SEEK_END);
  commit_log_bytes_ = size > 0 ? static_cast<std::uint64_t>(size) : 0;
  // GC floors: a commit-log record at or below its shard's snapshot LSN is
  // already subsumed.  Seed from the on-disk snapshots so a reopened
  // volume's first GC is as effective as a long-lived one's.
  commit_floor_.assign(shards, 0);
  for (std::size_t s = 0; s < shards; ++s) {
    commit_floor_[s] = peek_snapshot_lsn(read_file(snapshot_path(s)));
  }
  // Newly created journal/commit-log files live in the directory inode;
  // without this fsync a crash could unlink them even after their contents
  // were acknowledged durable.
  fsync_or_throw(dir_fd_, directory_, "volume open");
}

FileBackend::~FileBackend() {
  for (const auto& shard : shards_) {
    if (shard->journal_fd >= 0) {
      ::close(shard->journal_fd);
    }
  }
  if (commit_fd_ >= 0) {
    ::close(commit_fd_);
  }
  if (dir_fd_ >= 0) {
    ::close(dir_fd_);
  }
}

std::filesystem::path FileBackend::journal_path(std::size_t shard) const {
  return directory_ / ("shard-" + std::to_string(shard) + ".journal");
}

std::filesystem::path FileBackend::snapshot_path(std::size_t shard) const {
  return directory_ / ("shard-" + std::to_string(shard) + ".snap");
}

std::filesystem::path FileBackend::commit_log_path() const {
  return directory_ / "commit.log";
}

namespace {

/// Filename-safe, LOSSLESS key encoding: alphanumerics and '-' pass
/// through, every other byte becomes %XX.  Reversible so meta_keys() can
/// reconstruct the original keys from a directory listing (the replication
/// resync path replays them on the backup under their true names).
[[nodiscard]] std::string escape_meta_key(std::string_view key) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string safe;
  safe.reserve(key.size());
  for (const char c : key) {
    const auto byte = static_cast<unsigned char>(c);
    if (std::isalnum(byte) != 0 || c == '-') {
      safe.push_back(c);
    } else {
      safe.push_back('%');
      safe.push_back(kHex[byte >> 4]);
      safe.push_back(kHex[byte & 0xF]);
    }
  }
  return safe;
}

[[nodiscard]] std::string unescape_meta_key(std::string_view safe) {
  std::string key;
  key.reserve(safe.size());
  for (std::size_t i = 0; i < safe.size(); ++i) {
    if (safe[i] == '%' && i + 2 < safe.size()) {
      const auto nibble = [](char c) -> int {
        if (c >= '0' && c <= '9') {
          return c - '0';
        }
        if (c >= 'A' && c <= 'F') {
          return c - 'A' + 10;
        }
        return -1;
      };
      const int hi = nibble(safe[i + 1]);
      const int lo = nibble(safe[i + 2]);
      if (hi >= 0 && lo >= 0) {
        key.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    key.push_back(safe[i]);
  }
  return key;
}

}  // namespace

std::filesystem::path FileBackend::meta_path(std::string_view key) const {
  return directory_ / ("meta-" + escape_meta_key(key) + ".bin");
}

void FileBackend::append_journal(std::size_t shard,
                                 std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  // A write-ahead append that did not reach the disk must not be reported
  // as durable -- the store's caller would otherwise reply to a client
  // with an effect the volume cannot recover.  Hence the real fsync; the
  // per-record cost of this path is exactly what the group-commit flusher
  // amortizes away.
  write_all(s.journal_fd, bytes, directory_, "journal");
  fsync_or_throw(s.journal_fd, directory_, "journal");
}

void FileBackend::append_journal_batch(std::vector<ShardAppend>&& appends) {
  // A real disk offers no cross-file atomicity; per-shard gathered appends
  // with torn-tail-tolerant framing are the honest contract here.  All
  // entries of one shard go down as a single contiguous write (the flusher
  // already concatenated its queue per shard, so the common case is one
  // writev entry per touched shard), then ONE fsync per touched fd --
  // grouping is where the whole PR's win comes from.
  std::vector<std::size_t> touched;
  touched.reserve(appends.size());
  for (const ShardAppend& a : appends) {
    touched.push_back(a.shard);
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (const std::size_t shard : touched) {
    Shard& s = *shards_.at(shard);
    const std::lock_guard lock(s.mutex);
    std::vector<iovec> iov;
    for (const ShardAppend& a : appends) {
      if (a.shard == shard && !a.bytes.empty()) {
        iov.push_back({const_cast<std::uint8_t*>(a.bytes.data()),
                       a.bytes.size()});
      }
    }
    std::size_t at = 0;
    while (at < iov.size()) {
      const std::size_t batch = std::min<std::size_t>(iov.size() - at, 512);
      ++this_thread_io_counters().writes;
      ssize_t n = ::writev(s.journal_fd, iov.data() + at,
                           static_cast<int>(batch));
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        throw UsageError("FileBackend: journal writev failed (" +
                         std::string(std::strerror(errno)) + ") in " +
                         directory_.string());
      }
      // Consume fully written iovecs; resume a partially written one with
      // a plain write_all on its remainder (short writev tails are rare
      // enough that simplicity beats iovec surgery).
      while (at < iov.size() &&
             n >= static_cast<ssize_t>(iov[at].iov_len)) {
        n -= static_cast<ssize_t>(iov[at].iov_len);
        ++at;
      }
      if (at < iov.size() && n > 0) {
        const auto* base = static_cast<const std::uint8_t*>(iov[at].iov_base);
        write_all(s.journal_fd,
                  {base + n, iov[at].iov_len - static_cast<std::size_t>(n)},
                  directory_, "journal");
        ++at;
      }
    }
    fsync_or_throw(s.journal_fd, directory_, "journal");
  }
}

Buffer FileBackend::read_journal(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  // Both locks (std::scoped_lock's deadlock-avoiding acquire): the shard's
  // own journal file and its commit-log records must come from one
  // consistent instant.
  const std::scoped_lock lock(s.mutex, commit_mutex_);
  Buffer own = read_file(journal_path(shard));
  const Buffer grouped = commit_log_records_locked(shard);
  if (grouped.empty()) {
    return own;
  }
  if (own.empty()) {
    return grouped;
  }
  // Sync appends and group commits interleave in wall time, but each
  // stamps the shard's monotone LSN sequence at encode time (under the
  // store's shard lock), so an LSN merge reconstructs the true order.
  const std::vector<Record> a = decode_journal(own);
  const std::vector<Record> b = decode_journal(grouped);
  Buffer merged;
  merged.reserve(own.size() + grouped.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() || j < b.size()) {
    const bool from_own =
        j == b.size() || (i < a.size() && a[i].lsn <= b[j].lsn);
    encode_record(from_own ? a[i++] : b[j++], merged);
  }
  return merged;
}

Buffer FileBackend::commit_log_records_locked(std::size_t shard) const {
  // An async subclass may still have acknowledged-to-nobody frames in
  // flight; recovery must read a log with every completed frame on it.
  quiesce_commit_locked();
  const Buffer log = read_file(commit_log_path());
  Buffer out;
  for_each_commit_entry(log, [&](std::size_t sh, const Buffer& bytes) {
    if (sh == shard) {
      out.insert(out.end(), bytes.begin(), bytes.end());
    }
  });
  return out;
}

void FileBackend::encode_group_frame(const std::vector<ShardAppend>& appends,
                                     Buffer& frame) {
  frame.clear();
  std::size_t total = 12;
  for (const ShardAppend& a : appends) {
    total += 8 + a.bytes.size();
  }
  frame.reserve(total);
  put_u32(frame, 0);  // length placeholder
  put_u32(frame, 0);  // checksum placeholder
  const std::size_t body_at = frame.size();
  put_u32(frame, static_cast<std::uint32_t>(appends.size()));
  for (const ShardAppend& a : appends) {
    put_u32(frame, static_cast<std::uint32_t>(a.shard));
    put_u32(frame, static_cast<std::uint32_t>(a.bytes.size()));
    frame.insert(frame.end(), a.bytes.begin(), a.bytes.end());
  }
  const auto body = std::span<const std::uint8_t>(frame.data() + body_at,
                                                  frame.size() - body_at);
  patch_u32(frame, 0, static_cast<std::uint32_t>(body.size()));
  patch_u32(frame, 4, frame_checksum(body));
}

void FileBackend::submit_append_group(std::vector<ShardAppend>&& appends,
                                      AppendCompletion complete) {
  std::erase_if(appends,
                [](const ShardAppend& a) { return a.bytes.empty(); });
  std::exception_ptr error;
  try {
    if (!appends.empty()) {
      const std::lock_guard lock(commit_mutex_);
      encode_group_frame(appends, commit_frame_);
      // The whole point of the commit log: one contiguous write and ONE
      // fsync make the entire group durable, where the per-shard journal
      // files would pay one fsync per touched shard.
      write_all(commit_fd_, commit_frame_, directory_, "commit log");
      fsync_or_throw(commit_fd_, directory_, "commit log");
      commit_log_bytes_ += commit_frame_.size();
    }
  } catch (...) {
    error = std::current_exception();
  }
  if (complete) {
    complete(error);
  } else if (error) {
    std::rethrow_exception(error);
  }
}

void FileBackend::replace_file_durably(const std::filesystem::path& path,
                                       std::span<const std::uint8_t> bytes,
                                       const char* what) {
  const auto tmp = path.string() + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw UsageError(std::string("FileBackend: cannot open temp ") + what +
                     " in " + directory_.string());
  }
  try {
    // Content must be on the platter BEFORE the rename makes it reachable:
    // an unwritten image must never replace the durable one (the old copy
    // is the shard's only recoverable state).
    write_all(fd, bytes, directory_, what);
    fsync_or_throw(fd, directory_, what);
  } catch (...) {
    ::close(fd);
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  ::close(fd);
  std::filesystem::rename(tmp, path);
  // The rename itself lives in the directory inode; without this fsync a
  // crash can roll the directory back to the old entry even though the
  // new file's content is safe.
  fsync_or_throw(dir_fd_, directory_, what);
}

void FileBackend::install_snapshot(std::size_t shard,
                                   std::span<const std::uint8_t> bytes) {
  Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  replace_file_durably(snapshot_path(shard), bytes, "snapshot");
  // Truncate the journal: records are replay-idempotent and LSN-gated, so
  // a crash between the rename and this truncate only replays records the
  // snapshot already holds.  O_APPEND repositions every later write, so
  // the fd stays valid across the truncate.
  if (::ftruncate(s.journal_fd, 0) != 0) {
    throw UsageError("FileBackend: journal truncate failed in " +
                     directory_.string());
  }
  fsync_or_throw(s.journal_fd, directory_, "journal");
  // Advance the commit-log GC floor (every record of this shard already in
  // the log was framed -- LSN-stamped -- before this snapshot was encoded,
  // so the snapshot subsumes them all), and rewrite the log once it has
  // grown past the threshold.  LSN gating makes the lag harmless: a stale
  // record left in the log replays as a no-op.
  const std::lock_guard commit_lock(commit_mutex_);
  commit_floor_.at(shard) =
      std::max(commit_floor_[shard], peek_snapshot_lsn(bytes));
  // Threshold plus a low-water doubling guard: when a rewrite barely
  // shrinks the log (other shards' records still live), the next one
  // waits until the log has doubled instead of thrashing rewrites at
  // every snapshot.
  if (commit_log_bytes_ >= kCommitLogGcBytes &&
      commit_log_bytes_ >= 2 * commit_gc_low_) {
    gc_commit_log_locked();
  }
}

void FileBackend::gc_commit_log_locked() {
  // The rewrite swaps commit_fd_ to a fresh inode; in-flight ring writes
  // against the old one would be silently dropped.  Drain them first.
  quiesce_commit_locked();
  // This runs on a mutator's snapshot-install path, so it stays a linear
  // byte scan: group checksums were just re-verified by the frame walk,
  // and a record's LSN sits at a fixed offset, so surviving frames are
  // copied as opaque spans -- no record decode, no per-record allocation.
  const Buffer log = read_file(commit_log_path());
  std::vector<Buffer> per_shard(shards_.size());
  for_each_commit_entry(log, [&](std::size_t sh, const Buffer& bytes) {
    if (sh >= per_shard.size()) {
      return;
    }
    const std::uint64_t floor = commit_floor_[sh];
    Buffer& kept = per_shard[sh];
    std::size_t pos = 0;
    while (pos + 8 <= bytes.size()) {
      const std::uint32_t length = load_u32(bytes.data() + pos);
      if (length < 25 || pos + 8 + length > bytes.size()) {
        break;  // malformed tail inside a checksummed group: stop here
      }
      // Record frame: length u32 | checksum u32 | type u8 | object u32 |
      // secret u64 | lsn u64 | payload -- the LSN lives at offset 21.
      if (load_u64(bytes.data() + pos + 21) > floor) {
        const auto* from = bytes.data() + pos;
        kept.insert(kept.end(), from, from + 8 + length);
      }
      pos += 8 + length;
    }
  });
  // Survivors collapse into ONE frame: the rewrite is an atomic whole-file
  // replacement, so per-group framing buys nothing here.
  Buffer rebuilt;
  std::uint32_t entries = 0;
  put_u32(rebuilt, 0);  // length placeholder
  put_u32(rebuilt, 0);  // checksum placeholder
  put_u32(rebuilt, 0);  // entry-count placeholder
  for (std::size_t sh = 0; sh < per_shard.size(); ++sh) {
    const Buffer& kept = per_shard[sh];
    if (!kept.empty()) {
      put_u32(rebuilt, static_cast<std::uint32_t>(sh));
      put_u32(rebuilt, static_cast<std::uint32_t>(kept.size()));
      rebuilt.insert(rebuilt.end(), kept.begin(), kept.end());
      ++entries;
    }
  }
  if (entries == 0) {
    rebuilt.clear();  // nothing left: an empty log beats an empty frame
  } else {
    patch_u32(rebuilt, 8, entries);
    const auto body =
        std::span<const std::uint8_t>(rebuilt.data() + 8, rebuilt.size() - 8);
    patch_u32(rebuilt, 0, static_cast<std::uint32_t>(body.size()));
    patch_u32(rebuilt, 4, frame_checksum(body));
  }
  replace_file_durably(commit_log_path(), rebuilt, "commit log");
  // The O_APPEND fd still points at the replaced inode; reopen the new one.
  const int fresh = ::open(commit_log_path().c_str(),
                           O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fresh < 0) {
    throw UsageError("FileBackend: cannot reopen commit log in " +
                     directory_.string());
  }
  ::close(commit_fd_);
  commit_fd_ = fresh;
  commit_log_bytes_ = rebuilt.size();
  commit_gc_low_ = rebuilt.size();
}

Buffer FileBackend::read_snapshot(std::size_t shard) const {
  const Shard& s = *shards_.at(shard);
  const std::lock_guard lock(s.mutex);
  return read_file(snapshot_path(shard));
}

void FileBackend::put_meta(std::string_view key,
                           std::span<const std::uint8_t> value) {
  const std::lock_guard lock(meta_mutex_);
  // An unwritten floor image must not replace the durable one (the
  // write-ahead ordering of §8.4 depends on it); replace_file_durably
  // fsyncs the content before the rename and the directory after it.
  replace_file_durably(meta_path(key), value, "metadata");
}

Buffer FileBackend::get_meta(std::string_view key) const {
  const std::lock_guard lock(meta_mutex_);
  return read_file(meta_path(key));
}

std::vector<std::string> FileBackend::meta_keys() const {
  const std::lock_guard lock(meta_mutex_);
  std::vector<std::string> keys;
  for (const auto& entry : std::filesystem::directory_iterator(directory_)) {
    const auto name = entry.path().filename().string();
    if (name.starts_with("meta-") && name.ends_with(".bin")) {
      keys.push_back(unescape_meta_key(
          std::string_view(name).substr(5, name.size() - 9)));
    }
  }
  return keys;
}

bool FileBackend::empty() const {
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::error_code ec;
    if (std::filesystem::file_size(journal_path(s), ec) > 0 && !ec) {
      return false;
    }
    if (std::filesystem::exists(snapshot_path(s), ec)) {
      return false;
    }
  }
  {
    const std::lock_guard lock(commit_mutex_);
    quiesce_commit_locked();
    if (commit_log_bytes_ > 0) {
      return false;
    }
  }
  const std::lock_guard lock(meta_mutex_);
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_)) {
    const auto name = entry.path().filename().string();
    if (name.starts_with("meta-")) {
      return false;
    }
  }
  return true;
}

}  // namespace amoeba::storage
