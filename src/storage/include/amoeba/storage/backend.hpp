// Pluggable storage volumes behind the durable object store.
//
// A Backend is one "disk" holding, per shard, an append-only journal and
// the most recent snapshot, plus a small named-metadata area (the reply-
// cache floors of rpc::Service live there).  Two implementations:
//
//   * MemoryBackend -- byte-for-byte the same layout in process memory.
//     The crash/restart test harness runs on it: an append hook fires at
//     every journal barrier (after the Nth append), and capture() deep-
//     copies the whole volume under its locks -- exactly the disk image a
//     machine losing power at that instant would leave behind.  Recovery
//     from a captured image IS the simulated crash+restart.
//   * FileBackend -- one directory on the real filesystem
//     (shard-N.journal / shard-N.snap / meta-KEY / commit.log), journals
//     appended through raw fds and fsync'd per append group
//     (std::ofstream::flush() only reaches the page cache, not the
//     platter), snapshots and metadata installed via write-temp + fsync +
//     rename + directory fsync.  Group-committed appends
//     (submit_append_group) land in commit.log as ONE checksummed frame
//     per group -- one write(2), one fsync(2), regardless of how many
//     shards the group touches -- and recovery merges commit-log records
//     into each shard's journal by LSN.  This is the durable deployment
//     shape and what bench_e14 measures.
//
// Concurrency: every method is thread-safe.  Journals of different shards
// never contend (per-shard locks), which is what lets journaling ride the
// object store's per-shard mutexes without reintroducing a global lock on
// the PR-1 hot path.  append_journal_batch() appends to several shards
// ATOMICALLY with respect to capture(): a two-shard mutation (a bank
// transfer's debit+credit) is either entirely on the captured image or not
// at all, so a crash cannot tear money in half.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "amoeba/common/serial.hpp"

namespace amoeba::storage {

/// One shard-addressed journal append, for the multi-shard atomic form.
struct ShardAppend {
  std::size_t shard = 0;
  Buffer bytes;
};

/// Completion of an async append group: invoked exactly once, with a null
/// exception_ptr on success or the failure that kept the group off the
/// disk.  May run on the submitting thread (sync adapter) or on a backend
/// reaper thread (io_uring) -- callers must not assume which.
using AppendCompletion = std::function<void(std::exception_ptr)>;

/// Counters an async backend exposes so callers can see the submission
/// pipeline (and tests can prove the flusher never blocks in write(2)).
struct AsyncIoStats {
  std::uint64_t sqe_submitted = 0;  // SQEs pushed to the ring (2 per group)
  std::uint64_t cqe_completed = 0;  // CQEs reaped off the ring
  std::uint64_t inflight = 0;       // groups submitted but not yet complete
  bool async = false;               // true only for a live io_uring backend
};

/// Per-thread blocking-syscall counters, bumped by every write(2)/writev(2)
/// and fsync(2)/fdatasync(2) the storage layer issues on the calling
/// thread.  Same spirit as PR 7's CountedMutex: the io_uring proof is a
/// runtime assertion that the mutator's and flusher's counters stay flat
/// across the steady-state mutate path, not a comment.
struct IoCounters {
  std::uint64_t writes = 0;  // blocking write/writev calls
  std::uint64_t fsyncs = 0;  // blocking fsync/fdatasync calls
};
[[nodiscard]] IoCounters& this_thread_io_counters();

class Backend {
 public:
  virtual ~Backend() = default;

  /// Fixed at volume creation; the object store adopting this backend must
  /// be sharded identically (object number -> shard mapping is layout).
  [[nodiscard]] virtual std::size_t shard_count() const = 0;

  /// Appends one framed record to a shard's journal (durable on return).
  virtual void append_journal(std::size_t shard,
                              std::span<const std::uint8_t> bytes) = 0;

  /// Appends to several shards' journals as one atomic group with respect
  /// to capture()/recovery images (all appended or none on the image).
  virtual void append_journal_batch(std::vector<ShardAppend>&& appends) = 0;

  /// Submit/complete-shaped async append: appends the whole group with the
  /// same capture() atomicity as append_journal_batch() and invokes
  /// `complete` exactly once -- with a null exception_ptr when every byte
  /// is durable, with the failure otherwise.  The base implementation is
  /// the synchronous adapter (append, then complete inline on the calling
  /// thread); UringFileBackend overrides it to submit to its ring and
  /// complete from the reaping side, and the group-commit flusher
  /// (storage/group_commit.hpp) is its only caller -- so such a backend
  /// drops in without touching the object store.  Completions of
  /// successive calls fire in submission order (the commit log is a
  /// sequential structure; recovery depends on it having no gaps).
  virtual void submit_append_group(std::vector<ShardAppend>&& appends,
                                   AppendCompletion complete);

  /// Submission-pipeline counters; all-zero/sync for blocking backends.
  [[nodiscard]] virtual AsyncIoStats async_io_stats() const { return {}; }

  /// Whole-journal read (recovery).
  [[nodiscard]] virtual Buffer read_journal(std::size_t shard) const = 0;

  /// Atomically replaces the shard's snapshot AND truncates its journal
  /// (log compaction).  Replay-idempotent records make the file-backend
  /// window between rename and truncate harmless.
  virtual void install_snapshot(std::size_t shard,
                                std::span<const std::uint8_t> bytes) = 0;

  /// Whole-snapshot read (recovery); empty when none was installed.
  [[nodiscard]] virtual Buffer read_snapshot(std::size_t shard) const = 0;

  /// Small named metadata blobs, replaced atomically per put.
  virtual void put_meta(std::string_view key,
                        std::span<const std::uint8_t> value) = 0;
  [[nodiscard]] virtual Buffer get_meta(std::string_view key) const = 0;
  /// Every metadata key currently on the volume (unspecified order).  The
  /// replication resync path walks this to ship a new backup the whole
  /// metadata area.
  [[nodiscard]] virtual std::vector<std::string> meta_keys() const = 0;

  /// True when the volume holds no journal bytes, snapshots, or metadata
  /// (a fresh disk: the store initializes instead of recovering).
  [[nodiscard]] virtual bool empty() const = 0;
};

/// In-memory volume with crash-capture hooks (the test harness backend).
class MemoryBackend final : public Backend {
 public:
  explicit MemoryBackend(std::size_t shards = 16);

  [[nodiscard]] std::size_t shard_count() const override { return shards_.size(); }
  void append_journal(std::size_t shard,
                      std::span<const std::uint8_t> bytes) override;
  void append_journal_batch(std::vector<ShardAppend>&& appends) override;
  [[nodiscard]] Buffer read_journal(std::size_t shard) const override;
  void install_snapshot(std::size_t shard,
                        std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] Buffer read_snapshot(std::size_t shard) const override;
  void put_meta(std::string_view key,
                std::span<const std::uint8_t> value) override;
  [[nodiscard]] Buffer get_meta(std::string_view key) const override;
  [[nodiscard]] std::vector<std::string> meta_keys() const override;
  [[nodiscard]] bool empty() const override;

  /// Installs the journal-barrier hook: invoked after every journal append
  /// group with the running append count, OUTSIDE the shard locks (so the
  /// hook may capture()).  The crash harness registers a hook that
  /// snapshots the volume at chosen barriers.
  void set_append_hook(std::function<void(std::uint64_t)> hook);

  /// Total journal appends so far (batch = one per entry).
  [[nodiscard]] std::uint64_t append_count() const {
    return appends_.load(std::memory_order_relaxed);
  }

  /// Deep copy of the volume as of now -- the disk image a crash at this
  /// instant would leave.  Takes every shard lock (ascending) plus the
  /// meta lock, so multi-shard append groups are never torn across it.
  [[nodiscard]] std::shared_ptr<MemoryBackend> capture() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    Buffer journal;
    Buffer snapshot;
  };

  void hook_after_append();

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex meta_mutex_;
  std::map<std::string, Buffer, std::less<>> meta_;
  std::atomic<std::uint64_t> appends_{0};
  std::atomic<bool> hook_set_{false};  // fast-path gate for hook_after_append
  mutable std::mutex hook_mutex_;
  std::function<void(std::uint64_t)> hook_;
};

/// Directory-on-disk volume: the durable deployment backend.  Not final:
/// UringFileBackend (storage/uring_backend.hpp) subclasses it, replacing
/// only the commit-log append with ring submission -- every recovery,
/// snapshot, and metadata path is shared.
class FileBackend : public Backend {
 public:
  /// Creates the directory if needed; an existing volume must have been
  /// written with the same shard count.
  FileBackend(std::filesystem::path directory, std::size_t shards = 16);
  ~FileBackend() override;

  [[nodiscard]] std::size_t shard_count() const override { return shards_.size(); }
  void append_journal(std::size_t shard,
                      std::span<const std::uint8_t> bytes) override;
  void append_journal_batch(std::vector<ShardAppend>&& appends) override;
  /// Group commit: the whole group goes down as ONE checksummed frame in
  /// the volume-wide commit.log -- one write, one fsync, however many
  /// shards it spans.  Beyond amortizing the fsync (this is where the
  /// flusher's batching actually reaches the platter), the single frame
  /// gives a multi-shard group REAL on-disk atomicity: per-shard journal
  /// files can always tear a pair between two files' fsyncs, a torn
  /// commit-log frame drops the whole group at recovery.
  void submit_append_group(std::vector<ShardAppend>&& appends,
                           AppendCompletion complete) override;
  [[nodiscard]] Buffer read_journal(std::size_t shard) const override;
  void install_snapshot(std::size_t shard,
                        std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] Buffer read_snapshot(std::size_t shard) const override;
  void put_meta(std::string_view key,
                std::span<const std::uint8_t> value) override;
  [[nodiscard]] Buffer get_meta(std::string_view key) const override;
  [[nodiscard]] std::vector<std::string> meta_keys() const override;
  [[nodiscard]] bool empty() const override;

  [[nodiscard]] const std::filesystem::path& directory() const {
    return directory_;
  }

 protected:
  /// Encodes `appends` as one complete commit-log group frame
  /// (`length u32 | checksum u32 | body`) into `frame` (cleared first).
  /// Shared by the sync append below and the ring submission path.
  static void encode_group_frame(const std::vector<ShardAppend>& appends,
                                 Buffer& frame);

  /// Called with commit_mutex_ held before any read of commit.log that
  /// must observe every acknowledged frame (recovery merge, GC, empty())
  /// and before gc_commit_log_locked() swaps commit_fd_ to a new inode.
  /// The base backend writes synchronously, so there is never in-flight
  /// I/O to wait out; UringFileBackend overrides this to drain its ring.
  /// Must NOT be called from a completion/reaper context (commit_mutex_
  /// ordering: reaper threads never take it).
  virtual void quiesce_commit_locked() const {}

  /// Commit-log state, all guarded by commit_mutex_.  Lock order: a shard
  /// mutex (when held at all) is taken BEFORE commit_mutex_; the flusher
  /// takes only commit_mutex_ and never touches the per-shard fds.
  /// Protected rather than private so UringFileBackend's submission path
  /// can append to the same log under the same lock.
  mutable std::mutex commit_mutex_;
  int commit_fd_ = -1;  // O_APPEND; one fsync per group frame
  std::uint64_t commit_log_bytes_ = 0;
  Buffer commit_frame_;  // reused staging buffer for group frames

  [[nodiscard]] std::filesystem::path commit_log_path() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    int journal_fd = -1;  // O_APPEND; fsync'd per append group
  };

  [[nodiscard]] std::filesystem::path journal_path(std::size_t shard) const;
  [[nodiscard]] std::filesystem::path snapshot_path(std::size_t shard) const;
  [[nodiscard]] std::filesystem::path meta_path(std::string_view key) const;
  /// write-temp + fsync + rename + directory fsync (the full atomic
  /// replacement recipe -- a rename alone is not durable until the
  /// directory entry itself reaches the disk).
  void replace_file_durably(const std::filesystem::path& path,
                            std::span<const std::uint8_t> bytes,
                            const char* what);
  /// Concatenated framed records for `shard` extracted from commit.log,
  /// in append order (= ascending LSN per shard).  Caller holds
  /// commit_mutex_.
  [[nodiscard]] Buffer commit_log_records_locked(std::size_t shard) const;
  /// Rewrites commit.log dropping every record a shard snapshot already
  /// subsumes (lsn <= that shard's floor).  Caller holds commit_mutex_.
  void gc_commit_log_locked();

  std::filesystem::path directory_;
  int dir_fd_ = -1;  // fsync'd after every rename into the directory
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex meta_mutex_;
  std::uint64_t commit_gc_low_ = 0;  // log size after the last GC rewrite
  std::vector<std::uint64_t> commit_floor_;  // per-shard snapshot applied LSN
};

}  // namespace amoeba::storage
