// Journal record and snapshot framing for the durable object store.
//
// The write-ahead discipline (the recoverable-server treatment in Aspnes's
// notes, and Amoeba's durable bullet/directory servers in spirit): every
// state change of an object-store shard is first appended to that shard's
// journal as one self-delimiting record; a snapshot is a compact image of
// every live slot, after which the journal restarts empty.  Recovery
// replays snapshot-then-journal.  Records carry everything a capability
// needs to survive a crash -- the object number, the secret check-field
// number, and the serialized payload -- so capabilities issued before the
// crash validate unchanged after restart.
//
// Framing.  Each record is `length u32 | checksum u32 | body`, where the
// checksum is FNV-1a over the body.  A crash can tear the tail of an
// append-only journal; decode_journal() stops cleanly at the first
// truncated or corrupt frame instead of failing recovery, which is exactly
// the contract a torn final write needs.  Replay is idempotent: applying a
// prefix of the journal twice (snapshot installed, journal not yet
// truncated when the power died) converges to the same table.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "amoeba/common/serial.hpp"
#include "amoeba/common/types.hpp"

namespace amoeba::storage {

/// One journaled state change of one object slot.
enum class RecordType : std::uint8_t {
  create = 1,   // slot became live: secret + payload
  mutate = 2,   // payload overwritten (secret unchanged)
  destroy = 3,  // slot freed; its number returns to the free list
  rotate = 4,   // secret replaced (revocation); payload unchanged
  delta = 5,    // payload patched in place: server-defined byte-range
                // patch applied by the Durability::apply_delta codec (a
                // one-page write no longer journals the whole file image)
};

/// Decoded journal record.  `payload` is the server-defined serialized
/// object image (valid for create/mutate); `secret` is the check-field
/// secret (valid for create/rotate).  `lsn` is the shard-local log
/// sequence number: replay skips records at or below the snapshot's
/// applied LSN, which makes the file backend's crash window between
/// snapshot rename and journal truncate harmless (stale records replay as
/// no-ops instead of regressing payloads).
struct Record {
  RecordType type = RecordType::create;
  ObjectNumber object;
  std::uint64_t secret = 0;
  std::uint64_t lsn = 0;
  Buffer payload;
};

/// FNV-1a over `bytes`: the checksum every frame in the storage layer uses
/// (journal records here, and the file backend's commit-log group frames).
[[nodiscard]] std::uint32_t frame_checksum(std::span<const std::uint8_t> bytes);

/// Appends one framed record to `out` (length + checksum + body).
void encode_record(const Record& record, Buffer& out);

/// Field-wise form of encode_record for the journaling hot path: the
/// payload arrives as a view (typically a reused scratch buffer), so one
/// append costs no intermediate allocations.
void encode_record_into(RecordType type, ObjectNumber object,
                        std::uint64_t secret, std::uint64_t lsn,
                        std::span<const std::uint8_t> payload, Buffer& out);

/// Parses a journal byte run into records, tolerating a torn tail: a
/// truncated or checksum-failing frame ends the parse (everything before
/// it is returned).  `torn_tail`, when non-null, reports whether the
/// journal ended mid-frame.
[[nodiscard]] std::vector<Record> decode_journal(
    std::span<const std::uint8_t> journal, bool* torn_tail = nullptr);

/// One live slot inside a shard snapshot.
struct SnapshotSlot {
  ObjectNumber object;
  std::uint64_t secret = 0;
  Buffer payload;
};

/// Serializes a shard snapshot (magic + version + applied LSN + slot
/// images).  `applied_lsn` is the LSN of the last journal record the
/// snapshot subsumes.
[[nodiscard]] Buffer encode_snapshot(const std::vector<SnapshotSlot>& slots,
                                     std::uint64_t applied_lsn);

/// Parses a shard snapshot; empty input decodes as an empty snapshot with
/// applied LSN 0.  Returns false on a malformed (non-empty,
/// non-conforming) image.
[[nodiscard]] bool decode_snapshot(std::span<const std::uint8_t> bytes,
                                   std::vector<SnapshotSlot>& out,
                                   std::uint64_t& applied_lsn);

/// Header-only read of a snapshot image's applied LSN (0 for an empty or
/// malformed image).  The file backend uses this as its commit-log GC
/// floor without paying for a full slot decode.
[[nodiscard]] std::uint64_t peek_snapshot_lsn(
    std::span<const std::uint8_t> bytes);

}  // namespace amoeba::storage
