// Replication shipment framing (docs/PROTOCOL.md §9.2).
//
// The primary ships each group-commit flush cycle to its backups as ONE
// cycle frame: a replication LSN, the cycle's coalesced metadata writes,
// and its per-shard journal appends -- byte for byte what just became
// durable on the primary's own volume (the group-commit post-flush hook
// hands them over; nothing is re-encoded).  The frame is checksummed as a
// whole, so a backup applies an entire cycle or rejects it: the same
// all-or-nothing property the commit.log gives a local crash image, now
// carried across the wire.
//
// The rep LSN is a volume-wide shipment sequence number, assigned in ship
// order.  A backup keeps the floor of applied LSNs: frames at or below the
// floor are duplicates (acknowledged, not re-applied -- though re-applying
// would converge, journal replay being idempotent), frames more than one
// ahead are gaps (rejected; the primary answers with a full resync).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "amoeba/common/serial.hpp"
#include "amoeba/storage/backend.hpp"

namespace amoeba::storage {

/// One metadata write inside a cycle frame, by view (encoding side).
struct MetaImage {
  std::string_view key;
  std::span<const std::uint8_t> value;
};

/// A decoded cycle frame (the backup's side).
struct CycleFrame {
  std::uint64_t rep_lsn = 0;
  std::vector<std::pair<std::string, Buffer>> metas;
  std::vector<ShardAppend> appends;
};

/// Encodes one cycle frame: `length u32 | checksum u32 | body`, the
/// checksum FNV-1a over the whole body (storage/record.hpp's
/// frame_checksum, same as journal records and commit-log groups).
[[nodiscard]] Buffer encode_cycle_frame(std::uint64_t rep_lsn,
                                        std::span<const MetaImage> metas,
                                        std::span<const ShardAppend> appends);

/// Decodes a cycle frame; false on truncation, checksum mismatch, or
/// malformed body (the backup then rejects the shipment wholesale).
[[nodiscard]] bool decode_cycle_frame(std::span<const std::uint8_t> bytes,
                                      CycleFrame& out);

}  // namespace amoeba::storage
