// The primary side of primary/backup replication (docs/PROTOCOL.md §9).
//
// ReplicatedBackend is a Backend decorator: reads go straight to the
// wrapped local volume, writes land locally FIRST and are then shipped to
// every attached backup as LSN-stamped shipments.  Which writes ship as
// what depends on how the volume is driven:
//
//   * Under a GroupCommitter (the normal server arrangement) the committer
//     binds itself at construction and the post-flush hook ships each
//     flush cycle as ONE cycle frame -- the exact metadata images and
//     journal bytes that just hit the local disk.  The decorator's own
//     append/put_meta paths then stand down (forward-only), so a cycle is
//     never shipped twice.
//   * Driven directly (no committer -- the synchronous-durability
//     arrangement), each append/batch/meta write ships as its own
//     mini-cycle.  Per-shard ordering is preserved because the store holds
//     the shard lock across the local write and the enqueue.
//   * install_snapshot (compaction) always ships, under either
//     arrangement: backups compact when the primary does.
//
// The ack mode decides when a mutator's durability wait releases:
//   async    local disk only; shipping is fire-and-forget.
//   ack_one  at least one backup has durably applied the shipment.
//   ack_all  every attached backup has.
// With no backups attached nothing ever waits, so a ReplicatedBackend
// with zero peers behaves exactly like its local volume.
//
// Shipping is per-peer FIFO on a dedicated thread, one shipment in flight,
// retried until acknowledged -- the at-most-once RPC layer plus the
// replica's LSN floor make retransmits harmless.  A backup that answers
// `conflict` (LSN gap: it restarted, or attached mid-stream) triggers a
// full resync: the primary broadcasts its current snapshots, journals and
// metadata as fresh shipments that every peer can adopt (snapshot
// shipments MOVE the replica floor rather than gap-checking against it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/storage/backend.hpp"
#include "amoeba/storage/replication/wire.hpp"

namespace amoeba::storage {

class GroupCommitter;

/// When does a replicated mutation count as durable?
enum class AckMode : std::uint8_t {
  async = 0,    // local disk only; backups catch up in the background
  ack_one = 1,  // >= 1 backup has durably applied the shipment
  ack_all = 2,  // every attached backup has
};

[[nodiscard]] std::string_view to_string(AckMode mode);

/// Transport-agnostic shipping channel to one backup.  The storage layer
/// owns the interface (it cannot depend on rpc); rpc/replication.hpp
/// implements it over the at-most-once transaction layer.  Each call is
/// synchronous: it returns the backup's durably-applied floor, or the
/// error the backup (or the link) produced.  Implementations must tolerate
/// being called from a dedicated shipping thread.
class ReplicationLink {
 public:
  virtual ~ReplicationLink() = default;

  [[nodiscard]] virtual std::string peer_name() const = 0;

  /// Offers one encoded cycle frame (replication/wire.hpp).
  [[nodiscard]] virtual Result<std::uint64_t> ship_cycle(
      std::span<const std::uint8_t> frame) = 0;

  /// Offers one shard snapshot image, floor-adopting at `rep_lsn`.
  [[nodiscard]] virtual Result<std::uint64_t> ship_snapshot(
      std::uint64_t rep_lsn, std::size_t shard,
      std::span<const std::uint8_t> bytes) = 0;

  /// No-op probe: returns the backup's applied floor (lag measurement).
  [[nodiscard]] virtual Result<std::uint64_t> heartbeat(
      std::uint64_t shipped) = 0;
};

class ReplicatedBackend final : public Backend {
 public:
  explicit ReplicatedBackend(std::shared_ptr<Backend> local,
                             AckMode mode = AckMode::ack_one);
  /// Attempts to drain each peer's queue (one final try per shipment --
  /// a dead backup must not hang shutdown), then joins the shippers.
  ~ReplicatedBackend() override;

  // --- Backend: reads forward, writes land locally then ship. ---
  [[nodiscard]] std::size_t shard_count() const override;
  void append_journal(std::size_t shard,
                      std::span<const std::uint8_t> bytes) override;
  void append_journal_batch(std::vector<ShardAppend>&& appends) override;
  void submit_append_group(std::vector<ShardAppend>&& appends,
                           AppendCompletion complete) override;
  /// Forwards the local volume's ring counters (zero/sync for blocking
  /// locals), so a committer over a replicated uring volume still reports
  /// its submission pipeline.
  [[nodiscard]] AsyncIoStats async_io_stats() const override {
    return local_->async_io_stats();
  }
  [[nodiscard]] Buffer read_journal(std::size_t shard) const override;
  void install_snapshot(std::size_t shard,
                        std::span<const std::uint8_t> bytes) override;
  [[nodiscard]] Buffer read_snapshot(std::size_t shard) const override;
  void put_meta(std::string_view key,
                std::span<const std::uint8_t> value) override;
  [[nodiscard]] Buffer get_meta(std::string_view key) const override;
  [[nodiscard]] std::vector<std::string> meta_keys() const override;
  [[nodiscard]] bool empty() const override;

  /// Attaches a backup and resyncs it: the primary's current snapshots,
  /// journals and metadata (minus "rep."-prefixed keys) are broadcast as
  /// fresh shipments, so the new peer converges from any starting state
  /// and existing peers just fast-forward their floors.  Thread-safe;
  /// peers cannot be detached (stop the backup instead -- its queue
  /// simply stops draining).
  void attach_peer(std::shared_ptr<ReplicationLink> link);

  /// Called by the GroupCommitter constructor when it finds this decorator
  /// as its backend: installs the cycle-shipping post-flush hook and
  /// switches the append/meta paths to forward-only.  Throws UsageError on
  /// a second bind (one committer per volume).
  void bind_committer(GroupCommitter& committer);

  struct PeerStats {
    std::string name;
    std::uint64_t acked_lsn = 0;  // backup's durably-applied floor
    std::uint64_t queued = 0;     // shipments still waiting to ship
  };
  struct Stats {
    AckMode mode = AckMode::async;
    std::uint64_t shipped_lsn = 0;  // highest shipment LSN assigned
    std::vector<PeerStats> peers;   // lag = shipped_lsn - acked_lsn
  };
  [[nodiscard]] Stats stats() const;

  /// Probes every peer's applied floor over its link (refreshes the lag
  /// numbers std_info reports without shipping anything).
  void heartbeat();

  [[nodiscard]] AckMode ack_mode() const { return mode_; }
  [[nodiscard]] const std::shared_ptr<Backend>& local() const {
    return local_;
  }

 private:
  struct Shipment {
    std::uint64_t rep_lsn = 0;
    bool snapshot = false;
    std::size_t shard = 0;  // snapshot shipments only
    Buffer bytes;           // cycle frame, or raw snapshot image
    std::size_t needed = 0;  // acks that release the enqueuer's wait
    std::size_t acks = 0;    // guarded by the owning backend's ack_mutex_
  };
  struct Peer {
    explicit Peer(std::shared_ptr<ReplicationLink> l) : link(std::move(l)) {}
    std::shared_ptr<ReplicationLink> link;
    std::mutex mutex;
    std::condition_variable cv;  // wakes the shipper
    std::deque<std::shared_ptr<Shipment>> queue;
    std::uint64_t acked = 0;  // guarded by `mutex`
    std::jthread shipper;     // last member: started after the above
  };

  /// Wraps `bytes` as shipment `rep_lsn` and pushes it onto every peer's
  /// queue, stamping the ack count the current mode requires.
  [[nodiscard]] std::shared_ptr<Shipment> broadcast_locked(
      std::uint64_t rep_lsn, bool snapshot, std::size_t shard, Buffer bytes);
  /// Blocks until the shipment's stamped ack count is reached.  Throws
  /// UsageError if a backup answered `immutable` (it was promoted: this
  /// primary is fenced and must stop reporting durability).
  void await_acks(const std::shared_ptr<Shipment>& shipment);
  /// Encodes + broadcasts one direct-path mini-cycle, then waits.
  void ship_mini_cycle(std::span<const MetaImage> metas,
                       std::span<const ShardAppend> appends);
  /// Ships one committer flush cycle (the post-flush hook body).
  void ship_group_cycle(
      const std::map<std::string, Buffer, std::less<>>& metas,
      const std::vector<ShardAppend>& appends);
  /// Broadcasts the volume's current snapshots + journals + metadata as
  /// fresh shipments (attach and gap recovery).
  void resync_locked();
  void shipper(Peer& peer, const std::stop_token& stop);

  std::shared_ptr<Backend> local_;
  const AckMode mode_;
  /// True once a GroupCommitter bound itself: append/meta traffic then
  /// arrives via the flusher and ships through the hook, so the direct
  /// paths forward without shipping.  Set before the flusher starts.
  std::atomic<bool> committer_bound_{false};

  mutable std::mutex mutex_;  // orders LSN assignment + queue pushes
  std::uint64_t next_lsn_ = 0;
  std::vector<std::unique_ptr<Peer>> peers_;  // grow-only; stable addresses

  mutable std::mutex ack_mutex_;
  std::condition_variable ack_cv_;
  bool shutting_down_ = false;  // guarded by ack_mutex_
  bool fenced_ = false;         // a backup answered `immutable` (promoted)
};

}  // namespace amoeba::storage
