// The backup side of primary/backup replication (docs/PROTOCOL.md §9).
//
// A ReplicaApplier owns a local volume and applies the primary's shipments
// to it in shipment order: cycle frames append the primary's journal
// records (and metadata images) byte for byte, snapshot shipments replace
// one shard's snapshot exactly as local compaction would.  The volume a
// long-running applier maintains is therefore the same volume the primary
// would leave behind on its own disk -- secrets, reply-cache floors and
// all -- which is the whole failover story: promote the backup, construct
// servers over its volume, and every pre-crash capability validates with
// nothing re-minted.
//
// Idempotence is LSN-floor gated.  Every shipment carries a replication
// LSN assigned in primary ship order; the applier keeps the floor of
// applied LSNs (persisted to the volume's own metadata area AFTER each
// apply -- safe, because journal replay is idempotent, so a shipment
// replayed across the floor-persist crash window converges).  At or below
// the floor: a duplicate (a lossy link's retransmission), acknowledged
// without re-applying.  Exactly floor+1: applied.  Further ahead: a gap --
// rejected with `conflict`, which the primary answers with a full resync.
// Snapshot shipments ADOPT their LSN as the new floor instead of gap-
// checking: a snapshot subsumes all history behind it (that is what makes
// resync work), and FIFO in-order shipping guarantees everything below it
// was already offered.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string_view>

#include "amoeba/common/error.hpp"
#include "amoeba/storage/backend.hpp"

namespace amoeba::storage {

/// Metadata keys the replication layer itself owns on a backup volume.
/// The primary never ships keys under this prefix (a resync must not
/// clobber the backup's own applied floor).
inline constexpr std::string_view kRepMetaPrefix = "rep.";
/// The applier's persisted LSN floor (u64, Writer encoding).
inline constexpr std::string_view kRepAppliedKey = "rep.applied";

class ReplicaApplier {
 public:
  /// Adopts `local` as the backup volume; restores the applied floor the
  /// previous incarnation persisted (a restarted backup resumes exactly
  /// where its volume left off -- the primary's retransmits below the
  /// floor are acknowledged as duplicates).
  explicit ReplicaApplier(std::shared_ptr<Backend> local);

  /// Applies one encoded cycle frame (replication/wire.hpp).  Returns the
  /// applied floor on success and for suppressed duplicates;
  /// `invalid_argument` for a torn/corrupt frame, `conflict` for a gap,
  /// `immutable` once promoted.
  [[nodiscard]] Result<std::uint64_t> apply_cycle(
      std::span<const std::uint8_t> frame);

  /// Applies one shipped shard snapshot (replaces the shard's snapshot and
  /// truncates its journal, like local compaction) and adopts `rep_lsn` as
  /// the floor.  Same duplicate/promoted answers as apply_cycle.
  [[nodiscard]] Result<std::uint64_t> install_snapshot(
      std::uint64_t rep_lsn, std::size_t shard,
      std::span<const std::uint8_t> bytes);

  /// Seals the applier: every later shipment is refused with `immutable`
  /// (the fencing half of failover -- a deposed primary still shipping
  /// cannot scribble on the promoted volume).  Returns the final floor.
  std::uint64_t promote();

  [[nodiscard]] std::uint64_t applied() const;
  [[nodiscard]] bool promoted() const;
  [[nodiscard]] const std::shared_ptr<Backend>& local() const {
    return local_;
  }

 private:
  void persist_floor_locked();

  mutable std::mutex mutex_;
  std::shared_ptr<Backend> local_;
  std::uint64_t applied_ = 0;
  bool promoted_ = false;
};

}  // namespace amoeba::storage
