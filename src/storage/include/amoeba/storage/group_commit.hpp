// Group commit: one asynchronous flusher amortizing many journal appends
// into one backend write per cycle.
//
// PR 5 made every state change durable by appending (and, on FileBackend,
// flushing) one record at a time on the mutator thread -- correct, but the
// pure-mutate path paid a full backend round trip per record.  The classic
// fix is group commit: mutators ENCODE their record under the shard lock,
// ENQUEUE it here (receiving a monotonically increasing commit ticket),
// RELEASE the lock, and block -- or carry the ticket as a future and keep
// going -- until the flusher reports the ticket durable.  One flusher per
// volume drains every shard's pending bytes and issues a single multi-shard
// submit_append_group() per cycle: one gather write and one fsync cover
// every record that piled up while the previous fsync was in flight, which
// is the self-tuning property (load grows groups, idle volumes flush
// immediately).
//
// Ordering guarantees:
//   * Tickets are the volume-wide commit LSN: wait_durable(t) returns only
//     after EVERY enqueue with ticket <= t is on the backend.  The flusher
//     never reports a ticket whose bytes a crash image could lack.
//   * enqueue_group() places all entries under one queue-mutex hold, so a
//     flush cycle carries a multi-shard group entirely or not at all; the
//     backend's append_journal_batch atomicity w.r.t. capture() then keeps
//     a bank transfer's debit+credit untearable, exactly as in the
//     synchronous path.
//   * Metadata (the rpc reply-cache image) rides the same cycles through
//     enqueue_meta(), coalesced latest-image-wins per key, and is written
//     BEFORE the cycle's journal appends -- a crash image may hold a
//     reply-cache floor without its effect (operation lost, safe) but
//     never an effect without its floor (operation doubled, fatal).
//
// A backend write failure (disk full) latches the committer into a failed
// state: wait_durable() then throws instead of ever reporting durability
// that does not exist.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "amoeba/storage/backend.hpp"

namespace amoeba::storage {

/// Tuning of one GroupCommitter.
struct GroupCommitOptions {
  /// Extra time the flusher lingers after waking before it drains, to
  /// let concurrent mutators grow the group.  0 (the default) flushes
  /// whatever has accumulated immediately: batching then comes from the
  /// records that pile up while the previous cycle's fsync is in
  /// flight, which adapts to load without adding idle latency.
  std::chrono::microseconds flush_interval{0};
};

class GroupCommitter {
 public:
  /// Volume-wide commit sequence number; 0 means "nothing to wait for"
  /// (what in-memory paths hand around so callers need no null checks).
  using Ticket = std::uint64_t;

  using Options = GroupCommitOptions;

  struct Stats {
    std::uint64_t groups = 0;        // flush cycles that reached the backend
    std::uint64_t records = 0;       // journal appends those cycles carried
    std::uint64_t meta_writes = 0;   // coalesced metadata writes issued
    std::uint64_t max_group = 0;     // largest single cycle, in records
    std::uint64_t flush_cycle_bytes = 0;  // journal bytes those cycles wrote
  };

  /// One completed flush cycle as the post-flush hook sees it: the exact
  /// bytes that just became durable on the local backend, BEFORE any
  /// wait_durable(ticket <= this cycle's ticket) is released.  Replication
  /// ships from here -- no second encode pass, and a waiter released by
  /// this cycle knows its records were already offered to the backups.
  struct FlushCycle {
    Ticket ticket = 0;        // highest ticket the cycle covers
    std::uint64_t bytes = 0;  // journal bytes the cycle carried
    /// The cycle's coalesced metadata writes (key -> image), as written.
    const std::map<std::string, Buffer, std::less<>>* metas = nullptr;
    /// The cycle's per-shard journal appends, as written.
    const std::vector<ShardAppend>* appends = nullptr;
  };
  using PostFlushHook = std::function<void(const FlushCycle&)>;

  explicit GroupCommitter(std::shared_ptr<Backend> backend,
                          Options options = {});
  /// Drains every pending enqueue to the backend, then joins the flusher.
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Null-safe factory: a committer for `backend`, or null when `backend`
  /// is null (the in-memory server constructors pass the null through).
  [[nodiscard]] static std::shared_ptr<GroupCommitter> create(
      const std::shared_ptr<Backend>& backend, Options options = {});

  /// Queues one framed record for `shard`'s journal; the bytes are copied
  /// (the caller typically hands a per-shard scratch buffer it will reuse).
  [[nodiscard]] Ticket enqueue(std::size_t shard,
                               std::span<const std::uint8_t> bytes);

  /// Like enqueue(), but the caller ENCODES the record directly into the
  /// committer's staging buffer instead of handing over pre-framed bytes:
  /// `encode(Buffer&)` must APPEND exactly one framed record to the buffer
  /// it is given and touch nothing else.  This skips the frame-to-scratch
  /// copy of the enqueue() path (the remaining single-core group-commit
  /// lever ROADMAP flags).  The callback runs with the committer's queue
  /// mutex held -- it must not block, enqueue, or wait on this committer.
  template <typename EncodeFn>
  [[nodiscard]] Ticket enqueue_with(std::size_t shard, EncodeFn&& encode) {
    bool wake;
    Ticket ticket;
    {
      const std::lock_guard lock(mutex_);
      Buffer& pending = pending_.at(shard);
      if (pending.empty()) {
        dirty_shards_.push_back(shard);
      }
      encode(pending);
      ++pending_records_;
      wake = issued_ == taken_;  // flusher may be asleep
      ticket = ++issued_;
    }
    if (wake) {
      work_cv_.notify_one();
    }
    return ticket;
  }

  /// Queues a multi-shard record group under ONE mutex hold, so no flush
  /// cycle boundary can fall inside it (the pair-mutation atomicity).
  [[nodiscard]] Ticket enqueue_group(std::vector<ShardAppend>&& appends);

  /// Queues a metadata write.  Coalesced per key (the newest image wins),
  /// which is sound for the reply-cache image because every later image is
  /// a superset of every earlier one.  Written before the same cycle's
  /// journal appends (floor-before-effect).
  [[nodiscard]] Ticket enqueue_meta(std::string_view key, Buffer value);

  /// Blocks until every enqueue with a ticket at or below `ticket` is on
  /// the backend.  Throws UsageError if the flusher failed (disk full)
  /// before covering it -- durability is never reported optimistically.
  void wait_durable(Ticket ticket);

  /// Non-blocking durability probe.
  [[nodiscard]] bool is_durable(Ticket ticket) const;

  /// Blocks until everything enqueued so far is durable.
  void drain();

  [[nodiscard]] Stats stats() const;

  /// Installs the post-flush hook (one subscriber; throws on a second).
  /// Runs on the flusher thread after the cycle's backend writes complete
  /// and before its waiters release; a hook that throws latches the
  /// committer into the failed state exactly like a backend write failure
  /// (durability -- which now includes the hook's ack contract -- is never
  /// reported optimistically).  Constructing a GroupCommitter over a
  /// ReplicatedBackend installs the shipping hook automatically.
  void set_post_flush_hook(PostFlushHook hook);

  [[nodiscard]] const std::shared_ptr<Backend>& backend() const {
    return backend_;
  }

 private:
  void flusher(const std::stop_token& stop);

  std::shared_ptr<Backend> backend_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;            // wakes the flusher
  mutable std::condition_variable durable_cv_;  // wakes ticket waiters
  std::vector<Buffer> pending_;                // per-shard gathered bytes
  std::vector<std::size_t> dirty_shards_;      // shards with pending bytes
  std::uint64_t pending_records_ = 0;
  std::map<std::string, Buffer, std::less<>> pending_meta_;
  Ticket issued_ = 0;   // highest ticket handed out
  Ticket taken_ = 0;    // highest ticket a flush cycle has claimed
  Ticket durable_ = 0;  // highest ticket reported durable
  std::string failure_;  // non-empty once a backend write failed
  Stats stats_;
  PostFlushHook post_flush_hook_;

  std::jthread flusher_;  // last member: starts after the state above
};

}  // namespace amoeba::storage
