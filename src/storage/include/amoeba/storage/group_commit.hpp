// Group commit: one asynchronous flusher amortizing many journal appends
// into one backend write per cycle.
//
// PR 5 made every state change durable by appending (and, on FileBackend,
// flushing) one record at a time on the mutator thread -- correct, but the
// pure-mutate path paid a full backend round trip per record.  The classic
// fix is group commit: mutators ENCODE their record under the shard lock,
// ENQUEUE it here (receiving a monotonically increasing commit ticket),
// RELEASE the lock, and block -- or carry the ticket as a future and keep
// going -- until the flusher reports the ticket durable.  One flusher per
// volume drains every shard's pending bytes and issues a single multi-shard
// submit_append_group() per cycle: one gather write and one fsync cover
// every record that piled up while the previous fsync was in flight, which
// is the self-tuning property (load grows groups, idle volumes flush
// immediately).
//
// Ordering guarantees:
//   * Tickets are the volume-wide commit LSN: wait_durable(t) returns only
//     after EVERY enqueue with ticket <= t is on the backend.  The flusher
//     never reports a ticket whose bytes a crash image could lack.
//   * enqueue_group() places all entries under one queue-mutex hold, so a
//     flush cycle carries a multi-shard group entirely or not at all; the
//     backend's append_journal_batch atomicity w.r.t. capture() then keeps
//     a bank transfer's debit+credit untearable, exactly as in the
//     synchronous path.
//   * Metadata (the rpc reply-cache image) rides the same cycles through
//     enqueue_meta(), coalesced latest-image-wins per key, and is written
//     BEFORE the cycle's journal appends -- a crash image may hold a
//     reply-cache floor without its effect (operation lost, safe) but
//     never an effect without its floor (operation doubled, fatal).
//
// A backend write failure (disk full) latches the committer into a failed
// state: wait_durable() then throws instead of ever reporting durability
// that does not exist.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "amoeba/storage/backend.hpp"

namespace amoeba::storage {

/// Tuning of one GroupCommitter.
struct GroupCommitOptions {
  /// CEILING of the flusher's linger: the longest it may hold a claim to
  /// let concurrent mutators grow the group.  0 (the default) leaves the
  /// adaptive policy its built-in ceiling (kDefaultLingerCeiling); with
  /// adaptive_linger off, 0 means flush immediately and a nonzero value
  /// is an unconditional fixed linger (the old --flush-interval knob).
  std::chrono::microseconds flush_interval{0};
  /// Waiter-gated pacing: the flusher lingers (growing the cycle, up to
  /// the ceiling) only while NO thread is blocked in wait_durable -- the
  /// moment a waiter arrives the linger collapses and the cycle flushes.
  /// Pipelined mutators (release_async) therefore get wide cycles and few
  /// condvar round trips -- the fix for the grouped-memory > sync-memory
  /// inversion bench_e14 exposed on one core -- while synchronous waiters
  /// keep their immediate-flush latency.
  bool adaptive_linger = true;
  /// Backpressure for async backends: how many submitted-but-uncompleted
  /// flush cycles may be outstanding before the flusher stops claiming.
  /// Irrelevant for sync backends (completion is inline, so the count
  /// never exceeds one).
  std::size_t max_inflight_cycles = 4;

  static constexpr std::chrono::microseconds kDefaultLingerCeiling{200};
};

class GroupCommitter {
 public:
  /// Volume-wide commit sequence number; 0 means "nothing to wait for"
  /// (what in-memory paths hand around so callers need no null checks).
  using Ticket = std::uint64_t;

  using Options = GroupCommitOptions;

  struct Stats {
    std::uint64_t groups = 0;        // flush cycles that reached the backend
    std::uint64_t records = 0;       // journal appends those cycles carried
    std::uint64_t meta_writes = 0;   // coalesced metadata writes issued
    std::uint64_t max_group = 0;     // largest single cycle, in records
    std::uint64_t flush_cycle_bytes = 0;  // journal bytes those cycles wrote
    // --- async submission pipeline (PR 10) ---
    std::uint64_t inflight_cycles = 0;  // submitted, completion pending (now)
    std::uint64_t sqe_submitted = 0;    // backend ring SQEs (0 when sync)
    std::uint64_t cqe_completed = 0;    // backend ring CQEs (0 when sync)
    std::uint64_t linger_us_current = 0;  // last adaptive linger applied
    std::uint64_t flusher_io_syscalls = 0;  // blocking write/fsync calls the
                                            // flusher thread has made (the
                                            // zero-syscall proof under uring)
  };

  /// One completed flush cycle as the post-flush hook sees it: the exact
  /// bytes that just became durable on the local backend, BEFORE any
  /// wait_durable(ticket <= this cycle's ticket) is released.  Replication
  /// ships from here -- no second encode pass, and a waiter released by
  /// this cycle knows its records were already offered to the backups.
  struct FlushCycle {
    Ticket ticket = 0;        // highest ticket the cycle covers
    std::uint64_t bytes = 0;  // journal bytes the cycle carried
    /// The cycle's coalesced metadata writes (key -> image), as written.
    const std::map<std::string, Buffer, std::less<>>* metas = nullptr;
    /// The cycle's per-shard journal appends, as written.
    const std::vector<ShardAppend>* appends = nullptr;
  };
  using PostFlushHook = std::function<void(const FlushCycle&)>;

  explicit GroupCommitter(std::shared_ptr<Backend> backend,
                          Options options = {});
  /// Drains every pending enqueue to the backend, then joins the flusher.
  ~GroupCommitter();

  GroupCommitter(const GroupCommitter&) = delete;
  GroupCommitter& operator=(const GroupCommitter&) = delete;

  /// Null-safe factory: a committer for `backend`, or null when `backend`
  /// is null (the in-memory server constructors pass the null through).
  [[nodiscard]] static std::shared_ptr<GroupCommitter> create(
      const std::shared_ptr<Backend>& backend, Options options = {});

  /// Queues one framed record for `shard`'s journal; the bytes are copied
  /// (the caller typically hands a per-shard scratch buffer it will reuse).
  [[nodiscard]] Ticket enqueue(std::size_t shard,
                               std::span<const std::uint8_t> bytes);

  /// Like enqueue(), but the caller ENCODES the record directly into the
  /// committer's staging buffer instead of handing over pre-framed bytes:
  /// `encode(Buffer&)` must APPEND exactly one framed record to the buffer
  /// it is given and touch nothing else.  This skips the frame-to-scratch
  /// copy of the enqueue() path (the remaining single-core group-commit
  /// lever ROADMAP flags).  The callback runs with the committer's queue
  /// mutex held -- it must not block, enqueue, or wait on this committer.
  template <typename EncodeFn>
  [[nodiscard]] Ticket enqueue_with(std::size_t shard, EncodeFn&& encode) {
    bool wake;
    Ticket ticket;
    {
      const std::lock_guard lock(mutex_);
      Buffer& pending = pending_.at(shard);
      if (pending.empty()) {
        dirty_shards_.push_back(shard);
      }
      encode(pending);
      ++pending_records_;
      // Batched-wakeup lever: notify only when the flusher is actually
      // parked on work_cv_.  While it claims, writes, or lingers, the
      // notify (a futex syscall plus, on one core, often a context
      // switch) would be pure overhead -- the flusher re-checks the
      // queue under the mutex before it ever sleeps again.
      wake = flusher_waiting_;
      ticket = ++issued_;
    }
    if (wake) {
      work_cv_.notify_one();
    }
    return ticket;
  }

  /// Queues a multi-shard record group under ONE mutex hold, so no flush
  /// cycle boundary can fall inside it (the pair-mutation atomicity).
  [[nodiscard]] Ticket enqueue_group(std::vector<ShardAppend>&& appends);

  /// Queues a metadata write.  Coalesced per key (the newest image wins),
  /// which is sound for the reply-cache image because every later image is
  /// a superset of every earlier one.  Written before the same cycle's
  /// journal appends (floor-before-effect).
  [[nodiscard]] Ticket enqueue_meta(std::string_view key, Buffer value);

  /// Blocks until every enqueue with a ticket at or below `ticket` is on
  /// the backend.  Throws UsageError if the flusher failed (disk full)
  /// before covering it -- durability is never reported optimistically.
  void wait_durable(Ticket ticket);

  /// Non-blocking durability probe.
  [[nodiscard]] bool is_durable(Ticket ticket) const;

  /// Blocks until everything enqueued so far is durable.
  void drain();

  [[nodiscard]] Stats stats() const;

  /// Installs the post-flush hook (one subscriber; throws on a second).
  /// Runs on the flusher thread after the cycle's backend writes complete
  /// and before its waiters release; a hook that throws latches the
  /// committer into the failed state exactly like a backend write failure
  /// (durability -- which now includes the hook's ack contract -- is never
  /// reported optimistically).  Constructing a GroupCommitter over a
  /// ReplicatedBackend installs the shipping hook automatically.
  void set_post_flush_hook(PostFlushHook hook);

  [[nodiscard]] const std::shared_ptr<Backend>& backend() const {
    return backend_;
  }

 private:
  /// One claimed flush cycle, alive from claim until its completion has
  /// been processed.  Owns the bytes the backend writes and the hook
  /// ships; shared with the backend's completion callback, which may
  /// outlive the flusher's local scope on an async backend.
  struct Cycle {
    Ticket covered = 0;
    std::uint64_t bytes = 0;
    std::uint64_t records = 0;
    std::map<std::string, Buffer, std::less<>> metas;
    std::vector<ShardAppend> appends;
    std::exception_ptr error;  // set by the completion; null on success
    bool done = false;         // completion arrived (guarded by mutex_)
  };

  void flusher(const std::stop_token& stop);
  /// Backend completion entry point: marks the cycle settled and runs the
  /// ordered drain.  Called from the flusher (sync backends, meta-only
  /// cycles) or from a backend reaper thread (io_uring).
  void on_cycle_complete(const std::shared_ptr<Cycle>& cycle,
                         std::exception_ptr error);
  /// Processes settled cycles STRICTLY from the front of inflight_: hook,
  /// then durable_ advance, then waiter wakeup -- submission order, which
  /// on an async backend is CQE order (docs/PROTOCOL.md §8.5).  `lock`
  /// holds mutex_; dropped across each hook invocation (the draining_
  /// flag keeps a second completer from processing cycles concurrently).
  void drain_completions_locked(std::unique_lock<std::mutex>& lock);

  std::shared_ptr<Backend> backend_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;            // wakes the flusher
  mutable std::condition_variable durable_cv_;  // wakes ticket waiters
  std::condition_variable inflight_cv_;  // wakes backpressure/drain waits
  std::vector<Buffer> pending_;                // per-shard gathered bytes
  std::vector<std::size_t> dirty_shards_;      // shards with pending bytes
  std::uint64_t pending_records_ = 0;
  std::map<std::string, Buffer, std::less<>> pending_meta_;
  Ticket issued_ = 0;   // highest ticket handed out
  Ticket taken_ = 0;    // highest ticket a flush cycle has claimed
  Ticket durable_ = 0;  // highest ticket reported durable
  std::deque<std::shared_ptr<Cycle>> inflight_;  // claimed, not yet drained
  bool draining_ = false;        // a thread is inside the ordered drain
  bool flusher_waiting_ = false;  // flusher parked on work_cv_ (see enqueue)
  std::size_t waiters_ = 0;      // threads blocked in wait_durable
  std::string failure_;  // non-empty once a backend write failed
  Stats stats_;
  PostFlushHook post_flush_hook_;

  std::jthread flusher_;  // last member: starts after the state above
};

}  // namespace amoeba::storage
