// io_uring-backed commit log: the async leg of group commit.
//
// FileBackend's submit_append_group blocks the flusher in write(2) +
// fsync(2) once per cycle -- on a single-core box those syscalls run ON
// the mutator's core, which is exactly the residual gap ROADMAP flags
// (grouped-file ~ grouped-memory, i.e. the disk stopped being the cost).
// UringFileBackend replaces only that path: the encoded group frame goes
// down as a chained SQE pair on a dedicated ring --
//
//   writev(commit.log frame)  [IOSQE_IO_LINK | IOSQE_IO_DRAIN]
//     `-> fdatasync           [IORING_OP_FSYNC, IORING_FSYNC_DATASYNC]
//
// -- and submit_append_group returns the moment the SQEs are on the ring.
// A reaper thread blocks in io_uring_enter(GETEVENTS), pairs up CQEs, and
// invokes the group-commit completion hook strictly in submission order:
// a ticket releases on the CQE of the linked fdatasync, never on syscall
// return (docs/PROTOCOL.md §8.5).
//
// Ordering: IOSQE_IO_DRAIN on each chain's writev serializes chains, so
// frame N+1 can never land on disk before frame N -- recovery's torn-tail
// rule and the LSN merge both assume the log has no holes.  On any chain
// failure the reaper waits for every in-flight chain to finish, truncates
// commit.log back to the FIRST failed chain's start offset (removing any
// later frame that landed past the gap), and fails every outstanding
// completion in order; the committer latches and nothing was ever
// acknowledged optimistically.
//
// Everything else -- recovery merge, snapshots, GC, metadata, the
// per-shard sync journals -- is inherited from FileBackend; the
// quiesce_commit_locked() override drains the ring before any of those
// paths read or replace commit.log.
//
// No liburing: raw io_uring_setup/io_uring_enter syscalls and hand-mmapped
// rings keep the build dependency-light, and the runtime probe
// (available()) falls back to the sync FileBackend in containers that deny
// io_uring_setup (ENOSYS/EPERM seccomp policies are common).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "amoeba/storage/backend.hpp"

struct io_uring_sqe;
struct io_uring_cqe;
struct iovec;

namespace amoeba::storage {

class UringFileBackend final : public FileBackend {
 public:
  /// Throws UsageError when the kernel denies io_uring_setup; call
  /// available() (or use make_backend) to fall back gracefully.
  explicit UringFileBackend(std::filesystem::path directory,
                            std::size_t shards = 16);
  ~UringFileBackend() override;

  void submit_append_group(std::vector<ShardAppend>&& appends,
                           AppendCompletion complete) override;
  [[nodiscard]] AsyncIoStats async_io_stats() const override;

  /// One cached runtime probe: io_uring_setup succeeds and the env knob
  /// AMOEBA_NO_URING is unset/0.  The env knob is re-read per call so CI
  /// can force the fallback path on a box whose kernel allows the ring.
  [[nodiscard]] static bool available();

  /// TEST HOOK: while true, submit_append_group stages chains (tickets
  /// issued, frames encoded, offsets claimed) WITHOUT pushing SQEs to the
  /// kernel -- the submitted-but-uncompleted state a crash test needs to
  /// hold open indefinitely.  Turning it off pushes every held chain in
  /// order.  Not for production use: quiesce/GC would wait forever on a
  /// held chain.
  void set_hold_submissions(bool hold);

 protected:
  /// Blocks (commit_mutex_ held) until the ring has no in-flight chains,
  /// so recovery reads and the GC's inode swap observe a settled log.
  void quiesce_commit_locked() const override;

 private:
  /// One submitted group: the frame bytes (kept alive until the CQE), the
  /// fd + log offset it targets (the truncate-repair point), and the two
  /// CQE slots of its writev -> fdatasync chain.
  struct Chain;

  void setup_ring();
  void teardown_ring();
  /// Pushes one chain's SQE pair and submits; ring_mutex_ held, and the
  /// caller holds commit_mutex_ (submission order = pending order).  Takes
  /// VALUES, not the Chain: once its SQEs are in the kernel a chain's CQEs
  /// can settle it and the reaper may free it at any moment, so the pusher
  /// must not touch chain memory outside pending_mutex_ (`iov` is only
  /// ever passed on to the kernel, never dereferenced here).
  void push_chain(std::uint64_t id, int fd, const iovec* iov);
  void reaper();
  /// Applies one CQE to its chain; pending_mutex_ held.
  void handle_cqe_locked(std::uint64_t user_data, std::int32_t res);
  /// Pops every settled chain off the front of pending_, in order, into
  /// `ready`; enters repair (truncate + fail-all) when the front failed.
  void drain_settled_locked(
      std::vector<std::pair<AppendCompletion, std::exception_ptr>>& ready);

  int ring_fd_ = -1;
  unsigned sq_entry_count_ = 0;
  unsigned cq_entry_count_ = 0;
  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqes_bytes_ = 0;
  bool single_mmap_ = false;
  // Raw ring pointers into the mmapped regions (kernel-shared; accessed
  // through std::atomic_ref with acquire/release as the io_uring ABI
  // requires).
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cq_cqes_ = nullptr;

  /// Guards the SQ tail + io_uring_enter(submit).  Taken after
  /// commit_mutex_ on the submission path; the destructor takes it alone
  /// to push its wake-the-reaper NOP.
  std::mutex ring_mutex_;

  /// Guards pending_ / hold_ / failure state.  The reaper takes ONLY this
  /// (never commit_mutex_), which is what lets quiesce_commit_locked()
  /// wait on it while holding commit_mutex_ without deadlock.
  mutable std::mutex pending_mutex_;
  mutable std::condition_variable pending_cv_;  // reaper -> quiesce/dtor
  std::deque<std::unique_ptr<Chain>> pending_;  // FIFO by submission
  std::uint64_t next_chain_id_ = 0;
  bool hold_ = false;
  bool failed_ = false;     // ring latched after an I/O error
  std::string failure_;     // first error, reported to later submitters
  std::atomic<bool> stopping_{false};

  // Monotone counters for async_io_stats(); relaxed everywhere (they are
  // statistics -- readers need freshness, not ordering with the I/O they
  // count).
  std::atomic<std::uint64_t> sqe_submitted_{0};
  std::atomic<std::uint64_t> cqe_completed_{0};

  std::thread reaper_;  // last member: started after the state above
};

/// The --backend knob, end to end: servers, cluster nodes, benches and
/// tests all pick a volume flavor through this one factory.
enum class BackendKind : std::uint8_t { memory, file, uring };

[[nodiscard]] std::string_view to_string(BackendKind kind);
/// Parses "memory" | "file" | "uring"; throws UsageError otherwise.
[[nodiscard]] BackendKind parse_backend_kind(std::string_view name);

/// Builds a volume of `kind` at `directory` (ignored for memory).  `uring`
/// falls back TRANSPARENTLY to the sync FileBackend when the probe fails
/// -- same directory layout, same recovery, just blocking syscalls -- so
/// a deployment can pin --backend=uring and still boot inside a container
/// that denies io_uring_setup.
[[nodiscard]] std::shared_ptr<Backend> make_backend(
    BackendKind kind, const std::filesystem::path& directory,
    std::size_t shards = 16);

}  // namespace amoeba::storage
