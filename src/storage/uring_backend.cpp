#include "amoeba/storage/uring_backend.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <utility>

#include "amoeba/common/error.hpp"

#if defined(__linux__)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>
#endif

namespace amoeba::storage {

// ---------------------------------------------------------------- factory

std::string_view to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::memory:
      return "memory";
    case BackendKind::file:
      return "file";
    case BackendKind::uring:
      return "uring";
  }
  return "?";
}

BackendKind parse_backend_kind(std::string_view name) {
  if (name == "memory") {
    return BackendKind::memory;
  }
  if (name == "file") {
    return BackendKind::file;
  }
  if (name == "uring") {
    return BackendKind::uring;
  }
  throw UsageError("unknown backend kind '" + std::string(name) +
                   "' (expected memory|file|uring)");
}

std::shared_ptr<Backend> make_backend(BackendKind kind,
                                      const std::filesystem::path& directory,
                                      std::size_t shards) {
  switch (kind) {
    case BackendKind::memory:
      return std::make_shared<MemoryBackend>(shards);
    case BackendKind::file:
      return std::make_shared<FileBackend>(directory, shards);
    case BackendKind::uring:
      // Transparent fallback: same on-disk layout either way, so a volume
      // written by one flavor always recovers under the other.
      if (UringFileBackend::available()) {
        return std::make_shared<UringFileBackend>(directory, shards);
      }
      return std::make_shared<FileBackend>(directory, shards);
  }
  throw UsageError("make_backend: bad kind");
}

// ------------------------------------------------------- non-Linux stubs

#if !defined(__linux__)

struct UringFileBackend::Chain {};

bool UringFileBackend::available() { return false; }

UringFileBackend::UringFileBackend(std::filesystem::path directory,
                                   std::size_t shards)
    : FileBackend(std::move(directory), shards) {
  throw UsageError("UringFileBackend: io_uring requires Linux");
}

UringFileBackend::~UringFileBackend() = default;
void UringFileBackend::submit_append_group(std::vector<ShardAppend>&&,
                                           AppendCompletion) {}
AsyncIoStats UringFileBackend::async_io_stats() const { return {}; }
void UringFileBackend::set_hold_submissions(bool) {}
void UringFileBackend::quiesce_commit_locked() const {}

#else  // __linux__

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

/// user_data layout: chain id << 1 | (0 = writev CQE, 1 = fdatasync CQE).
/// The NOP the destructor uses to wake the reaper is the all-ones value.
constexpr std::uint64_t kWakeNop = ~std::uint64_t{0};

constexpr unsigned kRingEntries = 256;  // 128 chains outstanding, plenty

}  // namespace

struct UringFileBackend::Chain {
  std::uint64_t id = 0;
  Buffer frame;            // the encoded group frame; alive until its CQE
  struct iovec iov {};     // points into `frame`
  int fd = -1;             // commit_fd_ at submit time
  std::uint64_t offset = 0;  // log size before this frame (repair point)
  AppendCompletion complete;
  bool pushed = false;       // SQE pair is on the ring
  bool write_done = false;
  bool fsync_done = false;
  std::int32_t write_res = 0;
  std::int32_t fsync_res = 0;
};

bool UringFileBackend::available() {
  // The env knob wins even where the kernel cooperates: CI's forced-
  // fallback run and the bench's contrast mode both set it.
  if (const char* no = std::getenv("AMOEBA_NO_URING");
      no != nullptr && no[0] != '\0' && !(no[0] == '0' && no[1] == '\0')) {
    return false;
  }
  static const bool probed = [] {
    io_uring_params params{};
    const int fd = sys_io_uring_setup(4, &params);
    if (fd < 0) {
      return false;  // ENOSYS (old kernel) or EPERM (container seccomp)
    }
    ::close(fd);
    return true;
  }();
  return probed;
}

UringFileBackend::UringFileBackend(std::filesystem::path directory,
                                   std::size_t shards)
    : FileBackend(std::move(directory), shards) {
  setup_ring();
  reaper_ = std::thread([this] { reaper(); });
}

UringFileBackend::~UringFileBackend() {
  // A committer always drains before destroying its backend, so pending_
  // is normally empty here.  Held (test-hook) chains never reached the
  // kernel: fail them so their completions are not silently dropped.
  std::vector<std::pair<AppendCompletion, std::exception_ptr>> orphaned;
  {
    const std::lock_guard lock(pending_mutex_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (!(*it)->pushed) {
        orphaned.emplace_back(
            std::move((*it)->complete),
            std::make_exception_ptr(UsageError(
                "UringFileBackend: destroyed with held submissions")));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [complete, error] : orphaned) {
    if (complete) {
      complete(error);
    }
  }
  stopping_.store(true, std::memory_order_release);
  {
    // One NOP pops the reaper out of its GETEVENTS wait.
    const std::lock_guard lock(ring_mutex_);
    const unsigned tail = sq_tail_ != nullptr ? *sq_tail_ : 0;
    if (sqes_ != nullptr) {
      io_uring_sqe& sqe = sqes_[tail & sq_mask_];
      std::memset(&sqe, 0, sizeof(sqe));
      sqe.opcode = IORING_OP_NOP;
      sqe.user_data = kWakeNop;
      sq_array_[tail & sq_mask_] = tail & sq_mask_;
      std::atomic_ref<unsigned>(*sq_tail_).store(tail + 1,
                                                 std::memory_order_release);
      (void)sys_io_uring_enter(ring_fd_, 1, 0, 0);
    }
  }
  if (reaper_.joinable()) {
    reaper_.join();
  }
  teardown_ring();
}

void UringFileBackend::setup_ring() {
  io_uring_params params{};
  ring_fd_ = sys_io_uring_setup(kRingEntries, &params);
  if (ring_fd_ < 0) {
    throw UsageError(std::string("UringFileBackend: io_uring_setup failed (") +
                     std::strerror(errno) + ")");
  }
  sq_entry_count_ = params.sq_entries;
  cq_entry_count_ = params.cq_entries;
  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap_) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);
  }
  const auto ring_mmap = [&](std::size_t bytes, std::uint64_t off) -> void* {
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd_,
                     static_cast<off_t>(off));
    return p == MAP_FAILED ? nullptr : p;
  };
  sq_ring_ = ring_mmap(sq_ring_bytes_, IORING_OFF_SQ_RING);
  cq_ring_ = single_mmap_ ? sq_ring_
                          : ring_mmap(cq_ring_bytes_, IORING_OFF_CQ_RING);
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(ring_mmap(sqes_bytes_, IORING_OFF_SQES));
  if (sq_ring_ == nullptr || cq_ring_ == nullptr || sqes_ == nullptr) {
    teardown_ring();
    throw UsageError("UringFileBackend: ring mmap failed");
  }
  auto* sq = static_cast<std::uint8_t*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  auto* cq = static_cast<std::uint8_t*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cq_cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
}

void UringFileBackend::teardown_ring() {
  if (sqes_ != nullptr) {
    ::munmap(sqes_, sqes_bytes_);
    sqes_ = nullptr;
  }
  if (cq_ring_ != nullptr && !single_mmap_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  cq_ring_ = nullptr;
  if (sq_ring_ != nullptr) {
    ::munmap(sq_ring_, sq_ring_bytes_);
    sq_ring_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
}

void UringFileBackend::push_chain(std::uint64_t id, int fd,
                                  const iovec* iov) {
  // Caller holds ring_mutex_ (and commit_mutex_ upstream, so successive
  // chains hit the SQ in pending_ order).  The committer caps in-flight
  // cycles far below kRingEntries/2, so the ring cannot fill on the
  // production path; held-then-released test chains are pushed one call
  // at a time, and io_uring_enter consumes SQEs synchronously (no
  // SQPOLL), so two free slots are always back by the time we return.
  const unsigned head =
      std::atomic_ref<unsigned>(*sq_head_).load(std::memory_order_acquire);
  unsigned tail = *sq_tail_;  // sole writer under ring_mutex_
  if (sq_entry_count_ - (tail - head) < 2) {
    throw UsageError("UringFileBackend: submission ring overflow");
  }
  io_uring_sqe& write_sqe = sqes_[tail & sq_mask_];
  std::memset(&write_sqe, 0, sizeof(write_sqe));
  write_sqe.opcode = IORING_OP_WRITEV;
  // LINK chains the fdatasync behind the write; DRAIN orders the whole
  // chain behind every previously submitted SQE, so frames land in
  // submission order and the log can tear only at its tail (§8.5).
  write_sqe.flags = IOSQE_IO_LINK | IOSQE_IO_DRAIN;
  write_sqe.fd = fd;
  write_sqe.off = ~std::uint64_t{0};  // current position; fd is O_APPEND
  write_sqe.addr = reinterpret_cast<std::uint64_t>(iov);
  write_sqe.len = 1;
  write_sqe.user_data = id << 1;
  sq_array_[tail & sq_mask_] = tail & sq_mask_;
  ++tail;
  io_uring_sqe& sync_sqe = sqes_[tail & sq_mask_];
  std::memset(&sync_sqe, 0, sizeof(sync_sqe));
  sync_sqe.opcode = IORING_OP_FSYNC;
  sync_sqe.fd = fd;
  sync_sqe.fsync_flags = IORING_FSYNC_DATASYNC;
  sync_sqe.user_data = (id << 1) | 1;
  sq_array_[tail & sq_mask_] = tail & sq_mask_;
  ++tail;
  std::atomic_ref<unsigned>(*sq_tail_).store(tail, std::memory_order_release);
  // Statistics only: relaxed is enough, readers want freshness not
  // ordering against the I/O these count.
  sqe_submitted_.fetch_add(2, std::memory_order_relaxed);
  unsigned remaining = 2;
  while (remaining > 0) {
    const int n = sys_io_uring_enter(ring_fd_, remaining, 0, 0);
    if (n >= 0) {
      remaining -= std::min(remaining, static_cast<unsigned>(n));
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    if (remaining == 2) {
      // Nothing reached the kernel: withdraw the SQE pair so the caller
      // can unstage the chain and report the failure synchronously.
      std::atomic_ref<unsigned>(*sq_tail_).store(tail - 2,
                                                 std::memory_order_release);
      sqe_submitted_.fetch_sub(2, std::memory_order_relaxed);
      throw UsageError(
          std::string("UringFileBackend: io_uring_enter failed (") +
          std::strerror(errno) + ")");
    }
    // Half a chain is inside the kernel and the other half cannot follow:
    // the fdatasync that acknowledges the frame will never run, and there
    // is no API to withdraw the consumed half.  No safe continuation.
    std::abort();
  }
}

void UringFileBackend::submit_append_group(std::vector<ShardAppend>&& appends,
                                           AppendCompletion complete) {
  std::erase_if(appends,
                [](const ShardAppend& a) { return a.bytes.empty(); });
  if (appends.empty()) {
    // Nothing to write; complete inline.  The committer's completion
    // pipeline re-orders against in-flight cycles, so an early empty
    // completion cannot leapfrog durability.
    if (complete) {
      complete(nullptr);
    }
    return;
  }
  auto chain = std::make_unique<Chain>();
  encode_group_frame(appends, chain->frame);
  chain->complete = std::move(complete);
  bool push = false;
  std::uint64_t id = 0;
  int fd = -1;
  const iovec* iov = nullptr;
  AppendCompletion fail_complete;
  std::exception_ptr error;
  {
    const std::lock_guard commit_lock(commit_mutex_);
    {
      const std::lock_guard lock(pending_mutex_);
      if (failed_) {
        error = std::make_exception_ptr(
            UsageError("UringFileBackend: ring failed earlier: " + failure_));
        fail_complete = std::move(chain->complete);
      } else {
        // EVERY access to the chain happens here, under pending_mutex_
        // (push_chain below gets values, not the Chain): the mutex is
        // what orders this thread's writes against the reaper's eventual
        // free of the chain -- the kernel's SQE->CQE path orders the
        // free in time, but the memory model cannot see it.
        chain->id = next_chain_id_++;
        chain->fd = commit_fd_;
        chain->offset = commit_log_bytes_;
        chain->iov = {chain->frame.data(), chain->frame.size()};
        commit_log_bytes_ += chain->frame.size();
        push = !hold_;
        chain->pushed = push;
        id = chain->id;
        fd = chain->fd;
        iov = &chain->iov;
        pending_.push_back(std::move(chain));
      }
    }
    if (push) {
      try {
        // Still under commit_mutex_: SQ order must equal pending_ order.
        const std::lock_guard ring_lock(ring_mutex_);
        push_chain(id, fd, iov);
      } catch (...) {
        // push_chain withdrew the SQE pair; unstage the chain (it is the
        // back -- commit_mutex_ kept later submits out) and latch.
        error = std::current_exception();
        const std::lock_guard lock(pending_mutex_);
        Chain& raw = *pending_.back();
        commit_log_bytes_ -= raw.frame.size();
        fail_complete = std::move(raw.complete);
        pending_.pop_back();
        failed_ = true;
        if (failure_.empty()) {
          failure_ = "io_uring_enter failed";
        }
      }
    }
  }
  if (error) {
    if (fail_complete) {
      fail_complete(error);
    } else {
      std::rethrow_exception(error);
    }
  }
}

void UringFileBackend::handle_cqe_locked(std::uint64_t user_data,
                                         std::int32_t res) {
  const std::uint64_t id = user_data >> 1;
  for (const auto& chain : pending_) {
    if (chain->id != id) {
      continue;
    }
    if ((user_data & 1) == 0) {
      chain->write_done = true;
      chain->write_res = res;
    } else {
      chain->fsync_done = true;
      chain->fsync_res = res;
    }
    return;
  }
  // A CQE for an unknown chain would mean the bookkeeping lost a frame;
  // ignoring it silently could mask an acknowledgement bug, but there is
  // no safe recovery either -- latch the ring instead.
  failed_ = true;
  if (failure_.empty()) {
    failure_ = "CQE for unknown chain";
  }
}

void UringFileBackend::drain_settled_locked(
    std::vector<std::pair<AppendCompletion, std::exception_ptr>>& ready) {
  // Strict FIFO: chain N's completion (and therefore the committer's
  // durable_ advance and replication ship hook) fires before N+1's, in
  // exactly the order the frames hit the log.
  while (!pending_.empty()) {
    Chain& front = *pending_.front();
    if (!front.pushed || !front.write_done || !front.fsync_done) {
      return;  // head still in flight; later settled chains must wait
    }
    const bool wrote_all =
        front.write_res == static_cast<std::int32_t>(front.frame.size());
    if (wrote_all && front.fsync_res == 0) {
      ready.emplace_back(std::move(front.complete), nullptr);
      pending_.pop_front();
      continue;
    }
    // Failure repair.  Every chain behind the head keeps its CQEs coming
    // (DRAIN orders, it does not cancel), so wait for all of them before
    // touching the file.
    for (const auto& chain : pending_) {
      if (chain->pushed && (!chain->write_done || !chain->fsync_done)) {
        return;  // reap the rest first; we re-enter with all settled
      }
    }
    const int err = front.write_res < 0   ? -front.write_res
                    : front.fsync_res < 0 ? -front.fsync_res
                                          : EIO;
    failed_ = true;
    failure_ = std::string("commit log chain failed (") +
               std::strerror(err) + ") in " + directory().string();
    // Later frames may have landed beyond the failed one's gap; a
    // recovery walk would read them as valid and replay records whose
    // predecessors are missing.  Truncating back to the first failed
    // chain's start offset removes the gap and everything after it --
    // all of it unacknowledged, so nothing durable is lost.
    if (::ftruncate(front.fd, static_cast<off_t>(front.offset)) != 0) {
      // The log now holds frames recovery must not replay and the disk
      // refuses to remove them; no safe continuation exists.
      std::abort();
    }
    const auto error = std::make_exception_ptr(UsageError(
        "UringFileBackend: " + failure_));
    while (!pending_.empty()) {
      ready.emplace_back(std::move(pending_.front()->complete), error);
      pending_.pop_front();
    }
    return;
  }
}

void UringFileBackend::reaper() {
  std::vector<std::pair<AppendCompletion, std::exception_ptr>> ready;
  for (;;) {
    bool reaped = false;
    {
      const std::lock_guard lock(pending_mutex_);
      unsigned head = *cq_head_;  // sole consumer
      const unsigned tail =
          std::atomic_ref<unsigned>(*cq_tail_).load(std::memory_order_acquire);
      while (head != tail) {
        const io_uring_cqe& cqe = cq_cqes_[head & cq_mask_];
        if (cqe.user_data != kWakeNop) {
          cqe_completed_.fetch_add(1, std::memory_order_relaxed);
          handle_cqe_locked(cqe.user_data, cqe.res);
        }
        ++head;
        reaped = true;
      }
      std::atomic_ref<unsigned>(*cq_head_).store(head,
                                                 std::memory_order_release);
      drain_settled_locked(ready);
    }
    if (!ready.empty()) {
      // Completions run OUTSIDE pending_mutex_: they re-enter the
      // committer (durable_ advance, replication ship with ack waits)
      // and must not hold up quiesce waiters or CQE bookkeeping.
      for (auto& [complete, error] : ready) {
        if (complete) {
          complete(error);
        }
      }
      ready.clear();
      pending_cv_.notify_all();
      continue;  // completions may have taken a while; re-poll first
    }
    if (reaped) {
      pending_cv_.notify_all();
    }
    {
      const std::lock_guard lock(pending_mutex_);
      if (stopping_.load(std::memory_order_acquire) && pending_.empty()) {
        return;
      }
    }
    const int n = sys_io_uring_enter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
    if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY) {
      // Nothing to wait on (ring torn down under us?): spin-exit rather
      // than busy-loop a broken wait.
      return;
    }
  }
}

void UringFileBackend::quiesce_commit_locked() const {
  // commit_mutex_ is held by the caller; the reaper never takes it, so
  // waiting here cannot deadlock -- in-flight chains keep completing.
  std::unique_lock lock(pending_mutex_);
  pending_cv_.wait(lock, [&] { return pending_.empty() || failed_; });
}

void UringFileBackend::set_hold_submissions(bool hold) {
  struct Staged {
    std::uint64_t id;
    int fd;
    const iovec* iov;
  };
  std::vector<Staged> release;
  const std::lock_guard commit_lock(commit_mutex_);
  {
    // As in submit_append_group: chain memory is touched only under
    // pending_mutex_; push_chain gets copies.
    const std::lock_guard lock(pending_mutex_);
    hold_ = hold;
    if (!hold) {
      for (const auto& chain : pending_) {
        if (!chain->pushed) {
          chain->pushed = true;
          release.push_back({chain->id, chain->fd, &chain->iov});
        }
      }
    }
  }
  if (!release.empty()) {
    const std::lock_guard ring_lock(ring_mutex_);
    for (const Staged& staged : release) {
      push_chain(staged.id, staged.fd, staged.iov);
    }
  }
}

AsyncIoStats UringFileBackend::async_io_stats() const {
  AsyncIoStats out;
  // Relaxed loads: monotone statistics counters; see the members.
  out.sqe_submitted = sqe_submitted_.load(std::memory_order_relaxed);
  out.cqe_completed = cqe_completed_.load(std::memory_order_relaxed);
  {
    const std::lock_guard lock(pending_mutex_);
    out.inflight = pending_.size();
  }
  out.async = true;
  return out;
}

#endif  // __linux__

}  // namespace amoeba::storage
