#include "amoeba/baseline/password_caps.hpp"

namespace amoeba::baseline {

PasswordCapabilityTable::PasswordCap PasswordCapabilityTable::create(
    std::string value) {
  const std::uint32_t object = next_object_++;
  const std::uint64_t password = rng_.next();
  objects_.emplace(object, Entry{password, std::move(value)});
  return PasswordCap{object, password};
}

Result<std::string*> PasswordCapabilityTable::open(const PasswordCap& cap) {
  auto it = objects_.find(cap.object);
  if (it == objects_.end()) {
    return ErrorCode::no_such_object;
  }
  if (it->second.password != cap.password) {
    return ErrorCode::bad_capability;
  }
  return &it->second.value;
}

Result<PasswordCapabilityTable::PasswordCap>
PasswordCapabilityTable::clone_for_sharing(const PasswordCap& cap) {
  auto opened = open(cap);
  if (!opened.ok()) {
    return opened.error();
  }
  return create(*opened.value());
}

}  // namespace amoeba::baseline
