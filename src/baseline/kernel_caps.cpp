#include "amoeba/baseline/kernel_caps.hpp"

namespace amoeba::baseline {

using servers::error_reply;
using servers::header_capability;
using servers::set_header_capability;

CapabilityManager::CapabilityManager(net::Machine& machine, Port get_port)
    : rpc::Service(machine, get_port, "capmgr") {}

std::size_t CapabilityManager::registered_count() const {
  const std::lock_guard lock(mutex_);
  return table_.size();
}

net::Message CapabilityManager::handle(const net::Delivery& request) {
  const std::lock_guard lock(mutex_);
  switch (request.message.header.opcode) {
    case capmgr_op::kRegister: {
      const core::Capability cap = header_capability(request.message);
      const std::uint64_t handle = next_handle_++;
      table_.emplace(handle, cap);
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      reply.header.params[0] = handle;
      return reply;
    }
    case capmgr_op::kVerify: {
      const std::uint64_t handle = request.message.header.params[0];
      auto it = table_.find(handle);
      if (it == table_.end()) {
        return error_reply(request, ErrorCode::bad_capability);
      }
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      set_header_capability(reply, it->second);
      return reply;
    }
    case capmgr_op::kRevokeObject: {
      const Port server_port(request.message.header.params[0]);
      const ObjectNumber object(
          static_cast<std::uint32_t>(request.message.header.params[1]));
      // The centralized design's cost: scan every registered copy.
      std::uint64_t removed = 0;
      for (auto it = table_.begin(); it != table_.end();) {
        if (it->second.server_port == server_port &&
            it->second.object == object) {
          it = table_.erase(it);
          ++removed;
        } else {
          ++it;
        }
      }
      net::Message reply = net::make_reply(request.message, ErrorCode::ok);
      reply.header.params[0] = removed;
      return reply;
    }
    default:
      return error_reply(request, ErrorCode::no_such_operation);
  }
}

Result<std::uint64_t> KernelMediatedClient::register_capability(
    const core::Capability& cap) {
  auto reply =
      servers::call(*transport_, manager_port_, capmgr_op::kRegister, &cap);
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

Result<core::Capability> KernelMediatedClient::verify(std::uint64_t handle) {
  auto reply = servers::call(*transport_, manager_port_, capmgr_op::kVerify,
                             nullptr, {}, {handle, 0, 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return header_capability(reply.value());
}

Result<std::uint64_t> KernelMediatedClient::revoke_object(
    Port server_port, ObjectNumber object) {
  auto reply = servers::call(*transport_, manager_port_,
                             capmgr_op::kRevokeObject, nullptr, {},
                             {server_port.value(), object.value(), 0, 0});
  if (!reply.ok()) {
    return reply.error();
  }
  return reply.value().header.params[0];
}

}  // namespace amoeba::baseline
