// Donnelley/LLL-style password capability baseline (§4).
//
// "Two schemes are described, one using a password in each capability ...
// Although these schemes are similar to ours in some ways, they do not
// provide a way to protect individual rights bits to allow one capability
// to read an object and another to write it."
//
// Model: each object has a single password; presenting the password grants
// every operation.  Delegating read-only access is impossible without the
// server creating a *separate* object/password pair -- which is exactly
// the limitation E6 demonstrates against the four Amoeba schemes.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "amoeba/common/error.hpp"
#include "amoeba/common/rng.hpp"

namespace amoeba::baseline {

class PasswordCapabilityTable {
 public:
  explicit PasswordCapabilityTable(std::uint64_t seed) : rng_(seed) {}

  struct PasswordCap {
    std::uint32_t object = 0;
    std::uint64_t password = 0;
  };

  /// Creates an object guarded by a fresh password.
  [[nodiscard]] PasswordCap create(std::string value);

  /// All-or-nothing: the password either opens everything or nothing.
  [[nodiscard]] Result<std::string*> open(const PasswordCap& cap);

  /// The only way to "delegate read-only": clone the data into a second
  /// object with its own password.  The clone is a snapshot -- it does not
  /// track the original, which is the semantic gap vs. rights restriction.
  [[nodiscard]] Result<PasswordCap> clone_for_sharing(const PasswordCap& cap);

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

 private:
  struct Entry {
    std::uint64_t password;
    std::string value;
  };

  Rng rng_;
  std::unordered_map<std::uint32_t, Entry> objects_;
  std::uint32_t next_object_ = 1;
};

}  // namespace amoeba::baseline
