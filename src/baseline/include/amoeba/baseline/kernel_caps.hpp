// Eden/ACCENT-style kernel-mediated capability baseline (§4).
//
// "In Eden, users may manage capabilities directly, but the kernel
// maintains copies, to be able to verify each one before it is used."
//
// Model: a trusted CapabilityManager service holds the authoritative copy
// of every issued capability.  Before a server acts on a request, it (or
// the client's kernel) must ask the manager to verify the handle -- an
// extra RPC on EVERY object operation, plus centralized registration on
// every mint and explicit deregistration on every revoke.  This is the
// comparison point for E6 (user-space sparse validation vs. kernel
// mediation) and E2 (revocation cost: the manager must find and invalidate
// every copy, O(outstanding handles), vs. Amoeba's O(1) secret rotation).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "amoeba/core/capability.hpp"
#include "amoeba/rpc/server.hpp"
#include "amoeba/rpc/transport.hpp"
#include "amoeba/servers/common.hpp"

namespace amoeba::baseline {

namespace capmgr_op {
inline constexpr std::uint16_t kRegister = 0x0701;  // data: cap -> params[0]=handle
inline constexpr std::uint16_t kVerify = 0x0702;    // params[0]=handle -> cap
inline constexpr std::uint16_t kRevokeObject = 0x0703;  // params: server port+object
}  // namespace capmgr_op

/// The centralized kernel capability manager.
class CapabilityManager final : public rpc::Service {
 public:
  CapabilityManager(net::Machine& machine, Port get_port);
  ~CapabilityManager() override { stop(); }  // quiesce workers first

  [[nodiscard]] std::size_t registered_count() const;

 protected:
  net::Message handle(const net::Delivery& request) override;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, core::Capability> table_;
  std::uint64_t next_handle_ = 1;
};

/// Client-side view: every use of an object goes through verify() first,
/// modeling the per-use kernel check Eden performs.
class KernelMediatedClient {
 public:
  KernelMediatedClient(rpc::Transport& transport, Port manager_port)
      : transport_(&transport), manager_port_(manager_port) {}

  /// Registers a capability with the kernel; returns the opaque handle the
  /// application stores instead of the raw bits.
  [[nodiscard]] Result<std::uint64_t> register_capability(
      const core::Capability& cap);

  /// Verifies a handle and returns the authoritative capability copy.
  [[nodiscard]] Result<core::Capability> verify(std::uint64_t handle);

  /// Revokes every registered copy for (server, object): the manager scans
  /// its table -- inherently O(outstanding copies).
  [[nodiscard]] Result<std::uint64_t> revoke_object(Port server_port,
                                                    ObjectNumber object);

 private:
  rpc::Transport* transport_;
  Port manager_port_;
};

}  // namespace amoeba::baseline
