// The batching envelope: N independent requests for one service packed
// into a single `batch` frame, answered by a single batched reply with
// per-entry status.
//
// Rationale (SpComm3D's lesson applied to §2.1 transactions): once the
// transport can pipeline, the remaining per-transaction cost is the frame
// itself -- one-shot port generation, F-box admission, two mailbox
// rendezvous.  Packing independent sub-requests into one frame amortizes
// all of it, and the server side fans the sub-requests across the sharded
// object store.
//
// Wire format (all integers little-endian, see common/serial.hpp):
//
//   batch request frame            batch reply frame
//     header.opcode = kBatchOpcode   header.status  = envelope status
//     header.flags |= net::kFlagBatch
//     data:                          data:
//       u32  count                     u32  count
//       count x entry:                 count x entry:
//         u16  opcode                    u16  status (ErrorCode)
//         16B  capability                16B  capability
//         4x u64 params                  4x u64 params
//         u32+ data (length-prefixed)    u32+ data (length-prefixed)
//
// The envelope status reports frame-level failures (malformed envelope,
// permission_denied from signature checks); per-entry statuses report each
// sub-request's own outcome in add() order.
//
// At-most-once (docs/PROTOCOL.md §5): the envelope is ONE transaction.
// The transport stamps the whole frame with one (client, seq) pair and
// retransmits it as a unit; the service's duplicate-suppression table
// caches the whole batched reply under that pair, so on a lossy network
// every sub-request of the envelope executes exactly once or the whole
// envelope fails with a timeout -- sub-requests never partially repeat.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "amoeba/common/error.hpp"
#include "amoeba/common/serial.hpp"
#include "amoeba/net/message.hpp"
#include "amoeba/rpc/transport.hpp"

namespace amoeba::rpc {

/// Reserved opcode carrying a batch envelope; outside every service's own
/// opcode space (Service::on refuses to register it).
inline constexpr std::uint16_t kBatchOpcode = 0xFFFF;

/// Upper bound on entries per envelope; a decoded count beyond it marks
/// the envelope malformed (guards against hostile length fields).
inline constexpr std::size_t kMaxBatchEntries = 4096;

/// One sub-request inside a batch envelope: the header fields a normal
/// transaction would carry, minus the ports (the envelope owns those).
struct BatchRequest {
  std::uint16_t opcode = 0;
  net::CapabilityBytes capability{};
  std::array<std::uint64_t, 4> params{};
  Buffer data;
};

/// One sub-reply, in the same position as its sub-request.
struct BatchReply {
  ErrorCode status = ErrorCode::ok;
  net::CapabilityBytes capability{};
  std::array<std::uint64_t, 4> params{};
  Buffer data;
};

// Envelope codec.  Decoders return nullopt on any malformation (underflow,
// trailing bytes, count beyond kMaxBatchEntries).
[[nodiscard]] Buffer encode_batch(std::span<const BatchRequest> entries);
[[nodiscard]] Buffer encode_batch(std::span<const BatchReply> entries);
[[nodiscard]] std::optional<std::vector<BatchRequest>> decode_batch_request(
    std::span<const std::uint8_t> data);
[[nodiscard]] std::optional<std::vector<BatchReply>> decode_batch_reply(
    std::span<const std::uint8_t> data);

/// Client helper: queue independent requests for one service, send them as
/// a single batch frame, collect per-entry replies.
///
///   rpc::Batch batch(transport, bank.put_port());
///   for (const auto& t : transfers)
///     batch.add(opcode, &cap, payload(t), {t.currency, ...});
///   auto replies = batch.run();  // one round trip for all of them
///
/// run()/run_async() consume the queued entries, so one Batch can be
/// reused round trip after round trip.
class Batch {
 public:
  Batch(Transport& transport, Port dest)
      : transport_(&transport), dest_(dest) {}

  /// Queues one sub-request; returns its position (reply index).  Not
  /// thread-safe (a Batch belongs to one issuing thread, like a Message).
  std::size_t add(std::uint16_t opcode,
                  const net::CapabilityBytes* capability = nullptr,
                  Buffer data = {},
                  std::array<std::uint64_t, 4> params = {});

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Sends the queued entries as one batch frame and waits; replies come
  /// back in add() order, and a success is guaranteed to carry exactly one
  /// reply per queued entry.  The frame is one at-most-once transaction:
  /// under loss it is retransmitted and duplicate-suppressed as a unit, so
  /// every entry executed exactly once on success and at most once on
  /// timeout.  An empty batch returns an empty vector without touching the
  /// network.
  [[nodiscard]] Result<std::vector<BatchReply>> run();
  [[nodiscard]] Result<std::vector<BatchReply>> run(
      std::chrono::milliseconds timeout);

  /// Pipelining: sends the queued entries without waiting (same
  /// whole-envelope at-most-once guarantee as run()).  Decode the eventual
  /// delivery with parse_reply().  An empty batch yields an invalid
  /// Future.
  [[nodiscard]] Future run_async();
  [[nodiscard]] Future run_async(std::chrono::milliseconds timeout);

  /// Unpacks a batched reply delivery (as resolved by run_async's future)
  /// into per-entry replies; surfaces transport and envelope-level
  /// failures as the error.  Unlike run(), this static path cannot know
  /// how many entries were sent -- run_async callers indexing by add()
  /// position must check the reply count themselves.
  [[nodiscard]] static Result<std::vector<BatchReply>> parse_reply(
      Result<net::Delivery> delivery);

 private:
  [[nodiscard]] net::Message build();

  Transport* transport_;
  Port dest_;
  std::vector<BatchRequest> entries_;
};

}  // namespace amoeba::rpc
