// Server-side service loop.
//
// A service chooses a secret get-port G, does GET(G), and serves requests
// arriving on P = F(G) (§2.2).  Concrete servers (file, directory, bank,
// ...) subclass Service and register an opcode handler table with on();
// the loop takes care of receiving, dispatching, replying to the frame's
// stamped source (including the automatic no_such_operation reply for
// opcodes the service does not implement), and clean shutdown.  A subclass
// with needs the table cannot express may instead override handle()
// wholesale.  Multiple worker threads may GET on the same port; the
// network delivers round-robin, exactly like multiple server processes
// comprising one service in Amoeba.
//
// Batch envelopes (rpc/batch.hpp): a frame carrying kBatchOpcode is
// unpacked here and each sub-request dispatched through the same handle()
// path, producing one batched reply with per-entry status.  Envelope-level
// checks (signature, filter) run once per frame; wide envelopes can
// optionally be fanned across transient helper threads
// (set_batch_fan_out), which is safe because handlers already tolerate
// multi-worker concurrency.
#pragma once

#include <atomic>
#include <functional>
#include <latch>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "amoeba/net/network.hpp"
#include "amoeba/rpc/filter.hpp"

namespace amoeba::rpc {

class Service {
 public:
  /// Binds the service to a machine and its secret get-port.  The service
  /// does not listen until start() is called.
  Service(net::Machine& machine, Port get_port, std::string name);
  /// Joins the workers.  Concrete subclasses must call stop() in their own
  /// destructor: by the time this base destructor runs, the subclass state
  /// (stores, tables) is already gone and the vtable has been rewound, so
  /// a still-running worker would race both.
  virtual ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns `workers` listener threads.  Idempotent start/stop pairs.
  void start(int workers = 1);

  /// Stops all workers and waits for them to exit (jthread join).
  void stop();

  /// Moves a stopped service to another machine (process migration for the
  /// locate experiments).  Throws UsageError if the service is running.
  void rebind(net::Machine& machine);

  /// The public put-port clients use: P = F(G) under F-boxes, G otherwise.
  [[nodiscard]] Port put_port() const;

  /// Installs a message filter (capability sealing in F-box-less mode);
  /// applied to requests on arrival and replies on departure.
  void set_filter(std::shared_ptr<MessageFilter> filter);

  /// Restricts the service to signed requests (§2.2 digital signatures):
  /// "each client chooses a random signature, S, and publishes F(S)".
  /// The service accepts a request only when its (F-box transformed)
  /// signature field matches one of the published values; everything else
  /// is refused with permission_denied.  An empty set (the default)
  /// disables the check.  Only meaningful under F-boxes -- without them a
  /// signature is replayable and §2.4's source addresses take over.
  void set_allowed_signatures(std::vector<Port> published_signatures);

  /// Fans sub-requests of one batch envelope across up to `helpers`
  /// transient threads (1 = in the receiving worker, the default; pays off
  /// when handlers block or compute, not for cheap table lookups).
  void set_batch_fan_out(int helpers);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::Machine& machine() { return *machine_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Sub-requests unpacked from batch envelopes (each envelope also counts
  /// once in requests_served).
  [[nodiscard]] std::uint64_t batched_requests() const {
    return batched_requests_.load(std::memory_order_relaxed);
  }

  /// One request processor: produces the reply message (status + payload;
  /// the loop fills in the destination from the request's reply port).
  /// Runs on worker threads; handlers guard any state they share.
  using Handler = std::function<net::Message(const net::Delivery&)>;

  /// Registers the handler for one opcode.  Must be called before start()
  /// (typically from the subclass constructor): the table is immutable
  /// while workers run, which is what lets dispatch read it without a
  /// lock.  Throws UsageError on duplicate registration or when running.
  /// Public so helpers (the shared owner-operation registrations) and
  /// table-driven services built without subclassing can use it.
  void on(std::uint16_t opcode, Handler handler);

 protected:
  /// Processes one request and produces the reply message.  The default
  /// looks the opcode up in the on() table and replies no_such_operation
  /// for unknown opcodes; subclasses with dynamic dispatch needs may
  /// override it entirely.
  [[nodiscard]] virtual net::Message handle(const net::Delivery& request);

 private:
  void run(std::stop_token stop, std::latch& ready);
  [[nodiscard]] net::Message handle_batch(const net::Delivery& request);
  [[nodiscard]] net::Message handle_one(const net::Delivery& request);

  net::Machine* machine_;
  Port get_port_;
  std::string name_;
  std::vector<std::jthread> workers_;
  std::atomic<int> batch_fan_out_{1};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  mutable std::mutex filter_mutex_;  // guards filter_ and signatures_
  std::shared_ptr<MessageFilter> filter_;
  std::vector<Port> allowed_signatures_;
  std::unordered_map<std::uint16_t, Handler> handlers_;  // frozen at start()
};

}  // namespace amoeba::rpc
