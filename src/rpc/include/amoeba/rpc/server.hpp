// Server-side service loop.
//
// A service chooses a secret get-port G, does GET(G), and serves requests
// arriving on P = F(G) (§2.2).  Concrete servers (file, directory, bank,
// ...) subclass Service and register an opcode handler table with on();
// the loop takes care of receiving, dispatching, replying to the frame's
// stamped source (including the automatic no_such_operation reply for
// opcodes the service does not implement), and clean shutdown.  A subclass
// with needs the table cannot express may instead override handle()
// wholesale.  Multiple worker threads may GET on the same port; the
// network delivers round-robin, exactly like multiple server processes
// comprising one service in Amoeba.
//
// Batch envelopes (rpc/batch.hpp): a frame carrying kBatchOpcode is
// unpacked here and each sub-request dispatched through the same handle()
// path, producing one batched reply with per-entry status.  Envelope-level
// checks (signature, filter) run once per frame; wide envelopes can
// optionally be fanned across transient helper threads
// (set_batch_fan_out), which is safe because handlers already tolerate
// multi-worker concurrency.
//
// At-most-once duplicate suppression (docs/PROTOCOL.md §5): requests
// stamped with kFlagAtMostOnce carry the issuing transport's (client, seq)
// identity, and the service keeps a per-client reply cache keyed by the
// stamped source machine plus that identity.  A retransmitted request
// whose original already completed re-sends the cached reply WITHOUT
// re-executing the handler (critical for non-idempotent operations like
// bank.transfer and std_destroy); one whose original is still executing is
// dropped silently (the client's next backoff tick retries).  The check
// runs after the signature and filter gates, so a replayed frame from the
// wrong machine can neither poison nor read the cache.  Batch envelopes
// are suppressed as a unit: the whole batched reply is cached under the
// envelope's (client, seq).
//
// The cache is SHARDED by client-key hash (16 stripes, each with its own
// mutex and map), so claim/store on the request path never serializes
// across workers -- this removed the last global lock on that path.  The
// window / client-cap limits stay GLOBAL (atomic totals; LRU eviction
// scans the stripes), so the observable bounds are unchanged from the
// single-map implementation.
//
// Restart semantics (docs/PROTOCOL.md §8): attach_durability() persists
// each client's suppression FLOOR -- the highest sequence number ever
// claimed -- to the storage backend's metadata area before the claimed
// request executes, and restores the floors on construction.  After a
// crash+restart, a duplicate of any pre-crash transaction is therefore
// DROPPED (at most once survives the crash: an operation may be lost to
// the torn tail, but can never run twice).  A bounded window of recent
// reply BODIES per client rides the same metadata image (persisted best
// effort after each reply completes), so a post-restart duplicate of a
// recently COMPLETED transaction is re-answered from the restored cache
// instead of timing out at the client.  With a GroupCommitter attached,
// floor persists are enqueued on the volume's flush cycles (the claim
// blocks -- outside the table locks -- until its floor's cycle is
// durable) rather than each paying a private fsync.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <latch>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "amoeba/common/serial.hpp"
#include "amoeba/net/network.hpp"
#include "amoeba/rpc/filter.hpp"

namespace amoeba::storage {
class Backend;
class GroupCommitter;
}  // namespace amoeba::storage

namespace amoeba::rpc {

/// Runtime metadata of one typed operation descriptor registered on a
/// service -- what the generic std_ops / rights-matrix property tests
/// iterate.  Mirrors the fields of rpc::Op (rpc/op.hpp).
struct OpInfo {
  std::uint16_t opcode = 0;
  std::string name;
  Rights required;            // rights the header capability must grant
  Rights data_rights;         // rights demanded of data-field capabilities
  bool object = true;         // false: factory op, no header capability
};

class Service {
 public:
  /// Binds the service to a machine and its secret get-port.  The service
  /// does not listen until start() is called.
  Service(net::Machine& machine, Port get_port, std::string name);
  /// Joins the workers.  Concrete subclasses must call stop() in their own
  /// destructor: by the time this base destructor runs, the subclass state
  /// (stores, tables) is already gone and the vtable has been rewound, so
  /// a still-running worker would race both.
  virtual ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns `workers` listener threads.  Idempotent start/stop pairs.
  /// Blocks until every worker's GET is registered, so a request issued
  /// right after start() cannot race the registrations.
  void start(int workers = 1);

  /// Stops all workers and waits for them to exit (jthread join).  Safe to
  /// call repeatedly; in-flight handlers finish before their worker exits.
  void stop();

  /// Moves a stopped service to another machine (process migration for the
  /// locate experiments).  Throws UsageError if the service is running.
  /// The reply cache survives the move (a client's retransmit after the
  /// migration is still suppressed).
  void rebind(net::Machine& machine);

  /// The public put-port clients use: P = F(G) under F-boxes, G otherwise.
  /// Constant after construction; safe from any thread.
  [[nodiscard]] Port put_port() const;

  /// Installs a message filter (capability sealing in F-box-less mode);
  /// applied to requests on arrival and replies on departure -- including
  /// replies re-sent from the reply cache, which are re-sealed per
  /// transmission.  Thread-safe; filters must be internally synchronized
  /// (workers run them concurrently).
  void set_filter(std::shared_ptr<MessageFilter> filter);

  /// Restricts the service to signed requests (§2.2 digital signatures):
  /// "each client chooses a random signature, S, and publishes F(S)".
  /// The service accepts a request only when its (F-box transformed)
  /// signature field matches one of the published values; everything else
  /// is refused with permission_denied.  An empty set (the default)
  /// disables the check.  Only meaningful under F-boxes -- without them a
  /// signature is replayable and §2.4's source addresses take over.
  /// Thread-safe; applies from the next delivered frame.
  void set_allowed_signatures(std::vector<Port> published_signatures);

  /// Fans sub-requests of one batch envelope across up to `helpers`
  /// transient threads (1 = in the receiving worker, the default; pays off
  /// when handlers block or compute, not for cheap table lookups).
  /// Thread-safe; takes effect on the next envelope.
  void set_batch_fan_out(int helpers);

  // ---- at-most-once reply cache ---------------------------------------

  /// Counters and occupancy of the duplicate-suppression table.  Snapshot
  /// under the cache lock; safe to call while workers run.
  struct ReplyCacheStats {
    std::uint64_t duplicates_suppressed = 0;  // retransmits not re-executed
    std::uint64_t replies_resent = 0;   // of those, answered from the cache
    std::uint64_t evicted_entries = 0;  // cached replies aged out
    std::uint64_t evicted_clients = 0;  // whole client entries aged out
    std::uint64_t entries = 0;          // live cached replies
    std::uint64_t clients = 0;          // live client entries
  };
  [[nodiscard]] ReplyCacheStats reply_cache_stats() const;

  /// Bounds the duplicate-suppression table: at most `window_per_client`
  /// cached replies per client (oldest completed entries evicted first;
  /// window 0 disables suppression entirely) and at most `max_clients`
  /// clients with live cached replies (least recently used demoted to a
  /// floor-only tombstone; 0 = unbounded).  Eviction never re-executes: a
  /// duplicate of an evicted transaction is dropped silently, so at-most-
  /// once degrades to "at most once + client timeout", never "twice" --
  /// but windows should comfortably exceed the deepest client pipeline so
  /// replies can still be RE-SENT (see docs/PROTOCOL.md §5.4 for the
  /// memory tradeoff).  Thread-safe.
  void set_reply_cache_limits(std::size_t window_per_client,
                              std::size_t max_clients);

  /// Drops every cached reply and client entry (the eviction hook tests
  /// use to force the cold path).  In-flight requests are unaffected
  /// beyond losing their suppression record.  Thread-safe.
  void flush_reply_cache();

  // ---- durable restart support ----------------------------------------

  /// Wires the at-most-once reply cache to a storage volume: restores the
  /// per-client suppression floors (and any persisted reply bodies) the
  /// previous incarnation left in the backend's metadata area, and
  /// persists updated floors before every freshly claimed at-most-once
  /// request executes -- the ordering that guarantees a post-restart
  /// duplicate of an executed transfer is dropped, never re-run.  Null
  /// backend: no-op.  Call from the server constructor, before start().
  ///
  /// The two-argument form routes persists through the volume's
  /// group-commit flusher: each floor write is enqueued as metadata on the
  /// current flush cycle and the claim blocks until that cycle is durable
  /// (coalesced with every journal append and every other claim of the
  /// cycle), instead of paying a private put_meta fsync per claim.
  /// `committer` may be null (synchronous persists, the PR-5 shape).
  void attach_durability(std::shared_ptr<storage::Backend> backend);
  void attach_durability(std::shared_ptr<storage::Backend> backend,
                         std::shared_ptr<storage::GroupCommitter> committer);

  /// Serialized per-client suppression state (src machine, client id,
  /// highest seq claimed, plus a bounded window of completed reply
  /// bodies); what attach_durability persists.  Thread-safe.
  [[nodiscard]] Buffer encode_reply_floors() const;

  /// Primes the cache with client entries from a previous incarnation's
  /// encode_reply_floors() image: floors always; completed replies where
  /// the image carries their bodies (those duplicates are re-answered
  /// instead of dropped).  Understands both the current body-carrying
  /// format and the floors-only image of earlier versions.  Malformed
  /// input is ignored.  Thread-safe, but intended for construction time.
  void restore_reply_floors(std::span<const std::uint8_t> floors);

  // ---- per-operation metrics (ROADMAP follow-up from PR 3) -------------

  /// Latency/error counters of one typed operation, keyed by
  /// OpInfo::name.  Readable remotely through std_info with the detail
  /// flag set (rpc/typed.hpp).
  struct OpMetricsSnapshot {
    std::string name;
    std::uint64_t calls = 0;      // handler executions (cache resends excluded)
    std::uint64_t errors = 0;     // replies with status != ok
    std::uint64_t total_us = 0;   // summed handler latency
    std::uint64_t max_us = 0;     // worst single handler latency
  };
  /// Snapshot in op-registration order.  Lock-free reads of relaxed
  /// atomics; safe while workers run.
  [[nodiscard]] std::vector<OpMetricsSnapshot> op_metrics() const;

  /// Installs the provider for the service's deployment line in detailed
  /// std_info replies (replication role, peers, lag).  Unset, info_detail()
  /// reports "role=standalone".  Call before start(); attach_durability
  /// installs one automatically when its backend is replicated.
  void set_info_detail(std::function<std::string()> provider);
  /// The current deployment line.  Safe while workers run: the provider
  /// reads its own thread-safe sources.
  [[nodiscard]] std::string info_detail() const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::Machine& machine() { return *machine_; }
  /// Requests this service executed (handlers run + signature/filter
  /// refusals).  Duplicates suppressed by the reply cache do NOT count
  /// here; they are visible in reply_cache_stats().  Relaxed atomic read.
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Sub-requests unpacked from batch envelopes (each envelope also counts
  /// once in requests_served).  Relaxed atomic read.
  [[nodiscard]] std::uint64_t batched_requests() const {
    return batched_requests_.load(std::memory_order_relaxed);
  }

  /// One request processor: produces the reply message (status + payload;
  /// the loop fills in the destination from the request's reply port).
  /// Runs on worker threads; handlers guard any state they share.
  using Handler = std::function<net::Message(const net::Delivery&)>;

  /// Registers the handler for one opcode.  Must be called before start()
  /// (typically from the subclass constructor): the table is immutable
  /// while workers run, which is what lets dispatch read it without a
  /// lock.  Throws UsageError on duplicate registration or when running.
  /// Public so helpers (the shared owner-operation registrations) and
  /// table-driven services built without subclassing can use it.
  void on(std::uint16_t opcode, Handler handler);

  // ---- typed operation registration (defined in rpc/typed.hpp) --------
  // The declarative path: the dispatch layer decodes the request body,
  // validates the header capability against the op's declared rights
  // BEFORE the handler runs, encodes the reply, and maps Result errors to
  // statuses.  Including rpc/typed.hpp is required at the call site.

  /// Factory ops (op.object == false): no header capability, nothing to
  /// validate.  `handler`: (const Call<OpT>&) -> Outcome<OpT>.
  template <typename OpT, typename F>
    requires requires { typename OpT::Request; typename OpT::Reply; }
  void on(const OpT& op, F handler);

  /// Object ops.  When `handler` is (Call<OpT>&, Store::Opened&), the
  /// dispatcher opens the object with the op's declared rights and hands
  /// the handler the exclusive accessor (the common single-object shape).
  /// When it is (Call<OpT>&), the dispatcher validates rights via
  /// store.check() and the handler takes its own locks (open2 pair ops).
  template <typename OpT, typename Store, typename F>
    requires requires { typename OpT::Request; typename OpT::Reply; }
  void on(const OpT& op, Store& store, F handler);

  /// Every typed descriptor registered on this service, in registration
  /// order -- lets generic tests exercise any server without per-server
  /// case lists (and the docs/PROTOCOL.md consistency test verify the
  /// published opcode tables).  Immutable once workers run; lock-free.
  [[nodiscard]] const std::vector<OpInfo>& registered_ops() const {
    return typed_ops_;
  }

 protected:
  /// Processes one request and produces the reply message.  The default
  /// looks the opcode up in the on() table and replies no_such_operation
  /// for unknown opcodes; subclasses with dynamic dispatch needs may
  /// override it entirely.
  [[nodiscard]] virtual net::Message handle(const net::Delivery& request);

 private:
  /// Records a typed descriptor's metadata (called by the typed on()
  /// overloads after the raw registration validated the opcode).
  void note_op(OpInfo info);

  void run(std::stop_token stop, std::latch& ready);
  [[nodiscard]] net::Message handle_batch(const net::Delivery& request);
  [[nodiscard]] net::Message handle_one(const net::Delivery& request);

  // ---- duplicate-suppression internals (docs/PROTOCOL.md §5.3) --------

  /// One client's slice of the reply cache.  `replies` holds the states of
  /// its recent transactions ordered by seq; seqs at or below `floor` were
  /// evicted and are known stale (dropped without execution -- the
  /// at-most-once-safe answer for a seq we no longer remember).
  struct CachedReply {
    bool done = false;   // false: original still executing
    net::Message reply;  // valid once done (pre-filter, pre-dest form)
  };
  struct ClientEntry {
    std::map<std::uint64_t, CachedReply> replies;
    std::uint64_t floor = 0;
    std::uint64_t last_used = 0;   // LRU tick for client eviction
    std::size_t executing = 0;     // replies entries not yet done
  };
  /// Total client entries (live + floor-only tombstones) may reach
  /// kTombstoneFactor x max_clients before the LRU tombstone is erased
  /// outright -- the bound that keeps server memory finite against
  /// client-id churn (the id is a self-chosen wire field).
  static constexpr std::size_t kTombstoneFactor = 8;
  /// Clients are keyed by the UNFORGEABLE stamped source machine plus the
  /// self-chosen client id, so no machine can touch another's entries.
  struct ClientKey {
    std::uint32_t src = 0;
    std::uint64_t client = 0;
    friend bool operator==(const ClientKey&, const ClientKey&) = default;
  };
  struct ClientKeyHash {
    [[nodiscard]] std::size_t operator()(const ClientKey& k) const {
      return std::hash<std::uint64_t>{}(k.client ^
                                        (std::uint64_t{k.src} << 32));
    }
  };
  enum class DupVerdict {
    fresh,     // unseen seq, claimed as executing: run the handler
    drop,      // duplicate of an executing or evicted seq: say nothing
    resend,    // duplicate of a completed seq: cached reply copied out
  };
  /// Classifies one at-most-once request and, for `fresh`, claims its slot
  /// (marks it executing).  Fills `cached` on `resend`.  Holds only the
  /// owning stripe's lock; global-limit eviction runs after it drops.
  [[nodiscard]] DupVerdict claim_request(const net::Delivery& request,
                                         net::Message& cached);
  using ReplyCacheMap =
      std::unordered_map<ClientKey, ClientEntry, ClientKeyHash>;

  /// One stripe of the sharded reply cache; the stripe index is the
  /// client-key hash folded to kReplyCacheStripes.  Counters are
  /// per-stripe (summed for reply_cache_stats()).
  struct ReplyCacheStripe {
    mutable std::mutex mutex;
    ReplyCacheMap map;
    ReplyCacheStats counters;  // entries/clients fields derived on read
  };
  static constexpr std::size_t kReplyCacheStripes = 16;

  [[nodiscard]] ReplyCacheStripe& stripe_for(const ClientKey& key) const {
    return reply_cache_stripes_[ClientKeyHash{}(key) &
                                (kReplyCacheStripes - 1)];
  }
  /// Enforces the GLOBAL client cap / tombstone bound after a claim
  /// overflowed them: finds the least-recently-used eligible victim
  /// across all stripes (one stripe locked at a time) and demotes or
  /// erases it.  `excluded` protects the claiming client.
  void evict_reply_cache_client(const ClientKey& excluded,
                                bool want_tombstones);
  /// Publishes the reply of a claimed request and evicts beyond the
  /// per-client window.
  void store_reply(const net::Delivery& request, const net::Message& reply);
  /// Advances the claiming client's persisted floor and pushes the image
  /// through the sink, if attached (called for every freshly claimed
  /// at-most-once request BEFORE its handler runs -- write-ahead for the
  /// suppression state).  Update, encode, and write happen under one
  /// mutex: persists are totally ordered and each contains all rows of
  /// every earlier one.  With a committer the write is an enqueue and the
  /// durability wait happens AFTER the mutex drops, so concurrent claims
  /// pile their floors into the same flush cycle.
  void persist_reply_floor(const ClientKey& key, std::uint64_t seq);
  /// Adds one completed reply body to the client's persisted window and
  /// re-persists the image, best effort and WITHOUT waiting: the floor --
  /// already durable since the claim -- carries the never-twice
  /// guarantee; the body only upgrades a post-restart duplicate from
  /// "dropped" to "re-answered", so losing it to a crash is safe.
  void persist_reply_body(const ClientKey& key, std::uint64_t seq,
                          const net::Message& reply);
  /// Renders the suppression-state image; caller holds reply_floor_mutex_.
  [[nodiscard]] Buffer encode_reply_floors_locked() const;

  // ---- per-op metrics internals ---------------------------------------

  struct OpMetrics {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> total_us{0};
    std::atomic<std::uint64_t> max_us{0};
  };

  net::Machine* machine_;
  Port get_port_;
  std::string name_;
  std::vector<std::jthread> workers_;
  std::atomic<int> batch_fan_out_{1};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  mutable std::mutex filter_mutex_;  // guards filter_ and signatures_
  std::shared_ptr<MessageFilter> filter_;
  std::vector<Port> allowed_signatures_;
  mutable std::mutex info_detail_mutex_;       // guards info_detail_
  std::function<std::string()> info_detail_;   // deployment-line provider
  // Floor persistence: the canonical suppression-state image is
  // maintained incrementally (O(1) per claim) and encoded+written to the
  // sink under ONE mutex, so a later persist always contains every
  // earlier row -- a stale image can never overwrite a newer one (the
  // ordering §8.4's never-twice guarantee rests on).  Held only by
  // durable services.  The sink returns the group-commit ticket to wait
  // on (0: already durable, the synchronous-backend shape).
  /// One client's persisted slice: its floor plus a bounded window of
  /// encoded completed reply bodies (seq -> wire-independent body image).
  struct PersistedClient {
    std::uint64_t floor = 0;
    std::map<std::uint64_t, Buffer> replies;
  };
  /// Persisted reply bodies per client; older ones age out of the image
  /// (their duplicates still drop via the floor).
  static constexpr std::size_t kPersistedRepliesPerClient = 8;
  /// Replies with bulk payloads beyond this are not persisted (their
  /// post-restart duplicates drop via the floor): the metadata image is
  /// rewritten whole per persist, so it must stay small.
  static constexpr std::size_t kPersistedReplyMaxBytes = 4096;
  mutable std::mutex reply_floor_mutex_;
  std::unordered_map<ClientKey, PersistedClient, ClientKeyHash>
      reply_floors_;
  std::function<std::uint64_t(Buffer)> reply_floor_sink_;
  std::shared_ptr<storage::GroupCommitter> reply_committer_;
  std::atomic<bool> reply_floor_sink_set_{false};
  std::unordered_map<std::uint16_t, Handler> handlers_;  // frozen at start()
  std::vector<OpInfo> typed_ops_;                        // frozen at start()
  // Typed-op metrics keyed by opcode; the map is frozen at start() (the
  // counters inside stay hot), so dispatch reads it without a lock.
  std::unordered_map<std::uint16_t, std::unique_ptr<OpMetrics>> op_metrics_;

  // Sharded reply cache.  Stripe locks are never held across a handler
  // (claim before, store after) nor across another stripe's lock; the
  // limits and occupancy totals are process-wide atomics.
  mutable std::array<ReplyCacheStripe, kReplyCacheStripes>
      reply_cache_stripes_;
  std::atomic<std::size_t> reply_cache_window_{128};
  std::atomic<std::size_t> reply_cache_max_clients_{4096};
  std::atomic<std::size_t> reply_cache_loaded_{0};   // clients with replies
  std::atomic<std::size_t> reply_cache_clients_{0};  // incl. tombstones
  std::atomic<std::uint64_t> reply_cache_tick_{0};   // LRU clock
};

}  // namespace amoeba::rpc
