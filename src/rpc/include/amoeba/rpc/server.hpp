// Server-side service loop.
//
// A service chooses a secret get-port G, does GET(G), and serves requests
// arriving on P = F(G) (§2.2).  Concrete servers (file, directory, bank,
// ...) subclass Service and register an opcode handler table with on();
// the loop takes care of receiving, dispatching, replying to the frame's
// stamped source (including the automatic no_such_operation reply for
// opcodes the service does not implement), and clean shutdown.  A subclass
// with needs the table cannot express may instead override handle()
// wholesale.  Multiple worker threads may GET on the same port; the
// network delivers round-robin, exactly like multiple server processes
// comprising one service in Amoeba.
//
// Batch envelopes (rpc/batch.hpp): a frame carrying kBatchOpcode is
// unpacked here and each sub-request dispatched through the same handle()
// path, producing one batched reply with per-entry status.  Envelope-level
// checks (signature, filter) run once per frame; wide envelopes can
// optionally be fanned across transient helper threads
// (set_batch_fan_out), which is safe because handlers already tolerate
// multi-worker concurrency.
#pragma once

#include <atomic>
#include <functional>
#include <latch>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "amoeba/net/network.hpp"
#include "amoeba/rpc/filter.hpp"

namespace amoeba::rpc {

/// Runtime metadata of one typed operation descriptor registered on a
/// service -- what the generic std_ops / rights-matrix property tests
/// iterate.  Mirrors the fields of rpc::Op (rpc/op.hpp).
struct OpInfo {
  std::uint16_t opcode = 0;
  std::string name;
  Rights required;            // rights the header capability must grant
  Rights data_rights;         // rights demanded of data-field capabilities
  bool object = true;         // false: factory op, no header capability
};

class Service {
 public:
  /// Binds the service to a machine and its secret get-port.  The service
  /// does not listen until start() is called.
  Service(net::Machine& machine, Port get_port, std::string name);
  /// Joins the workers.  Concrete subclasses must call stop() in their own
  /// destructor: by the time this base destructor runs, the subclass state
  /// (stores, tables) is already gone and the vtable has been rewound, so
  /// a still-running worker would race both.
  virtual ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns `workers` listener threads.  Idempotent start/stop pairs.
  void start(int workers = 1);

  /// Stops all workers and waits for them to exit (jthread join).
  void stop();

  /// Moves a stopped service to another machine (process migration for the
  /// locate experiments).  Throws UsageError if the service is running.
  void rebind(net::Machine& machine);

  /// The public put-port clients use: P = F(G) under F-boxes, G otherwise.
  [[nodiscard]] Port put_port() const;

  /// Installs a message filter (capability sealing in F-box-less mode);
  /// applied to requests on arrival and replies on departure.
  void set_filter(std::shared_ptr<MessageFilter> filter);

  /// Restricts the service to signed requests (§2.2 digital signatures):
  /// "each client chooses a random signature, S, and publishes F(S)".
  /// The service accepts a request only when its (F-box transformed)
  /// signature field matches one of the published values; everything else
  /// is refused with permission_denied.  An empty set (the default)
  /// disables the check.  Only meaningful under F-boxes -- without them a
  /// signature is replayable and §2.4's source addresses take over.
  void set_allowed_signatures(std::vector<Port> published_signatures);

  /// Fans sub-requests of one batch envelope across up to `helpers`
  /// transient threads (1 = in the receiving worker, the default; pays off
  /// when handlers block or compute, not for cheap table lookups).
  void set_batch_fan_out(int helpers);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::Machine& machine() { return *machine_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  /// Sub-requests unpacked from batch envelopes (each envelope also counts
  /// once in requests_served).
  [[nodiscard]] std::uint64_t batched_requests() const {
    return batched_requests_.load(std::memory_order_relaxed);
  }

  /// One request processor: produces the reply message (status + payload;
  /// the loop fills in the destination from the request's reply port).
  /// Runs on worker threads; handlers guard any state they share.
  using Handler = std::function<net::Message(const net::Delivery&)>;

  /// Registers the handler for one opcode.  Must be called before start()
  /// (typically from the subclass constructor): the table is immutable
  /// while workers run, which is what lets dispatch read it without a
  /// lock.  Throws UsageError on duplicate registration or when running.
  /// Public so helpers (the shared owner-operation registrations) and
  /// table-driven services built without subclassing can use it.
  void on(std::uint16_t opcode, Handler handler);

  // ---- typed operation registration (defined in rpc/typed.hpp) --------
  // The declarative path: the dispatch layer decodes the request body,
  // validates the header capability against the op's declared rights
  // BEFORE the handler runs, encodes the reply, and maps Result errors to
  // statuses.  Including rpc/typed.hpp is required at the call site.

  /// Factory ops (op.object == false): no header capability, nothing to
  /// validate.  `handler`: (const Call<OpT>&) -> Outcome<OpT>.
  template <typename OpT, typename F>
    requires requires { typename OpT::Request; typename OpT::Reply; }
  void on(const OpT& op, F handler);

  /// Object ops.  When `handler` is (Call<OpT>&, Store::Opened&), the
  /// dispatcher opens the object with the op's declared rights and hands
  /// the handler the exclusive accessor (the common single-object shape).
  /// When it is (Call<OpT>&), the dispatcher validates rights via
  /// store.check() and the handler takes its own locks (open2 pair ops).
  template <typename OpT, typename Store, typename F>
    requires requires { typename OpT::Request; typename OpT::Reply; }
  void on(const OpT& op, Store& store, F handler);

  /// Every typed descriptor registered on this service, in registration
  /// order -- lets generic tests exercise any server without per-server
  /// case lists.
  [[nodiscard]] const std::vector<OpInfo>& registered_ops() const {
    return typed_ops_;
  }

 protected:
  /// Processes one request and produces the reply message.  The default
  /// looks the opcode up in the on() table and replies no_such_operation
  /// for unknown opcodes; subclasses with dynamic dispatch needs may
  /// override it entirely.
  [[nodiscard]] virtual net::Message handle(const net::Delivery& request);

 private:
  /// Records a typed descriptor's metadata (called by the typed on()
  /// overloads after the raw registration validated the opcode).
  void note_op(OpInfo info);

  void run(std::stop_token stop, std::latch& ready);
  [[nodiscard]] net::Message handle_batch(const net::Delivery& request);
  [[nodiscard]] net::Message handle_one(const net::Delivery& request);

  net::Machine* machine_;
  Port get_port_;
  std::string name_;
  std::vector<std::jthread> workers_;
  std::atomic<int> batch_fan_out_{1};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  mutable std::mutex filter_mutex_;  // guards filter_ and signatures_
  std::shared_ptr<MessageFilter> filter_;
  std::vector<Port> allowed_signatures_;
  std::unordered_map<std::uint16_t, Handler> handlers_;  // frozen at start()
  std::vector<OpInfo> typed_ops_;                        // frozen at start()
};

}  // namespace amoeba::rpc
