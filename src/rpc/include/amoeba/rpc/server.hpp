// Server-side service loop.
//
// A service chooses a secret get-port G, does GET(G), and serves requests
// arriving on P = F(G) (§2.2).  Concrete servers (file, directory, bank,
// ...) subclass Service and implement handle(); the loop takes care of
// receiving, replying to the frame's stamped source, and clean shutdown.
// Multiple worker threads may GET on the same port; the network delivers
// round-robin, exactly like multiple server processes comprising one
// service in Amoeba.
#pragma once

#include <atomic>
#include <latch>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "amoeba/net/network.hpp"
#include "amoeba/rpc/filter.hpp"

namespace amoeba::rpc {

class Service {
 public:
  /// Binds the service to a machine and its secret get-port.  The service
  /// does not listen until start() is called.
  Service(net::Machine& machine, Port get_port, std::string name);
  virtual ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Spawns `workers` listener threads.  Idempotent start/stop pairs.
  void start(int workers = 1);

  /// Stops all workers and waits for them to exit (jthread join).
  void stop();

  /// Moves a stopped service to another machine (process migration for the
  /// locate experiments).  Throws UsageError if the service is running.
  void rebind(net::Machine& machine);

  /// The public put-port clients use: P = F(G) under F-boxes, G otherwise.
  [[nodiscard]] Port put_port() const;

  /// Installs a message filter (capability sealing in F-box-less mode);
  /// applied to requests on arrival and replies on departure.
  void set_filter(std::shared_ptr<MessageFilter> filter);

  /// Restricts the service to signed requests (§2.2 digital signatures):
  /// "each client chooses a random signature, S, and publishes F(S)".
  /// The service accepts a request only when its (F-box transformed)
  /// signature field matches one of the published values; everything else
  /// is refused with permission_denied.  An empty set (the default)
  /// disables the check.  Only meaningful under F-boxes -- without them a
  /// signature is replayable and §2.4's source addresses take over.
  void set_allowed_signatures(std::vector<Port> published_signatures);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] net::Machine& machine() { return *machine_; }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 protected:
  /// Processes one request and produces the reply message (status +
  /// payload; the loop fills in the destination from the request's reply
  /// port).  Runs on a worker thread; implementations guard their state.
  [[nodiscard]] virtual net::Message handle(const net::Delivery& request) = 0;

 private:
  void run(std::stop_token stop, std::latch& ready);

  net::Machine* machine_;
  Port get_port_;
  std::string name_;
  std::vector<std::jthread> workers_;
  std::atomic<std::uint64_t> requests_served_{0};
  mutable std::mutex filter_mutex_;  // guards filter_ and signatures_
  std::shared_ptr<MessageFilter> filter_;
  std::vector<Port> allowed_signatures_;
};

}  // namespace amoeba::rpc
