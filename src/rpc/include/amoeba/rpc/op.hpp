// Typed operation descriptors over the standard message format (§2.1).
//
// Every Amoeba operation has the same wire anatomy: an opcode, the
// capability of the object being operated on in the header slot, up to
// four scalar parameters, and a bulk data field that may carry strings,
// further capabilities, or raw bytes.  Instead of every server hand-coding
// that mapping (magic opcode constants, raw params[i] casts, per-field
// Writer/Reader loops), an Op<Request, Reply> descriptor states it once,
// declaratively:
//
//   struct TransferRequest {
//     std::uint32_t currency = 0;
//     std::int64_t amount = 0;
//     core::Capability to;
//     using Wire = rpc::Layout<TransferRequest,
//                              rpc::Param<0, &TransferRequest::currency>,
//                              rpc::Param<1, &TransferRequest::amount>,
//                              rpc::Data<&TransferRequest::to>>;
//   };
//   inline constexpr rpc::Op<TransferRequest, rpc::Empty> kTransfer{
//       0x0503, "bank.transfer", bank_rights::kWithdraw,
//       bank_rights::kDeposit};
//
// The descriptor carries the opcode, a diagnostic name, and the rights the
// header capability must grant -- the §2.3 rights-restriction model made
// declarative, so the dispatch layer (rpc/typed.hpp) can validate before
// any handler code runs.  The field codecs reproduce the existing wire
// format exactly (same slots, same little-endian serial layout), so typed
// and untyped peers interoperate frame for frame.
//
// Field kinds:
//   Param<slot, &T::member>  scalar in header params[slot] (integral,
//                            enum, or Rights)
//   Data<&T::member>         serialized into the data field in declaration
//                            order (strings are u32-length-prefixed,
//                            capabilities are 16 raw bytes, vectors are
//                            u32-count-prefixed; extend via ADL
//                            wire_write/wire_read overloads)
//   RawData<&T::member>      a Buffer member that IS the unprefixed tail
//                            of the data field (bulk payloads); must be
//                            the last field
//   CapSlot<&T::member>      a capability in the header capability slot
//                            (the shape of every "here is your new
//                            capability" reply)
//
// Decoding is total and strict: any underflow, malformed element, or
// trailing garbage yields nullopt, which the dispatcher maps to
// invalid_argument with an op-named diagnostic.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "amoeba/common/serial.hpp"
#include "amoeba/common/types.hpp"
#include "amoeba/core/capability.hpp"
#include "amoeba/net/message.hpp"

namespace amoeba {

// ---------------------------------------------------------------------
// Data-field element codecs.  Overloads live in namespace amoeba (found
// through Writer/Reader by ADL); server headers add their own for domain
// types (e.g. DirEntry).  Readers return false on malformation.

inline void wire_write(Writer& w, const std::string& s) { w.str(s); }
[[nodiscard]] inline bool wire_read(Reader& r, std::string& s) {
  s = r.str();
  return r.ok();
}

inline void wire_write(Writer& w, const core::Capability& cap) {
  w.raw(core::pack(cap));  // 16 raw bytes, the Fig. 2 image
}
[[nodiscard]] inline bool wire_read(Reader& r, core::Capability& cap) {
  core::CapabilityBytes bytes{};
  r.raw(bytes);
  cap = core::unpack(bytes);
  return r.ok();
}

/// u32-count-prefixed sequence (the directory list / MAKE PROCESS shape).
template <typename E>
void wire_write(Writer& w, const std::vector<E>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& e : v) {
    wire_write(w, e);
  }
}
template <typename E>
[[nodiscard]] bool wire_read(Reader& r, std::vector<E>& v) {
  const std::uint32_t count = r.u32();
  // Every element encoding occupies at least one byte, so a count beyond
  // the remaining bytes is hostile; reject before allocating.
  if (!r.ok() || count > r.remaining()) {
    return false;
  }
  v.clear();
  v.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    E element{};
    if (!wire_read(r, element)) {
      return false;
    }
    v.push_back(std::move(element));
  }
  return r.ok();
}

/// Trailing-optional: present = encoded as usual, absent = nothing.  Only
/// meaningful as the last field of a layout (absence is "no bytes left").
template <typename T>
void wire_write(Writer& w, const std::optional<T>& v) {
  if (v.has_value()) {
    wire_write(w, *v);
  }
}
template <typename T>
[[nodiscard]] bool wire_read(Reader& r, std::optional<T>& v) {
  if (r.remaining() == 0) {
    v.reset();
    return r.ok();
  }
  T inner{};
  if (!wire_read(r, inner)) {
    return false;
  }
  v = std::move(inner);
  return true;
}

}  // namespace amoeba

namespace amoeba::rpc {

// ---------------------------------------------------------------------
// Wire images: where a request/reply body materializes on the standard
// message format.  WireImage owns (encoding), WireView borrows (decoding).

struct WireImage {
  net::CapabilityBytes capability{};
  std::array<std::uint64_t, 4> params{};
  Buffer data;
};

struct WireView {
  net::CapabilityBytes capability{};
  std::array<std::uint64_t, 4> params{};
  std::span<const std::uint8_t> data;
};

[[nodiscard]] inline WireView view_of(const net::Message& msg) {
  return WireView{msg.header.capability, msg.header.params, msg.data};
}

// ---------------------------------------------------------------------
// Param-slot codecs: how a field type round-trips through a u64 slot.

template <typename T>
struct ParamCodec {
  static_assert(std::is_integral_v<T> || std::is_enum_v<T>,
                "params[] fields must be integral, enum, or Rights");
  [[nodiscard]] static constexpr std::uint64_t put(T v) {
    return static_cast<std::uint64_t>(v);
  }
  [[nodiscard]] static constexpr T get(std::uint64_t raw) {
    return static_cast<T>(raw);
  }
};

template <>
struct ParamCodec<Rights> {
  [[nodiscard]] static constexpr std::uint64_t put(Rights r) {
    return r.bits();
  }
  [[nodiscard]] static constexpr Rights get(std::uint64_t raw) {
    return Rights(static_cast<std::uint8_t>(raw));
  }
};

namespace detail {
template <typename M>
struct MemberPtr;
template <typename C, typename T>
struct MemberPtr<T C::*> {
  using Class = C;
  using Type = T;
};
}  // namespace detail

// ---------------------------------------------------------------------
// Field descriptors.  Each provides encode(body, image, writer) and
// decode(body, view, reader); Layout folds them in declaration order.

template <std::size_t Slot, auto Member>
struct Param {
  static_assert(Slot < 4, "the header carries four scalar params");
  using Body = typename detail::MemberPtr<decltype(Member)>::Class;
  using Type = typename detail::MemberPtr<decltype(Member)>::Type;

  static void encode(const Body& body, WireImage& image, Writer&) {
    image.params[Slot] = ParamCodec<Type>::put(body.*Member);
  }
  [[nodiscard]] static bool decode(Body& body, const WireView& view,
                                   Reader&) {
    body.*Member = ParamCodec<Type>::get(view.params[Slot]);
    return true;
  }
};

template <auto Member>
struct Data {
  using Body = typename detail::MemberPtr<decltype(Member)>::Class;

  static void encode(const Body& body, WireImage&, Writer& w) {
    wire_write(w, body.*Member);
  }
  [[nodiscard]] static bool decode(Body& body, const WireView&, Reader& r) {
    return wire_read(r, body.*Member);
  }
};

template <auto Member>
struct RawData {
  using Body = typename detail::MemberPtr<decltype(Member)>::Class;
  static_assert(
      std::is_same_v<typename detail::MemberPtr<decltype(Member)>::Type,
                     Buffer>,
      "RawData fields must be Buffers");

  static void encode(const Body& body, WireImage&, Writer& w) {
    w.raw(body.*Member);
  }
  [[nodiscard]] static bool decode(Body& body, const WireView&, Reader& r) {
    (body.*Member).resize(r.remaining());
    r.raw(body.*Member);
    return r.ok();
  }
};

template <auto Member>
struct CapSlot {
  using Body = typename detail::MemberPtr<decltype(Member)>::Class;
  static_assert(
      std::is_same_v<typename detail::MemberPtr<decltype(Member)>::Type,
                     core::Capability>,
      "CapSlot fields must be core::Capability");

  static void encode(const Body& body, WireImage& image, Writer&) {
    image.capability = core::pack(body.*Member);
  }
  [[nodiscard]] static bool decode(Body& body, const WireView& view,
                                   Reader&) {
    body.*Member = core::unpack(view.capability);
    return true;
  }
};

// ---------------------------------------------------------------------
// Layout: the ordered field list of one body type.

template <typename Body, typename... Fields>
struct Layout {
  static void encode(const Body& body, WireImage& image) {
    Writer w;
    (Fields::encode(body, image, w), ...);
    image.data = w.take();
  }

  [[nodiscard]] static std::optional<Body> decode(const WireView& view) {
    Body body{};
    Reader r(view.data);
    const bool fields_ok = (Fields::decode(body, view, r) && ...);
    if (!fields_ok || !r.exhausted()) {
      return std::nullopt;  // underflow, bad element, or trailing bytes
    }
    return body;
  }
};

/// A request or reply with no payload at all.
struct Empty {
  using Wire = Layout<Empty>;
};

/// The shape of every "here is your new capability" reply: the capability
/// travels in the header slot, exactly where clients always found it.
struct CapabilityReply {
  core::Capability capability;
  using Wire = Layout<CapabilityReply, CapSlot<&CapabilityReply::capability>>;
};

/// Bulk payload request/reply: the whole data field, unprefixed (file and
/// segment reads/writes).
struct BytesRequest {
  Buffer bytes;
  using Wire = Layout<BytesRequest, RawData<&BytesRequest::bytes>>;
};
struct BytesReply {
  Buffer bytes;
  using Wire = Layout<BytesReply, RawData<&BytesReply::bytes>>;
};

/// Anything with a declared wire layout.
template <typename T>
concept WireBody = requires { typename T::Wire; };

// ---------------------------------------------------------------------
// The operation descriptor.

/// Tag for operations that create objects rather than addressing one: the
/// header capability slot is unused and nothing is validated.
struct FactoryTag {};
inline constexpr FactoryTag kFactoryOp{};

/// One declared operation: opcode, diagnostic name, the rights the header
/// capability must grant (validated by the dispatch layer before the
/// handler runs), and -- for operations that consume further capabilities
/// from the data field -- the rights handlers demand of those, so every
/// rights requirement of the op lives in this one declaration.
template <typename RequestT, typename ReplyT>
struct Op {
  using Request = RequestT;
  using Reply = ReplyT;
  static_assert(WireBody<RequestT> && WireBody<ReplyT>,
                "Op bodies must declare a Wire layout");

  std::uint16_t opcode = 0;
  const char* name = "";
  Rights required = Rights::none();     // header capability must grant these
  Rights data_rights = Rights::none();  // demanded of data-field capabilities
  bool object = true;  // false: factory op, no header capability

  constexpr Op(std::uint16_t opcode_, const char* name_, Rights required_,
               Rights data_rights_ = Rights::none())
      : opcode(opcode_),
        name(name_),
        required(required_),
        data_rights(data_rights_) {}

  constexpr Op(std::uint16_t opcode_, const char* name_, FactoryTag,
               Rights data_rights_ = Rights::none())
      : opcode(opcode_),
        name(name_),
        data_rights(data_rights_),
        object(false) {}
};

}  // namespace amoeba::rpc
